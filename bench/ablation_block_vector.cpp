// Ablation C: sparse matrix-BLOCK-vector communication (SpMM-style).
//
// The split strategy was introduced for enlarged conjugate gradient methods
// (paper §2.3.3, ref [16]) where each halo entry is a block of `b` vector
// values, multiplying every message size by b: "within the context of a
// sparse matrix-block vector multiplication, this scheme yields up to 60x
// speedup over standard communication techniques."  This sweep measures the
// split+MD speedup over standard as the block size grows.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 64 : 128;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.01;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), scale, 23);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  Table table({"block size", "standard (staged) [s]", "split+MD [s]",
               "3-step (staged) [s]", "split speedup vs standard"});

  for (const int block : {1, 4, 16, 64, 256}) {
    // Each communicated vector entry is a block of `block` doubles.
    const std::int64_t bytes_per_value = 8LL * block;
    const CommPattern pattern =
        sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);

    const auto time_for = [&](StrategyKind kind) {
      const CommPlan plan =
          build_plan(pattern, topo, params, {kind, MemSpace::Host});
      return measure(plan, topo, params, mopts).max_avg;
    };
    const double standard = time_for(StrategyKind::Standard);
    const double split = time_for(StrategyKind::SplitMD);
    const double three = time_for(StrategyKind::ThreeStep);
    table.add_row({std::to_string(block), Table::sci(standard),
                   Table::sci(split), Table::sci(three),
                   Table::num(standard / split, 2) + "x"});
  }
  opts.emit(table, "Ablation C -- block-vector (SpMM-style) sweep, "
                   "audikw_1 stand-in, " + std::to_string(gpus) + " GPUs");
  std::cout << "\nExpected: the split speedup over standard grows with the\n"
               "block size as volumes enter the injection-limited regime\n"
               "(the regime behind the paper's reported 60x for enlarged\n"
               "CG block vectors).\n";
  return 0;
}
