// Ablation H: process mapping x communication strategy.
//
// Two complementary levers on inter-node traffic: *where* communicating
// GPUs are placed (mapping) and *how* the remaining inter-node data moves
// (strategy).  Workload: coupled subdomain "teams" (e.g. multi-physics
// surface coupling) whose team structure does not match the allocation
// order -- the scheduler placed ranks round-robin, so every team straddles
// all nodes.  Greedy locality mapping recovers the team structure before
// any strategy runs.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 64;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  // Node-sized GPU teams exchange heavy coupling data; the allocator
  // scattered each team across nodes (round-robin placement).  Light
  // background traffic connects everyone.
  std::vector<int> team_of(static_cast<std::size_t>(gpus));
  for (int g = 0; g < gpus; ++g) {
    team_of[static_cast<std::size_t>(g)] = g % topo.num_nodes();
  }
  CommPattern pattern(gpus);
  for (int a = 0; a < gpus; ++a) {
    for (int b = 0; b < gpus; ++b) {
      if (a == b) continue;
      if (team_of[static_cast<std::size_t>(a)] ==
          team_of[static_cast<std::size_t>(b)]) {
        pattern.add(a, b, 200000);  // heavy coupling within the team
      } else if ((a + b) % 7 == 0) {
        pattern.add(a, b, 2000);    // sparse background traffic
      }
    }
  }

  const GpuMapping identity = GpuMapping::identity(gpus);
  const GpuMapping greedy = greedy_locality_mapping(pattern, topo);

  std::cout << "Inter-node volume: identity placement "
            << Table::bytes(internode_bytes_under(pattern, identity, topo))
            << ", greedy locality mapping "
            << Table::bytes(internode_bytes_under(pattern, greedy, topo))
            << "\n\n";

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  Table table({"mapping", "strategy", "time [s]", "vs identity+standard"});
  double baseline = 0.0;
  for (const bool use_greedy : {false, true}) {
    const CommPattern mapped =
        apply_mapping(pattern, use_greedy ? greedy : identity, topo);
    for (const StrategyKind kind :
         {StrategyKind::Standard, StrategyKind::ThreeStep,
          StrategyKind::SplitMD}) {
      const CommPlan plan =
          build_plan(mapped, topo, params, {kind, MemSpace::Host});
      const double t = measure(plan, topo, params, mopts).max_avg;
      if (!use_greedy && kind == StrategyKind::Standard) baseline = t;
      table.add_row({use_greedy ? "greedy" : "identity", to_string(kind),
                     Table::sci(t), Table::num(baseline / t, 2) + "x"});
    }
  }
  opts.emit(table, "Ablation H -- mapping x strategy (" +
                       std::to_string(gpus) + " GPUs, scattered teams)");
  std::cout << "\nReading: placement and strategy optimize different terms;\n"
               "the mapping reduces inter-node volume itself, the strategy\n"
               "moves what remains efficiently -- combine both.\n";
  return 0;
}
