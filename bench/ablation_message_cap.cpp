// Ablation A: sensitivity of Split+MD to the message cap.  The paper (§2.3.3)
// sets the cap at the rendezvous protocol switch point but notes it "can be
// determined via tuning or any other chosen criteria" -- this sweep measures
// how much tuning matters and where the default lands.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 128;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.01;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), scale, 13);
  // Volume-preserving scaling: the stand-in has scale*n rows for
  // tractability; multiplying the per-value payload by 1/scale restores the
  // full-size matrix's per-partition communication volumes (node fan-out is
  // already preserved because the band is a fraction of n).
  const std::int64_t bytes_per_value = std::llround(8.0 / scale);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);
  const CommPattern pattern =
            sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 15);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  Table table({"message cap", "time [s]", "inter-node msgs", "vs default"});
  double default_time = 0.0;
  {
    StrategyConfig cfg{StrategyKind::SplitMD, MemSpace::Host};
    cfg.message_cap = params.thresholds.eager_max;
    const CommPlan plan = build_plan(pattern, topo, params, cfg);
    default_time = measure(plan, topo, params, mopts).max_avg;
  }

  double best = 1e99;
  long long best_cap = 0;
  for (const long long cap : pow2_sizes(512, 1LL << 22)) {
    StrategyConfig cfg{StrategyKind::SplitMD, MemSpace::Host};
    cfg.message_cap = cap;
    const CommPlan plan = build_plan(pattern, topo, params, cfg);
    const double t = measure(plan, topo, params, mopts).max_avg;
    table.add_row({Table::bytes(cap), Table::sci(t),
                   std::to_string(plan.summarize(topo).internode_messages),
                   Table::num(t / default_time, 3)});
    if (t < best) {
      best = t;
      best_cap = cap;
    }
  }
  opts.emit(table, "Ablation A -- Split+MD message-cap sweep (" +
                       std::to_string(gpus) + " GPUs, audikw_1 stand-in)");
  std::cout << "\nDefault cap (rendezvous switch, "
            << Table::bytes(params.thresholds.eager_max)
            << "): " << Table::sci(default_time) << " s; tuned best cap "
            << Table::bytes(best_cap) << ": " << Table::sci(best) << " s ("
            << Table::num(default_time / best, 2) << "x of tuned).\n";
  return 0;
}
