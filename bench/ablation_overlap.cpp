// Ablation E: communication/computation overlap (paper §2.3.3: Algorithm 2
// steps "can be overlapped with various pieces of the computation").
//
// Sweeps the local compute grain relative to the communication time and
// reports how much of the exchange each strategy hides when the compute is
// issued while inter-node traffic is in flight.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/neighborhood.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 64;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.008;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("Serena"), scale, 37);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);
  const CommPattern pattern = sparse::spmv_comm_pattern(
      matrix, part, topo, static_cast<std::int64_t>(std::llround(8.0 / scale)));

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  for (const StrategyConfig& cfg :
       {StrategyConfig{StrategyKind::Standard, MemSpace::Host},
        StrategyConfig{StrategyKind::ThreeStep, MemSpace::Host},
        StrategyConfig{StrategyKind::SplitMD, MemSpace::Host}}) {
    const NeighborhoodExchange exchange(pattern, topo, params, cfg);
    const double comm = exchange.measure(mopts).max_avg;

    Table table({"compute/comm", "sequential [s]", "overlapped [s]",
                 "hidden fraction"});
    for (const double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double compute = ratio * comm;
      const double sequential = comm + compute;
      const double overlapped =
          exchange.measure_overlapped(compute, mopts).max_avg;
      const double hidden =
          comm > 0 ? (sequential - overlapped) / comm : 0.0;
      table.add_row({Table::num(ratio, 2), Table::sci(sequential),
                     Table::sci(overlapped), Table::num(hidden, 2)});
    }
    opts.emit(table, "Ablation E -- overlap, " + cfg.name() + " (comm=" +
                         Table::sci(comm) + " s)");
  }
  std::cout << "\nReading: standard communication hides the most (its whole\n"
               "exchange is the inter-node phase), while split has already\n"
               "shrunk the exposed inter-node time to a few percent of the\n"
               "total -- overlap and node-awareness attack the same cost\n"
               "from different sides.\n";
  return 0;
}
