// Ablation B: Split+DD's host-processes-per-GPU (ppg) trade-off.  More
// holders spread the on-node distribution load but multiply the number of
// duplicate-device-pointer copies, each paying the shared-copy latency.
// The paper fixes ppg = 4; this sweep shows why more does not help
// (consistent with Figure 3.1's "no benefit past four processes").

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 128;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.01;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("Serena"), scale, 29);
  // Volume-preserving scaling: the stand-in has scale*n rows for
  // tractability; multiplying the per-value payload by 1/scale restores the
  // full-size matrix's per-partition communication volumes (node fan-out is
  // already preserved because the band is a fraction of n).
  const std::int64_t bytes_per_value = std::llround(8.0 / scale);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);
  const CommPattern pattern =
            sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 15);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  // Split+MD as the baseline.
  double md_time = 0.0;
  {
    const CommPlan plan = build_plan(pattern, topo, params,
                                     {StrategyKind::SplitMD, MemSpace::Host});
    md_time = measure(plan, topo, params, mopts).max_avg;
  }

  Table table({"ppg", "time [s]", "copies", "vs Split+MD"});
  table.add_row({"(MD)", Table::sci(md_time), "-", "1.000"});
  for (const int ppg : {1, 2, 4, 8}) {
    StrategyConfig cfg{StrategyKind::SplitDD, MemSpace::Host};
    cfg.ppg = ppg;
    const CommPlan plan = build_plan(pattern, topo, params, cfg);
    const double t = measure(plan, topo, params, mopts).max_avg;
    table.add_row({std::to_string(ppg), Table::sci(t),
                   std::to_string(plan.summarize(topo).copies),
                   Table::num(t / md_time, 3)});
  }
  opts.emit(table, "Ablation B -- Split+DD holders per GPU (" +
                       std::to_string(gpus) + " GPUs, Serena stand-in)");
  std::cout << "\nExpected: every DD variant is slower than Split+MD -- the\n"
               "duplicate-device-pointer copy latency dominates the on-node\n"
               "messaging it saves (paper §5.1).\n";
  return 0;
}
