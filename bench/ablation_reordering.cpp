// Ablation D: matrix preprocessing vs communication strategy.
//
// Two orthogonal levers reduce SpMV communication: (a) reordering the
// matrix (reverse Cuthill-McKee) to shrink the halo itself, and (b) picking
// a node-aware strategy to move the remaining halo efficiently.  This
// ablation quantifies both, individually and combined, on a scrambled
// banded matrix -- the regime where reordering matters most.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <random>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 64;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));
  const std::int64_t n = opts.quick ? 4000 : 12000;

  // A banded FEM matrix whose natural order was lost (e.g. arbitrary mesh
  // numbering): random symmetric permutation of a band.
  const sparse::CsrMatrix band =
      sparse::banded_fem(n, n / 100, 12, 41, /*with_values=*/false);
  std::vector<std::int64_t> shuffle(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) shuffle[static_cast<std::size_t>(i)] = i;
  std::mt19937_64 rng(6);
  std::shuffle(shuffle.begin(), shuffle.end(), rng);
  const sparse::CsrMatrix scrambled =
      sparse::permute_symmetric(band, sparse::Permutation(shuffle));
  const sparse::CsrMatrix reordered = sparse::permute_symmetric(
      scrambled, sparse::reverse_cuthill_mckee(scrambled));

  std::cout << "Bandwidth: scrambled " << scrambled.bandwidth()
            << ", after RCM " << reordered.bandwidth() << "\n\n";

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(n, gpus);

  Table table({"ordering", "strategy", "halo volume", "time [s]",
               "vs scrambled+standard"});
  double baseline = 0.0;
  for (const bool use_rcm : {false, true}) {
    const sparse::CsrMatrix& m = use_rcm ? reordered : scrambled;
    const CommPattern pattern =
        sparse::spmv_comm_pattern(m, part, topo, /*bytes_per_value=*/512);
    for (const StrategyKind kind :
         {StrategyKind::Standard, StrategyKind::ThreeStep,
          StrategyKind::SplitMD}) {
      const CommPlan plan =
          build_plan(pattern, topo, params, {kind, MemSpace::Host});
      const double t = measure(plan, topo, params, mopts).max_avg;
      if (!use_rcm && kind == StrategyKind::Standard) baseline = t;
      table.add_row({use_rcm ? "RCM" : "scrambled", to_string(kind),
                     Table::bytes(pattern.total_bytes()), Table::sci(t),
                     Table::num(baseline / t, 2) + "x"});
    }
  }
  opts.emit(table, "Ablation D -- RCM reordering x strategy (" +
                       std::to_string(gpus) + " GPUs)");
  std::cout << "\nExpected: RCM shrinks the halo itself (largest single\n"
               "lever); node-aware strategies then compound on top.\n";
  return 0;
}
