// Ablation G: setup-cost amortization.
//
// Node-aware strategies pay a setup phase (Algorithm 1: message metadata
// exchange + communicator construction) that standard communication mostly
// avoids.  An iterative solver amortizes it over hundreds of executions;
// this bench reports each strategy's setup cost and how many iterations it
// takes to break even against standard communication.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/neighborhood.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 64 : 128;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.01;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), scale, 53);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);
  const CommPattern pattern = sparse::spmv_comm_pattern(
      matrix, part, topo, static_cast<std::int64_t>(std::llround(8.0 / scale)));

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const NeighborhoodExchange baseline(
      pattern, topo, params, {StrategyKind::Standard, MemSpace::Host});
  const double base_setup = baseline.setup_cost();
  const double base_iter = baseline.measure(mopts).max_avg;

  Table table({"strategy", "setup [s]", "per-iter [s]", "break-even iters"});
  table.add_row({"standard (staged)", Table::sci(base_setup),
                 Table::sci(base_iter), "0 (baseline)"});
  for (const StrategyConfig& cfg : table5_strategies()) {
    if (cfg.kind == StrategyKind::Standard &&
        cfg.transport == MemSpace::Host) {
      continue;
    }
    const NeighborhoodExchange exchange(pattern, topo, params, cfg);
    const int breakeven =
        exchange.iterations_to_amortize(base_setup, base_iter, mopts);
    table.add_row({cfg.name(), Table::sci(exchange.setup_cost()),
                   Table::sci(exchange.measure(mopts).max_avg),
                   breakeven < 0 ? "never" : std::to_string(breakeven)});
  }
  opts.emit(table, "Ablation G -- setup-cost amortization (" +
                       std::to_string(gpus) + " GPUs, audikw_1 stand-in)");
  std::cout << "\nReading: setup is dominated by partner discovery, which\n"
               "node-aware aggregation itself reduces -- the winning staged\n"
               "node-aware strategies are ahead from the very first\n"
               "iteration, which is why the paper treats setup as free.\n";
  return 0;
}
