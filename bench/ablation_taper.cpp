// Ablation F: tapered (oversubscribed) fat trees.
//
// Lassen's EDR fabric is non-blocking (paper §2.1), but cost-constrained
// clusters taper their spines.  This sweep re-runs the SpMV strategy
// comparison while oversubscribing the fabric 1:1 -> 8:1 and reports how
// the strategy ranking shifts: message-reducing strategies gain value as
// the shared spine becomes the bottleneck.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

namespace {

double measure_with_taper(const CommPlan& plan, const Topology& topo,
                          const ParamSet& params, double taper, int reps) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Engine engine(topo, params,
                  NoiseModel(100 + static_cast<std::uint64_t>(rep), 0.02));
    FatTreeConfig cfg;
    cfg.nodes_per_pod = 4;
    cfg.taper = taper;
    engine.set_fabric(cfg);
    run_plan(engine, plan);
    total += engine.max_clock();
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 64 : 128;  // 16 / 32 nodes => 4 / 8 pods
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  // Bandwidth-bound cross-pod shuffle: every GPU ships a bulk block to one
  // GPU in each *other* pod (spectral/FFT-transpose-like traffic).  This is
  // the pattern a tapered spine hurts; latency-bound halos barely notice.
  const std::int64_t block = (opts.quick ? 2 : 4) << 20;
  const int nodes_per_pod = 4;
  const int pods = topo.num_nodes() / nodes_per_pod;
  CommPattern pattern(topo.num_gpus());
  for (int g = 0; g < topo.num_gpus(); ++g) {
    const int src_pod = topo.gpu_location(g).node / nodes_per_pod;
    for (int p = 0; p < pods; ++p) {
      if (p == src_pod) continue;
      const int dst_node = p * nodes_per_pod +
                           topo.gpu_location(g).node % nodes_per_pod;
      const int dst_gpu =
          topo.gpus_on_node(dst_node)[topo.gpu_location(g).local_index];
      pattern.add(g, dst_gpu, block);
    }
  }

  const int reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);

  Table table({"taper", "standard (staged)", "3-step (staged)", "split+MD",
               "min", "min/non-blocking min"});
  double nb_best = 0.0;
  for (const double taper : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<std::string> row{Table::num(taper, 0) + ":1"};
    double best = 1e99;
    std::string best_name;
    for (const StrategyKind kind :
         {StrategyKind::Standard, StrategyKind::ThreeStep,
          StrategyKind::SplitMD}) {
      const CommPlan plan =
          build_plan(pattern, topo, params, {kind, MemSpace::Host});
      const double t = measure_with_taper(plan, topo, params, taper, reps);
      row.push_back(Table::sci(t));
      if (t < best) {
        best = t;
        best_name = to_string(kind);
      }
    }
    if (taper == 1.0) nb_best = best;
    row.push_back(best_name);
    row.push_back(Table::num(best / nb_best, 2) + "x");
    table.add_row(std::move(row));
  }
  opts.emit(table, "Ablation F -- fat-tree taper sweep (" +
                       std::to_string(gpus) + " GPUs, audikw_1 stand-in)");
  std::cout << "\nReading: the taper adds a penalty proportional to the\n"
               "*wire* volume crossing the spine, identical for every\n"
               "strategy here (this shuffle has no duplicate data to\n"
               "remove).  On tapered fabrics the leverage moves to whatever\n"
               "reduces wire bytes -- deduplication -- rather than to\n"
               "message-count reduction.\n";
  return 0;
}
