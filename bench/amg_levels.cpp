// Extension: strategy choice across an AMG hierarchy (paper ref [15]'s
// setting).  Coarse multigrid levels have fewer rows but relatively denser
// stencils and wider partition fan-out; communication dominates there, and
// the best strategy shifts level by level.  For every level of an
// aggregation hierarchy this bench reports the pattern statistics, each
// strategy's time, the winner, and the advisor's pick.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/advisor.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/coarsen.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/generators.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 64;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const std::int64_t n = opts.quick ? 20000 : 60000;
  const sparse::CsrMatrix fine =
      sparse::banded_fem(n, n / 100, 10, 61, /*with_values=*/false);
  const sparse::Hierarchy hierarchy =
      sparse::build_hierarchy(fine, /*min_rows=*/gpus * 8, /*max_levels=*/6);

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const Advisor advisor(topo, params);
  Table table({"level", "rows", "nnz/row", "inter msgs", "best (measured)",
               "advisor pick", "standard/best"});

  for (std::size_t l = 0; l < hierarchy.levels.size(); ++l) {
    const sparse::CsrMatrix& m = hierarchy.levels[l];
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(m.rows(), gpus);
    // Level-independent payload: coarse vector entries carry the same 8 B,
    // scaled x100 to keep volumes in the interesting regime.
    const CommPattern pattern = sparse::spmv_comm_pattern(m, part, topo, 800);
    const PatternStats stats = compute_stats(pattern, topo);

    double best = 1e99, standard = 0.0;
    std::string best_name;
    for (const StrategyConfig& cfg : table5_strategies()) {
      if (cfg.transport == MemSpace::Device) continue;  // staged study
      const CommPlan plan = build_plan(pattern, topo, params, cfg);
      const double t = measure(plan, topo, params, mopts).max_avg;
      if (cfg.kind == StrategyKind::Standard) standard = t;
      if (t < best) {
        best = t;
        best_name = cfg.name();
      }
    }
    AdvisorOptions aopts;
    aopts.staged_only = true;
    table.add_row({std::to_string(l), std::to_string(m.rows()),
                   Table::num(m.mean_degree(), 1),
                   std::to_string(stats.total_internode_messages), best_name,
                   advisor.best(pattern, aopts).config.name(),
                   Table::num(standard / best, 2) + "x"});
  }
  opts.emit(table, "AMG hierarchy -- strategy choice per level (" +
                       std::to_string(gpus) + " GPUs)");
  std::cout << "\nReading: fine levels are neighbor-local; coarse levels\n"
               "spread each part's halo over many nodes, which is where\n"
               "node-aware strategies take over -- the AMG setting that\n"
               "motivated node-aware communication (paper ref [15]).\n";
  return 0;
}
