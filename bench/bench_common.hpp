#pragma once
// Shared helpers for the hetcomm benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper.  Common
// command-line flags:
//   --csv     emit CSV instead of aligned tables
//   --quick   reduce iteration counts / sweep sizes (CI-friendly)
//   --reps N  override repetition count

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/table.hpp"

namespace hetcomm::benchutil {

struct BenchOptions {
  bool csv = false;
  bool quick = false;
  int reps = -1;  ///< -1 = bench default

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        opts.csv = true;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        opts.quick = true;
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        opts.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "flags: --csv --quick --reps N\n";
        std::exit(0);
      }
    }
    return opts;
  }

  void emit(const Table& table, const std::string& title) const {
    if (csv) {
      std::cout << "# " << title << "\n";
      table.print_csv(std::cout);
    } else {
      banner(std::cout, title);
      table.print(std::cout);
    }
  }
};

/// Log-spaced message sizes from `lo` to `hi` (powers of two).
inline std::vector<long long> pow2_sizes(long long lo, long long hi) {
  std::vector<long long> out;
  for (long long s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace hetcomm::benchutil
