#pragma once
// Shared helpers for the hetcomm benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper.  Common
// command-line flags:
//   --csv       emit CSV instead of aligned tables
//   --quick     reduce iteration counts / sweep sizes (CI-friendly)
//   --reps N    override repetition count (positive integer)
//   --jobs N    sweep worker threads (positive; default: hardware)
//   --seed S    base noise seed for reproducible runs
//   --progress  per-cell progress lines on stderr
//   --engine E  execution path: compiled (default) or interpreted
//
// Unknown flags and malformed values are hard errors (exit 2) -- a typo'd
// sweep must not silently run with default settings.

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "runtime/sweep.hpp"

namespace hetcomm::benchutil {

struct BenchOptions {
  bool csv = false;
  bool quick = false;
  bool progress = false;
  int reps = -1;               ///< -1 = bench default
  int jobs = 0;                ///< sweep workers; 0 = hardware concurrency
  std::uint64_t seed = 0x5eedULL;
  /// Both engines are bit-identical; interpreted exists for A/B timing.
  core::ExecMode engine = core::ExecMode::Compiled;

  static constexpr const char* kUsage =
      "flags: --csv --quick --progress --reps N --jobs N --seed S "
      "--engine {compiled,interpreted}";

  [[noreturn]] static void fail(const std::string& message) {
    std::cerr << "bench: " << message << "\n" << kUsage << "\n";
    std::exit(2);
  }

  /// Strict positive-integer parse: the whole token must be a number >= 1
  /// (no "--reps x" silently becoming 0 via atoi).
  static long long parse_positive(const char* text, const char* flag) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || v < 1) {
      fail(std::string(flag) + " needs a positive integer, got '" + text + "'");
    }
    return v;
  }

  /// Only the exact spellings are accepted -- "compile", "Compiled" or
  /// other near-misses abort with usage text rather than running the
  /// default path under a misleading label.
  static core::ExecMode parse_engine(const char* text) {
    if (std::strcmp(text, "compiled") == 0) return core::ExecMode::Compiled;
    if (std::strcmp(text, "interpreted") == 0) {
      return core::ExecMode::Interpreted;
    }
    fail(std::string("--engine must be 'compiled' or 'interpreted', got '") +
         text + "'");
  }

  static std::uint64_t parse_seed(const char* text) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0') {
      fail(std::string("--seed needs an unsigned integer, got '") + text + "'");
    }
    return static_cast<std::uint64_t>(v);
  }

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    const auto value = [&](int& i, const char* flag) -> const char* {
      if (i + 1 >= argc) fail(std::string("missing value for ") + flag);
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        opts.csv = true;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        opts.quick = true;
      } else if (std::strcmp(argv[i], "--progress") == 0) {
        opts.progress = true;
      } else if (std::strcmp(argv[i], "--reps") == 0) {
        opts.reps = static_cast<int>(parse_positive(value(i, "--reps"), "--reps"));
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        opts.jobs = static_cast<int>(parse_positive(value(i, "--jobs"), "--jobs"));
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        opts.seed = parse_seed(value(i, "--seed"));
      } else if (std::strcmp(argv[i], "--engine") == 0) {
        opts.engine = parse_engine(value(i, "--engine"));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << kUsage << "\n";
        std::exit(0);
      } else {
        fail(std::string("unknown flag '") + argv[i] + "'");
      }
    }
    return opts;
  }

  /// SweepOptions carrying this run's --jobs / --progress settings.
  [[nodiscard]] runtime::SweepOptions sweep_options() const {
    runtime::SweepOptions so;
    so.jobs = jobs;
    so.progress = progress;
    return so;
  }

  void emit(const Table& table, const std::string& title) const {
    if (csv) {
      std::cout << "# " << title << "\n";
      table.print_csv(std::cout);
    } else {
      banner(std::cout, title);
      table.print(std::cout);
    }
  }
};

/// Log-spaced message sizes from `lo` to `hi` (powers of two).
inline std::vector<long long> pow2_sizes(long long lo, long long hi) {
  std::vector<long long> out;
  for (long long s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace hetcomm::benchutil
