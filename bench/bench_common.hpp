#pragma once
// Shared helpers for the hetcomm benchmark harness.
//
// The strict flag grammar (and its testable throwing parser) lives in
// benchutil/bench_options.hpp; this header only adds bench-local sugar.

#include <vector>

#include "benchutil/bench_options.hpp"
#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "runtime/sweep.hpp"

namespace hetcomm::benchutil {

/// Log-spaced message sizes from `lo` to `hi` (powers of two).
inline std::vector<long long> pow2_sizes(long long lo, long long hi) {
  std::vector<long long> out;
  for (long long s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace hetcomm::benchutil
