// Figure 2.5: time to send data between two processes that are on the same
// socket, the same node (separate sockets), or separate nodes.
//
// Reproduces the paper's observation that for large messages the network
// path can be *faster* than the on-node path (Lassen's on-node rendezvous
// beta exceeds the off-node one).

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(2);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 10 : 200);
  mopts.noise_sigma = 0.02;

  Table table({"size", "on-socket [s]", "on-node [s]", "off-node [s]",
               "fastest"});
  for (const long long size : pow2_sizes(1, 1 << 20)) {
    double best = 1e99;
    const char* best_name = "?";
    std::vector<std::string> row{Table::bytes(size)};
    for (const PathClass path :
         {PathClass::OnSocket, PathClass::OnNode, PathClass::OffNode}) {
      const auto [a, b] = rank_pair_for(topo, path);
      const double t =
          ping_pong(topo, params, a, b, size, MemSpace::Host, mopts);
      row.push_back(Table::sci(t));
      if (t < best) {
        best = t;
        best_name = to_string(path);
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  opts.emit(table, "Figure 2.5 -- inter-CPU ping-pong by placement (Lassen)");

  std::cout << "\nNote: for the largest sizes the off-node path undercuts the\n"
               "on-node path (rendezvous beta 7.97e-11 vs 1.49e-10 s/B),\n"
               "matching the paper's Figure 2.5 crossover.\n";
  return 0;
}
