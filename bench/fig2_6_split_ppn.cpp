// Figure 2.6: time to send a fixed data volume between two distinct nodes
// when splitting it across ppn processes per node, for several volumes.
// The minimum over ppn (circled in the paper) shifts right as volume grows:
// splitting across many cores pays off for large volumes.

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(2);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 5 : 100);
  mopts.noise_sigma = 0.02;

  const std::vector<long long> volumes = {64LL << 10, 1LL << 20, 16LL << 20};
  const std::vector<int> ppns = {1, 2, 4, 8, 16, 24, 32, 40};

  std::vector<std::string> headers{"ppn"};
  for (const long long v : volumes) headers.push_back(Table::bytes(v) + " [s]");
  Table table(std::move(headers));

  std::vector<double> best(volumes.size(), 1e99);
  std::vector<int> best_ppn(volumes.size(), 0);
  for (const int ppn : ppns) {
    std::vector<std::string> row{std::to_string(ppn)};
    for (std::size_t vi = 0; vi < volumes.size(); ++vi) {
      const double t = node_pong(topo, params, 0, 1, ppn, volumes[vi] / ppn,
                                 MemSpace::Host, mopts);
      row.push_back(Table::sci(t));
      if (t < best[vi]) {
        best[vi] = t;
        best_ppn[vi] = ppn;
      }
    }
    table.add_row(std::move(row));
  }
  opts.emit(table, "Figure 2.6 -- node-to-node volume split across ppn procs");

  std::cout << "\nMinimum times (the paper's circles):\n";
  for (std::size_t vi = 0; vi < volumes.size(); ++vi) {
    std::cout << "  " << Table::bytes(volumes[vi]) << ": ppn=" << best_ppn[vi]
              << "  t=" << Table::sci(best[vi]) << " s\n";
  }
  return 0;
}
