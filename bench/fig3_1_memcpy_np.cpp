// Figure 3.1: time to copy a data volume between host and one GPU with
// cudaMemcpyAsync when splitting the copy across NP processes (duplicate
// device pointers / CUDA MPS), for both directions.
//
// Reproduces the paper's finding that splitting copies across processes
// shows no benefit: the shared-copy betas (Table 3) are far worse than the
// exclusive ones.

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(1);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 10 : 200);
  mopts.noise_sigma = 0.02;

  const std::vector<int> nps = {1, 2, 4, 8};
  for (const CopyDir dir : {CopyDir::DeviceToHost, CopyDir::HostToDevice}) {
    std::vector<std::string> headers{"size"};
    for (const int np : nps) headers.push_back("NP=" + std::to_string(np) + " [s]");
    headers.push_back("best NP");
    Table table(std::move(headers));

    for (const long long size : pow2_sizes(1 << 10, 64LL << 20)) {
      std::vector<std::string> row{Table::bytes(size)};
      double best = 1e99;
      int best_np = 0;
      for (const int np : nps) {
        const double t = copy_time(topo, params, 0, dir, size, np, mopts);
        row.push_back(Table::sci(t));
        if (t < best) {
          best = t;
          best_np = np;
        }
      }
      row.push_back(std::to_string(best_np));
      table.add_row(std::move(row));
    }
    opts.emit(table, std::string("Figure 3.1 -- cudaMemcpyAsync split over NP (") +
                         to_string(dir) + ")");
  }

  std::cout << "\nNote: NP=1 wins at large volumes (shared-copy betas are\n"
               "worse), matching the paper's 'no observed benefit in\n"
               "splitting data copies' conclusion.\n";
  return 0;
}
