// Figure 4.2: model validation -- measured SpMV communication time vs model
// prediction for every strategy, on the audikw_1 stand-in, over a GPU-count
// sweep.
//
// Expected shape (paper §4.5): node-aware models are a tight upper bound
// (within ~an order of magnitude, usually much closer); the standard model
// overshoots by roughly an order of magnitude.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/models/strategy_models.hpp"
#include "core/strategy.hpp"
#include "runtime/sweep.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const double scale = opts.quick ? 0.005 : 0.02;
  // Volume-preserving scaling: the stand-in has scale*n rows for
  // tractability; multiplying the per-value payload by 1/scale restores the
  // full-size matrix's per-partition communication volumes (node fan-out is
  // already preserved because the band is a fraction of n).
  const std::int64_t bytes_per_value = std::llround(8.0 / scale);
  const sparse::MatrixProfile& profile = sparse::profile_by_name("audikw_1");
  const sparse::CsrMatrix matrix = sparse::generate_standin(profile, scale, 7);

  std::cout << "audikw_1 stand-in at scale " << scale << ": n=" << matrix.rows()
            << " nnz=" << matrix.nnz() << " (published: n=" << profile.rows
            << " nnz=" << profile.nnz << ")\n";

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 25);
  mopts.seed = opts.seed;
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const std::vector<int> gpu_counts =
      opts.quick ? std::vector<int>{16, 32} : std::vector<int>{8, 16, 32, 64};
  const std::vector<StrategyConfig> strategies = table5_strategies();

  // Grid: strategy x GPU count.  Cells run across the sweep pool; results
  // land in grid order regardless of completion order.
  struct Cell {
    std::size_t si = 0;
    std::size_t gi = 0;
  };
  std::vector<Cell> grid;
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    for (std::size_t gi = 0; gi < gpu_counts.size(); ++gi) {
      grid.push_back({si, gi});
    }
  }

  struct CellResult {
    double measured = 0.0;
    double modeled = 0.0;
  };
  const std::vector<CellResult> results = runtime::sweep(
      grid,
      [&](const Cell& cell) {
        const int g = gpu_counts[cell.gi];
        const Topology topo = mach.topology(mach.nodes_for_gpus(g));
        const sparse::RowPartition part =
            sparse::RowPartition::contiguous(matrix.rows(), g);
        const CommPattern pattern =
            sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);
        const CommPlan plan =
            build_plan(pattern, topo, params, strategies[cell.si]);
        CellResult r;
        r.measured = measure(plan, topo, params, mopts).max_avg;
        r.modeled = models::predict(strategies[cell.si],
                                    compute_stats(pattern, topo), params, topo);
        return r;
      },
      opts.sweep_options());

  for (std::size_t si = 0; si < strategies.size(); ++si) {
    Table table({"GPUs", "measured [s]", "modeled [s]", "model/measured"});
    for (std::size_t gi = 0; gi < gpu_counts.size(); ++gi) {
      const CellResult& r = results[si * gpu_counts.size() + gi];
      table.add_row({std::to_string(gpu_counts[gi]), Table::sci(r.measured),
                     Table::sci(r.modeled),
                     Table::num(r.measured > 0 ? r.modeled / r.measured : 0, 2)});
    }
    opts.emit(table, "Figure 4.2 -- " + strategies[si].name());
  }
  return 0;
}
