// Figure 4.3: modeled time for one node sending 32 or 256 inter-node
// messages (distributed evenly across its GPUs) to 4 or 16 destination
// nodes, over a message-size sweep, for every Table 5 strategy plus the
// 2-Step best case ("2-Step 1"), with and without removing 25 % duplicate
// data.  The minimum strategy per size is marked (the paper's bold lines),
// excluding 2-Step 1 as the paper does.

#include <iostream>

#include "bench_common.hpp"
#include "core/models/scenario.hpp"
#include "core/models/strategy_models.hpp"
#include "machine/machine.hpp"
#include "runtime/sweep.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

namespace {

struct Curve {
  std::string name;
  StrategyConfig config;
  bool single_active_gpu = false;  // the 2-Step 1 variant
  bool eligible_for_min = true;
};

std::vector<Curve> curves() {
  std::vector<Curve> out;
  for (const StrategyConfig& cfg : table5_strategies()) {
    out.push_back({cfg.name(), cfg, false, true});
  }
  out.push_back({"2-step 1 (staged)",
                 {StrategyKind::TwoStep, MemSpace::Host}, true, false});
  out.push_back({"2-step 1 (device-aware)",
                 {StrategyKind::TwoStep, MemSpace::Device}, true, false});
  return out;
}

// One (dest nodes x messages x duplicate removal) block of the figure.
struct Block {
  int nodes = 0;
  int messages = 0;
  double dup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const Topology topo = mach.topology(17);  // 1 sender + 16 receivers

  const std::vector<long long> sizes =
      opts.quick ? pow2_sizes(16, 1 << 16) : pow2_sizes(1, 1 << 20);
  const std::vector<Curve> cs = curves();

  std::vector<Block> blocks;
  for (const int nodes : {4, 16}) {
    for (const int messages : {32, 256}) {
      for (const double dup : {0.0, 0.25}) {
        blocks.push_back({nodes, messages, dup});
      }
    }
  }

  // Each sweep cell evaluates one whole block (all sizes x curves) and
  // returns its table rows; blocks are emitted afterwards in grid order.
  using Rows = std::vector<std::vector<std::string>>;
  const std::vector<Rows> block_rows = runtime::sweep(
      blocks,
      [&](const Block& block) {
        models::PredictOptions popts;
        popts.duplicate_fraction = block.dup;
        Rows rows;
        for (const long long size : sizes) {
          std::vector<std::string> row{Table::bytes(size)};
          double best = 1e99;
          std::string best_name = "?";
          for (const Curve& c : cs) {
            models::Scenario sc;
            sc.num_dest_nodes = block.nodes;
            sc.num_messages = block.messages;
            sc.msg_bytes = size;
            sc.single_active_gpu = c.single_active_gpu;
            const PatternStats st = models::scenario_stats(topo, sc);
            const double t = models::predict(c.config, st, params, topo, popts);
            row.push_back(Table::sci(t));
            if (c.eligible_for_min && t < best) {
              best = t;
              best_name = c.name;
            }
          }
          row.push_back(best_name);
          rows.push_back(std::move(row));
        }
        return rows;
      },
      opts.sweep_options());

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    std::vector<std::string> headers{"size"};
    for (const Curve& c : cs) headers.push_back(c.name + " [s]");
    headers.push_back("min (excl. 2-step 1)");
    Table table(std::move(headers));
    for (const std::vector<std::string>& row : block_rows[bi]) {
      table.add_row(row);
    }
    const Block& b = blocks[bi];
    opts.emit(table, "Figure 4.3 -- " + std::to_string(b.nodes) +
                         " dest nodes, " + std::to_string(b.messages) +
                         " messages" +
                         (b.dup > 0 ? ", 25% duplicate data removed" : ""));
  }
  return 0;
}
