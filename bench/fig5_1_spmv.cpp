// Figure 5.1: measured irregular point-to-point communication time of a
// distributed SpMV for the six SuiteSparse stand-in matrices, every Table 5
// strategy, over each matrix's GPU-count sweep.  Prints per matrix the GPU
// count, the max number of receive nodes of any node (Recv Nodes), the
// standard-communication inter-node message volume, and the minimum
// strategy (the paper's circles).
//
// Expected shape (paper §5.1): staged strategies beat device-aware ones;
// "Split + MD" is typically fastest, except for small GPU counts or low
// inter-node message counts where standard staged wins; "Split + DD" is
// consistently worse than "Split + MD".

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "runtime/sweep.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const double scale = opts.quick ? 0.004 : 0.015;
  // Volume-preserving scaling: the stand-in has scale*n rows for
  // tractability; multiplying the per-value payload by 1/scale restores the
  // full-size matrix's per-partition communication volumes (node fan-out is
  // already preserved because the band is a fraction of n).
  const std::int64_t bytes_per_value = std::llround(8.0 / scale);

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 15);
  mopts.seed = opts.seed;
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const std::vector<StrategyConfig> strategies = table5_strategies();

  int split_md_wins = 0;
  int total_points = 0;

  for (const sparse::MatrixProfile& profile : sparse::figure51_profiles()) {
    const sparse::CsrMatrix matrix =
        sparse::generate_standin(profile, scale, 11);

    std::vector<std::string> headers{"strategy"};
    std::vector<int> gpu_counts = profile.gpu_counts;
    if (opts.quick && gpu_counts.size() > 2) {
      gpu_counts = {gpu_counts.front(), gpu_counts.back()};
    }
    for (const int g : gpu_counts) {
      headers.push_back(std::to_string(g) + " GPUs [s]");
    }
    Table table(std::move(headers));

    // Grid: strategy x GPU count, fanned across the sweep pool.  The first
    // strategy's cells additionally collect the pattern statistics footer.
    struct Cell {
      std::size_t si = 0;
      std::size_t gi = 0;
    };
    std::vector<Cell> grid;
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      for (std::size_t gi = 0; gi < gpu_counts.size(); ++gi) {
        grid.push_back({si, gi});
      }
    }

    std::vector<std::string> footer(gpu_counts.size());
    struct CellResult {
      double seconds = 0.0;
    };
    const std::vector<CellResult> results = runtime::sweep(
        grid,
        [&](const Cell& cell) {
          const int g = gpu_counts[cell.gi];
          const Topology topo = mach.topology(mach.nodes_for_gpus(g));
          const sparse::RowPartition part =
              sparse::RowPartition::contiguous(matrix.rows(), g);
          const CommPattern pattern =
              sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);
          const CommPlan plan =
              build_plan(pattern, topo, params, strategies[cell.si]);
          CellResult r;
          r.seconds = measure(plan, topo, params, mopts).max_avg;
          if (cell.si == 0) {  // pattern statistics, once per GPU count
            const PatternStats st = compute_stats(pattern, topo);
            footer[cell.gi] =
                std::to_string(g) + " GPUs: Recv Nodes=" +
                std::to_string(st.num_internode_nodes) + ", volume=" +
                Table::bytes(st.total_internode_bytes) + ", msgs=" +
                std::to_string(st.total_internode_messages);
          }
          return r;
        },
        opts.sweep_options());

    std::vector<double> best(gpu_counts.size(), 1e99);
    std::vector<std::string> best_name(gpu_counts.size());
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      std::vector<std::string> row{strategies[si].name()};
      for (std::size_t gi = 0; gi < gpu_counts.size(); ++gi) {
        const double t = results[si * gpu_counts.size() + gi].seconds;
        row.push_back(Table::sci(t));
        if (t < best[gi]) {
          best[gi] = t;
          best_name[gi] = strategies[si].name();
        }
      }
      table.add_row(std::move(row));
    }

    opts.emit(table, "Figure 5.1 -- " + profile.name + " (stand-in, scale " +
                         Table::num(scale, 3) + ")");
    for (const std::string& f : footer) std::cout << "  " << f << "\n";
    std::cout << "  minimum: ";
    for (std::size_t gi = 0; gi < gpu_counts.size(); ++gi) {
      std::cout << gpu_counts[gi] << " GPUs -> " << best_name[gi] << "   ";
      ++total_points;
      if (best_name[gi] == "split+MD") ++split_md_wins;
    }
    std::cout << "\n";
  }

  std::cout << "\nSplit+MD is the fastest strategy at " << split_md_wins
            << "/" << total_points
            << " sweep points (the paper: 'typically the fastest').\n";
  return 0;
}
