// Extension (paper §6): strategy predictions on future-machine presets.
// Frontier-like (single socket, 64 cores, ~4x injection bandwidth) and
// Delta-like (dual 64-core sockets, PCIe GPUs).  The paper conjectures that
// split strategies "will likely be the most efficient communication
// techniques to take advantage of the high bandwidth interconnects", with
// the caveat that distributing across more cores could pose constraints.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/models/scenario.hpp"
#include "core/models/strategy_models.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "runtime/sweep.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

namespace {

const std::vector<StrategyKind> kKinds = {
    StrategyKind::Standard, StrategyKind::ThreeStep, StrategyKind::TwoStep,
    StrategyKind::SplitMD, StrategyKind::SplitDD};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);

  // Machine descriptions are data now: the same rows could be loaded from
  // machines/*.json without recompiling this driver.
  const std::vector<machine::MachineModel> machines = {
      machine::lassen_machine(),
      machine::frontier_machine(),
      machine::delta_machine(),
      machine::nvisland_machine(),
  };
  const std::vector<long long> sizes =
      opts.quick ? pow2_sizes(64, 1 << 14) : pow2_sizes(16, 1 << 18);

  // ---- Modeled Figure 4.3-style scenario on each machine. ----
  // One sweep cell per machine, producing that machine's table rows.
  using Rows = std::vector<std::vector<std::string>>;
  const std::vector<Rows> modeled = runtime::sweep(
      machines,
      [&](const machine::MachineModel& mc) {
        const Topology topo = mc.topology(17);

        models::Scenario sc;
        sc.num_dest_nodes = 16;
        sc.num_messages = 256;

        Rows rows;
        for (const long long size : sizes) {
          sc.msg_bytes = size;
          const PatternStats st = models::scenario_stats(topo, sc);
          std::vector<std::string> row{Table::bytes(size)};
          double best = 1e99;
          std::string best_name;
          for (const StrategyKind kind : kKinds) {
            const StrategyConfig cfg{kind, MemSpace::Host};
            const double t = models::predict(cfg, st, mc.params, topo);
            row.push_back(Table::sci(t));
            if (t < best) {
              best = t;
              best_name = to_string(kind);
            }
          }
          row.push_back(best_name);
          rows.push_back(std::move(row));
        }
        return rows;
      },
      opts.sweep_options());

  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    Table table({"size", "standard (staged)", "3-step (staged)",
                 "2-step (staged)", "split+MD", "split+DD", "min"});
    for (const std::vector<std::string>& row : modeled[mi]) table.add_row(row);
    opts.emit(table, "Future machines (modeled) -- " + machines[mi].name +
                         ", 256 msgs to 16 nodes, staged strategies");
  }

  // ---- Measured SpMV communication on each machine. ----
  const double scale = opts.quick ? 0.003 : 0.008;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), scale, 31);
  // Volume-preserving scaling: the stand-in has scale*n rows for
  // tractability; multiplying the per-value payload by 1/scale restores the
  // full-size matrix's per-partition communication volumes (node fan-out is
  // already preserved because the band is a fraction of n).
  const std::int64_t bytes_per_value = std::llround(8.0 / scale);
  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.seed = opts.seed;
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  // Grid: machine x strategy, measured cells fanned across the pool.
  struct Cell {
    std::size_t mi = 0;
    std::size_t ki = 0;
  };
  std::vector<Cell> grid;
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    for (std::size_t ki = 0; ki < kKinds.size(); ++ki) grid.push_back({mi, ki});
  }
  const std::vector<double> measured = runtime::sweep(
      grid,
      [&](const Cell& cell) {
        const machine::MachineModel& mc = machines[cell.mi];
        const Topology topo = mc.topology(16);
        const sparse::RowPartition part =
            sparse::RowPartition::contiguous(matrix.rows(), topo.num_gpus());
        const CommPattern pattern =
            sparse::spmv_comm_pattern(matrix, part, topo, bytes_per_value);
        const CommPlan plan = build_plan(pattern, topo, mc.params,
                                         {kKinds[cell.ki], MemSpace::Host});
        return measure(plan, topo, mc.params, mopts).max_avg;
      },
      opts.sweep_options());

  Table table({"machine", "standard", "3-step", "2-step", "split+MD",
               "split+DD", "min"});
  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    std::vector<std::string> row{machines[mi].name};
    double best = 1e99;
    std::string best_name;
    for (std::size_t ki = 0; ki < kKinds.size(); ++ki) {
      const double t = measured[mi * kKinds.size() + ki];
      row.push_back(Table::sci(t));
      if (t < best) {
        best = t;
        best_name = to_string(kKinds[ki]);
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  opts.emit(table, "Future machines (measured) -- audikw_1 stand-in SpMV, "
                   "16 nodes, staged strategies");
  return 0;
}
