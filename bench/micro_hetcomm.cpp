// google-benchmark micro-benchmarks for the library's own hot paths:
// discrete-event engine throughput, pattern extraction, plan construction,
// and model evaluation.  These guard the simulator's performance, not the
// paper's results.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "benchutil/artifact_stamp.hpp"
#include "benchutil/bench_options.hpp"
#include "core/compiled_plan.hpp"
#include "core/executor.hpp"
#include "core/models/strategy_models.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/generators.hpp"
#include "sparse/suitesparse_profiles.hpp"

namespace {

using namespace hetcomm;
using namespace hetcomm::core;

void BM_EngineMessageThroughput(benchmark::State& state) {
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(4);
  const ParamSet& params = mach.params;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine(topo, params, NoiseModel(1, 0.0));
    for (int i = 0; i < n; ++i) {
      const int src = i % topo.num_ranks();
      const int dst = (i * 7 + 1) % topo.num_ranks();
      if (src == dst) continue;
      engine.isend(src, dst, 4096, i, MemSpace::Host);
      engine.irecv(dst, src, 4096, i, MemSpace::Host);
    }
    engine.resolve();
    benchmark::DoNotOptimize(engine.max_clock());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineMessageThroughput)->Arg(1000)->Arg(10000);

void BM_SpmvPatternExtraction(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const sparse::CsrMatrix m = sparse::banded_fem(n, n / 50, 16, 3, false);
  const sparse::RowPartition part = sparse::RowPartition::contiguous(n, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::spmv_comm_pattern(m, part));
  }
}
BENCHMARK(BM_SpmvPatternExtraction)->Arg(10000)->Arg(100000);

void BM_PlanConstruction(benchmark::State& state) {
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(8);
  const ParamSet& params = mach.params;
  const CommPattern pattern = random_pattern(topo, 16, 8192, 5);
  const StrategyConfig cfg{static_cast<StrategyKind>(state.range(0)),
                           MemSpace::Host};
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_plan(pattern, topo, params, cfg));
  }
}
BENCHMARK(BM_PlanConstruction)
    ->Arg(static_cast<int>(StrategyKind::Standard))
    ->Arg(static_cast<int>(StrategyKind::ThreeStep))
    ->Arg(static_cast<int>(StrategyKind::TwoStep))
    ->Arg(static_cast<int>(StrategyKind::SplitMD))
    ->Arg(static_cast<int>(StrategyKind::SplitDD));

void BM_ModelEvaluation(benchmark::State& state) {
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(8);
  const ParamSet& params = mach.params;
  const CommPattern pattern = random_pattern(topo, 16, 8192, 5);
  const PatternStats st = compute_stats(pattern, topo);
  for (auto _ : state) {
    for (const StrategyConfig& cfg : table5_strategies()) {
      benchmark::DoNotOptimize(models::predict(cfg, st, params, topo));
    }
  }
}
BENCHMARK(BM_ModelEvaluation);

void BM_MeasureFullStrategy(benchmark::State& state) {
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(4);
  const ParamSet& params = mach.params;
  const CommPattern pattern = random_pattern(topo, 32, 4096, 9);
  const CommPlan plan = build_plan(pattern, topo, params,
                                   {StrategyKind::SplitMD, MemSpace::Host});
  for (auto _ : state) {
    Engine engine(topo, params, NoiseModel(1, 0.0));
    benchmark::DoNotOptimize(run_plan(engine, plan));
  }
}
BENCHMARK(BM_MeasureFullStrategy);

// ---- DES sweep-runtime throughput (the ISSUE-1 refactor's payoff) -------
//
// Fixed workload: the audikw_1 stand-in SpMV plan on a 4-node Lassen
// (the Figure 4.2 validation point), split+MD.  Tracked in BENCH JSON as
// reps/sec so regressions in the sweep runtime show up over time.

struct AudikwFixture {
  machine::MachineModel mach = machine::lassen_machine();
  Topology topo = mach.topology(4);
  ParamSet params = mach.params;
  CommPlan plan;

  AudikwFixture() {
    const double scale = 0.005;
    const sparse::CsrMatrix matrix = sparse::generate_standin(
        sparse::profile_by_name("audikw_1"), scale, 7);
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(matrix.rows(), topo.num_gpus());
    const CommPattern pattern = sparse::spmv_comm_pattern(
        matrix, part, topo, static_cast<std::int64_t>(8.0 / scale));
    plan = build_plan(pattern, topo, params,
                      {StrategyKind::SplitMD, MemSpace::Host});
  }

  static const AudikwFixture& get() {
    static const AudikwFixture fixture;
    return fixture;
  }
};

// Old execution path: a freshly constructed engine for every repetition.
void BM_DesThroughputFreshEngine(benchmark::State& state) {
  const AudikwFixture& f = AudikwFixture::get();
  std::int64_t reps = 0;
  for (auto _ : state) {
    Engine engine(f.topo, f.params, NoiseModel(mix_seed(1, ++reps), 0.02));
    benchmark::DoNotOptimize(run_plan(engine, f.plan));
  }
  state.SetItemsProcessed(state.iterations());  // items = repetitions
}
BENCHMARK(BM_DesThroughputFreshEngine);

// Reuse path: one engine, reset(seed) between repetitions.
void BM_DesThroughputReusedEngine(benchmark::State& state) {
  const AudikwFixture& f = AudikwFixture::get();
  Engine engine(f.topo, f.params, NoiseModel(1, 0.02));
  std::int64_t reps = 0;
  for (auto _ : state) {
    engine.reset(mix_seed(1, ++reps));
    benchmark::DoNotOptimize(run_plan(engine, f.plan));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DesThroughputReusedEngine);

// Full measure() throughput at jobs in {1, 4, hardware}; Arg is the jobs
// value passed to MeasureOptions (0 = hardware concurrency).
void BM_DesThroughputMeasureJobs(benchmark::State& state) {
  const AudikwFixture& f = AudikwFixture::get();
  MeasureOptions mopts;
  mopts.reps = 32;
  mopts.noise_sigma = 0.02;
  mopts.jobs = static_cast<int>(state.range(0));
  int batch = 1;
  for (auto _ : state) {
    MeasureResult r = measure(f.plan, f.topo, f.params, mopts);
    batch = r.batch;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * mopts.reps);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_DesThroughputMeasureJobs)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- CompiledPlan fast path (the ISSUE-2 perf work) ---------------------
//
// Fixed workload: the audikw_1 stand-in SpMV plan at the fig5_1 scale
// (0.015, volume-preserving payload), 4-node Lassen, split+MD -- the plan
// the "compile once, simulate many" acceptance target is quoted against.
// The interpreted/compiled pair below is the A/B: identical clocks, only
// the per-repetition work differs.

struct Fig51Fixture {
  machine::MachineModel mach = machine::lassen_machine();
  Topology topo = mach.topology(4);
  ParamSet params = mach.params;
  CommPlan plan;

  Fig51Fixture() {
    const double scale = 0.015;
    const sparse::CsrMatrix matrix = sparse::generate_standin(
        sparse::profile_by_name("audikw_1"), scale, 11);
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(matrix.rows(), topo.num_gpus());
    const CommPattern pattern = sparse::spmv_comm_pattern(
        matrix, part, topo, std::llround(8.0 / scale));
    plan = build_plan(pattern, topo, params,
                      {StrategyKind::SplitMD, MemSpace::Host});
  }

  static const Fig51Fixture& get() {
    static const Fig51Fixture fixture;
    return fixture;
  }
};

// One-time compile cost: amortized away after a handful of repetitions.
void BM_CompilePlan(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompiledPlan(f.plan, f.topo, f.params));
  }
}
BENCHMARK(BM_CompilePlan);

// Interpreted repetition: reused engine, op-by-op isend/irecv + resolve().
void BM_RepInterpreted(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  Engine engine(f.topo, f.params, NoiseModel(1, 0.02));
  std::int64_t rep = 0;
  for (auto _ : state) {
    engine.reset(mix_seed(1, static_cast<std::uint64_t>(++rep)));
    benchmark::DoNotOptimize(run_plan(engine, f.plan));
  }
  state.SetItemsProcessed(state.iterations());  // items = repetitions
}
BENCHMARK(BM_RepInterpreted);

// Compiled repetition: reused engine, execute() on the precompiled plan.
// items_per_second(BM_RepCompiled) / items_per_second(BM_RepInterpreted)
// is the speedup quoted in docs/simulator.md.
void BM_RepCompiled(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  const CompiledPlan compiled(f.plan, f.topo, f.params);
  Engine engine(f.topo, f.params, NoiseModel(1, 0.02));
  std::int64_t rep = 0;
  for (auto _ : state) {
    engine.reset(mix_seed(1, static_cast<std::uint64_t>(++rep)));
    engine.execute(compiled);
    benchmark::DoNotOptimize(engine.max_clock());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepCompiled);

// Lane-batched repetition: execute_batch() runs Arg(0) repetitions in
// lockstep over the shared CompiledPlan.  Arg(1) is the serial A/B anchor;
// items are repetitions either way, so
// items_per_second(BM_RepBatched/16) / items_per_second(BM_RepCompiled)
// is the batching speedup quoted in docs/simulator.md.
void BM_RepBatched(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  const CompiledPlan compiled(f.plan, f.topo, f.params);
  Engine engine(f.topo, f.params, NoiseModel(1, 0.02));
  const int width = static_cast<int>(state.range(0));
  const std::size_t num_ranks =
      static_cast<std::size_t>(f.topo.num_ranks());
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(width));
  std::vector<double> clocks(static_cast<std::size_t>(width) * num_ranks);
  std::int64_t block = 0;
  for (auto _ : state) {
    for (int l = 0; l < width; ++l) {
      seeds[static_cast<std::size_t>(l)] = mix_seed(
          1, static_cast<std::uint64_t>(block) *
                     static_cast<std::uint64_t>(width) +
                 static_cast<std::uint64_t>(l));
    }
    ++block;
    engine.execute_batch(compiled, seeds, clocks);
    benchmark::DoNotOptimize(clocks.data());
  }
  state.SetItemsProcessed(state.iterations() * width);
  state.counters["batch"] = static_cast<double>(width);
}
BENCHMARK(BM_RepBatched)->Arg(1)->Arg(4)->Arg(16);

// End-to-end measure() in both modes (compile cost included for Compiled).
void BM_MeasureEngineMode(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  MeasureOptions mopts;
  mopts.reps = 32;
  mopts.noise_sigma = 0.02;
  mopts.jobs = 1;
  mopts.engine = state.range(0) == 0 ? ExecMode::Compiled
                                     : ExecMode::Interpreted;
  int batch = 1;
  for (auto _ : state) {
    MeasureResult r = measure(f.plan, f.topo, f.params, mopts);
    batch = r.batch;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * mopts.reps);
  state.counters["batch"] = static_cast<double>(batch);
  state.SetLabel(to_string(mopts.engine));
}
BENCHMARK(BM_MeasureEngineMode)
    ->Arg(0)   // compiled
    ->Arg(1)   // interpreted
    ->Unit(benchmark::kMillisecond);

// Observability overhead A/B: measure() with metrics collection off vs on
// (compiled path, jobs=1).  The enabled-overhead budget is <2%.
void BM_MeasureMetricsOverhead(benchmark::State& state) {
  const Fig51Fixture& f = Fig51Fixture::get();
  MeasureOptions mopts;
  mopts.reps = 32;
  mopts.noise_sigma = 0.02;
  mopts.jobs = 1;
  mopts.collect_metrics = state.range(0) != 0;
  int batch = 1;
  for (auto _ : state) {
    MeasureResult r = measure(f.plan, f.topo, f.params, mopts);
    batch = r.batch;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * mopts.reps);
  state.counters["batch"] = static_cast<double>(batch);
  state.SetLabel(mopts.collect_metrics ? "metrics-on" : "metrics-off");
}
BENCHMARK(BM_MeasureMetricsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Run the fig5_1-scale fixture once with metrics collection and write the
// hetcomm.metrics.v1 report (both engine modes, so the file also documents
// their equivalence).  Used by CI's perf-smoke step.
int write_metrics_report(const std::string& path) {
  const Fig51Fixture& f = Fig51Fixture::get();
  std::vector<obs::RunReport> reports;
  for (const ExecMode mode : {ExecMode::Compiled, ExecMode::Interpreted}) {
    MeasureOptions mopts;
    mopts.reps = 32;
    mopts.noise_sigma = 0.02;
    mopts.jobs = 0;  // hardware concurrency; simulated metrics are invariant
    mopts.engine = mode;
    mopts.collect_metrics = true;
    MeasureResult result = measure(f.plan, f.topo, f.params, mopts);
    result.metrics->name = std::string("fig5_1_audikw_split_md/") +
                           to_string(mode);
    reports.push_back(std::move(*result.metrics));
  }
  try {
    benchutil::write_metrics_file(path, reports);
  } catch (const std::exception& e) {
    std::cerr << "micro_hetcomm: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

// Re-open the google-benchmark JSON after the run and inject the
// provenance stamp as a top-level "hetcomm_stamp" member, so
// tools/bench_trend.py can attribute every number to a commit/host.
// Failures warn rather than fail: the benchmark results themselves are
// already on disk.
void stamp_bench_json(const std::string& path) {
  using hetcomm::obs::JsonValue;
  try {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc = JsonValue::parse(text);
    doc.set("hetcomm_stamp",
            hetcomm::benchutil::artifact_stamp(/*jobs=*/0, /*batch=*/0));
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    doc.dump(out);
  } catch (const std::exception& e) {
    std::cerr << "micro_hetcomm: could not stamp " << path << ": " << e.what()
              << "\n";
  }
}

}  // namespace

// BENCHMARK_MAIN() plus two CI spellings: `--json FILE` expands into
// google-benchmark's --benchmark_out/--benchmark_out_format pair (so the
// perf-smoke step can upload BENCH_micro_hetcomm.json without hard-coding
// benchmark library flag names in the workflow; the file is stamped with
// hetcomm.bench_stamp.v1 provenance after the run), and `--metrics FILE`
// writes a hetcomm.metrics.v1 run report for the fig5_1-scale fixture
// before the benchmarks run.
int main(int argc, char** argv) {
  std::vector<std::string> expanded;
  expanded.reserve(static_cast<std::size_t>(argc) + 1);
  expanded.emplace_back(argv[0]);
  std::string metrics_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "micro_hetcomm: --json needs a file path\n";
        return 2;
      }
      json_path = argv[++i];
      expanded.push_back("--benchmark_out=" + json_path);
      expanded.emplace_back("--benchmark_out_format=json");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::cerr << "micro_hetcomm: --metrics needs a file path\n";
        return 2;
      }
      metrics_path = argv[++i];
    } else {
      expanded.emplace_back(argv[i]);
    }
  }
  if (!metrics_path.empty()) {
    const int rc = write_metrics_report(metrics_path);
    if (rc != 0) return rc;
  }
  std::vector<char*> args;
  args.reserve(expanded.size());
  for (std::string& s : expanded) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) stamp_bench_json(json_path);
  return 0;
}
