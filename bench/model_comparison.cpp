// Model family comparison (paper §2.2): how well do postal, max-rate, and
// LogGP predict simulated node-to-node exchanges as the number of active
// processes grows?  The paper's argument for max-rate is that ping-pong
// derived postal parameters miss injection limits; this bench quantifies
// exactly that failure mode.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "benchutil/pingpong.hpp"
#include "core/models/submodels.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(2);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 10 : 100);
  mopts.noise_sigma = 0.01;

  const std::int64_t per_proc = 1 << 20;  // rendezvous regime
  const PostalParams& pp = params.messages.get(
      MemSpace::Host, Protocol::Rendezvous, PathClass::OffNode);

  Table table({"active ppn", "simulated [s]", "postal [s]", "LogGP [s]",
               "max-rate [s]", "postal err", "max-rate err"});
  double worst_postal = 0.0, worst_maxrate = 0.0;
  for (const int ppn : {1, 2, 4, 8, 16, 32, 40}) {
    const double simulated =
        node_pong(topo, params, 0, 1, ppn, per_proc, MemSpace::Host, mopts);
    // Postal & LogGP: per-process view, blind to the shared NIC.
    const double postal = core::models::postal(pp, per_proc);
    const double loggp = core::models::loggp(pp, per_proc);
    // Max-rate: accounts for the node's aggregate injection.
    const double maxrate = core::models::max_rate(
        params, MemSpace::Host, 1, per_proc,
        static_cast<std::int64_t>(ppn) * per_proc, per_proc);
    const double postal_err = std::abs(postal - simulated) / simulated;
    const double maxrate_err = std::abs(maxrate - simulated) / simulated;
    worst_postal = std::max(worst_postal, postal_err);
    worst_maxrate = std::max(worst_maxrate, maxrate_err);
    table.add_row({std::to_string(ppn), Table::sci(simulated),
                   Table::sci(postal), Table::sci(loggp), Table::sci(maxrate),
                   Table::num(100 * postal_err, 1) + "%",
                   Table::num(100 * maxrate_err, 1) + "%"});
  }
  opts.emit(table, "Model comparison -- node-to-node, " +
                       Table::bytes(per_proc) + " per process");
  std::cout << "\nWorst-case error: postal/LogGP "
            << Table::num(100 * worst_postal, 1) << "%, max-rate "
            << Table::num(100 * worst_maxrate, 1)
            << "% -- the postal model misses the injection limit entirely\n"
               "once several processes share the NIC (the paper's case for\n"
               "the max-rate model, 'is it time to retire the ping pong\n"
               "test').\n";
  return 0;
}
