// Diagnostic report: where does each strategy spend its time?
//
// Attributes the makespan of every strategy to its phases (copies, local
// exchange, gather/scatter, inter-node, redistribution) on a common SpMV
// workload -- the per-phase view behind the paper's modeling decisions
// (e.g. why Split+DD loses on copies and 3-step pays for gathering).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/neighborhood.hpp"
#include "machine/machine.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts =
      BenchOptions::parse(argc, argv, /*metrics_supported=*/true);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const int gpus = opts.quick ? 32 : 128;
  const Topology topo = mach.topology(mach.nodes_for_gpus(gpus));

  const double scale = opts.quick ? 0.004 : 0.01;
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), scale, 19);
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), gpus);
  const CommPattern pattern = sparse::spmv_comm_pattern(
      matrix, part, topo, static_cast<std::int64_t>(std::llround(8.0 / scale)));

  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;
  mopts.jobs = opts.jobs;
  mopts.collect_metrics = opts.wants_metrics();

  std::vector<obs::RunReport> reports;
  for (const StrategyConfig& cfg : table5_strategies()) {
    const CommPlan plan = build_plan(pattern, topo, params, cfg);
    const std::vector<PhaseCost> costs =
        report_phases(plan, topo, params, mopts);
    Table table({"phase", "time [s]", "share"});
    double total = 0.0;
    for (const PhaseCost& c : costs) {
      table.add_row({c.label, Table::sci(c.seconds),
                     Table::num(100.0 * c.fraction, 1) + "%"});
      total += c.seconds;
    }
    table.add_row({"total", Table::sci(total), "100%"});
    opts.emit(table, "Phase breakdown -- " + cfg.name());

    if (opts.wants_metrics()) {
      MeasureResult mr = measure(plan, topo, params, mopts);
      mr.metrics->name = cfg.name();
      reports.push_back(std::move(*mr.metrics));
    }
  }
  if (opts.wants_metrics()) write_metrics_file(opts.metrics_path, reports);
  return 0;
}
