// Extension: weak-scaling study.
//
// Fixed per-GPU subdomain (rows per GPU constant), node count scaling
// 2 -> 32: how does each strategy's communication time grow, and when does
// the ranking flip?  The classic way an application team would read the
// paper's results.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "machine/machine.hpp"
#include "runtime/sweep.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/generators.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;

  const std::int64_t rows_per_gpu = opts.quick ? 400 : 800;
  MeasureOptions mopts;
  mopts.reps = opts.reps > 0 ? opts.reps : (opts.quick ? 3 : 10);
  mopts.seed = opts.seed;
  mopts.noise_sigma = 0.02;
  mopts.engine = opts.engine;
  mopts.batch = opts.batch;

  const std::vector<int> node_counts =
      opts.quick ? std::vector<int>{2, 8, 32} : std::vector<int>{2, 4, 8, 16, 32};
  const std::vector<StrategyKind> kinds = {
      StrategyKind::Standard, StrategyKind::ThreeStep, StrategyKind::TwoStep,
      StrategyKind::SplitMD};

  // One sweep cell per node count: matrix generation, pattern extraction
  // and all four strategy measurements for that machine size.
  struct RowResult {
    int gpus = 0;
    std::int64_t inter_msgs = 0;
    std::vector<double> times;
  };
  const std::vector<RowResult> rows = runtime::sweep(
      node_counts,
      [&](const int nodes) {
        const Topology topo = mach.topology(nodes);
        const int gpus = topo.num_gpus();
        const std::int64_t n = rows_per_gpu * gpus;
        // Fixed-width band (constant per-GPU halo) plus an arrow head whose
        // couplings span the whole matrix: the head's fan-out grows with the
        // machine, like the boundary/interface rows of real FEM systems.
        const sparse::CsrMatrix band =
            sparse::banded_fem(n, rows_per_gpu * 3, 10, 71, /*with_values=*/false);
        const sparse::CsrMatrix m =
            sparse::with_arrow(band, /*head=*/rows_per_gpu / 2,
                               /*arrow_degree=*/24, 72);
        const sparse::RowPartition part =
            sparse::RowPartition::contiguous(n, gpus);
        const CommPattern pattern = sparse::spmv_comm_pattern(m, part, topo, 800);
        RowResult r;
        r.gpus = gpus;
        r.inter_msgs = compute_stats(pattern, topo).total_internode_messages;
        for (const StrategyKind kind : kinds) {
          const CommPlan plan =
              build_plan(pattern, topo, params, {kind, MemSpace::Host});
          r.times.push_back(measure(plan, topo, params, mopts).max_avg);
        }
        return r;
      },
      opts.sweep_options());

  Table table({"nodes", "GPUs", "inter msgs", "standard [s]",
               "3-step [s]", "2-step [s]", "split+MD [s]", "min"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const RowResult& r = rows[i];
    std::vector<std::string> row{std::to_string(node_counts[i]),
                                 std::to_string(r.gpus),
                                 std::to_string(r.inter_msgs)};
    double best = 1e99;
    std::string best_name;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      row.push_back(Table::sci(r.times[k]));
      if (r.times[k] < best) {
        best = r.times[k];
        best_name = to_string(kinds[k]);
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  opts.emit(table, "Weak scaling -- fixed " + std::to_string(rows_per_gpu) +
                       " rows/GPU, staged strategies");
  std::cout << "\nReading: per-GPU work is constant, but the communication\n"
               "term grows with machine size; flat(ter) curves scale better.\n";
  return 0;
}
