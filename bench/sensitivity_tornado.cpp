// Sensitivity analysis: which machine parameters decide the strategy race?
//
// Scales each calibrated parameter x0.5 and x2.0 around the Lassen values
// and reports how the Split+MD : standard predicted-time ratio moves (a
// tornado study).  Identifies the hardware trends (paper §6) that most
// affect whether node-aware communication pays off.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "core/models/scenario.hpp"
#include "core/models/strategy_models.hpp"
#include "machine/machine.hpp"
#include "runtime/sweep.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;

namespace {

struct Knob {
  std::string name;
  std::function<void(ParamSet&, double)> scale;
};

std::vector<Knob> knobs() {
  auto scale_msgs = [](ParamSet& p, MemSpace space, bool alphas,
                       double factor) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      for (const PathClass path :
           {PathClass::OnSocket, PathClass::OnNode, PathClass::OffNode}) {
        PostalParams pp = p.messages.get(space, proto, path);
        (alphas ? pp.alpha : pp.beta) *= factor;
        p.messages.set(space, proto, path, pp);
      }
    }
  };
  return {
      {"CPU message latencies (all alpha)",
       [scale_msgs](ParamSet& p, double f) {
         scale_msgs(p, MemSpace::Host, true, f);
       }},
      {"CPU bandwidths (all beta)",
       [scale_msgs](ParamSet& p, double f) {
         scale_msgs(p, MemSpace::Host, false, f);
       }},
      {"GPU message latencies (all alpha)",
       [scale_msgs](ParamSet& p, double f) {
         scale_msgs(p, MemSpace::Device, true, f);
       }},
      {"NIC injection rate R_N",
       [](ParamSet& p, double f) {
         // Faster NIC = smaller inverse rate.
         p.injection.inv_rate_cpu /= f;
         p.injection.inv_rate_gpu /= f;
       }},
      {"copy latencies (Table 3 alpha)",
       [](ParamSet& p, double f) {
         p.copies.h2d_1proc.alpha *= f;
         p.copies.d2h_1proc.alpha *= f;
         p.copies.h2d_4proc.alpha *= f;
         p.copies.d2h_4proc.alpha *= f;
       }},
      {"copy bandwidths (Table 3 beta)",
       [](ParamSet& p, double f) {
         p.copies.h2d_1proc.beta *= f;
         p.copies.d2h_1proc.beta *= f;
         p.copies.h2d_4proc.beta *= f;
         p.copies.d2h_4proc.beta *= f;
       }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(17);

  models::Scenario sc;
  sc.num_dest_nodes = 16;
  sc.num_messages = 256;
  sc.msg_bytes = 2048;
  const PatternStats stats = models::scenario_stats(topo, sc);

  auto ratio_for = [&](const ParamSet& params) {
    const double split = models::predict(
        {StrategyKind::SplitMD, MemSpace::Host}, stats, params, topo);
    const double standard = models::predict(
        {StrategyKind::Standard, MemSpace::Host}, stats, params, topo);
    return split / standard;  // < 1 means split wins
  };

  const double base = ratio_for(mach.params);
  std::cout << "Scenario: 256 msgs x 2 KiB to 16 nodes.  split+MD/standard\n"
            << "predicted-time ratio at calibrated Lassen parameters: "
            << Table::num(base, 3) << " (<1 means split wins)\n";

  // One sweep cell per knob; rows assemble in knob (grid) order.
  const std::vector<Knob> ks = knobs();
  struct Swing {
    double lo = 0.0;
    double hi = 0.0;
  };
  const std::vector<Swing> swings = runtime::sweep(
      ks,
      [&](const Knob& knob) {
        ParamSet lo = mach.params;
        knob.scale(lo, 0.5);
        ParamSet hi = mach.params;
        knob.scale(hi, 2.0);
        return Swing{ratio_for(lo), ratio_for(hi)};
      },
      opts.sweep_options());

  Table table({"parameter", "x0.5 ratio", "x2.0 ratio", "swing"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table.add_row({ks[i].name, Table::num(swings[i].lo, 3),
                   Table::num(swings[i].hi, 3),
                   Table::num(std::abs(swings[i].hi - swings[i].lo), 3)});
  }
  opts.emit(table, "Sensitivity tornado -- split+MD vs standard");
  std::cout << "\nReading: the ratio is most sensitive to CPU message\n"
               "latencies (split pays per-chunk alphas) and to the NIC\n"
               "injection rate (which split alone can saturate) -- exactly\n"
               "the two machine trends the paper's Section 6 calls out for\n"
               "future systems.\n";
  return 0;
}
