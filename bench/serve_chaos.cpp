// serve_chaos: chaos/soak harness for the `hetcomm serve` resilience
// layer (docs/serve.md "Resilience"; the machinery is serve/chaos.hpp).
//
// Drives a live serve::Service through a seeded adversarial schedule --
// a 4x-capacity request storm with ~10% malformed lines, deterministic
// FaultAbort patterns (--faults), randomized deadline mixes, slow /
// disconnecting / oversized socket clients, and a shutdown with queued
// requests -- and fails (exit 1) if any resilience invariant breaks:
// a lost or duplicated reply, unbalanced stats counters, a baseline
// reply that is not bit-identical to one-shot, or degraded answers
// disagreeing with the engine-measured winner on < 80% of the hot set.
//
// Full runs additionally gate post-storm throughput at >= 0.9x baseline
// (the ISSUE-10 acceptance bar); --duration-short skips that wall-clock
// gate so sanitizer CI jobs stay noise-proof.
//
// Flags (strict; unknown flags are hard errors):
//   --duration-short   small schedule for CI sanitizer jobs
//   --seed N           master schedule seed (default 1)
//   --requests N       steady-state requests per phase
//   --storm-factor N   storm size as a multiple of --max-queue (default 4)
//   --max-queue N      admission bound of the service under test
//   --shed-policy P    reject (default) | degrade
//   --faults FILE      hetcomm.fault.v1 plan for the FaultAbort slice
//                      (e.g. faults/flaky_abort.json)
//   --bad-dir DIR      mix in every file under DIR as a malformed line
//                      (newlines collapsed; e.g. tests/data/bad)
//   --no-socket        skip the unix-socket client phase
//   --json FILE        write the hetcomm.serve_chaos.v1 report ("-" = stdout)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/chaos.hpp"

namespace {

struct ChaosArgs {
  bool duration_short = false;
  bool no_socket = false;
  std::uint64_t seed = 1;
  int requests = -1;  ///< -1 = mode default
  int storm_factor = 4;
  int max_queue = -1;  ///< -1 = mode default
  std::string shed_policy = "reject";
  std::string faults_path;
  std::string bad_dir;
  std::string json_path;
};

constexpr const char* kUsage =
    "usage: serve_chaos [--duration-short] [--seed N] [--requests N]\n"
    "                   [--storm-factor N] [--max-queue N]\n"
    "                   [--shed-policy reject|degrade] [--faults FILE]\n"
    "                   [--bad-dir DIR] [--no-socket] [--json FILE]";

ChaosArgs parse_args(int argc, char** argv) {
  ChaosArgs args;
  const auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--duration-short") {
      args.duration_short = true;
    } else if (arg == "--no-socket") {
      args.no_socket = true;
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::stoull(value(i)));
    } else if (arg == "--requests") {
      args.requests = std::stoi(value(i));
      if (args.requests < 1) {
        throw std::invalid_argument("--requests must be >= 1");
      }
    } else if (arg == "--storm-factor") {
      args.storm_factor = std::stoi(value(i));
      if (args.storm_factor < 1) {
        throw std::invalid_argument("--storm-factor must be >= 1");
      }
    } else if (arg == "--max-queue") {
      args.max_queue = std::stoi(value(i));
      if (args.max_queue < 1) {
        throw std::invalid_argument("--max-queue must be >= 1");
      }
    } else if (arg == "--shed-policy") {
      args.shed_policy = value(i);
      if (args.shed_policy != "reject" && args.shed_policy != "degrade") {
        throw std::invalid_argument("--shed-policy must be reject|degrade");
      }
    } else if (arg == "--faults") {
      args.faults_path = value(i);
    } else if (arg == "--bad-dir") {
      args.bad_dir = value(i);
    } else if (arg == "--json") {
      args.json_path = value(i);
    } else if (arg == "--help") {
      std::cout << kUsage << "\n";
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag " + arg);
    }
  }
  return args;
}

/// Every file under `dir` flattened to one (malformed) request line.
std::vector<std::string> load_bad_corpus(const std::string& dir) {
  std::vector<std::string> lines;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic rotation order
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path.string());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string flat = buffer.str();
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    lines.push_back(std::move(flat));
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosArgs args;
  try {
    args = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "serve_chaos: " << e.what() << "\n" << kUsage << "\n";
    return 2;
  }

  try {
    hetcomm::serve::chaos::ChaosOptions opts;
    opts.seed = args.seed;
    opts.storm_factor = args.storm_factor;
    opts.requests = args.requests > 0 ? args.requests
                    : args.duration_short ? 32
                                          : 160;
    opts.max_queue = args.max_queue > 0 ? static_cast<std::size_t>(
                                              args.max_queue)
                     : args.duration_short ? 8
                                           : 16;
    opts.hot_patterns = args.duration_short ? 4 : 8;
    opts.shed_policy = args.shed_policy == "degrade"
                           ? hetcomm::serve::ShedPolicy::Degrade
                           : hetcomm::serve::ShedPolicy::Reject;
    opts.faults_path = args.faults_path;
    opts.socket_phase = !args.no_socket;
    if (!args.bad_dir.empty()) {
      opts.malformed_extra = load_bad_corpus(args.bad_dir);
    }

    const hetcomm::serve::chaos::ChaosReport report =
        hetcomm::serve::chaos::run_chaos(opts);

    std::cout << "serve_chaos: seed " << report.seed << ", "
              << report.sent_total << " lines sent, "
              << report.answered_total << " answered\n"
              << "  baseline " << report.qps_baseline << " qps, post-storm "
              << report.qps_post_storm << " qps (recovery "
              << report.recovery_ratio << "x)\n"
              << "  degraded agreement " << report.degraded_agreement
              << ", counters " << (report.counters_balanced ? "balanced" :
                                   "UNBALANCED")
              << ", mismatched replies " << report.mismatched_replies << "\n";
    for (const auto& code : report.reply_codes) {
      std::cout << "  error_code " << code.first << ": " << code.second
                << "\n";
    }

    bool failed = !report.passed();
    for (const std::string& v : report.violations) {
      std::cerr << "serve_chaos: VIOLATION: " << v << "\n";
    }
    if (!args.duration_short && report.recovery_ratio < 0.9) {
      std::cerr << "serve_chaos: VIOLATION: post-storm throughput "
                << report.recovery_ratio << "x baseline (< 0.9x)\n";
      failed = true;
    }
    if (!args.faults_path.empty()) {
      bool saw_abort = false;
      for (const auto& code : report.reply_codes) {
        if (code.first == "fault_abort" && code.second > 0) saw_abort = true;
      }
      if (!saw_abort) {
        std::cerr << "serve_chaos: VIOLATION: --faults given but no "
                     "fault_abort reply was observed\n";
        failed = true;
      }
    }

    if (!args.json_path.empty()) {
      const hetcomm::obs::JsonValue doc = report.to_json();
      if (args.json_path == "-") {
        doc.dump(std::cout);
        std::cout << "\n";
      } else {
        std::ofstream out(args.json_path);
        if (!out) throw std::runtime_error("cannot write " + args.json_path);
        doc.dump(out);
        out << "\n";
      }
    }
    if (failed) return 1;
  } catch (const std::exception& e) {
    std::cerr << "serve_chaos: " << e.what() << "\n";
    return 1;
  }
  std::cout << "serve_chaos: PASS\n";
  return 0;
}
