// serve_load: throughput A/B for the `hetcomm serve` plan cache.
//
// Drives the serve::Service in-process with a hot working set of queries
// (8 distinct (pattern, strategy) plans cycled across N requests) twice:
//
//   cold  -- cache_capacity 0: every query pays build_plan + CompiledPlan
//            construction, the one-shot baseline a cacheless server would be
//   warm  -- default cache geometry: the hot set compiles once, every later
//            query replays the cached plan
//
// Both runs answer the *same* request stream through the same batching
// window machinery, so the only variable is plan reuse.  CI gates on the
// artifact this writes: warm request hit-rate >= 0.9 and warm throughput
// >= 5x cold (see .github/workflows/ci.yml).
//
// Flags (strict; unknown flags are hard errors):
//   --quick        fewer queries (CI-friendly)
//   --queries N    request count (default 400, quick 120)
//   --reps N       repetitions per measured query (default 3)
//   --json FILE    write the hetcomm.serve_load.v1 artifact ("-" = stdout)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchutil/artifact_stamp.hpp"
#include "obs/json.hpp"
#include "serve/service.hpp"

namespace {

struct LoadOptions {
  bool quick = false;
  int queries = -1;  ///< -1 = default (400, or 120 with --quick)
  int reps = 1;
  std::string json_path;
};

constexpr const char* kUsage =
    "usage: serve_load [--quick] [--queries N] [--reps N] [--json FILE]";

LoadOptions parse_args(int argc, char** argv) {
  LoadOptions opts;
  const auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--queries") {
      opts.queries = std::stoi(value(i));
      if (opts.queries < 1) throw std::invalid_argument("--queries must be >= 1");
    } else if (arg == "--reps") {
      opts.reps = std::stoi(value(i));
      if (opts.reps < 1) throw std::invalid_argument("--reps must be >= 1");
    } else if (arg == "--json") {
      opts.json_path = value(i);
    } else if (arg == "--help") {
      std::cout << kUsage << "\n";
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag " + arg);
    }
  }
  if (opts.queries < 0) opts.queries = opts.quick ? 120 : 400;
  return opts;
}

/// The hot working set: 8 distinct plans (4 random patterns x 2 strategies)
/// cycled across the whole request stream.
constexpr int kHotPatterns = 4;
constexpr const char* kStrategies[] = {"split+MD", "split+DD"};
constexpr int kHotPlans =
    kHotPatterns * static_cast<int>(std::size(kStrategies));

std::string random_pattern_spec(int pattern) {
  return "{\"random\": {\"msgs_per_gpu\": 4, \"bytes\": 4096, \"seed\": " +
         std::to_string(pattern + 1) + "}}";
}

/// Prime lines register the hot patterns (predict-only, full ranking);
/// every later query addresses them by {"ref": hash} with "rank": false --
/// the steady-state shape of a measurement client.  The refs come from the
/// prime responses, so a priming pass runs before the timed stream.
std::vector<std::string> build_prime_requests() {
  std::vector<std::string> lines;
  for (int p = 0; p < kHotPatterns; ++p) {
    lines.push_back("{\"id\": \"prime-" + std::to_string(p) +
                    "\", \"machine\": \"lassen\", \"nodes\": 8, \"pattern\": " +
                    random_pattern_spec(p) + ", \"reps\": 0}");
  }
  return lines;
}

std::vector<std::string> build_requests(const LoadOptions& opts,
                                        const std::vector<std::string>& refs) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(opts.queries));
  for (int q = 0; q < opts.queries; ++q) {
    const int pattern = q % kHotPatterns;
    const char* strategy = kStrategies[(q / kHotPatterns) %
                                       std::size(kStrategies)];
    lines.push_back(
        std::string("{\"id\": ") + std::to_string(q) +
        ", \"machine\": \"lassen\", \"nodes\": 8"
        ", \"pattern\": {\"ref\": \"" + refs[static_cast<std::size_t>(pattern)] +
        "\"}"
        ", \"strategy\": \"" + strategy + "\""
        ", \"rank\": false"
        ", \"reps\": " + std::to_string(opts.reps) +
        ", \"seed\": " + std::to_string(q) + "}");
  }
  return lines;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  double request_hit_rate = 0.0;
  std::int64_t compiles = 0;
};

RunResult drive(const std::vector<std::string>& prime,
                const std::vector<std::string>& requests,
                std::size_t cache_capacity, int window) {
  hetcomm::serve::ServiceOptions options;
  options.cache_capacity = cache_capacity;
  options.window = window;
  hetcomm::serve::Service service(options);

  // Register the hot patterns (untimed; identical for both runs).
  for (const std::string& line : prime) {
    const hetcomm::obs::JsonValue doc =
        hetcomm::obs::JsonValue::parse(service.handle_line(line));
    if (!doc.at("ok").as_bool()) {
      throw std::runtime_error("serve_load prime failed: " +
                               doc.at("error").as_string());
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t answered = 0;
  for (std::size_t at = 0; at < requests.size();
       at += static_cast<std::size_t>(options.window)) {
    const std::size_t end =
        std::min(requests.size(), at + static_cast<std::size_t>(options.window));
    const std::vector<std::string> chunk(
        requests.begin() + static_cast<std::ptrdiff_t>(at),
        requests.begin() + static_cast<std::ptrdiff_t>(end));
    for (const std::string& reply : service.handle_window(chunk)) {
      const hetcomm::obs::JsonValue doc = hetcomm::obs::JsonValue::parse(reply);
      if (!doc.at("ok").as_bool()) {
        throw std::runtime_error("serve_load request failed: " +
                                 doc.at("error").as_string());
      }
      ++answered;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (answered != requests.size()) {
    throw std::runtime_error("serve_load: lost responses");
  }

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.qps = static_cast<double>(requests.size()) / r.seconds;
  const hetcomm::obs::JsonValue metrics = service.metrics_json();
  const hetcomm::obs::JsonValue& plan =
      metrics.at("serve").at("cache").at("plan");
  r.request_hit_rate = plan.at("request_hit_rate").as_double();
  r.compiles = plan.at("misses").as_int();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  try {
    opts = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "serve_load: " << e.what() << "\n" << kUsage << "\n";
    return 2;
  }

  try {
    const std::vector<std::string> prime = build_prime_requests();
    // Resolve the hot patterns' fingerprints once; pattern hashes are
    // stable, so any service instance reports the same refs.
    std::vector<std::string> refs;
    {
      hetcomm::serve::Service probe;
      for (const std::string& line : prime) {
        const hetcomm::obs::JsonValue doc =
            hetcomm::obs::JsonValue::parse(probe.handle_line(line));
        if (!doc.at("ok").as_bool()) {
          throw std::runtime_error("serve_load probe failed: " +
                                   doc.at("error").as_string());
        }
        refs.push_back(doc.at("pattern_hash").as_string());
      }
    }
    const std::vector<std::string> requests = build_requests(opts, refs);
    // Cold = the one-query-at-a-time, cacheless server a naive deployment
    // would run: window 1 (no within-window compile sharing, no lane
    // coalescing) and cache_capacity 0 (every query compiles).  Warm = the
    // shipped defaults.  Same request stream, same responses.
    const RunResult cold =
        drive(prime, requests, /*cache_capacity=*/0, /*window=*/1);
    const RunResult warm =
        drive(prime, requests, /*cache_capacity=*/256, /*window=*/64);
    const double speedup = warm.qps / cold.qps;

    std::cout << "serve_load: " << opts.queries << " queries, " << kHotPlans
              << " hot plans, reps " << opts.reps << "\n"
              << "  cold (no cache): " << cold.qps << " qps ("
              << cold.compiles << " compiles)\n"
              << "  warm (lru 256):  " << warm.qps << " qps ("
              << warm.compiles << " compiles, request hit-rate "
              << warm.request_hit_rate << ")\n"
              << "  speedup: " << speedup << "x\n";

    if (!opts.json_path.empty()) {
      using hetcomm::obs::JsonValue;
      JsonValue doc = JsonValue::object();
      doc.set("schema", "hetcomm.serve_load.v1");
      doc.set("hetcomm_stamp",
              hetcomm::benchutil::artifact_stamp(/*jobs=*/0, /*batch=*/0));
      doc.set("queries", opts.queries);
      doc.set("hot_plans", kHotPlans);
      doc.set("reps", opts.reps);
      JsonValue cold_j = JsonValue::object();
      cold_j.set("seconds", cold.seconds);
      cold_j.set("qps", cold.qps);
      cold_j.set("compiles", cold.compiles);
      doc.set("cold", std::move(cold_j));
      JsonValue warm_j = JsonValue::object();
      warm_j.set("seconds", warm.seconds);
      warm_j.set("qps", warm.qps);
      warm_j.set("compiles", warm.compiles);
      warm_j.set("request_hit_rate", warm.request_hit_rate);
      doc.set("warm", std::move(warm_j));
      doc.set("speedup", speedup);
      if (opts.json_path == "-") {
        doc.dump(std::cout);
      } else {
        std::ofstream out(opts.json_path);
        if (!out) {
          throw std::runtime_error("cannot write " + opts.json_path);
        }
        doc.dump(out);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "serve_load: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
