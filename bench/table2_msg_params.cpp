// Table 2: measured alpha/beta for inter-CPU and inter-GPU communication,
// per protocol (short/eager/rendezvous) and placement (on-socket/on-node/
// off-node), recovered with ping-pong sweeps + linear least squares --
// the same methodology the paper used via BenchPress.
//
// On the simulator this round-trips the calibration: the fitted values must
// match the injected Table 2 parameters, validating the measurement harness
// itself.  Pointed at real MPI, the identical code would measure real
// hardware.

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/lsq.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(2);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 20 : 1000);
  mopts.noise_sigma = 0.01;

  Table table({"space", "protocol", "path", "alpha fit [s]", "alpha ref [s]",
               "beta fit [s/B]", "beta ref [s/B]", "R^2"});

  for (const MemSpace space : {MemSpace::Host, MemSpace::Device}) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      const std::vector<std::int64_t> sizes =
          sizes_for_protocol(params.thresholds, space, proto);
      for (const PathClass path :
           {PathClass::OnSocket, PathClass::OnNode, PathClass::OffNode}) {
        const auto [a, b] = rank_pair_for(topo, path);
        const Sweep sweep =
            ping_pong_sweep(topo, params, a, b, sizes, space, mopts);
        const LinearFit fit = fit_linear(sweep.sizes, sweep.times);
        const PostalParams& ref = params.messages.get(space, proto, path);
        table.add_row({to_string(space), to_string(proto), to_string(path),
                       Table::sci(fit.intercept), Table::sci(ref.alpha),
                       Table::sci(fit.slope), Table::sci(ref.beta),
                       Table::num(fit.r_squared, 4)});
      }
    }
  }
  opts.emit(table, "Table 2 -- postal parameters via ping-pong + LSQ");
  return 0;
}
