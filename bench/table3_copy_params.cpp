// Table 3: cudaMemcpyAsync alpha/beta for one process and four processes
// (duplicate device pointers), both directions, recovered from timed copy
// sweeps + least squares, mirroring the paper's methodology.

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/lsq.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(1);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 20 : 1000);
  mopts.noise_sigma = 0.01;

  Table table({"procs", "dir", "alpha fit [s]", "alpha ref [s]",
               "beta fit [s/B]", "beta ref [s/B]", "R^2"});

  for (const int np : {1, 4}) {
    for (const CopyDir dir : {CopyDir::HostToDevice, CopyDir::DeviceToHost}) {
      std::vector<double> sizes, times;
      // Sweep per-process sizes so the fit recovers the per-share beta.
      for (long long per_proc = 4096; per_proc <= (8LL << 20); per_proc *= 2) {
        sizes.push_back(static_cast<double>(per_proc));
        times.push_back(
            copy_time(topo, params, 0, dir, per_proc * np, np, mopts));
      }
      const LinearFit fit = fit_linear(sizes, times);
      const PostalParams ref = copy_params_for(params.copies, dir, np);
      table.add_row({std::to_string(np), to_string(dir),
                     Table::sci(fit.intercept), Table::sci(ref.alpha),
                     Table::sci(fit.slope), Table::sci(ref.beta),
                     Table::num(fit.r_squared, 4)});
    }
  }
  opts.emit(table, "Table 3 -- cudaMemcpyAsync parameters via sweeps + LSQ");
  return 0;
}
