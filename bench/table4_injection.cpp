// Table 4: the NIC injection-bandwidth limit R_N^-1, recovered from
// node-pong saturation: with enough processes injecting simultaneously the
// per-node throughput plateaus at R_N, so time/byte over large aggregate
// volumes fits R_N^-1.

#include <iostream>

#include "bench_common.hpp"
#include "benchutil/lsq.hpp"
#include "benchutil/pingpong.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const Topology topo = mach.topology(2);
  const ParamSet& params = mach.params;

  MeasureOpts mopts;
  mopts.iterations = opts.reps > 0 ? opts.reps : (opts.quick ? 5 : 200);
  mopts.noise_sigma = 0.01;

  // Saturate with all 40 processes, sweep aggregate volume, fit T ~ V/R_N.
  const int ppn = topo.ppn();
  std::vector<double> volumes, times;
  Table sweep_table({"aggregate volume", "time [s]", "achieved [GB/s]"});
  for (long long total = 16LL << 20; total <= (512LL << 20); total *= 2) {
    const double t = node_pong(topo, params, 0, 1, ppn, total / ppn,
                               MemSpace::Host, mopts);
    volumes.push_back(static_cast<double>(total));
    times.push_back(t);
    sweep_table.add_row({Table::bytes(total), Table::sci(t),
                         Table::num(static_cast<double>(total) / t / 1e9, 2)});
  }
  opts.emit(sweep_table, "Table 4 -- node-pong saturation sweep (ppn=40)");

  const LinearFit fit = fit_linear(volumes, times);
  Table result({"quantity", "fit", "reference (Table 4)"});
  result.add_row({"R_N^-1 [s/B]", Table::sci(fit.slope),
                  Table::sci(params.injection.inv_rate_cpu)});
  result.add_row({"R_N [GB/s]", Table::num(1.0 / fit.slope / 1e9, 2),
                  Table::num(1.0 / params.injection.inv_rate_cpu / 1e9, 2)});
  opts.emit(result, "Table 4 -- injection-bandwidth limit");
  return 0;
}
