// Table 6: the full strategy models, rendered by decomposing each
// composition into its sub-model terms (T_off / T_on / T_on-split / T_copy)
// on a reference pattern, so every formula of the paper's Table 6 is
// visible as code-generated numbers.

#include <iostream>

#include "bench_common.hpp"
#include "core/models/scenario.hpp"
#include "core/models/strategy_models.hpp"
#include "core/models/submodels.hpp"
#include "machine/machine.hpp"

using namespace hetcomm;
using namespace hetcomm::benchutil;
using namespace hetcomm::core;
using namespace hetcomm::core::models;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const machine::MachineModel mach = machine::lassen_machine();
  const ParamSet& params = mach.params;
  const Topology topo = mach.topology(17);

  Scenario sc;
  sc.num_dest_nodes = 16;
  sc.num_messages = 256;
  sc.msg_bytes = 4096;
  const PatternStats st = scenario_stats(topo, sc);

  std::cout << "Reference pattern (Table 7 statistics):\n"
            << "  s_proc            = " << st.s_proc << " B\n"
            << "  s_node            = " << st.s_node << " B\n"
            << "  s_node->node      = " << st.s_node_node << " B\n"
            << "  m_proc            = " << st.m_proc << "\n"
            << "  m_proc->node      = " << st.m_proc_node << "\n"
            << "  m_node->node      = " << st.m_node_node << "\n"
            << "  destination nodes = " << st.num_internode_nodes << "\n";

  Table table({"strategy", "T_off [s]", "T_on [s]", "T_copy [s]", "total [s]"});

  // Sub-model decompositions matching Table 6 row by row.
  const double ton3 = 2.0 * t_on(params, topo, MemSpace::Host, st.s_node_node);
  const double ton3d = 2.0 * t_on(params, topo, MemSpace::Device,
                                  st.s_node_node);
  const double ton2 = t_on(params, topo, MemSpace::Host, st.s_proc);
  const double ton2d = t_on(params, topo, MemSpace::Device, st.s_proc);
  const double tonsplit1 =
      2.0 * t_on_split(params, topo, st.s_node, 1, st.active_internode_gpus);
  const double tonsplit4 =
      2.0 * t_on_split(params, topo, st.s_node, 4, st.active_internode_gpus);
  const double copy3 = t_copy(params, st.s_proc, st.s_node_node);

  auto total_of = [&](StrategyKind k, MemSpace sp) {
    return predict({k, sp}, st, params, topo);
  };

  table.add_row({"standard (staged, max-rate 2.2)",
                 Table::sci(max_rate(params, MemSpace::Host, st.m_proc,
                                     st.s_proc, st.s_node,
                                     st.typical_msg_bytes)),
                 "-", Table::sci(t_copy(params, st.s_proc, st.s_proc)),
                 Table::sci(total_of(StrategyKind::Standard, MemSpace::Host))});
  table.add_row({"standard (device, postal 2.1)",
                 Table::sci(t_off_da(params, st.m_proc, st.s_proc,
                                     st.typical_msg_bytes)),
                 "-", "-",
                 Table::sci(total_of(StrategyKind::Standard, MemSpace::Device))});
  table.add_row({"3-step (staged)",
                 Table::sci(t_off(params, st.m_node_node, st.s_node_node,
                                  st.s_node, st.s_node_node)),
                 Table::sci(ton3), Table::sci(copy3),
                 Table::sci(total_of(StrategyKind::ThreeStep, MemSpace::Host))});
  table.add_row({"3-step (device-aware)",
                 Table::sci(t_off_da(params, st.m_node_node, st.s_node_node,
                                     st.s_node_node)),
                 Table::sci(ton3d), "-",
                 Table::sci(total_of(StrategyKind::ThreeStep, MemSpace::Device))});
  table.add_row({"2-step (staged)",
                 Table::sci(t_off(params, st.m_proc_node, st.s_proc, st.s_node,
                                  st.s_proc / st.m_proc_node)),
                 Table::sci(ton2), Table::sci(copy3),
                 Table::sci(total_of(StrategyKind::TwoStep, MemSpace::Host))});
  table.add_row({"2-step (device-aware)",
                 Table::sci(t_off_da(params, st.m_proc_node, st.s_proc,
                                     st.s_proc / st.m_proc_node)),
                 Table::sci(ton2d), "-",
                 Table::sci(total_of(StrategyKind::TwoStep, MemSpace::Device))});
  table.add_row({"split+MD", "(see total)", Table::sci(tonsplit1),
                 Table::sci(copy3),
                 Table::sci(total_of(StrategyKind::SplitMD, MemSpace::Host))});
  table.add_row({"split+DD", "(see total)", Table::sci(tonsplit4),
                 "(per-chunk)",
                 Table::sci(total_of(StrategyKind::SplitDD, MemSpace::Host))});

  opts.emit(table, "Table 6 -- strategy model compositions");
  return 0;
}
