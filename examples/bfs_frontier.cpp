// Distributed BFS frontier exchange (the intro's second motivating domain:
// graph algorithms).
//
//   $ ./bfs_frontier [n_vertices] [num_gpus]
//
// Runs a level-synchronous BFS on a random-geometric-like graph partitioned
// across GPUs.  Each level's frontier induces a *different* irregular
// communication pattern (remote neighbors of the current frontier); the
// example extracts that per-level pattern, simulates every strategy on it,
// and reports how the best strategy changes as the frontier sweeps through
// the graph -- small fringe levels favor latency-lean strategies, the bulge
// favors volume-efficient ones.

#include <cstdlib>
#include <iostream>
#include <queue>
#include <vector>

#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "sparse/generators.hpp"
#include "sparse/partition.hpp"

using namespace hetcomm;

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int num_gpus = argc > 2 ? std::atoi(argv[2]) : 32;
  if (num_gpus < 4 || num_gpus % 4 != 0) {
    std::cerr << "num_gpus must be a positive multiple of 4\n";
    return 1;
  }

  // Graph: banded structure (geometric locality) plus long-range edges
  // (shortcuts), adjacency as a pattern-only CSR.
  const sparse::CsrMatrix band =
      sparse::banded_fem(n, n / 200, 8, 77, /*with_values=*/false);
  const sparse::CsrMatrix graph = sparse::with_long_range(band, 2, 0.05, 78);
  const sparse::RowPartition part = sparse::RowPartition::contiguous(n, num_gpus);
  const Topology topo(presets::lassen(num_gpus / 4));
  const ParamSet params = lassen_params();

  std::cout << "BFS on " << n << " vertices, " << graph.nnz() << " edges, "
            << num_gpus << " GPUs.\n\n";

  // Level-synchronous BFS from vertex 0 (sequential reference traversal;
  // the communication of the distributed version is what we simulate).
  std::vector<std::int64_t> level(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> frontier{0};
  level[0] = 0;
  const auto& rp = graph.row_ptr();
  const auto& ci = graph.col_idx();

  benchutil::Table table({"level", "frontier", "inter msgs", "volume [B]",
                          "best strategy", "best [s]", "standard [s]"});
  core::MeasureOptions mopts;
  mopts.reps = 5;
  mopts.noise_sigma = 0.02;

  double total_best = 0.0, total_standard = 0.0;
  for (std::int64_t depth = 0; !frontier.empty() && depth < 40; ++depth) {
    // The level's communication: every frontier vertex pushes its state to
    // the owners of its remote neighbors (8 B per crossing edge, the
    // "visited" updates of a push-style BFS).
    core::CommPattern pattern(num_gpus);
    std::vector<std::int64_t> next;
    for (const std::int64_t v : frontier) {
      const int owner_v = part.owner_of(v);
      for (std::int64_t k = rp[static_cast<std::size_t>(v)];
           k < rp[static_cast<std::size_t>(v) + 1]; ++k) {
        const std::int64_t w = ci[static_cast<std::size_t>(k)];
        const int owner_w = part.owner_of(w);
        if (owner_w != owner_v) pattern.add(owner_v, owner_w, 8);
        if (level[static_cast<std::size_t>(w)] == -1) {
          level[static_cast<std::size_t>(w)] = depth + 1;
          next.push_back(w);
        }
      }
    }
    if (pattern.total_messages() > 0) {
      double best = 1e99, standard = 0.0;
      std::string best_name;
      for (const core::StrategyConfig& cfg : core::table5_strategies()) {
        if (cfg.transport == MemSpace::Device) continue;
        const core::CommPlan plan =
            core::build_plan(pattern, topo, params, cfg);
        const double t = core::measure(plan, topo, params, mopts).max_avg;
        if (cfg.kind == core::StrategyKind::Standard) standard = t;
        if (t < best) {
          best = t;
          best_name = cfg.name();
        }
      }
      total_best += best;
      total_standard += standard;
      table.add_row({std::to_string(depth), std::to_string(frontier.size()),
                     std::to_string(pattern.total_messages()),
                     std::to_string(pattern.total_bytes()), best_name,
                     benchutil::Table::sci(best),
                     benchutil::Table::sci(standard)});
    }
    frontier = std::move(next);
  }
  table.print(std::cout);
  std::cout << "\nWhole traversal: per-level best strategies sum to "
            << benchutil::Table::sci(total_best) << " s vs "
            << benchutil::Table::sci(total_standard)
            << " s all-standard ("
            << benchutil::Table::num(total_standard / total_best, 2)
            << "x) -- adapting the strategy per level pays off when the\n"
               "frontier shape changes this much.\n";
  return 0;
}
