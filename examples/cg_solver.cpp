// Conjugate-gradient solve with simulated communication accounting.
//
//   $ ./cg_solver [grid_n] [num_gpus]
//
// Solves a 2D Poisson problem with unpreconditioned CG, computing the real
// numerics sequentially while simulating the distributed run's
// communication on a Lassen-like machine: each iteration performs one SpMV
// halo exchange (via a persistent NeighborhoodExchange) and two allreduce
// calls for the dot products.  Reports iteration counts, residuals, and the
// simulated communication time per strategy -- the end-to-end view of why
// strategy choice matters for solvers (paper §2.3.3 / ref [16]).

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "benchutil/table.hpp"
#include "core/neighborhood.hpp"
#include "simmpi/collectives.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/generators.hpp"

using namespace hetcomm;

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t grid = argc > 1 ? std::atoll(argv[1]) : 96;
  const int num_gpus = argc > 2 ? std::atoi(argv[2]) : 32;
  if (num_gpus < 4 || num_gpus % 4 != 0) {
    std::cerr << "num_gpus must be a positive multiple of 4\n";
    return 1;
  }

  const sparse::CsrMatrix a = sparse::mesh_laplacian_2d(grid, grid);
  const std::int64_t n = a.rows();
  std::cout << "CG on a " << grid << "x" << grid << " Poisson problem (n="
            << n << "), partitioned across " << num_gpus << " GPUs.\n";

  // ---- Numerics: plain CG, Ax = b with b = A * ones. ----
  const std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  const std::vector<double> b = sparse::spmv(a, ones);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r = b;
  std::vector<double> p = r;
  double rho = dot(r, r);
  const double tol2 = 1e-20 * rho;

  int iterations = 0;
  const int max_iterations = 2000;
  while (rho > tol2 && iterations < max_iterations) {
    const std::vector<double> ap = sparse::spmv(a, p);
    const double alpha = rho / dot(p, ap);
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rho_next = dot(r, r);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = r[i] + (rho_next / rho) * p[i];
    }
    rho = rho_next;
    ++iterations;
  }
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - 1.0));
  }
  std::cout << "Converged in " << iterations
            << " iterations, max |x - 1| = " << err << "\n\n";

  // ---- Communication accounting per strategy. ----
  const Topology topo(presets::lassen(num_gpus / 4));
  const ParamSet params = lassen_params();
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(n, num_gpus);
  const core::CommPattern pattern =
      sparse::spmv_comm_pattern(a, part, topo);

  benchutil::Table table({"strategy", "per-iter comm [s]", "solve comm [s]",
                          "vs best"});
  struct Row {
    std::string name;
    double per_iter;
  };
  std::vector<Row> rows;
  double best = 1e99;
  for (const core::StrategyConfig& cfg : core::table5_strategies()) {
    const core::NeighborhoodExchange exchange(pattern, topo, params, cfg);

    // One iteration's communication: the halo exchange plus two allreduce
    // calls over the GPU-owner ranks (pipelined dot products would reduce
    // this; we model textbook CG).
    Engine engine(topo, params, NoiseModel(2024, 0.02));
    exchange.execute(engine);
    std::vector<int> owners;
    for (int g = 0; g < topo.num_gpus(); ++g) {
      owners.push_back(topo.owner_rank_of_gpu(g));
    }
    simmpi::Comm owner_comm(engine, owners);
    simmpi::allreduce(owner_comm, 8);
    simmpi::allreduce(owner_comm, 8);
    const double per_iter = engine.max_clock();
    rows.push_back({cfg.name(), per_iter});
    best = std::min(best, per_iter);
  }
  for (const Row& row : rows) {
    table.add_row({row.name, benchutil::Table::sci(row.per_iter),
                   benchutil::Table::sci(row.per_iter * iterations),
                   benchutil::Table::num(row.per_iter / best, 2)});
  }
  table.print(std::cout);

  std::cout << "\nEach CG iteration = 1 halo exchange + 2 allreduces; the\n"
            << "solve column extrapolates over all " << iterations
            << " iterations.\n";
  return 0;
}
