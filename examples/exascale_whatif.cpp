// What-if study for emerging machines (paper §6).
//
//   $ ./exascale_whatif
//
// Runs the same SpMV halo exchange on Lassen, a Frontier-like single-socket
// machine and a Delta-like dual-64-core machine, and reports how the best
// strategy and the absolute times shift with core counts, interconnect
// bandwidth and GPU attachment.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;

namespace {

struct Machine {
  std::string name;
  MachineShape node_shape;
  ParamSet params;
};

}  // namespace

int main() {
  const int num_nodes = 16;
  const std::vector<Machine> machines = {
      {"Lassen (2x20 cores, 4 GPU, EDR)", presets::lassen(num_nodes),
       lassen_params()},
      {"Frontier-like (64 cores, 4 GPU, Slingshot)",
       presets::frontier(num_nodes), frontier_params()},
      {"Delta-like (2x64 cores, 4 GPU, HDR)", presets::delta(num_nodes),
       delta_params()},
  };

  // audikw_1's dense arrow head gives every node a wide fan-out -- the
  // regime where strategy choice matters most.
  const sparse::CsrMatrix matrix = sparse::generate_standin(
      sparse::profile_by_name("audikw_1"), /*scale=*/0.01, /*seed=*/17);
  std::cout << "Workload: audikw_1 stand-in halo exchange, " << matrix.rows()
            << " rows, " << num_nodes << " nodes, 4 GPUs per node.\n"
            << "(Per-value payload scaled x100 to restore full-size "
               "communication volumes.)\n\n";

  core::MeasureOptions opts;
  opts.reps = 10;
  opts.noise_sigma = 0.02;

  benchutil::Table table({"machine", "best strategy", "time [s]",
                          "standard (staged) [s]", "speedup"});
  for (const Machine& m : machines) {
    const Topology topo(m.node_shape);
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(matrix.rows(), topo.num_gpus());
    const core::CommPattern pattern =
        sparse::spmv_comm_pattern(matrix, part, topo, /*bytes_per_value=*/800);

    double best = 1e99;
    std::string best_name;
    double standard = 0.0;
    for (const core::StrategyConfig& cfg : core::table5_strategies()) {
      const core::CommPlan plan = core::build_plan(pattern, topo, m.params,
                                                   cfg);
      const double t = core::measure(plan, topo, m.params, opts).max_avg;
      if (cfg.kind == core::StrategyKind::Standard &&
          cfg.transport == MemSpace::Host) {
        standard = t;
      }
      if (t < best) {
        best = t;
        best_name = cfg.name();
      }
    }
    table.add_row({m.name, best_name, benchutil::Table::sci(best),
                   benchutil::Table::sci(standard),
                   benchutil::Table::num(standard / best, 2) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nPer the paper's outlook (§6): higher core counts and\n"
               "faster interconnects favor split-style strategies, since\n"
               "they are the only ones using every host core to inject.\n";
  return 0;
}
