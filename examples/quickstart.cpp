// Quickstart: simulate irregular point-to-point communication on a
// Lassen-like machine and compare all node-aware strategies.
//
//   $ ./quickstart [num_nodes] [msgs_per_gpu] [msg_bytes]
//
// Walks through the core API: build a Topology + ParamSet, describe traffic
// as a CommPattern, compile it into per-strategy CommPlans, execute them on
// the discrete-event simulator, and ask the model-driven Advisor which
// strategy it would have picked.

#include <cstdlib>
#include <iostream>

#include "benchutil/table.hpp"
#include "core/advisor.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"

using namespace hetcomm;

int main(int argc, char** argv) {
  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int msgs_per_gpu = argc > 2 ? std::atoi(argv[2]) : 32;
  const std::int64_t msg_bytes = argc > 3 ? std::atoll(argv[3]) : 4096;

  // 1. A machine: Lassen nodes (2 sockets x [Power9 + 2 V100], 40 cores)
  //    with the paper's measured communication parameters.
  const Topology topo(presets::lassen(num_nodes));
  const ParamSet params = lassen_params();
  std::cout << "Machine: " << num_nodes << " Lassen-like nodes, "
            << topo.num_gpus() << " GPUs, " << topo.num_ranks()
            << " host ranks\n";

  // 2. A workload: every GPU sends msgs_per_gpu messages of msg_bytes to
  //    random other GPUs (an irregular point-to-point pattern).
  const core::CommPattern pattern =
      core::random_pattern(topo, msgs_per_gpu, msg_bytes, /*seed=*/2024);
  const core::PatternStats stats = core::compute_stats(pattern, topo);
  std::cout << "Pattern: " << pattern.total_messages() << " messages, "
            << pattern.total_bytes() << " B total, max "
            << stats.m_proc << " inter-node messages per GPU, fan-out "
            << stats.num_internode_nodes << " nodes\n\n";

  // 3. Compile and execute every strategy; report the paper's metric
  //    (max over ranks of the mean communication time).
  benchutil::Table table({"strategy", "time [s]", "net msgs", "net bytes",
                          "vs best"});
  double best = 1e99;
  std::vector<std::pair<std::string, double>> rows;
  core::MeasureOptions opts;
  opts.reps = 20;
  opts.noise_sigma = 0.02;

  std::vector<core::PlanSummary> summaries;
  for (const core::StrategyConfig& cfg : core::table5_strategies()) {
    const core::CommPlan plan = core::build_plan(pattern, topo, params, cfg);
    const core::MeasureResult r = core::measure(plan, topo, params, opts);
    rows.push_back({cfg.name(), r.max_avg});
    summaries.push_back(r.summary);
    best = std::min(best, r.max_avg);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].first, benchutil::Table::sci(rows[i].second),
                   std::to_string(summaries[i].internode_messages),
                   std::to_string(summaries[i].internode_bytes),
                   benchutil::Table::num(rows[i].second / best, 2)});
  }
  table.print(std::cout);

  // 4. What would the model have picked, without running anything?
  const core::Advisor advisor(topo, params);
  const core::Recommendation rec = advisor.best(pattern);
  std::cout << "\nAdvisor pick (model-driven): " << rec.config.name()
            << " (predicted " << benchutil::Table::sci(rec.predicted_seconds)
            << " s)\n";
  return 0;
}
