// Distributed SpMV communication study (the paper's case study, §5).
//
//   $ ./spmv_communication [matrix.mtx | pattern.pattern | profile-name] [num_gpus]
//
// Loads a Matrix Market file, replays a saved communication pattern
// (core/pattern_io format), or generates a SuiteSparse stand-in by name
// (audikw_1, Serena, ldoor, thermal2, bone010, Geo_1438), partitions it
// row-wise across GPUs of a Lassen-like machine, extracts the halo-exchange
// communication pattern -- including duplicate-data annotations -- and
// compares every strategy, separating the wire volume a node-aware scheme
// ships from the payload standard communication ships.

#include <cstdlib>
#include <iostream>
#include <string>

#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "core/pattern_io.hpp"
#include "core/strategy.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suitesparse_profiles.hpp"

using namespace hetcomm;

int main(int argc, char** argv) {
  const std::string source = argc > 1 ? argv[1] : "thermal2";
  const int num_gpus = argc > 2 ? std::atoi(argv[2]) : 64;
  if (num_gpus < 4 || num_gpus % 4 != 0) {
    std::cerr << "num_gpus must be a positive multiple of 4 (Lassen nodes)\n";
    return 1;
  }

  // Replay a saved pattern directly, bypassing matrix construction.
  if (source.size() > 8 &&
      source.substr(source.size() - 8) == ".pattern") {
    const core::CommPattern pattern = core::read_pattern_file(source);
    if (pattern.num_gpus() != num_gpus) {
      std::cerr << "pattern has " << pattern.num_gpus() << " GPUs; pass "
                << pattern.num_gpus() << " as num_gpus\n";
      return 1;
    }
    const Topology topo(presets::lassen(num_gpus / 4));
    const ParamSet params = lassen_params();
    benchutil::Table table({"strategy", "time [s]"});
    core::MeasureOptions mopts;
    mopts.reps = 15;
    mopts.noise_sigma = 0.02;
    for (const core::StrategyConfig& cfg : core::table5_strategies()) {
      const core::CommPlan plan = core::build_plan(pattern, topo, params, cfg);
      table.add_row({cfg.name(), benchutil::Table::sci(
                                     core::measure(plan, topo, params, mopts)
                                         .max_avg)});
    }
    table.print(std::cout);
    return 0;
  }

  // Load or synthesize the matrix.
  sparse::CsrMatrix matrix;
  if (source.size() > 4 && source.substr(source.size() - 4) == ".mtx") {
    matrix = sparse::read_matrix_market_file(source);
    std::cout << "Loaded " << source << ": ";
  } else {
    const sparse::MatrixProfile& profile = sparse::profile_by_name(source);
    matrix = sparse::generate_standin(profile, /*scale=*/0.02, /*seed=*/3);
    std::cout << "Generated " << source << " stand-in (2% scale): ";
  }
  std::cout << matrix.rows() << " rows, " << matrix.nnz() << " nonzeros, "
            << "mean degree " << matrix.mean_degree() << "\n";

  // Partition row-wise across GPUs and extract the halo-exchange pattern.
  const Topology topo(presets::lassen(num_gpus / 4));
  const ParamSet params = lassen_params();
  const sparse::RowPartition part =
      sparse::RowPartition::contiguous(matrix.rows(), num_gpus);
  const core::CommPattern pattern =
      sparse::spmv_comm_pattern(matrix, part, topo);
  const core::PatternStats stats = core::compute_stats(pattern, topo);

  std::cout << "SpMV halo exchange on " << num_gpus << " GPUs ("
            << topo.num_nodes() << " nodes):\n"
            << "  inter-node messages (standard): "
            << stats.total_internode_messages << "\n"
            << "  inter-node payload:             "
            << stats.total_internode_bytes << " B\n"
            << "  max node fan-out (Recv Nodes):  "
            << stats.num_internode_nodes << "\n"
            << "  duplicate data a node-aware scheme avoids: "
            << (stats.s_node > 0
                    ? benchutil::Table::num(
                          100.0 * (1.0 - static_cast<double>(stats.dedup_s_node) /
                                             static_cast<double>(stats.s_node)),
                          1)
                    : "0")
            << " % of the busiest node's injection\n\n";

  benchutil::Table table({"strategy", "time [s]", "wire bytes", "vs best"});
  core::MeasureOptions opts;
  opts.reps = 15;
  opts.noise_sigma = 0.02;

  struct Row {
    std::string name;
    double time;
    std::int64_t wire;
  };
  std::vector<Row> rows;
  double best = 1e99;
  for (const core::StrategyConfig& cfg : core::table5_strategies()) {
    const core::CommPlan plan = core::build_plan(pattern, topo, params, cfg);
    const core::MeasureResult r = core::measure(plan, topo, params, opts);
    rows.push_back({cfg.name(), r.max_avg, r.summary.internode_bytes});
    best = std::min(best, r.max_avg);
  }
  for (const Row& r : rows) {
    table.add_row({r.name, benchutil::Table::sci(r.time),
                   std::to_string(r.wire),
                   benchutil::Table::num(r.time / best, 2)});
  }
  table.print(std::cout);
  return 0;
}
