// Model-driven strategy selection over a scenario grid (paper §4.6).
//
//   $ ./strategy_advisor
//
// For a grid of (destination nodes x message count x message size)
// scenarios, ask the Advisor which strategy the performance models predict
// to be fastest -- a "recipe card" operationalizing the paper's Figure 4.3.

#include <iostream>

#include "benchutil/table.hpp"
#include "core/advisor.hpp"
#include "core/models/scenario.hpp"

using namespace hetcomm;

int main() {
  const Topology topo(presets::lassen(17));
  const ParamSet params = lassen_params();
  const core::Advisor advisor(topo, params);

  std::cout
      << "Recommended communication strategy by scenario (Lassen model).\n"
      << "Scenario: one node sends M messages of S bytes, spread evenly\n"
      << "over its 4 GPUs, to N destination nodes.\n\n";

  for (const bool staged_only : {false, true}) {
    core::AdvisorOptions opts;
    opts.staged_only = staged_only;

    benchutil::Table table({"dest nodes", "messages", "size",
                            "recommended", "predicted [s]", "2nd best",
                            "margin"});
    for (const int nodes : {2, 4, 16}) {
      for (const int messages : {32, 256}) {
        for (const long long size : {64LL, 2048LL, 65536LL}) {
          core::models::Scenario sc;
          sc.num_dest_nodes = nodes;
          sc.num_messages = messages;
          sc.msg_bytes = size;
          const core::CommPattern pattern =
              core::models::make_scenario_pattern(topo, sc);
          const std::vector<core::Recommendation> ranked =
              advisor.rank(pattern, opts);
          table.add_row(
              {std::to_string(nodes), std::to_string(messages),
               benchutil::Table::bytes(size), ranked[0].config.name(),
               benchutil::Table::sci(ranked[0].predicted_seconds),
               ranked.size() > 1 ? ranked[1].config.name() : "-",
               ranked.size() > 1
                   ? benchutil::Table::num(ranked[1].relative, 2) + "x"
                   : "-"});
        }
      }
    }
    std::cout << (staged_only
                      ? "\nStaged-through-host only (no CUDA-aware MPI):\n"
                      : "All strategies (device-aware available):\n");
    table.print(std::cout);
  }

  std::cout << "\nReading the card: standard/3-step win for few messages to\n"
               "few nodes; split strategies take over as message counts and\n"
               "node fan-out grow -- the paper's central conclusion.\n";
  return 0;
}
