#include "benchutil/artifact_stamp.hpp"

#include <unistd.h>

#include <cstdlib>
#include <ctime>
#include <string>

namespace hetcomm::benchutil {
namespace {

std::string git_sha_from_env() {
  for (const char* var : {"GITHUB_SHA", "HETCOMM_GIT_SHA"}) {
    if (const char* sha = std::getenv(var); sha != nullptr && *sha != '\0') {
      return sha;
    }
  }
  return "unknown";
}

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string host_name() {
  char buf[256];
  if (gethostname(buf, sizeof buf) != 0) return "unknown";
  buf[sizeof buf - 1] = '\0';
  return buf;
}

}  // namespace

obs::JsonValue artifact_stamp(int jobs, int batch) {
  obs::JsonValue stamp = obs::JsonValue::object();
  stamp.set("schema", kBenchStampSchema);
  stamp.set("git_sha", git_sha_from_env());
  stamp.set("utc", utc_now());
  stamp.set("jobs", jobs);
  stamp.set("batch", batch);
  stamp.set("hostname", host_name());
  return stamp;
}

}  // namespace hetcomm::benchutil
