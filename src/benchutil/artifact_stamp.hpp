#pragma once
// Provenance stamp shared by every bench artifact (hetcomm.bench_stamp.v1).
//
// Benchmark JSON files get compared across commits (tools/bench_trend.py),
// so each artifact carries enough context to answer "what produced this
// number?": the commit, the UTC wall time, the host, and the execution
// geometry (--jobs / --batch) the run used.  The git sha comes from the
// environment -- GITHUB_SHA in CI, HETCOMM_GIT_SHA for local runs --
// because bench binaries must not shell out to git.

#include "obs/json.hpp"

namespace hetcomm::benchutil {

inline constexpr const char* kBenchStampSchema = "hetcomm.bench_stamp.v1";

/// Build the stamp object:
///   {"schema": "hetcomm.bench_stamp.v1", "git_sha": ..., "utc": ...,
///    "jobs": J, "batch": B, "hostname": ...}
/// jobs/batch record the run geometry (0 = tool default / auto); git_sha
/// falls back to "unknown" outside CI, utc is ISO-8601 Zulu.
[[nodiscard]] obs::JsonValue artifact_stamp(int jobs, int batch);

}  // namespace hetcomm::benchutil
