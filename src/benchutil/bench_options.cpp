#include "benchutil/bench_options.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace hetcomm::benchutil {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Strict positive-integer parse: the whole token must be a number >= 1
/// (no "--reps x" silently becoming 0 via atoi).
long long parse_positive(const std::string& text, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < 1) {
    bad(std::string(flag) + " needs a positive integer, got '" + text + "'");
  }
  return v;
}

/// Only the exact spellings are accepted -- "compile", "Compiled" or other
/// near-misses abort with usage text rather than running the default path
/// under a misleading label.
core::ExecMode parse_engine(const std::string& text) {
  if (text == "compiled") return core::ExecMode::Compiled;
  if (text == "interpreted") return core::ExecMode::Interpreted;
  bad("--engine must be 'compiled' or 'interpreted', got '" + text + "'");
}

std::uint64_t parse_seed(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    bad("--seed needs an unsigned integer, got '" + text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

BenchOptions BenchOptions::parse_tokens(const std::vector<std::string>& args,
                                        bool* help, bool metrics_supported) {
  BenchOptions opts;
  if (help != nullptr) *help = false;
  const auto value = [&](std::size_t& i,
                         const char* flag) -> const std::string& {
    if (i + 1 >= args.size()) bad(std::string("missing value for ") + flag);
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--progress") {
      opts.progress = true;
    } else if (arg == "--reps") {
      opts.reps = static_cast<int>(parse_positive(value(i, "--reps"),
                                                  "--reps"));
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<int>(parse_positive(value(i, "--jobs"),
                                                  "--jobs"));
    } else if (arg == "--batch") {
      const std::string& text = value(i, "--batch");
      // "auto" defers the width to measure(); anything else must be a
      // strictly positive integer ("--batch 0" is rejected so the serial
      // path is always an explicit "--batch 1", never a silent fallback).
      opts.batch = text == "auto"
                       ? 0
                       : static_cast<int>(parse_positive(text, "--batch"));
    } else if (arg == "--seed") {
      opts.seed = parse_seed(value(i, "--seed"));
    } else if (arg == "--engine") {
      opts.engine = parse_engine(value(i, "--engine"));
    } else if (arg == "--metrics") {
      if (!metrics_supported) {
        bad("--metrics: this bench does not produce a metrics report "
            "(supported by micro_hetcomm, report_phase_breakdown, and "
            "'hetcomm report')");
      }
      const std::string& path = value(i, "--metrics");
      if (path.empty()) bad("--metrics needs a non-empty file path");
      opts.metrics_path = path;
    } else if (arg == "--help") {
      if (help != nullptr) {
        *help = true;
        return opts;
      }
      bad("--help");
    } else {
      bad("unknown flag '" + arg + "'");
    }
  }
  return opts;
}

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 bool metrics_supported) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  bool help = false;
  try {
    BenchOptions opts = parse_tokens(args, &help, metrics_supported);
    if (help) {
      std::cout << kUsage << "\n";
      std::exit(0);
    }
    return opts;
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench: " << e.what() << "\n" << kUsage << "\n";
    std::exit(2);
  }
}

runtime::SweepOptions BenchOptions::sweep_options() const {
  runtime::SweepOptions so;
  so.jobs = jobs;
  so.progress = progress;
  return so;
}

void BenchOptions::emit(const Table& table, const std::string& title) const {
  if (csv) {
    std::cout << "# " << title << "\n";
    table.print_csv(std::cout);
  } else {
    banner(std::cout, title);
    table.print(std::cout);
  }
}

void write_metrics_file(const std::string& path,
                        const std::vector<obs::RunReport>& reports) {
  const obs::JsonValue doc = obs::make_metrics_document(reports);
  if (path == "-") {
    doc.dump(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open metrics file '" + path +
                             "' for writing");
  }
  doc.dump(out);
  if (!out) {
    throw std::runtime_error("failed writing metrics file '" + path + "'");
  }
}

}  // namespace hetcomm::benchutil
