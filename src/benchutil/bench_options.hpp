#pragma once
// Strict command-line options shared by every bench binary.
//
// Common flags:
//   --csv           emit CSV instead of aligned tables
//   --quick         reduce iteration counts / sweep sizes (CI-friendly)
//   --reps N        override repetition count (positive integer)
//   --jobs N        sweep worker threads (positive; default: hardware)
//   --batch W       lane width for batched repetitions: auto (default),
//                   1 = serial, or a positive width; 0 is rejected
//   --seed S        base noise seed for reproducible runs
//   --progress      per-cell progress lines on stderr
//   --engine E      execution path: compiled (default) or interpreted
//   --metrics FILE  write a hetcomm.metrics.v1 JSON run report to FILE
//
// Unknown flags and malformed values are hard errors -- a typo'd sweep must
// not silently run with default settings.  parse() is the process entry
// point (prints usage and exits 2 on error, 0 on --help); parse_tokens() is
// the same grammar as a throwing function, so tests can exercise the
// rejection paths in-process.

#include <cstdint>
#include <string>
#include <vector>

#include "benchutil/table.hpp"
#include "core/executor.hpp"
#include "obs/run_report.hpp"
#include "runtime/sweep.hpp"

namespace hetcomm::benchutil {

struct BenchOptions {
  bool csv = false;
  bool quick = false;
  bool progress = false;
  int reps = -1;               ///< -1 = bench default
  int jobs = 0;                ///< sweep workers; 0 = hardware concurrency
  /// Lane width for batched repetition execution: 0 = auto (the default;
  /// measure() picks a cache-friendly width), 1 = serial, N > 1 = run N
  /// repetitions in lockstep.  `--batch 0` is a hard parse error -- auto
  /// is spelled `--batch auto`.
  int batch = 0;
  std::uint64_t seed = 0x5eedULL;
  /// Both engines are bit-identical; interpreted exists for A/B timing.
  core::ExecMode engine = core::ExecMode::Compiled;
  /// --metrics FILE: write the run's metrics report here ("-" = stdout).
  /// Empty = no report.  Only binaries that actually build a RunReport
  /// opt in via `metrics_supported`; everywhere else --metrics is a hard
  /// parse error, so the flag can never be silently ignored.
  std::string metrics_path;

  static constexpr const char* kUsage =
      "flags: --csv --quick --progress --reps N --jobs N --batch {auto,N} "
      "--seed S --engine {compiled,interpreted} --metrics FILE";

  /// Parse argv-style tokens (program name excluded).  Throws
  /// std::invalid_argument on unknown flags, missing values, malformed
  /// numbers, or --metrics when `metrics_supported` is false; sets `*help`
  /// instead of exiting when --help is seen.
  static BenchOptions parse_tokens(const std::vector<std::string>& args,
                                   bool* help = nullptr,
                                   bool metrics_supported = false);

  /// Process entry point: parse_tokens() plus exit semantics -- usage text
  /// and exit(2) on any parse error, usage and exit(0) on --help.
  static BenchOptions parse(int argc, char** argv,
                            bool metrics_supported = false);

  /// SweepOptions carrying this run's --jobs / --progress settings.
  [[nodiscard]] runtime::SweepOptions sweep_options() const;

  /// True when --metrics was given (a report file is wanted).
  [[nodiscard]] bool wants_metrics() const noexcept {
    return !metrics_path.empty();
  }

  void emit(const Table& table, const std::string& title) const;
};

/// Write `reports` as a hetcomm.metrics.v1 document to `path` ("-" =
/// stdout).  Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const std::string& path,
                        const std::vector<obs::RunReport>& reports);

}  // namespace hetcomm::benchutil
