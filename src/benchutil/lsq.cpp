#include "benchutil/lsq.hpp"

#include <cmath>
#include <stdexcept>

namespace hetcomm::benchutil {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_linear: size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("fit_linear: need at least two points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    throw std::invalid_argument("fit_linear: x is constant");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PostalParams fit_postal(std::span<const double> sizes_bytes,
                        std::span<const double> times_sec) {
  const LinearFit fit = fit_linear(sizes_bytes, times_sec);
  return PostalParams{fit.intercept, fit.slope};
}

}  // namespace hetcomm::benchutil
