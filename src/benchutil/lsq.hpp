#pragma once
// Linear least squares for postal-model fitting.
//
// The paper derives every Table 2/3 parameter pair as a linear
// least-squares fit of measured ping-pong times against message size:
// T(s) = alpha + beta * s.

#include <span>

#include "hetsim/params.hpp"

namespace hetcomm::benchutil {

struct LinearFit {
  double intercept = 0.0;  ///< alpha
  double slope = 0.0;      ///< beta
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares of y against x.  Requires >= 2 points and
/// non-constant x.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

/// Convenience: fit (sizes, times) to postal parameters.
[[nodiscard]] PostalParams fit_postal(std::span<const double> sizes_bytes,
                                      std::span<const double> times_sec);

}  // namespace hetcomm::benchutil
