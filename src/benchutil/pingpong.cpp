#include "benchutil/pingpong.hpp"

#include <algorithm>
#include <stdexcept>

namespace hetcomm::benchutil {

std::pair<int, int> rank_pair_for(const Topology& topo, PathClass path) {
  const MachineShape& shape = topo.shape();
  switch (path) {
    case PathClass::OnSocket:
      if (shape.cores_per_socket < 2) {
        throw std::invalid_argument("rank_pair_for: need 2 cores per socket");
      }
      return {topo.rank_of(0, 0, 0), topo.rank_of(0, 0, 1)};
    case PathClass::OnNode:
      if (shape.sockets_per_node < 2) {
        throw std::invalid_argument("rank_pair_for: need 2 sockets");
      }
      return {topo.rank_of(0, 0, 0), topo.rank_of(0, 1, 0)};
    case PathClass::OffNode:
      if (shape.num_nodes < 2) {
        throw std::invalid_argument("rank_pair_for: need 2 nodes");
      }
      return {topo.rank_of(0, 0, 0), topo.rank_of(1, 0, 0)};
  }
  throw std::logic_error("rank_pair_for: bad path");
}

double ping_pong(const Topology& topo, const ParamSet& params, int rank_a,
                 int rank_b, std::int64_t bytes, MemSpace space,
                 const MeasureOpts& opts) {
  if (opts.iterations < 1) {
    throw std::invalid_argument("ping_pong: iterations must be >= 1");
  }
  double total = 0.0;
  for (int it = 0; it < opts.iterations; ++it) {
    Engine engine(topo, params,
                  NoiseModel(opts.seed + static_cast<std::uint64_t>(it),
                             opts.noise_sigma));
    engine.isend(rank_a, rank_b, bytes, 0, space);
    engine.irecv(rank_b, rank_a, bytes, 0, space);
    engine.resolve();
    total += engine.clock(rank_b);
  }
  return total / opts.iterations;
}

Sweep ping_pong_sweep(const Topology& topo, const ParamSet& params, int rank_a,
                      int rank_b, std::span<const std::int64_t> sizes,
                      MemSpace space, const MeasureOpts& opts) {
  Sweep sweep;
  sweep.sizes.reserve(sizes.size());
  sweep.times.reserve(sizes.size());
  for (const std::int64_t s : sizes) {
    sweep.sizes.push_back(static_cast<double>(s));
    sweep.times.push_back(
        ping_pong(topo, params, rank_a, rank_b, s, space, opts));
  }
  return sweep;
}

double node_pong(const Topology& topo, const ParamSet& params, int node_a,
                 int node_b, int active_ppn, std::int64_t bytes_per_proc,
                 MemSpace space, const MeasureOpts& opts) {
  if (active_ppn < 1 || active_ppn > topo.ppn()) {
    throw std::invalid_argument("node_pong: active_ppn out of range");
  }
  if (node_a == node_b) {
    throw std::invalid_argument("node_pong: nodes must differ");
  }
  const std::vector<int> src = topo.ranks_on_node(node_a);
  const std::vector<int> dst = topo.ranks_on_node(node_b);

  double total = 0.0;
  for (int it = 0; it < opts.iterations; ++it) {
    Engine engine(topo, params,
                  NoiseModel(opts.seed + static_cast<std::uint64_t>(it),
                             opts.noise_sigma));
    for (int p = 0; p < active_ppn; ++p) {
      engine.isend(src[static_cast<std::size_t>(p)],
                   dst[static_cast<std::size_t>(p)], bytes_per_proc, p, space);
      engine.irecv(dst[static_cast<std::size_t>(p)],
                   src[static_cast<std::size_t>(p)], bytes_per_proc, p, space);
    }
    engine.resolve();
    total += engine.max_clock();
  }
  return total / opts.iterations;
}

double copy_time(const Topology& topo, const ParamSet& params, int gpu,
                 CopyDir dir, std::int64_t bytes_total, int np,
                 const MeasureOpts& opts) {
  if (np < 1) throw std::invalid_argument("copy_time: np must be >= 1");
  const GpuLocation loc = topo.gpu_location(gpu);
  if (np > topo.pps()) {
    throw std::invalid_argument("copy_time: np exceeds cores per socket");
  }
  double total = 0.0;
  for (int it = 0; it < opts.iterations; ++it) {
    Engine engine(topo, params,
                  NoiseModel(opts.seed + static_cast<std::uint64_t>(it),
                             opts.noise_sigma));
    for (int p = 0; p < np; ++p) {
      const std::int64_t share = bytes_total / np +
                                 (p < bytes_total % np ? 1 : 0);
      engine.copy(topo.rank_of(loc.node, loc.socket, p), gpu, dir, share, np);
    }
    total += engine.max_clock();
  }
  return total / opts.iterations;
}

std::vector<std::int64_t> sizes_for_protocol(
    const ProtocolThresholds& thresholds, MemSpace space, Protocol proto) {
  std::int64_t lo = 1;
  std::int64_t hi = thresholds.short_max;
  switch (proto) {
    case Protocol::Short:
      if (space == MemSpace::Device) {
        throw std::invalid_argument(
            "sizes_for_protocol: device transfers have no short protocol");
      }
      lo = 1;
      hi = thresholds.short_max;
      break;
    case Protocol::Eager:
      lo = space == MemSpace::Host ? thresholds.short_max + 1 : 1;
      hi = thresholds.eager_max;
      break;
    case Protocol::Rendezvous:
      lo = thresholds.eager_max + 1;
      hi = thresholds.eager_max * 64;
      break;
  }
  std::vector<std::int64_t> sizes;
  for (std::int64_t s = lo; s <= hi; s = std::max(s + 1, s * 2)) {
    sizes.push_back(s);
  }
  if (sizes.size() < 2 || sizes.back() != hi) sizes.push_back(hi);
  return sizes;
}

}  // namespace hetcomm::benchutil
