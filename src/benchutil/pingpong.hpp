#pragma once
// Ping-pong / node-pong measurement harness (BenchPress-style, paper §3).
//
// These drive the simulator exactly the way BenchPress drives real
// hardware: repeated timed exchanges between pinned processes, averaged
// over iterations, ready for least-squares postal fits.  On the simulator
// this round-trips the calibration (recovered parameters ~= injected ones,
// modulo the engine's software overheads), which validates the measurement
// pipeline itself.

#include <cstdint>
#include <span>
#include <vector>

#include "hetsim/engine.hpp"

namespace hetcomm::benchutil {

struct MeasureOpts {
  int iterations = 100;  ///< the paper uses 1000
  std::uint64_t seed = 17;
  double noise_sigma = 0.0;  ///< 0 = deterministic measurement
};

/// A representative pair of world ranks with the given relative placement.
[[nodiscard]] std::pair<int, int> rank_pair_for(const Topology& topo,
                                                PathClass path);

/// Mean one-way time for a `bytes`-byte message between two world ranks.
[[nodiscard]] double ping_pong(const Topology& topo, const ParamSet& params,
                               int rank_a, int rank_b, std::int64_t bytes,
                               MemSpace space, const MeasureOpts& opts = {});

struct Sweep {
  std::vector<double> sizes;  ///< bytes
  std::vector<double> times;  ///< seconds
};

/// Ping-pong over a list of sizes (one fit input per protocol regime).
[[nodiscard]] Sweep ping_pong_sweep(const Topology& topo,
                                    const ParamSet& params, int rank_a,
                                    int rank_b,
                                    std::span<const std::int64_t> sizes,
                                    MemSpace space,
                                    const MeasureOpts& opts = {});

/// Node-pong: `active_ppn` processes on node_a each send `bytes_per_proc`
/// to their counterpart on node_b simultaneously; returns the mean time
/// until the last byte lands.  Saturates the NIC injection limit as
/// active_ppn grows (paper Table 4 / Figure 2.6).
[[nodiscard]] double node_pong(const Topology& topo, const ParamSet& params,
                               int node_a, int node_b, int active_ppn,
                               std::int64_t bytes_per_proc, MemSpace space,
                               const MeasureOpts& opts = {});

/// Mean time for `np` processes to jointly copy `bytes_total` to/from one
/// GPU (each copies bytes_total / np, concurrently).
[[nodiscard]] double copy_time(const Topology& topo, const ParamSet& params,
                               int gpu, CopyDir dir, std::int64_t bytes_total,
                               int np, const MeasureOpts& opts = {});

/// Message sizes covering one protocol regime of the machine, for fits.
[[nodiscard]] std::vector<std::int64_t> sizes_for_protocol(
    const ProtocolThresholds& thresholds, MemSpace space, Protocol proto);

}  // namespace hetcomm::benchutil
