#include "benchutil/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hetcomm::benchutil {

namespace {
void require_nonempty(std::span<const double> xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty(xs, "variance");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  require_nonempty(xs, "min_of");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  require_nonempty(xs, "max_of");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0,100]");
  }
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double geomean(std::span<const double> xs) {
  require_nonempty(xs, "geomean");
  double acc = 0.0;
  for (const double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: nonpositive input");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace hetcomm::benchutil
