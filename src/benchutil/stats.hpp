#pragma once
// Small statistics helpers for benchmark reporting.

#include <cstddef>
#include <span>
#include <vector>

namespace hetcomm::benchutil {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< sample variance
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> xs, double p);
/// Geometric mean (all inputs must be positive).
[[nodiscard]] double geomean(std::span<const double> xs);

}  // namespace hetcomm::benchutil
