#include "benchutil/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hetcomm::benchutil {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::bytes(long long b) {
  std::ostringstream os;
  if (b >= (1LL << 30) && b % (1LL << 30) == 0) {
    os << (b >> 30) << "GiB";
  } else if (b >= (1LL << 20) && b % (1LL << 20) == 0) {
    os << (b >> 20) << "MiB";
  } else if (b >= (1LL << 10) && b % (1LL << 10) == 0) {
    os << (b >> 10) << "KiB";
  } else {
    os << b << "B";
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " "
     << std::string(title.size() < 70 ? 70 - title.size() : 4, '=') << "\n\n";
}

}  // namespace hetcomm::benchutil
