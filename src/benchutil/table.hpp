#pragma once
// Aligned ASCII table / CSV printing for benchmark output.
//
// Every bench binary prints the rows/series of its paper table or figure
// through this writer, so output is uniform and machine-parsable.

#include <iosfwd>
#include <string>
#include <vector>

namespace hetcomm::benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header count.
  void add_row(std::vector<std::string> row);

  /// Formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string sci(double v, int precision = 2);
  [[nodiscard]] static std::string bytes(long long b);

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Render as CSV.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Figure 4.3 =====...").
void banner(std::ostream& os, const std::string& title);

}  // namespace hetcomm::benchutil
