#include "cli/cli.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "benchutil/bench_options.hpp"
#include "benchutil/table.hpp"
#include "core/advisor.hpp"
#include "core/executor.hpp"
#include "core/models/strategy_models.hpp"
#include "core/models/submodels.hpp"
#include "core/pattern_io.hpp"
#include "core/strategy.hpp"
#include "fault/fault_json.hpp"
#include "fault/stability.hpp"
#include "hetsim/engine.hpp"
#include "hetsim/faults.hpp"
#include "machine/machine_json.hpp"
#include "obs/trace.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/service.hpp"
#include "hetsim/trace_export.hpp"
#include "sparse/comm_graph.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suitesparse_profiles.hpp"

namespace hetcomm::cli {

namespace {

using benchutil::Table;

std::int64_t to_int(const std::string& v, const char* flag) {
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": " +
                                v);
  }
}

double to_double(const std::string& v, const char* flag) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": " +
                                v);
  }
}

/// The single subcommand table: usage(), the unknown-command diagnostic and
/// parse validation all enumerate this, so a new subcommand registered here
/// shows up everywhere at once (test_cli holds that contract).
struct Subcommand {
  const char* name;
  const char* summary;
};

constexpr Subcommand kSubcommands[] = {
    {"compare", "run every strategy on a workload and rank measured times"},
    {"advise", "model-driven strategy recommendation (no simulation)"},
    {"model", "print the Table 6 model decomposition for a pattern"},
    {"params", "print a machine's calibrated parameter set"},
    {"trace", "execute one strategy; dump a Chrome trace / ASCII Gantt "
              "(trace report|export inspect hetcomm.trace.v1 artifacts)"},
    {"report", "measure one strategy with per-phase/path/contention metrics"},
    {"machine", "list/describe/export/validate machine descriptions"},
    {"ranking-stability",
     "sweep a fault ensemble; report nominal-winner survival"},
    {"serve", "persistent strategy-advisor service (NDJSON on stdin/socket)"},
};

bool known_command(const std::string& name) {
  for (const Subcommand& sub : kSubcommands) {
    if (name == sub.name) return true;
  }
  return false;
}

std::string command_list() {
  std::string out;
  for (const Subcommand& sub : kSubcommands) {
    if (!out.empty()) out += '|';
    out += sub.name;
  }
  return out;
}

}  // namespace

std::string usage() {
  std::string text = "usage: hetcomm <command> [flags]\ncommands:\n";
  for (const Subcommand& sub : kSubcommands) {
    const std::string name(sub.name);
    text += "  " + name + std::string(19 - name.size(), ' ');
    text += sub.summary;
    text += '\n';
  }
  text +=
      "flags:\n"
      "  --machine NAME|FILE.json   preset (lassen summit frontier delta\n"
      "                             nvisland) or hetcomm.machine.v1 file\n"
      "                             (default lassen)\n"
      "  --out FILE           for `machine export` (default: stdout)\n"
      "  --nodes N            machine size          (default 8)\n"
      "  --pattern F.pattern | --matrix F.mtx | --standin NAME\n"
      "  --gpus N             partition width for matrix inputs\n"
      "  --strategy NAME      for `trace`/`report` (e.g. \"split+MD\")\n"
      "  --taper T            attach a T:1 tapered fat-tree fabric\n"
      "  --jobs N             worker threads (default: hardware concurrency)\n"
      "  --batch W            repetition lane width: auto (default), 1 =\n"
      "                       serial, or a positive width\n"
      "  --metrics FILE       for `report`/`serve`: write the JSON metrics\n"
      "  --faults FILE.json   attach a hetcomm.fault.v1 degradation plan\n"
      "                       (compare, trace, report, ranking-stability)\n"
      "  --fault-seeds N      for `ranking-stability`: ensemble size\n"
      "                       (default 4); --out FILE writes the\n"
      "                       hetcomm.stability.v1 report\n"
      "  --socket PATH        for `serve`: listen on a unix socket instead\n"
      "                       of stdin/stdout\n"
      "  --window N           for `serve`: max requests per batch window\n"
      "                       (default 64)\n"
      "  --cache-entries N    for `serve`: compiled-plan cache capacity\n"
      "                       (default 256; 0 disables caching)\n"
      "  --cache-shards N     for `serve`: plan cache shards (default 8)\n"
      "  --max-requests N     for `serve`: stop after N data requests\n"
      "  --max-queue N        for `serve`: pending-queue bound; requests\n"
      "                       beyond it are shed per --shed-policy\n"
      "                       (default 0 = unbounded)\n"
      "  --shed-policy P      for `serve`: reject (structured `overloaded`\n"
      "                       errors, default) or degrade (model-only\n"
      "                       answers with \"degraded\": true)\n"
      "  --default-deadline MS  for `serve`: deadline for requests without\n"
      "                       their own deadline_ms (default 0 = none)\n"
      "  --trace FILE         for `serve`/`report`: write the\n"
      "                       hetcomm.trace.v1 span artifact on exit\n"
      "  --trace-sample N     keep every Nth trace (default 1 = all)\n"
      "  --in FILE            for `trace report`/`trace export`: the\n"
      "                       hetcomm.trace.v1 artifact to inspect\n"
      "  --top K              for `trace report`: slowest span trees shown\n"
      "                       (default 10)\n"
      "  --reps N --seed S --csv\n";
  return text;
}

Options Options::parse(const std::vector<std::string>& args) {
  if (args.empty()) {
    throw std::invalid_argument("missing command\n" + usage());
  }
  Options opts;
  opts.command = args[0];
  if (!known_command(opts.command)) {
    throw std::invalid_argument("unknown command '" + opts.command + "' (" +
                                command_list() + ")\n" + usage());
  }
  std::size_t first_flag = 1;
  if (opts.command == "machine") {
    if (args.size() < 2) {
      throw std::invalid_argument(
          "machine: missing action (list|describe|export|validate)\n" +
          usage());
    }
    opts.action = args[1];
    if (opts.action != "list" && opts.action != "describe" &&
        opts.action != "export" && opts.action != "validate") {
      throw std::invalid_argument("machine: unknown action '" + opts.action +
                                  "' (list|describe|export|validate)\n" +
                                  usage());
    }
    first_flag = 2;
  }
  if (opts.command == "trace" && args.size() >= 2 && !args[1].empty() &&
      args[1][0] != '-') {
    // Optional artifact actions; no action keeps the original behavior
    // (simulate one strategy and dump its engine trace).
    opts.action = args[1];
    if (opts.action != "report" && opts.action != "export") {
      throw std::invalid_argument(
          "trace: unknown action '" + opts.action +
          "' (report|export, or no action to simulate a strategy)\n" +
          usage());
    }
    first_flag = 2;
  }
  for (std::size_t i = first_flag; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for " + flag);
      }
      return args[++i];
    };
    if (flag == "--machine") {
      opts.machine = value();
    } else if (flag == "--out") {
      opts.out_file = value();
    } else if (flag == "--nodes") {
      opts.nodes = static_cast<int>(to_int(value(), "--nodes"));
    } else if (flag == "--pattern") {
      opts.pattern_file = value();
    } else if (flag == "--matrix") {
      opts.matrix_file = value();
    } else if (flag == "--standin") {
      opts.standin = value();
    } else if (flag == "--gpus") {
      opts.gpus = static_cast<int>(to_int(value(), "--gpus"));
    } else if (flag == "--strategy") {
      opts.strategy = value();
    } else if (flag == "--taper") {
      opts.taper = to_double(value(), "--taper");
    } else if (flag == "--reps") {
      opts.reps = static_cast<int>(to_int(value(), "--reps"));
    } else if (flag == "--jobs") {
      opts.jobs = static_cast<int>(to_int(value(), "--jobs"));
    } else if (flag == "--batch") {
      const std::string& text = value();
      if (text == "auto") {
        opts.batch = 0;
      } else {
        opts.batch = static_cast<int>(to_int(text, "--batch"));
        if (opts.batch < 1) {
          throw std::invalid_argument("--batch must be >= 1 (or 'auto')");
        }
      }
    } else if (flag == "--seed") {
      opts.seed = static_cast<std::uint64_t>(to_int(value(), "--seed"));
    } else if (flag == "--csv") {
      opts.csv = true;
    } else if (flag == "--metrics") {
      opts.metrics_file = value();
      if (opts.metrics_file.empty()) {
        throw std::invalid_argument("--metrics needs a non-empty file path");
      }
    } else if (flag == "--faults") {
      opts.faults_file = value();
      if (opts.faults_file.empty()) {
        throw std::invalid_argument("--faults needs a non-empty file path");
      }
    } else if (flag == "--fault-seeds") {
      opts.fault_seeds = static_cast<int>(to_int(value(), "--fault-seeds"));
    } else if (flag == "--socket") {
      opts.socket_path = value();
      if (opts.socket_path.empty()) {
        throw std::invalid_argument("--socket needs a non-empty path");
      }
    } else if (flag == "--window") {
      opts.window = static_cast<int>(to_int(value(), "--window"));
    } else if (flag == "--cache-entries") {
      opts.cache_entries =
          static_cast<std::int64_t>(to_int(value(), "--cache-entries"));
    } else if (flag == "--cache-shards") {
      opts.cache_shards = static_cast<int>(to_int(value(), "--cache-shards"));
    } else if (flag == "--max-requests") {
      opts.max_requests =
          static_cast<std::int64_t>(to_int(value(), "--max-requests"));
    } else if (flag == "--max-queue") {
      opts.max_queue =
          static_cast<std::int64_t>(to_int(value(), "--max-queue"));
    } else if (flag == "--shed-policy") {
      opts.shed_policy = value();
    } else if (flag == "--default-deadline") {
      opts.default_deadline =
          static_cast<std::int64_t>(to_int(value(), "--default-deadline"));
    } else if (flag == "--trace") {
      opts.trace_file = value();
      if (opts.trace_file.empty()) {
        throw std::invalid_argument("--trace needs a non-empty file path");
      }
    } else if (flag == "--trace-sample") {
      opts.trace_sample =
          static_cast<std::uint64_t>(to_int(value(), "--trace-sample"));
    } else if (flag == "--in") {
      opts.in_file = value();
      if (opts.in_file.empty()) {
        throw std::invalid_argument("--in needs a non-empty file path");
      }
    } else if (flag == "--top") {
      opts.top = static_cast<int>(to_int(value(), "--top"));
    } else {
      throw std::invalid_argument("unknown flag '" + flag + "'\n" + usage());
    }
  }
  if (opts.nodes < 1) throw std::invalid_argument("--nodes must be >= 1");
  if (opts.reps < 1) throw std::invalid_argument("--reps must be >= 1");
  if (opts.fault_seeds < 1) {
    throw std::invalid_argument("--fault-seeds must be >= 1");
  }
  if (opts.jobs < 0) {
    throw std::invalid_argument("--jobs must be >= 1 (or 0 for hardware)");
  }
  if (opts.window < 1) throw std::invalid_argument("--window must be >= 1");
  if (opts.cache_entries < 0) {
    throw std::invalid_argument("--cache-entries must be >= 0");
  }
  if (opts.cache_shards < 1) {
    throw std::invalid_argument("--cache-shards must be >= 1");
  }
  if (opts.max_requests < 0) {
    throw std::invalid_argument("--max-requests must be >= 0");
  }
  if (opts.max_queue < 0) {
    throw std::invalid_argument("--max-queue must be >= 0");
  }
  if (opts.shed_policy != "reject" && opts.shed_policy != "degrade") {
    throw std::invalid_argument("--shed-policy must be reject or degrade");
  }
  if (opts.default_deadline < 0) {
    throw std::invalid_argument("--default-deadline must be >= 0");
  }
  if (opts.trace_sample < 1) {
    throw std::invalid_argument("--trace-sample must be >= 1");
  }
  if (opts.top < 1) throw std::invalid_argument("--top must be >= 1");
  const int sources = (opts.pattern_file.empty() ? 0 : 1) +
                      (opts.matrix_file.empty() ? 0 : 1) +
                      (opts.standin.empty() ? 0 : 1);
  if (sources > 1) {
    throw std::invalid_argument(
        "pass at most one of --pattern / --matrix / --standin");
  }
  return opts;
}

machine::MachineModel make_machine(const Options& opts) {
  // One strict lookup for topology and parameters alike: an unknown name
  // is an error here, never a silent fallback to the Lassen calibration.
  return machine::resolve_machine(opts.machine);
}

Topology make_topology(const Options& opts) {
  return make_machine(opts).topology(opts.nodes);
}

ParamSet make_params(const Options& opts) {
  return make_machine(opts).params;
}

core::CommPattern make_workload(const Options& opts, const Topology& topo) {
  if (!opts.pattern_file.empty()) {
    core::CommPattern p = core::read_pattern_file(opts.pattern_file);
    if (p.num_gpus() != topo.num_gpus()) {
      throw std::invalid_argument("pattern GPU count (" +
                                  std::to_string(p.num_gpus()) +
                                  ") does not match the machine (" +
                                  std::to_string(topo.num_gpus()) + ")");
    }
    return p;
  }
  const int gpus = opts.gpus > 0 ? opts.gpus : topo.num_gpus();
  if (gpus != topo.num_gpus()) {
    throw std::invalid_argument("--gpus must equal the machine's GPU count (" +
                                std::to_string(topo.num_gpus()) + ")");
  }
  if (!opts.matrix_file.empty()) {
    const sparse::CsrMatrix m =
        sparse::read_matrix_market_file(opts.matrix_file);
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(m.rows(), gpus);
    return sparse::spmv_comm_pattern(m, part, topo);
  }
  if (!opts.standin.empty()) {
    const sparse::CsrMatrix m = sparse::generate_standin(
        sparse::profile_by_name(opts.standin), 0.01, opts.seed);
    const sparse::RowPartition part =
        sparse::RowPartition::contiguous(m.rows(), gpus);
    return sparse::spmv_comm_pattern(m, part, topo, /*bytes_per_value=*/800);
  }
  return core::random_pattern(topo, 16, 4096, opts.seed);
}

namespace {

void emit(const Options& opts, std::ostream& os, const Table& table,
          const std::string& title) {
  if (opts.csv) {
    os << "# " << title << "\n";
    table.print_csv(os);
  } else {
    benchutil::banner(os, title);
    table.print(os);
  }
}

core::MeasureOptions measure_options(const Options& opts,
                                     const Topology& topo) {
  core::MeasureOptions mopts;
  mopts.reps = opts.reps;
  mopts.seed = opts.seed;
  mopts.batch = opts.batch;
  mopts.noise_sigma = 0.02;
  if (opts.taper > 0.0) {
    FatTreeConfig cfg;
    cfg.taper = opts.taper;
    cfg.nodes_per_pod = std::max(1, std::min(18, topo.num_nodes() / 2));
    mopts.fabric = cfg;
  }
  return mopts;
}

/// Load + compile --faults against the resolved machine; nullopt when no
/// plan was requested.  Loading/scope errors are std::invalid_argument
/// (exit 2): a bad fault file is an input error, not a simulation failure.
std::optional<FaultModel> make_faults(const Options& opts,
                                      const Topology& topo,
                                      const ParamSet& params) {
  if (opts.faults_file.empty()) return std::nullopt;
  const fault::FaultPlan plan = fault::load_fault_file(opts.faults_file);
  try {
    return plan.compile(topo, params);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(opts.faults_file + ": " + e.what());
  }
}

int cmd_compare(const Options& opts, std::ostream& os) {
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const ParamSet& params = mach.params;
  const core::CommPattern pattern = make_workload(opts, topo);
  const std::optional<FaultModel> faults = make_faults(opts, topo, params);
  core::MeasureOptions mopts = measure_options(opts, topo);
  if (faults) mopts.faults = &*faults;

  Table table({"strategy", "time [s]", "net msgs", "net bytes", "vs best"});
  struct Row {
    std::string name;
    double time = 0.0;
    core::PlanSummary summary;
  };
  // One sweep cell per strategy; each cell compiles and simulates its plan.
  const std::vector<core::StrategyConfig> strategies =
      core::all_strategies();
  const std::vector<Row> rows = runtime::sweep(
      strategies,
      [&](const core::StrategyConfig& cfg) {
        const core::CommPlan plan =
            core::build_plan(pattern, topo, params, cfg);
        const core::MeasureResult r = core::measure(plan, topo, params, mopts);
        return Row{cfg.name(), r.max_avg, r.summary};
      },
      runtime::SweepOptions{opts.jobs, /*progress=*/false, nullptr});
  double best = 1e99;
  for (const Row& r : rows) best = std::min(best, r.time);
  for (const Row& r : rows) {
    table.add_row({r.name, Table::sci(r.time),
                   std::to_string(r.summary.internode_messages),
                   std::to_string(r.summary.internode_bytes),
                   Table::num(r.time / best, 2)});
  }
  emit(opts, os, table, "strategy comparison (" + mach.name + ", " +
                            std::to_string(opts.nodes) + " nodes)");
  return 0;
}

int cmd_advise(const Options& opts, std::ostream& os) {
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const core::Advisor advisor(topo, mach.params);
  const core::CommPattern pattern = make_workload(opts, topo);
  Table table({"rank", "strategy", "predicted [s]", "relative"});
  int rank = 1;
  for (const core::Recommendation& r : advisor.rank(pattern)) {
    table.add_row({std::to_string(rank++), r.config.name(),
                   Table::sci(r.predicted_seconds), Table::num(r.relative, 2)});
  }
  emit(opts, os, table, "model-driven ranking");
  return 0;
}

int cmd_model(const Options& opts, std::ostream& os) {
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const ParamSet& params = mach.params;
  const core::CommPattern pattern = make_workload(opts, topo);
  const core::PatternStats st = core::compute_stats(pattern, topo);
  Table stats_table({"Table 7 statistic", "value"});
  stats_table.add_row({"s_proc [B]", std::to_string(st.s_proc)});
  stats_table.add_row({"s_node [B]", std::to_string(st.s_node)});
  stats_table.add_row({"s_node->node [B]", std::to_string(st.s_node_node)});
  stats_table.add_row({"m_proc", std::to_string(st.m_proc)});
  stats_table.add_row({"m_proc->node", std::to_string(st.m_proc_node)});
  stats_table.add_row({"m_node->node", std::to_string(st.m_node_node)});
  stats_table.add_row({"dedup s_node [B]", std::to_string(st.dedup_s_node)});
  emit(opts, os, stats_table, "pattern statistics");

  // Model evaluation fans across the sweep pool too -- cheap per cell, but
  // the same --jobs plumbing as `compare`, and rows stay in Table 5 order.
  const std::vector<core::StrategyConfig> strategies =
      core::all_strategies();
  const std::vector<double> predicted = runtime::sweep(
      strategies,
      [&](const core::StrategyConfig& cfg) {
        return core::models::predict(cfg, st, params, topo);
      },
      runtime::SweepOptions{opts.jobs, /*progress=*/false, nullptr});
  Table table({"strategy", "predicted [s]"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    table.add_row({strategies[i].name(), Table::sci(predicted[i])});
  }
  emit(opts, os, table, "Table 6 model predictions");
  return 0;
}

int cmd_params(const Options& opts, std::ostream& os) {
  const ParamSet params = make_params(opts);
  Table table({"space", "protocol", "path", "alpha [s]", "beta [s/B]"});
  for (const MemSpace space : {MemSpace::Host, MemSpace::Device}) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      for (int path = 0; path < params.taxonomy.num_classes(); ++path) {
        const PostalParams& pp = params.messages.get(space, proto, path);
        table.add_row({to_string(space), to_string(proto),
                       params.taxonomy.cls(path).name, Table::sci(pp.alpha),
                       Table::sci(pp.beta)});
      }
    }
  }
  emit(opts, os, table, "message parameters (" + params.name + ")");

  Table copies({"procs", "dir", "alpha [s]", "beta [s/B]"});
  for (const int np : {1, params.copies.shared_procs}) {
    for (const CopyDir dir : {CopyDir::HostToDevice, CopyDir::DeviceToHost}) {
      const PostalParams cp = copy_params_for(params.copies, dir, np);
      copies.add_row({std::to_string(np), to_string(dir),
                      Table::sci(cp.alpha), Table::sci(cp.beta)});
    }
  }
  emit(opts, os, copies, "copy parameters");
  os << "R_N^-1 = " << Table::sci(params.injection.inv_rate_cpu)
     << " s/B; eager limit = " << params.thresholds.eager_max << " B\n";
  return 0;
}

// `trace report` / `trace export`: offline inspection of a
// hetcomm.trace.v1 artifact (written by `serve --trace` / `report
// --trace` or snapshotted live via the serve {"cmd": "trace"} line).
int cmd_trace_artifact(const Options& opts, std::ostream& os) {
  if (opts.in_file.empty()) {
    throw std::invalid_argument("trace " + opts.action +
                                " requires --in TRACE.json\n" + usage());
  }
  std::ifstream in(opts.in_file);
  if (!in) {
    throw std::invalid_argument("trace: cannot open " + opts.in_file);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue doc = obs::JsonValue::parse(buffer.str());
  if (!doc.is_object() || doc.find("schema") == nullptr ||
      doc.at("schema").as_string() != obs::kTraceSchema) {
    throw std::invalid_argument(opts.in_file + ": not a " +
                                std::string(obs::kTraceSchema) +
                                " artifact");
  }

  if (opts.action == "export") {
    if (opts.out_file.empty()) {
      obs::write_chrome_trace_artifact(os, doc);
      return 0;
    }
    std::ofstream out(opts.out_file);
    if (!out) {
      throw std::runtime_error("trace export: cannot open " + opts.out_file);
    }
    obs::write_chrome_trace_artifact(out, doc);
    os << "chrome trace written to " << opts.out_file
       << " (open in Perfetto / chrome://tracing)\n";
    return 0;
  }

  // report: per-trace span trees, slowest roots first.
  const obs::JsonValue& spans = doc.at("spans");
  const std::size_t n = spans.size();
  std::vector<std::vector<std::size_t>> kids(n);
  std::vector<std::size_t> roots;
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> by_id;
  for (std::size_t i = 0; i < n; ++i) {
    const obs::JsonValue& s = spans.at(i);
    by_id.emplace(std::make_pair(s.at("trace").as_int(), s.at("span").as_int()),
                  i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const obs::JsonValue& s = spans.at(i);
    const std::int64_t parent = s.at("parent").as_int();
    const auto it =
        parent == 0 ? by_id.end()
                    : by_id.find(std::make_pair(s.at("trace").as_int(), parent));
    // A span whose parent was dropped from the ring reports as a root.
    if (it == by_id.end() || it->second == i) {
      roots.push_back(i);
    } else {
      kids[it->second].push_back(i);
    }
  }
  const auto duration = [&](std::size_t i) {
    const obs::JsonValue& s = spans.at(i);
    return s.at("t_end").as_double() - s.at("t_start").as_double();
  };
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    return duration(a) > duration(b);
  });

  const obs::JsonValue& meta = doc.at("meta");
  os << "hetcomm.trace.v1: " << n << " spans, "
     << meta.at("dropped").as_int() << " dropped, sample period "
     << meta.at("sample_period").as_int() << "; " << roots.size()
     << " root spans, slowest "
     << std::min<std::size_t>(roots.size(),
                              static_cast<std::size_t>(opts.top))
     << " shown\n";

  const std::function<void(std::size_t, int)> print = [&](std::size_t i,
                                                          int depth) {
    const obs::JsonValue& s = spans.at(i);
    os << std::string(static_cast<std::size_t>(2 * depth), ' ')
       << s.at("name").as_string() << "  " << Table::sci(duration(i)) << " s";
    if (const obs::JsonValue* attrs = s.find("attrs")) {
      std::string text;
      for (const auto& [key, value] : attrs->members()) {
        if (!text.empty()) text += ", ";
        text += key + "=" +
                (value.is_string() ? value.as_string()
                                   : std::to_string(value.as_int()));
      }
      if (!text.empty()) os << "  {" << text << "}";
    }
    os << "\n";
    for (const std::size_t k : kids[i]) print(k, depth + 1);
  };
  int shown = 0;
  for (const std::size_t r : roots) {
    if (shown++ >= opts.top) break;
    os << "-- trace " << spans.at(r).at("trace").as_int() << " --\n";
    print(r, 0);
  }
  return 0;
}

int cmd_trace(const Options& opts, std::ostream& os) {
  if (!opts.action.empty()) return cmd_trace_artifact(opts, os);
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const ParamSet& params = mach.params;
  const core::CommPattern pattern = make_workload(opts, topo);
  const core::StrategyConfig cfg = core::parse_strategy(opts.strategy);
  const core::CommPlan plan = core::build_plan(pattern, topo, params, cfg);
  const std::optional<FaultModel> faults = make_faults(opts, topo, params);

  Engine engine(topo, params, NoiseModel(opts.seed, 0.0));
  if (faults) engine.set_faults(&*faults);
  engine.set_tracing(true);
  core::run_plan(engine, plan);
  if (opts.csv) {
    write_chrome_trace(os, engine.trace(), topo);
  } else {
    os << "strategy: " << cfg.name() << ", makespan "
       << Table::sci(engine.max_clock()) << " s\n";
    write_ascii_gantt(os, engine.trace());
  }
  return 0;
}

// Fig 4.2-style breakdown from *measured* simulation metrics: where each
// phase of one strategy's plan spends the makespan, what traffic each path
// class carries, and where transfers queue.
int cmd_report(const Options& opts, std::ostream& os) {
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const ParamSet& params = mach.params;
  const core::CommPattern pattern = make_workload(opts, topo);
  const core::StrategyConfig cfg = core::parse_strategy(opts.strategy);
  const core::CommPlan plan = core::build_plan(pattern, topo, params, cfg);

  const std::optional<FaultModel> faults = make_faults(opts, topo, params);
  core::MeasureOptions mopts = measure_options(opts, topo);
  mopts.jobs = opts.jobs;
  mopts.collect_metrics = true;
  if (faults) mopts.faults = &*faults;
  std::optional<obs::Tracer> tracer;
  if (!opts.trace_file.empty()) {
    obs::Tracer::Options topts;
    const int jobs = opts.jobs == 0 ? runtime::hardware_jobs() : opts.jobs;
    topts.rings = std::max(1, std::min(jobs, opts.reps));
    topts.sample_period = opts.trace_sample;
    tracer.emplace(topts);
    for (int w = 0; w < topts.rings; ++w) {
      tracer->name_track(static_cast<std::uint16_t>(w),
                         "worker " + std::to_string(w));
    }
    mopts.tracer = &*tracer;
  }
  core::MeasureResult result = core::measure(plan, topo, params, mopts);
  obs::RunReport& report = *result.metrics;
  report.name = cfg.name() + " (" + mach.name + ", " +
                std::to_string(opts.nodes) + " nodes)";

  os << "strategy: " << cfg.name() << ", " << report.reps
     << " reps, makespan mean " << Table::sci(report.makespan.mean)
     << " s (p99 " << Table::sci(report.makespan.p99) << " s), max-avg "
     << Table::sci(report.max_avg) << " s\n";

  Table phases({"phase", "mean [s]", "p50 [s]", "p99 [s]", "share"});
  for (const obs::PhaseStat& p : report.phases) {
    phases.add_row({std::to_string(p.phase), Table::sci(p.makespan.mean),
                    Table::sci(p.makespan.p50), Table::sci(p.makespan.p99),
                    Table::num(100.0 * p.share, 1) + "%"});
  }
  emit(opts, os, phases, "phase breakdown (measured)");

  Table traffic({"path", "protocol", "messages", "bytes"});
  for (const obs::TrafficStat& t : report.traffic) {
    traffic.add_row({t.path, t.proto, std::to_string(t.messages),
                     std::to_string(t.bytes)});
  }
  traffic.add_row({"total", "", std::to_string(report.total_messages),
                   std::to_string(report.total_bytes)});
  emit(opts, os, traffic, "traffic by path class");

  Table contention(
      {"resource", "waits", "wait p50 [s]", "wait p99 [s]", "busy [s]"});
  for (const obs::ResourceStat& r : report.resources) {
    contention.add_row({r.resource, std::to_string(r.waits),
                        Table::sci(r.wait_p50), Table::sci(r.wait_p99),
                        Table::sci(r.occupancy_seconds)});
  }
  emit(opts, os, contention, "contention by resource");

  if (!report.nic.empty()) {
    // Rail balance: striped runs should show near-even striped bytes
    // across each node's lanes; a skewed column means the stripe lowering
    // or the machine's rail count is off.
    Table nics({"nic", "node", "lane", "bytes", "striped", "stripe share"});
    for (const obs::NicStat& n : report.nic) {
      const double share =
          n.bytes_injected > 0
              ? 100.0 * static_cast<double>(n.striped_bytes) /
                    static_cast<double>(n.bytes_injected)
              : 0.0;
      nics.add_row({std::to_string(n.nic), std::to_string(n.node),
                    std::to_string(n.lane), std::to_string(n.bytes_injected),
                    std::to_string(n.striped_bytes),
                    Table::num(share, 1) + "%"});
    }
    emit(opts, os, nics, "NIC egress by rail (per repetition)");
  }

  if (!report.copies.empty()) {
    Table copies({"dir", "sharing", "count", "bytes", "time [s]"});
    for (const obs::CopyStat& c : report.copies) {
      copies.add_row({c.dir, c.sharing, std::to_string(c.count),
                      std::to_string(c.bytes), Table::sci(c.seconds)});
    }
    emit(opts, os, copies, "host<->device copies");
  }

  if (report.has_faults()) {
    Table fault_table({"fault metric", "value"});
    fault_table.add_row({"retries", std::to_string(report.faults.retries)});
    fault_table.add_row(
        {"retry delay [s]", Table::sci(report.faults.retry_seconds)});
    fault_table.add_row(
        {"NIC failovers", std::to_string(report.faults.failovers)});
    fault_table.add_row(
        {"degraded msgs", std::to_string(report.faults.degraded_msgs)});
    for (const obs::FaultPathStat& f : report.faults.degraded) {
      fault_table.add_row({"degraded time [s] (" + f.path + ")",
                           Table::sci(f.degraded_seconds)});
    }
    for (std::size_t r = 0; r < report.faults.rail_retries.size(); ++r) {
      if (report.faults.rail_retries[r] == 0) continue;
      fault_table.add_row(
          {"retries (rail " + std::to_string(r) + ")",
           std::to_string(report.faults.rail_retries[r])});
    }
    emit(opts, os, fault_table, "fault activity (per sampled repetition)");
  }

  if (!opts.metrics_file.empty()) {
    benchutil::write_metrics_file(opts.metrics_file, {report});
    os << "metrics report written to " << opts.metrics_file << "\n";
  }
  if (tracer) {
    std::ofstream out(opts.trace_file);
    if (!out) {
      throw std::runtime_error("report: cannot open " + opts.trace_file);
    }
    tracer->write_json(out);
    os << "trace written to " << opts.trace_file
       << " (inspect with `hetcomm trace report --in " << opts.trace_file
       << "`)\n";
  }
  return 0;
}

// Does the nominal (fault-free) Table 5 winner survive a degradation
// ensemble?  Runs fault::ranking_stability and prints the per-strategy
// record; --out writes the machine-readable hetcomm.stability.v1 report.
int cmd_ranking_stability(const Options& opts, std::ostream& os) {
  if (opts.faults_file.empty()) {
    throw std::invalid_argument(
        "ranking-stability requires --faults FILE.json\n" + usage());
  }
  const machine::MachineModel mach = make_machine(opts);
  const Topology topo = mach.topology(opts.nodes);
  const ParamSet& params = mach.params;
  const core::CommPattern pattern = make_workload(opts, topo);
  fault::FaultPlan plan = fault::load_fault_file(opts.faults_file);
  if (plan.name.empty()) plan.name = opts.faults_file;

  fault::StabilityOptions sopts;
  sopts.instances = opts.fault_seeds;
  sopts.measure = measure_options(opts, topo);
  sopts.measure.jobs = opts.jobs;
  fault::StabilityReport report;
  try {
    report = fault::ranking_stability(pattern, topo, params, plan, sopts);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(opts.faults_file + ": " + e.what());
  }

  os << "fault plan: " << report.fault_plan << " (" << report.instances
     << " instance" << (report.instances == 1 ? "" : "s") << ", machine "
     << mach.name << ", " << opts.nodes << " nodes)\n";
  os << "nominal winner: " << report.nominal.winner << "\n";

  Table table({"strategy", "nominal [s]", "wins", "failures"});
  for (std::size_t i = 0; i < report.strategies.size(); ++i) {
    const fault::StrategyOutcome& nom = report.nominal.outcomes[i];
    table.add_row({nom.strategy,
                   nom.failed ? std::string("failed") : Table::sci(nom.max_avg),
                   std::to_string(report.strategies[i].wins),
                   std::to_string(report.strategies[i].failures)});
  }
  emit(opts, os, table, "ranking stability under '" + report.fault_plan + "'");
  os << "winner survived " << report.winner_survived << "/"
     << report.instances << " instances (survival rate "
     << Table::num(100.0 * report.survival_rate, 1) << "%)\n";
  if (report.plans_precompiled) {
    os << "plans compiled once (" << Table::sci(report.compile_seconds)
       << " s), reused across the ensemble (saved "
       << Table::sci(report.saved_compile_seconds) << " s of recompiles)\n";
  }

  if (!opts.out_file.empty()) {
    std::ofstream out(opts.out_file);
    if (!out) {
      throw std::runtime_error("ranking-stability: cannot open " +
                               opts.out_file);
    }
    report.to_json().dump(out);
    out << "\n";
    os << "stability report written to " << opts.out_file << "\n";
  }
  return 0;
}

// Long-running advisor service: NDJSON requests on stdin (or a unix
// socket with --socket), one JSON response line each.  The heavy lifting
// -- plan caching, window batching, metrics -- lives in serve::Service;
// this driver only maps flags and writes the metrics artifact on exit.
int cmd_serve(const Options& opts, std::ostream& os) {
  serve::ServiceOptions sopts;
  sopts.jobs = opts.jobs;
  sopts.window = opts.window;
  sopts.cache_shards = opts.cache_shards;
  sopts.cache_capacity = static_cast<std::size_t>(opts.cache_entries);
  sopts.batch = opts.batch;
  sopts.max_requests = opts.max_requests;
  sopts.max_queue = static_cast<std::size_t>(opts.max_queue);
  sopts.shed_policy = opts.shed_policy == "degrade"
                          ? serve::ShedPolicy::Degrade
                          : serve::ShedPolicy::Reject;
  sopts.default_deadline_ms = opts.default_deadline;
  sopts.default_machine = opts.machine;
  sopts.trace = !opts.trace_file.empty();
  sopts.trace_sample = opts.trace_sample;
  serve::Service service(std::move(sopts));
  if (!opts.socket_path.empty()) {
    service.run_socket(opts.socket_path);
  } else {
    // Unsynced cin owns its own buffer, so Service::run can see how many
    // request lines are already buffered and batch them into one window;
    // with stdio sync on, in_avail() is always 0 and every window is one
    // request.
    std::ios::sync_with_stdio(false);
    service.run(std::cin, os);
  }
  if (!opts.metrics_file.empty()) {
    std::ofstream out(opts.metrics_file);
    if (!out) {
      throw std::runtime_error("serve: cannot open " + opts.metrics_file);
    }
    service.metrics_json().dump(out);
    out << "\n";
  }
  if (!opts.trace_file.empty()) {
    std::ofstream out(opts.trace_file);
    if (!out) {
      throw std::runtime_error("serve: cannot open " + opts.trace_file);
    }
    service.trace_json().dump(out);
    out << "\n";
  }
  return 0;
}

std::string predicate_str(std::int8_t v) {
  if (v < 0) return "*";
  return v ? "yes" : "no";
}

int cmd_machine(const Options& opts, std::ostream& os) {
  if (opts.action == "list") {
    Table table({"machine", "shape", "paths", "description"});
    for (const std::string& name : machine::preset_machine_names()) {
      const machine::MachineModel m = machine::preset_machine(name);
      table.add_row({m.name,
                     std::to_string(m.node.sockets_per_node) + "s x " +
                         std::to_string(m.node.gpus_per_socket) + "g x " +
                         std::to_string(m.node.cores_per_socket) + "c",
                     std::to_string(m.params.taxonomy.num_classes()),
                     m.description});
    }
    emit(opts, os, table, "machine presets (--machine also takes FILE.json)");
    return 0;
  }
  if (opts.action == "describe") {
    const machine::MachineModel m = make_machine(opts);
    os << "machine: " << m.name << "\n";
    if (!m.description.empty()) os << "  " << m.description << "\n";
    os << "node shape: " << m.node.sockets_per_node << " sockets x "
       << m.node.gpus_per_socket << " GPUs x " << m.node.cores_per_socket
       << " cores\n";
    const int rails = std::max(1, m.params.injection.nics_per_node);
    os << "NIC rails: " << rails << " lane(s) per node";
    if (m.params.injection.inv_rate_cpu > 0.0) {
      os << "; per-lane rate " << Table::sci(
             1.0 / m.params.injection.inv_rate_cpu) << " B/s staged";
      if (m.params.injection.inv_rate_gpu > 0.0) {
        os << ", " << Table::sci(1.0 / m.params.injection.inv_rate_gpu)
           << " B/s device-aware";
      }
    }
    os << "\n";
    os << "thresholds: short <= " << m.params.thresholds.short_max
       << " B, eager <= " << m.params.thresholds.eager_max << " B\n";
    // Per-path-class rail/lane view: off-node classes fan out across the
    // node's NIC rails (home lane = socket % rails, stripable above the
    // rendezvous switch point); on-node classes ride the port pair and
    // never touch a NIC lane.
    Table classes(
        {"id", "path class", "locality", "rails", "home lane", "striping"});
    for (int c = 0; c < m.params.taxonomy.num_classes(); ++c) {
      const PathClassDef& def = m.params.taxonomy.cls(c);
      const bool off = def.locality == PathClass::OffNode;
      std::string lane = "port pair (no NIC)";
      std::string stripe = "n/a (on-node)";
      if (off) {
        lane = rails > 1
                   ? "node*" + std::to_string(rails) + " + socket%" +
                         std::to_string(rails)
                   : "node";
        stripe = rails > 1 ? "rendezvous msgs (> " +
                                 std::to_string(m.params.thresholds.eager_max) +
                                 " B)"
                           : "n/a (single rail)";
      }
      classes.add_row({std::to_string(c), def.name, to_string(def.locality),
                       off ? std::to_string(rails) : "1", lane, stripe});
    }
    emit(opts, os, classes, "path classes (rail/lane topology)");
    Table rules({"#", "same node", "same socket", "both GPU owners", "path"});
    int idx = 0;
    for (const PathRule& r : m.params.taxonomy.rules()) {
      rules.add_row({std::to_string(idx++), predicate_str(r.same_node),
                     predicate_str(r.same_socket),
                     predicate_str(r.both_gpu_owners),
                     m.params.taxonomy.cls(r.path).name});
    }
    emit(opts, os, rules, "placement -> path rules (first match wins)");
    return 0;
  }
  if (opts.action == "export") {
    const machine::MachineModel m = make_machine(opts);
    const obs::JsonValue doc = machine::to_json(m);
    if (opts.out_file.empty()) {
      doc.dump(os);
      os << "\n";
    } else {
      std::ofstream out(opts.out_file);
      if (!out) {
        throw std::runtime_error("machine export: cannot open " +
                                 opts.out_file);
      }
      doc.dump(out);
      out << "\n";
      os << "machine '" << m.name << "' written to " << opts.out_file << "\n";
    }
    return 0;
  }
  if (opts.action == "validate") {
    const machine::MachineModel m = make_machine(opts);
    m.validate();
    os << "machine '" << m.name << "' ("
       << m.params.taxonomy.num_classes() << " path classes): OK\n";
    return 0;
  }
  throw std::logic_error("unreachable machine action");
}

}  // namespace

int run(const Options& opts, std::ostream& os) {
  if (opts.command == "compare") return cmd_compare(opts, os);
  if (opts.command == "advise") return cmd_advise(opts, os);
  if (opts.command == "model") return cmd_model(opts, os);
  if (opts.command == "params") return cmd_params(opts, os);
  if (opts.command == "trace") return cmd_trace(opts, os);
  if (opts.command == "report") return cmd_report(opts, os);
  if (opts.command == "machine") return cmd_machine(opts, os);
  if (opts.command == "ranking-stability") {
    return cmd_ranking_stability(opts, os);
  }
  if (opts.command == "serve") return cmd_serve(opts, os);
  throw std::logic_error("unreachable command");
}

int main_guarded(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  try {
    const Options opts = Options::parse(args);
    return run(opts, out);
  } catch (const std::invalid_argument& e) {
    // Usage / input errors: bad flags, unknown machines, malformed JSON.
    err << "hetcomm: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Simulation failures (FaultAbort and friends): still a structured
    // one-line diagnostic, but distinguishable from input errors.
    err << "hetcomm: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace hetcomm::cli
