#pragma once
// hetcomm command-line interface (library part, testable without a process).
//
// Subcommands:
//   compare  run every strategy on a pattern/matrix and print the ranking
//   advise   model-driven recommendation without simulation
//   model    print the Table 6 model decomposition for a pattern
//   params   print a machine's calibrated parameter set
//   trace    execute one strategy and dump a Chrome-tracing JSON / Gantt;
//            `trace report --in T.json` prints the span-tree breakdown of
//            a hetcomm.trace.v1 artifact (top-k slowest requests) and
//            `trace export --in T.json` converts one to Chrome/Perfetto
//            trace-event JSON (see docs/tracing.md)
//   report   measure one strategy with metrics and print the per-phase /
//            per-path / contention breakdown (optionally write the
//            hetcomm.metrics.v1 JSON with --metrics FILE)
//   machine  list/describe/export/validate machine descriptions
//            (hetcomm.machine.v1, see docs/machines.md)
//   ranking-stability
//            sweep a fault-plan ensemble (--faults, --fault-seeds) across
//            every Table 5 strategy and report how often the nominal
//            winner survives (hetcomm.stability.v1 with --out FILE; see
//            docs/faults.md)
//   serve    persistent strategy-advisor service: NDJSON requests on
//            stdin/stdout or a unix socket (--socket), with a sharded
//            compiled-plan cache and batched request execution (see
//            docs/serve.md; --metrics FILE writes the serve artifact on
//            exit)
//
// Common flags:
//   --machine NAME|FILE.json                 (default lassen; presets:
//                                            lassen summit frontier delta
//                                            nvisland)
//   --nodes N                                (default 8)
//   --pattern FILE.pattern | --matrix FILE.mtx | --standin NAME
//   --gpus N          partition width for matrix inputs (default all GPUs)
//   --strategy NAME   (trace, report; names per StrategyConfig::name())
//   --taper T         attach a tapered fat-tree fabric
//   --jobs N          sweep/measure worker threads (default: hardware)
//   --metrics FILE    (report) also write the JSON run report
//   --faults FILE.json  attach a hetcomm.fault.v1 degradation plan
//                       (compare, trace, report, ranking-stability)
//   --fault-seeds N   (ranking-stability) ensemble size (default 4)
//   --trace FILE      (serve, report) write the hetcomm.trace.v1 span
//                     artifact on exit; --trace-sample N keeps every Nth
//                     trace
//   --in FILE         (trace report/export) the artifact to inspect
//   --top K           (trace report) slowest span trees to print
//   --reps N  --seed S  --csv

#include <iosfwd>
#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"
#include "machine/machine.hpp"

namespace hetcomm::cli {

struct Options {
  std::string command;
  std::string action;  ///< `machine`/`trace` action (list/.../report/export)
  std::string machine = "lassen";
  std::string out_file;  ///< `machine export`: output path ("" = stdout)
  int nodes = 8;
  std::string pattern_file;
  std::string matrix_file;
  std::string standin;
  int gpus = 0;  ///< 0 = all GPUs of the machine
  std::string strategy = "split+MD";
  double taper = 0.0;  ///< 0 = no fabric
  int reps = 15;
  int jobs = 0;        ///< worker threads; 0 = hardware concurrency
  int batch = 0;       ///< repetition lane width; 0 = auto, 1 = serial
  std::uint64_t seed = 1;
  bool csv = false;
  std::string metrics_file;  ///< report/serve: also write the JSON metrics
  std::string faults_file;   ///< hetcomm.fault.v1 plan ("" = unfaulted)
  int fault_seeds = 4;       ///< ranking-stability: ensemble size
  std::string socket_path;   ///< serve: unix socket ("" = stdin/stdout)
  int window = 64;           ///< serve: max requests per batch window
  std::int64_t cache_entries = 256;  ///< serve: plan cache capacity (0 = off)
  int cache_shards = 8;      ///< serve: plan cache shards
  std::int64_t max_requests = 0;  ///< serve: stop after N requests (0 = inf)
  std::int64_t max_queue = 0;  ///< serve: pending-queue bound (0 = unbounded)
  std::string shed_policy = "reject";  ///< serve: reject | degrade
  std::int64_t default_deadline = 0;  ///< serve: default deadline_ms (0 = off)
  std::string trace_file;    ///< serve/report: write hetcomm.trace.v1 spans
  std::uint64_t trace_sample = 1;  ///< keep every Nth trace (1 = all)
  std::string in_file;       ///< `trace report`/`trace export`: input artifact
  int top = 10;              ///< `trace report`: slowest span trees shown

  /// Parse argv (excluding the program name).  Throws std::invalid_argument
  /// with a usage-style message on errors.
  static Options parse(const std::vector<std::string>& args);
};

/// Resolve --machine: a preset name or a hetcomm.machine.v1 JSON file.
/// The single machine lookup every subcommand shares; unknown names throw
/// std::invalid_argument (the hetcomm binary exits 2 with the message).
[[nodiscard]] machine::MachineModel make_machine(const Options& opts);

/// Convenience projections of make_machine (kept for callers that only
/// need one half; both resolve through the same strict lookup).
[[nodiscard]] Topology make_topology(const Options& opts);
[[nodiscard]] ParamSet make_params(const Options& opts);

/// Load/generate the workload pattern per the options (exactly one of
/// --pattern / --matrix / --standin; --standin also accepts the six
/// Figure 5.1 names).  Defaults to a random pattern when none is given.
[[nodiscard]] core::CommPattern make_workload(const Options& opts,
                                              const Topology& topo);

/// Execute the requested subcommand, writing human/CSV output to `os`.
/// Returns a process exit code.
int run(const Options& opts, std::ostream& os);

/// Usage text.
[[nodiscard]] std::string usage();

/// The hetcomm process entry point with the exit-code contract applied:
/// 0 on success, 2 on usage/input errors (std::invalid_argument), 3 on
/// simulation failures (any other std::exception, including FaultAbort) --
/// always with a one-line "hetcomm: ..." diagnostic on `err`, never an
/// abort.  The binary's main() is a thin wrapper; tests drive this
/// directly.
int main_guarded(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

}  // namespace hetcomm::cli
