#include "core/advisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace hetcomm::core {

std::vector<Recommendation> Advisor::rank(const CommPattern& pattern,
                                          const AdvisorOptions& options) const {
  const PatternStats stats = compute_stats(pattern, topo_);
  std::vector<Recommendation> out;
  for (const StrategyConfig& cfg : all_strategies()) {
    if (options.staged_only && cfg.transport == MemSpace::Device) continue;
    out.push_back(
        {cfg, models::predict(cfg, stats, params_, topo_, options.predict),
         1.0});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.predicted_seconds < b.predicted_seconds;
                   });
  if (!out.empty() && out.front().predicted_seconds > 0.0) {
    for (Recommendation& r : out) {
      r.relative = r.predicted_seconds / out.front().predicted_seconds;
    }
  }
  return out;
}

Recommendation Advisor::best(const CommPattern& pattern,
                             const AdvisorOptions& options) const {
  const std::vector<Recommendation> ranked = rank(pattern, options);
  if (ranked.empty()) {
    throw std::logic_error("Advisor::best: no strategies to rank");
  }
  return ranked.front();
}

}  // namespace hetcomm::core
