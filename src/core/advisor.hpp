#pragma once
// Model-driven strategy selection.
//
// Given a communication pattern and a machine, rank all Table 5 strategies
// by predicted time and recommend the cheapest.  This operationalizes the
// paper's conclusion that the best strategy depends on message counts,
// sizes, and destination-node fan-out.

#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/models/strategy_models.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core {

struct Recommendation {
  StrategyConfig config;
  double predicted_seconds = 0.0;
  /// Predicted slowdown relative to the best strategy (1.0 for the winner).
  double relative = 1.0;
};

struct AdvisorOptions {
  models::PredictOptions predict;
  /// Exclude device-aware variants (e.g. when CUDA-aware MPI is absent).
  bool staged_only = false;
};

class Advisor {
 public:
  Advisor(const Topology& topo, ParamSet params)
      : topo_(topo), params_(std::move(params)) {}

  /// All strategies ranked fastest-first.
  [[nodiscard]] std::vector<Recommendation> rank(
      const CommPattern& pattern, const AdvisorOptions& options = {}) const;

  /// The predicted-fastest strategy.
  [[nodiscard]] Recommendation best(const CommPattern& pattern,
                                    const AdvisorOptions& options = {}) const;

 private:
  Topology topo_;
  ParamSet params_;
};

}  // namespace hetcomm::core
