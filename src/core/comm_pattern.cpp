#include "core/comm_pattern.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

namespace hetcomm::core {

CommPattern::CommPattern(int num_gpus) {
  if (num_gpus <= 0) {
    throw std::invalid_argument("CommPattern: num_gpus must be positive");
  }
  sends_.resize(static_cast<std::size_t>(num_gpus));
}

void CommPattern::check_gpu(int gpu) const {
  if (gpu < 0 || gpu >= num_gpus()) {
    throw std::out_of_range("CommPattern: gpu " + std::to_string(gpu) +
                            " out of range [0," + std::to_string(num_gpus()) +
                            ")");
  }
}

void CommPattern::add(int src_gpu, int dst_gpu, std::int64_t bytes) {
  check_gpu(src_gpu);
  check_gpu(dst_gpu);
  if (bytes < 0) throw std::invalid_argument("CommPattern::add: negative size");
  if (bytes == 0 || src_gpu == dst_gpu) return;
  Cell& cell = sends_[static_cast<std::size_t>(src_gpu)][dst_gpu];
  cell.bytes += bytes;
  ++cell.count;
  total_bytes_ += bytes;
  ++total_messages_;
}

std::vector<GpuMessage> CommPattern::sends_from(int src_gpu) const {
  check_gpu(src_gpu);
  std::vector<GpuMessage> out;
  out.reserve(sends_[static_cast<std::size_t>(src_gpu)].size());
  for (const auto& [dst, cell] : sends_[static_cast<std::size_t>(src_gpu)]) {
    out.push_back({dst, cell.bytes, cell.count});
  }
  return out;
}

std::vector<GpuMessage> CommPattern::recvs_to(int dst_gpu) const {
  check_gpu(dst_gpu);
  std::vector<GpuMessage> out;
  for (int src = 0; src < num_gpus(); ++src) {
    const auto& row = sends_[static_cast<std::size_t>(src)];
    const auto it = row.find(dst_gpu);
    if (it != row.end()) out.push_back({src, it->second.bytes, it->second.count});
  }
  return out;
}

std::int64_t CommPattern::bytes(int src_gpu, int dst_gpu) const {
  check_gpu(src_gpu);
  check_gpu(dst_gpu);
  const auto& row = sends_[static_cast<std::size_t>(src_gpu)];
  const auto it = row.find(dst_gpu);
  return it == row.end() ? 0 : it->second.bytes;
}

std::int64_t CommPattern::send_bytes(int src_gpu) const {
  check_gpu(src_gpu);
  std::int64_t sum = 0;
  for (const auto& [dst, cell] : sends_[static_cast<std::size_t>(src_gpu)]) {
    sum += cell.bytes;
  }
  return sum;
}

std::int64_t CommPattern::recv_bytes(int dst_gpu) const {
  check_gpu(dst_gpu);
  std::int64_t sum = 0;
  for (int src = 0; src < num_gpus(); ++src) sum += bytes(src, dst_gpu);
  return sum;
}

void CommPattern::set_node_dedup(int src_gpu, int dst_node,
                                 std::int64_t bytes) {
  check_gpu(src_gpu);
  if (dst_node < 0) {
    throw std::out_of_range("CommPattern::set_node_dedup: bad node");
  }
  if (bytes < 0) {
    throw std::invalid_argument("CommPattern::set_node_dedup: negative size");
  }
  node_dedup_[{src_gpu, dst_node}] = bytes;
}

std::int64_t CommPattern::node_dedup_bytes(int src_gpu, int dst_node) const {
  const auto it = node_dedup_.find({src_gpu, dst_node});
  return it == node_dedup_.end() ? -1 : it->second;
}

std::vector<std::tuple<int, int, std::int64_t>>
CommPattern::node_dedup_entries() const {
  std::vector<std::tuple<int, int, std::int64_t>> out;
  out.reserve(node_dedup_.size());
  for (const auto& [key, bytes] : node_dedup_) {
    out.emplace_back(key.first, key.second, bytes);
  }
  return out;
}

namespace {

CommPattern filter(const CommPattern& in, const Topology& topo,
                   bool keep_internode) {
  CommPattern out(in.num_gpus());
  for (int src = 0; src < in.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(src).node;
    for (const GpuMessage& m : in.sends_from(src)) {
      const bool crosses = topo.gpu_location(m.dst_gpu).node != src_node;
      if (crosses != keep_internode) continue;
      // Preserve multiplicity: replay count messages of the average size.
      const std::int64_t each = m.bytes / m.count;
      std::int64_t left = m.bytes;
      for (int i = 0; i < m.count; ++i) {
        const std::int64_t b = i + 1 == m.count ? left : each;
        out.add(src, m.dst_gpu, b);
        left -= b;
      }
    }
  }
  return out;
}

}  // namespace

CommPattern CommPattern::internode_only(const Topology& topo) const {
  if (topo.num_gpus() != num_gpus()) {
    throw std::invalid_argument("CommPattern::internode_only: topology mismatch");
  }
  return filter(*this, topo, /*keep_internode=*/true);
}

CommPattern CommPattern::intranode_only(const Topology& topo) const {
  if (topo.num_gpus() != num_gpus()) {
    throw std::invalid_argument("CommPattern::intranode_only: topology mismatch");
  }
  return filter(*this, topo, /*keep_internode=*/false);
}

CommPattern CommPattern::scaled(double factor) const {
  if (factor < 0.0) {
    throw std::invalid_argument("CommPattern::scaled: negative factor");
  }
  CommPattern out(num_gpus());
  for (int src = 0; src < num_gpus(); ++src) {
    for (const GpuMessage& m : sends_from(src)) {
      const double each = static_cast<double>(m.bytes) / m.count * factor;
      const auto each_bytes = static_cast<std::int64_t>(
          std::llround(std::max(1.0, each)));
      for (int i = 0; i < m.count; ++i) out.add(src, m.dst_gpu, each_bytes);
    }
  }
  return out;
}

PatternStats compute_stats(const CommPattern& pattern, const Topology& topo) {
  if (topo.num_gpus() != pattern.num_gpus()) {
    throw std::invalid_argument("compute_stats: topology mismatch");
  }
  PatternStats st;

  const int num_nodes = topo.num_nodes();
  std::vector<int> node_active_gpus(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::int64_t> node_injected(static_cast<std::size_t>(num_nodes), 0);
  std::map<std::pair<int, int>, std::int64_t> pair_bytes;
  std::map<std::pair<int, int>, int> pair_msgs;
  std::vector<std::map<int, bool>> node_dests(static_cast<std::size_t>(num_nodes));

  std::vector<std::int64_t> node_injected_dedup(
      static_cast<std::size_t>(num_nodes), 0);
  std::map<std::pair<int, int>, std::int64_t> pair_bytes_dedup;

  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(src).node;
    std::int64_t proc_bytes = 0;
    std::int64_t proc_bytes_dedup = 0;
    int proc_msgs = 0;
    std::map<int, std::int64_t> per_dest_node;  // payload per dst node
    for (const GpuMessage& m : pattern.sends_from(src)) {
      const int dst_node = topo.gpu_location(m.dst_gpu).node;
      if (dst_node == src_node) continue;
      proc_bytes += m.bytes;
      proc_msgs += m.count;
      per_dest_node[dst_node] += m.bytes;
      node_injected[static_cast<std::size_t>(src_node)] += m.bytes;
      pair_bytes[{src_node, dst_node}] += m.bytes;
      pair_msgs[{src_node, dst_node}] += m.count;
      node_dests[static_cast<std::size_t>(src_node)][dst_node] = true;
      st.total_internode_bytes += m.bytes;
      st.total_internode_messages += m.count;
    }
    for (const auto& [dst_node, payload] : per_dest_node) {
      const std::int64_t dedup = pattern.node_dedup_bytes(src, dst_node);
      const std::int64_t wire = dedup >= 0 ? dedup : payload;
      proc_bytes_dedup += wire;
      node_injected_dedup[static_cast<std::size_t>(src_node)] += wire;
      pair_bytes_dedup[{src_node, dst_node}] += wire;
    }
    st.s_proc = std::max(st.s_proc, proc_bytes);
    st.dedup_s_proc = std::max(st.dedup_s_proc, proc_bytes_dedup);
    st.m_proc = std::max(st.m_proc, proc_msgs);
    st.m_proc_node =
        std::max(st.m_proc_node, static_cast<int>(per_dest_node.size()));
    if (proc_bytes > 0) ++node_active_gpus[static_cast<std::size_t>(src_node)];
  }
  for (const int a : node_active_gpus) {
    st.active_internode_gpus = std::max(st.active_internode_gpus, a);
  }

  for (const std::int64_t b : node_injected) st.s_node = std::max(st.s_node, b);
  for (const std::int64_t b : node_injected_dedup) {
    st.dedup_s_node = std::max(st.dedup_s_node, b);
  }
  for (const auto& [key, b] : pair_bytes) {
    st.s_node_node = std::max(st.s_node_node, b);
  }
  for (const auto& [key, b] : pair_bytes_dedup) {
    st.dedup_s_node_node = std::max(st.dedup_s_node_node, b);
  }
  for (const auto& [key, m] : pair_msgs) {
    st.m_node_node = std::max(st.m_node_node, m);
  }
  for (const auto& dests : node_dests) {
    st.num_internode_nodes =
        std::max(st.num_internode_nodes, static_cast<int>(dests.size()));
  }
  if (st.total_internode_messages > 0) {
    st.typical_msg_bytes =
        st.total_internode_bytes / st.total_internode_messages;
  }
  return st;
}

CommPattern random_pattern(const Topology& topo, int msgs_per_gpu,
                           std::int64_t bytes, std::uint64_t seed) {
  if (msgs_per_gpu < 0) {
    throw std::invalid_argument("random_pattern: negative message count");
  }
  CommPattern pattern(topo.num_gpus());
  if (topo.num_gpus() < 2) return pattern;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, topo.num_gpus() - 2);
  for (int src = 0; src < topo.num_gpus(); ++src) {
    for (int k = 0; k < msgs_per_gpu; ++k) {
      int dst = pick(rng);
      if (dst >= src) ++dst;  // skip self
      pattern.add(src, dst, bytes);
    }
  }
  return pattern;
}

}  // namespace hetcomm::core
