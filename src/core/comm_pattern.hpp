#pragma once
// Irregular point-to-point communication patterns between GPUs.
//
// A CommPattern records, for every source GPU, how many bytes it must
// deliver to every destination GPU -- exactly the information induced by a
// distributed operation such as an SpMV (which off-GPU vector entries each
// GPU needs).  Strategies compile a CommPattern into an executable CommPlan;
// the analytic models consume its summary statistics (paper Table 7).

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "hetsim/topology.hpp"

namespace hetcomm::core {

struct GpuMessage {
  int dst_gpu = -1;
  std::int64_t bytes = 0;  ///< total bytes across all logical messages
  int count = 1;           ///< number of logical messages in this flow
};

class CommPattern {
 public:
  explicit CommPattern(int num_gpus);

  [[nodiscard]] int num_gpus() const noexcept {
    return static_cast<int>(sends_.size());
  }

  /// Record one logical message of `bytes` from src_gpu to dst_gpu.
  /// Repeated adds to the same pair accumulate bytes and multiplicity:
  /// node-aware strategies conglomerate them, while standard communication
  /// keeps them as distinct messages.  Self-messages are ignored (they
  /// never leave the device).  Zero-byte adds are ignored.
  void add(int src_gpu, int dst_gpu, std::int64_t bytes);

  /// Sends of one GPU, ordered by destination GPU.
  [[nodiscard]] std::vector<GpuMessage> sends_from(int src_gpu) const;
  /// Receives of one GPU, ordered by source GPU.
  [[nodiscard]] std::vector<GpuMessage> recvs_to(int dst_gpu) const;

  [[nodiscard]] std::int64_t bytes(int src_gpu, int dst_gpu) const;
  [[nodiscard]] std::int64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::int64_t total_messages() const noexcept {
    return total_messages_;
  }

  /// Total bytes sent by one GPU / received by one GPU.
  [[nodiscard]] std::int64_t send_bytes(int src_gpu) const;
  [[nodiscard]] std::int64_t recv_bytes(int dst_gpu) const;

  /// Restrict to message pairs crossing nodes (resp. staying on a node).
  [[nodiscard]] CommPattern internode_only(const Topology& topo) const;
  [[nodiscard]] CommPattern intranode_only(const Topology& topo) const;

  /// Scale every message size by `factor` (e.g. 0.75 models 25 % duplicate
  /// data removed by a node-aware scheme); sizes round up to >= 1 byte for
  /// nonzero messages.  Deduplication info is not carried over.
  [[nodiscard]] CommPattern scaled(double factor) const;

  // ---- Duplicate-data annotations (paper §2.3, Figure 2.2 right) --------
  //
  // In workloads like SpMV, several GPUs on a destination node often need
  // the *same* source data: standard communication sends it once per
  // destination GPU, while node-aware strategies send each datum once per
  // destination node.  The deduplicated volume cannot be derived from the
  // GPU-to-GPU byte counts alone, so producers (e.g. the SpMV
  // communication-graph extractor) annotate it here.

  /// Record that of all bytes src_gpu sends to GPUs on dst_node, only
  /// `bytes` are distinct.  Must not exceed the summed per-GPU bytes.
  void set_node_dedup(int src_gpu, int dst_node, std::int64_t bytes);
  /// Deduplicated volume for (src_gpu -> dst_node), or -1 when unknown.
  [[nodiscard]] std::int64_t node_dedup_bytes(int src_gpu,
                                              int dst_node) const;
  [[nodiscard]] bool has_dedup_info() const noexcept {
    return !node_dedup_.empty();
  }
  /// All dedup annotations as (src_gpu, dst_node, bytes) tuples.
  [[nodiscard]] std::vector<std::tuple<int, int, std::int64_t>>
  node_dedup_entries() const;

 private:
  void check_gpu(int gpu) const;

  struct Cell {
    std::int64_t bytes = 0;
    int count = 0;
  };
  // sends_[src] maps dst -> flow (ordered map keeps iteration deterministic)
  std::vector<std::map<int, Cell>> sends_;
  // (src_gpu, dst_node) -> deduplicated bytes
  std::map<std::pair<int, int>, std::int64_t> node_dedup_;
  std::int64_t total_bytes_ = 0;
  std::int64_t total_messages_ = 0;
};

/// Summary statistics feeding the analytic models (paper Table 7 plus the
/// quantities needed by the standard max-rate model).  All values refer to
/// *inter-node* traffic unless suffixed otherwise.
struct PatternStats {
  std::int64_t s_proc = 0;       ///< max bytes sent inter-node by one GPU
  std::int64_t s_node = 0;       ///< max bytes injected by one node
  std::int64_t s_node_node = 0;  ///< max bytes between any node pair
  int m_proc = 0;                ///< max # inter-node messages by one GPU
  int m_proc_node = 0;           ///< max # destination nodes of one GPU
  int m_node_node = 0;           ///< max # messages between any node pair
  int num_internode_nodes = 0;   ///< max # destination nodes of one node
  /// Max over nodes of the number of GPUs holding inter-node data: the
  /// available parallelism for the split strategies' on-node distribution.
  int active_internode_gpus = 0;
  std::int64_t total_internode_bytes = 0;
  std::int64_t total_internode_messages = 0;
  /// Deduplicated (wire) counterparts: what a node-aware strategy actually
  /// injects after removing duplicate data.  Equal to the plain values when
  /// the pattern carries no dedup annotations.
  std::int64_t dedup_s_proc = 0;
  std::int64_t dedup_s_node = 0;
  std::int64_t dedup_s_node_node = 0;
  /// Typical inter-node message size under standard communication (used to
  /// pick the messaging protocol in the models); 0 when no traffic.
  std::int64_t typical_msg_bytes = 0;
};

[[nodiscard]] PatternStats compute_stats(const CommPattern& pattern,
                                         const Topology& topo);

/// Random irregular pattern generator: every GPU sends `msgs_per_gpu`
/// messages of `bytes` each to destinations drawn uniformly from the other
/// GPUs (deterministic for a fixed seed).  Useful for tests and synthetic
/// studies.
[[nodiscard]] CommPattern random_pattern(const Topology& topo,
                                         int msgs_per_gpu, std::int64_t bytes,
                                         std::uint64_t seed);

}  // namespace hetcomm::core
