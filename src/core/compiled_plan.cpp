#include "core/compiled_plan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "hetsim/engine.hpp"
#include "obs/engine_metrics.hpp"

namespace hetcomm::core {

namespace {

void check_rank(int rank, int num_ranks, const char* what) {
  if (rank < 0 || rank >= num_ranks) {
    throw std::out_of_range(std::string("CompiledPlan: ") + what + " rank " +
                            std::to_string(rank) + " out of range [0," +
                            std::to_string(num_ranks) + ")");
  }
}

}  // namespace

CompiledPlan::CompiledPlan(const CommPlan& plan, const Topology& topo,
                           const ParamSet& params)
    : num_ranks_(topo.num_ranks()),
      num_gpus_(topo.num_gpus()),
      num_nodes_(topo.num_nodes()),
      num_paths_(params.taxonomy.num_classes()),
      nic_lanes_(params.injection.nics_per_node) {
  params.validate();
  const PathTable paths(topo, params.taxonomy);
  phases_.reserve(plan.phases.size());
  std::vector<int> recv_depth(static_cast<std::size_t>(num_ranks_), 0);

  for (const PlanPhase& phase : plan.phases) {
    CompiledPhase out;
    out.steps.reserve(phase.ops.size());
    std::fill(recv_depth.begin(), recv_depth.end(), 0);

    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message: {
          check_rank(op.src_rank, num_ranks_, "message src");
          check_rank(op.dst_rank, num_ranks_, "message dst");
          if (op.bytes < 0) {
            throw std::invalid_argument(
                "CompiledPlan: negative message size");
          }
          CompiledPhase::MessageSchedule msg;
          msg.src = op.src_rank;
          msg.dst = op.dst_rank;
          msg.bytes = op.bytes;
          const std::uint8_t path_id = paths.path_of(op.src_rank, op.dst_rank);
          const PathClass path = paths.locality_of(path_id);
          const Protocol proto = params.thresholds.select(op.space, op.bytes);
          const PostalParams& pp =
              params.messages.get(op.space, proto, path_id);
          // Exactly the interpreter's expressions, term order included, so
          // the precomputed doubles are bit-equal to what resolve() derives
          // per repetition.
          const double size = static_cast<double>(op.bytes);
          msg.send_occupancy = pp.alpha + pp.beta * size;
          msg.drain_occupancy = pp.beta * size;
          msg.rendezvous = proto == Protocol::Rendezvous;
          msg.off_node = path == PathClass::OffNode;
          if (msg.off_node) {
            const double inv_rate = op.space == MemSpace::Host
                                        ? params.injection.inv_rate_cpu
                                        : params.injection.inv_rate_gpu;
            msg.src_node = topo.node_of_rank(op.src_rank);
            msg.dst_node = topo.node_of_rank(op.dst_rank);
            msg.src_nic =
                params.injection.nic_of(topo.rank_location(op.src_rank));
            msg.dst_nic =
                params.injection.nic_of(topo.rank_location(op.dst_rank));
            msg.nic_occupancy =
                inv_rate * size + params.overheads.nic_message_overhead;
            out.network_bytes += op.bytes;
            ++out.network_messages;
          }
          out.steps.push_back(
              {StepKind::Message,
               static_cast<std::uint32_t>(out.messages.size())});
          out.messages.push_back(msg);
          out.message_meta.push_back({op.tag, op.space, proto, path_id, path});
          ++recv_depth[static_cast<std::size_t>(op.dst_rank)];
          break;
        }
        case OpType::Copy: {
          check_rank(op.rank, num_ranks_, "copy");
          if (op.gpu < 0 || op.gpu >= num_gpus_) {
            throw std::out_of_range("CompiledPlan: bad copy gpu " +
                                    std::to_string(op.gpu));
          }
          if (op.bytes < 0) {
            throw std::invalid_argument("CompiledPlan: negative copy size");
          }
          if (op.sharing_procs < 1) {
            throw std::invalid_argument(
                "CompiledPlan: copy sharing_procs must be >= 1");
          }
          CompiledPhase::CopyOp copy;
          copy.rank = op.rank;
          copy.gpu = op.gpu;
          copy.dir = op.dir;
          copy.sharing_procs = op.sharing_procs;
          copy.bytes = op.bytes;
          const PostalParams cp =
              copy_params_for(params.copies, op.dir, op.sharing_procs);
          const PostalParams raw = copy_params_for(params.copies, op.dir, 1);
          copy.occupancy =
              params.overheads.dma_op_overhead +
              raw.beta * static_cast<double>(op.bytes) / op.sharing_procs;
          copy.duration_base = cp.time(op.bytes);
          out.steps.push_back(
              {StepKind::Copy, static_cast<std::uint32_t>(out.copies.size())});
          out.copies.push_back(copy);
          break;
        }
        case OpType::Pack: {
          check_rank(op.rank, num_ranks_, "pack");
          if (op.bytes < 0) {
            throw std::invalid_argument("CompiledPlan: negative pack size");
          }
          CompiledPhase::PackOp pack;
          pack.rank = op.rank;
          pack.bytes = op.bytes;
          pack.duration_base = params.overheads.pack_per_byte *
                               static_cast<double>(op.bytes);
          out.steps.push_back(
              {StepKind::Pack, static_cast<std::uint32_t>(out.packs.size())});
          out.packs.push_back(pack);
          break;
        }
      }
    }

    // Queue-search cost folds the phase's (rep-invariant) posted-receive
    // depth at the destination into each message's noised completion term:
    // completion_base = (alpha + beta*s) + q_search * depth[dst], the same
    // association order the interpreter uses.
    for (CompiledPhase::MessageSchedule& msg : out.messages) {
      msg.completion_base =
          msg.send_occupancy +
          params.overheads.queue_search_per_entry *
              recv_depth[static_cast<std::size_t>(msg.dst)];
    }

    // FIFO send/receive matching by (src, dst, tag).  Every Message op
    // posts its send and its matching receive together (run_plan's
    // contract), and FIFO pairing per key preserves posting order on both
    // sides, so the k-th send of a key always pairs with the k-th receive
    // of that key -- which is the same op.  The matching is therefore the
    // identity permutation; resolve()'s per-repetition map rebuild is what
    // this hoists away.
    out.recv_of_send.resize(out.messages.size());
    std::iota(out.recv_of_send.begin(), out.recv_of_send.end(), 0u);

    phases_.push_back(std::move(out));
  }
}

std::int64_t CompiledPlan::total_messages() const noexcept {
  std::int64_t n = 0;
  for (const CompiledPhase& p : phases_) {
    n += static_cast<std::int64_t>(p.messages.size());
  }
  return n;
}

}  // namespace hetcomm::core

namespace hetcomm {

// Defined here (not engine.cpp) so the hetsim layer never depends on core's
// plan types; Engine::execute is a member, so it keeps access to the
// engine's resources and scratch.
void Engine::execute(const core::CompiledPlan& plan) {
  if (plan.num_ranks() != topo_.num_ranks() ||
      plan.num_gpus() != topo_.num_gpus() ||
      plan.num_nodes() != topo_.num_nodes() ||
      plan.num_paths() != paths_.num_classes() ||
      plan.nic_lanes() != params_.injection.nics_per_node) {
    throw std::invalid_argument(
        "Engine::execute: plan compiled for a different machine shape");
  }
  if (has_pending()) {
    throw std::logic_error(
        "Engine::execute: engine holds pending isend/irecv operations; "
        "resolve() or reset() first");
  }

  const double post_overhead = params_.overheads.post_overhead;
  for (const core::CompiledPhase& phase : plan.phases()) {
    const std::size_t num_messages = phase.messages.size();
    post_send_scratch_.resize(num_messages);
    post_recv_scratch_.resize(num_messages);

    // ---- Posting pass, in op order.  Copies and packs draw noise here,
    // exactly where the interpreted path draws it. ----
    for (const core::CompiledStep& step : phase.steps) {
      switch (step.kind) {
        case core::StepKind::Message: {
          const core::CompiledPhase::MessageSchedule& msg =
              phase.messages[step.index];
          clock_[msg.src] += post_overhead;  // isend posting
          post_send_scratch_[step.index] = clock_[msg.src];
          clock_[msg.dst] += post_overhead;  // irecv posting
          post_recv_scratch_[step.index] = clock_[msg.dst];
          break;
        }
        case core::StepKind::Copy: {
          const core::CompiledPhase::CopyOp& op = phase.copies[step.index];
          BusyServer& dma = op.dir == CopyDir::HostToDevice
                                ? dma_h2d_[op.gpu]
                                : dma_d2h_[op.gpu];
          const double ready = clock_[op.rank];
          const double start = dma.acquire(ready, op.occupancy);
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          const double duration = noise_.perturb(base);
          clock_[op.rank] = start + duration;
          if (metrics_inv_ || metrics_smp_) {
            const obs::SimResource res = op.dir == CopyDir::HostToDevice
                                             ? obs::SimResource::DmaH2D
                                             : obs::SimResource::DmaD2H;
            if (metrics_inv_) metrics_inv_->on_occupancy(res, op.occupancy);
            if (metrics_smp_) {
              metrics_smp_->on_wait(res, ready, start);
              metrics_smp_->on_copy(op.dir, op.sharing_procs, op.bytes,
                                    duration);
            }
          }
          if (tracing_) {
            trace_.copies.push_back({op.rank, op.gpu, op.dir, op.bytes,
                                     op.sharing_procs, start,
                                     clock_[op.rank]});
          }
          break;
        }
        case core::StepKind::Pack: {
          const core::CompiledPhase::PackOp& op = phase.packs[step.index];
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          const double duration = noise_.perturb(base);
          clock_[op.rank] += duration;
          if (metrics_smp_) metrics_smp_->on_pack(op.bytes, duration);
          break;
        }
      }
    }
    if (num_messages == 0) {
      // Phase-end clocks ride the sampled tier: max_clock() over every rank
      // is too hot for steady-state repetitions (see core::measure).
      if (metrics_smp_) metrics_smp_->on_phase_end(max_clock());
      continue;
    }

    // ---- Ready times; schedule order by (ready, posting order). ----
    ready_scratch_.resize(num_messages);
    sched_order_scratch_.resize(num_messages);
    for (std::uint32_t i = 0; i < num_messages; ++i) {
      ready_scratch_[i] =
          phase.messages[i].rendezvous
              ? std::max(post_send_scratch_[i],
                         post_recv_scratch_[phase.recv_of_send[i]])
              : post_send_scratch_[i];
      sched_order_scratch_[i] = i;
    }
    // Posting order is send-seq order, so this is the same strict total
    // order resolve() sorts by; the schedule sequence (and with it the
    // noise-draw sequence) is bit-identical.
    std::sort(sched_order_scratch_.begin(), sched_order_scratch_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (ready_scratch_[a] != ready_scratch_[b]) {
                  return ready_scratch_[a] < ready_scratch_[b];
                }
                return a < b;
              });

    // ---- Schedule: only queueing, one noise draw, clock advancement. ----
    // Mirrors Engine::schedule's send/resend loop step for step (same
    // resource order, same metric hooks, same fault helpers), so faulted
    // runs stay bit-identical across the two engine modes.
    for (const std::uint32_t i : sched_order_scratch_) {
      const core::CompiledPhase::MessageSchedule& msg = phase.messages[i];
      const double ready0 = ready_scratch_[i];

      FaultMsgState fst;
      fst.send_occupancy = msg.send_occupancy;
      fst.drain_occupancy = msg.drain_occupancy;
      fst.completion_base = msg.completion_base;
      fst.nic_occupancy_src = msg.nic_occupancy;
      fst.nic_occupancy_dst = msg.nic_occupancy;
      std::uint8_t fault_path = 0;
      if (faults_) {
        fault_path = phase.message_meta[i].path_id;
        fst = fault_prepare(msg.src, fault_path, msg.off_node, msg.src_node,
                            msg.dst_node, msg.src_nic, msg.dst_nic,
                            msg.send_occupancy, msg.drain_occupancy,
                            msg.completion_base, msg.nic_occupancy, ready0);
        if (fst.degraded && metrics_smp_) {
          metrics_smp_->on_fault_degraded(fault_path, fst.extra_seconds);
        }
      }

      const double hop_latency =
          (msg.off_node && fabric_)
              ? fabric_->hop_latency(msg.src_node, msg.dst_node)
              : 0.0;

      double ready = ready0;
      double t = 0.0;
      double completion = 0.0;
      for (int attempt = 0;;) {
        t = send_port_[msg.src].acquire(ready, fst.send_occupancy);
        if (metrics_inv_) {
          if (attempt == 0) {
            const core::CompiledPhase::MessageMeta& meta =
                phase.message_meta[i];
            metrics_inv_->on_message(meta.path_id, meta.protocol, msg.bytes);
          }
          metrics_inv_->on_occupancy(obs::SimResource::SendPort,
                                     fst.send_occupancy);
        }
        if (metrics_smp_) {
          metrics_smp_->on_wait(obs::SimResource::SendPort, ready, t);
        }
        if (msg.off_node) {
          std::int32_t out_server = msg.src_nic;
          if (faults_ && faults_->has_outages()) {
            bool failover = false;
            out_server = fault_route_nic(msg.src_node, msg.src_nic, t,
                                         failover, msg.src, msg.dst,
                                         fault_path);
            if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
          }
          const double t_out =
              nic_out_[out_server].acquire(t, fst.nic_occupancy_src);
          if (metrics_inv_) {
            metrics_inv_->on_occupancy(obs::SimResource::NicOut,
                                       fst.nic_occupancy_src);
            if (attempt == 0) {
              metrics_inv_->on_nic_egress(msg.src_node, msg.bytes);
            }
          }
          if (metrics_smp_) {
            metrics_smp_->on_wait(obs::SimResource::NicOut, t, t_out);
          }
          t = t_out;
          if (fabric_) {
            const double t_fab =
                fabric_->acquire(msg.src_node, msg.dst_node, msg.bytes, t);
            // Fabric wait folds queueing and link serialization together
            // (the fabric returns only the final acquire time).
            if (metrics_smp_) {
              metrics_smp_->on_wait(obs::SimResource::FabricLink, t, t_fab);
            }
            t = t_fab;
          }
          std::int32_t in_server = msg.dst_nic;
          if (faults_ && faults_->has_outages()) {
            bool failover = false;
            in_server = fault_route_nic(msg.dst_node, msg.dst_nic, t,
                                        failover, msg.src, msg.dst,
                                        fault_path);
            if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
          }
          const double t_in =
              nic_in_[in_server].acquire(t, fst.nic_occupancy_dst);
          if (metrics_inv_) {
            metrics_inv_->on_occupancy(obs::SimResource::NicIn,
                                       fst.nic_occupancy_dst);
          }
          if (metrics_smp_) {
            metrics_smp_->on_wait(obs::SimResource::NicIn, t, t_in);
          }
          t = t_in;
        }
        const double t_drain =
            recv_port_[msg.dst].acquire(t, fst.drain_occupancy);
        if (metrics_inv_) {
          metrics_inv_->on_occupancy(obs::SimResource::RecvPort,
                                     fst.drain_occupancy);
        }
        if (metrics_smp_) {
          metrics_smp_->on_wait(obs::SimResource::RecvPort, t, t_drain);
        }
        t = t_drain;

        completion = t + noise_.perturb(fst.completion_base) + hop_latency;

        if (fault_lost(fst, attempt)) {
          ++attempt;
          if (attempt >= fst.loss->retry.max_attempts) {
            throw_retries_exhausted(msg.src, msg.dst, fault_path, attempt);
          }
          const double delay = retry_delay(fst.loss->retry, attempt - 1);
          if (metrics_smp_) metrics_smp_->on_fault_retry(delay);
          ready = completion + delay;
          continue;
        }
        break;
      }

      const double sender_done =
          msg.rendezvous ? completion : send_port_[msg.src].free_at();
      clock_[msg.src] = std::max(clock_[msg.src], sender_done);
      clock_[msg.dst] = std::max(clock_[msg.dst], completion);

      if (tracing_) {
        const core::CompiledPhase::MessageMeta& meta = phase.message_meta[i];
        trace_.messages.push_back({msg.src, msg.dst, msg.bytes, meta.tag,
                                   meta.space, meta.protocol, meta.path,
                                   ready0, t, completion});
      }
    }
    network_bytes_ += phase.network_bytes;
    network_messages_ += phase.network_messages;
    if (metrics_smp_) metrics_smp_->on_phase_end(max_clock());
  }
}

}  // namespace hetcomm
