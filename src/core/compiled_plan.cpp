#include "core/compiled_plan.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <string>

#include "hetsim/engine.hpp"
#include "obs/engine_metrics.hpp"

namespace hetcomm::core {

namespace {

void check_rank(int rank, int num_ranks, const char* what) {
  if (rank < 0 || rank >= num_ranks) {
    throw std::out_of_range(std::string("CompiledPlan: ") + what + " rank " +
                            std::to_string(rank) + " out of range [0," +
                            std::to_string(num_ranks) + ")");
  }
}

/// Validate a depends_on edge against the ops already compiled for this
/// phase and return the gating *message* index, or -1 when the dependency
/// compiles away (a copy/pack target on the same rank is already ordered
/// by blocking posting).  `op_rank` is the dependent op's executing rank
/// (the source rank for messages).
std::int32_t resolve_dep(const CompiledPhase& out, int depends_on,
                         int op_rank, bool dependent_is_message) {
  if (depends_on < 0) return -1;
  if (depends_on >= static_cast<int>(out.steps.size())) {
    throw std::invalid_argument(
        "CompiledPlan: depends_on " + std::to_string(depends_on) +
        " does not reference an earlier op in the same phase");
  }
  const CompiledStep target = out.steps[static_cast<std::size_t>(depends_on)];
  if (target.kind == StepKind::Message) {
    if (!dependent_is_message) {
      // Copies/packs execute during the posting pass, before any message
      // completes; such an edge could never be honored.
      throw std::invalid_argument(
          "CompiledPlan: copy/pack op cannot depend on a message");
    }
    return static_cast<std::int32_t>(target.index);
  }
  const int target_rank =
      target.kind == StepKind::Copy
          ? out.copies[target.index].rank
          : out.packs[target.index].rank;
  if (target_rank != op_rank) {
    // Blocking posting only orders ops on the same rank's clock; a
    // cross-rank copy dep would silently not gate anything.
    throw std::invalid_argument(
        "CompiledPlan: depends_on targets a copy/pack on rank " +
        std::to_string(target_rank) + " but the dependent op runs on rank " +
        std::to_string(op_rank));
  }
  return -1;  // ordered by the posting pass; no scheduling edge needed
}

}  // namespace

CompiledPlan::CompiledPlan(const CommPlan& plan, const Topology& topo,
                           const ParamSet& params)
    : num_ranks_(topo.num_ranks()),
      num_gpus_(topo.num_gpus()),
      num_nodes_(topo.num_nodes()),
      num_paths_(params.taxonomy.num_classes()),
      nic_lanes_(params.injection.nics_per_node) {
  params.validate();
  const PathTable paths(topo, params.taxonomy);
  phases_.reserve(plan.phases.size());
  std::vector<int> recv_depth(static_cast<std::size_t>(num_ranks_), 0);

  for (const PlanPhase& phase : plan.phases) {
    CompiledPhase out;
    out.steps.reserve(phase.ops.size());
    std::fill(recv_depth.begin(), recv_depth.end(), 0);

    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message: {
          check_rank(op.src_rank, num_ranks_, "message src");
          check_rank(op.dst_rank, num_ranks_, "message dst");
          if (op.bytes < 0) {
            throw std::invalid_argument(
                "CompiledPlan: negative message size");
          }
          const int lanes = std::max(1, nic_lanes_);
          if (op.rail >= lanes) {
            throw std::invalid_argument(
                "CompiledPlan: rail " + std::to_string(op.rail) + " >= " +
                std::to_string(lanes) + " NIC lane(s)");
          }
          CompiledPhase::MessageSchedule msg;
          msg.src = op.src_rank;
          msg.dst = op.dst_rank;
          msg.bytes = op.bytes;
          msg.rail = static_cast<std::int8_t>(op.rail < 0 ? -1 : op.rail);
          const std::uint8_t path_id = paths.path_of(op.src_rank, op.dst_rank);
          const PathClass path = paths.locality_of(path_id);
          const Protocol proto = params.thresholds.select(op.space, op.bytes);
          const PostalParams& pp =
              params.messages.get(op.space, proto, path_id);
          // Exactly the interpreter's expressions, term order included, so
          // the precomputed doubles are bit-equal to what resolve() derives
          // per repetition.
          const double size = static_cast<double>(op.bytes);
          msg.send_occupancy = pp.alpha + pp.beta * size;
          msg.drain_occupancy = pp.beta * size;
          msg.rendezvous = proto == Protocol::Rendezvous;
          msg.off_node = path == PathClass::OffNode;
          if (msg.off_node) {
            const double inv_rate = op.space == MemSpace::Host
                                        ? params.injection.inv_rate_cpu
                                        : params.injection.inv_rate_gpu;
            msg.src_node = topo.node_of_rank(op.src_rank);
            msg.dst_node = topo.node_of_rank(op.dst_rank);
            if (op.rail >= 0) {
              // Explicit rail assignment (striped plans): pin both
              // endpoints to the rail's NIC pair, overriding the
              // hash-to-lane default.
              msg.src_nic = msg.src_node * lanes + op.rail;
              msg.dst_nic = msg.dst_node * lanes + op.rail;
            } else {
              msg.src_nic =
                  params.injection.nic_of(topo.rank_location(op.src_rank));
              msg.dst_nic =
                  params.injection.nic_of(topo.rank_location(op.dst_rank));
            }
            msg.nic_occupancy =
                inv_rate * size + params.overheads.nic_message_overhead;
            out.network_bytes += op.bytes;
            ++out.network_messages;
          }
          out.msg_dep.push_back(
              resolve_dep(out, op.depends_on, op.src_rank, true));
          out.steps.push_back(
              {StepKind::Message,
               static_cast<std::uint32_t>(out.messages.size())});
          out.messages.push_back(msg);
          out.message_meta.push_back({op.tag, op.space, proto, path_id, path});
          ++recv_depth[static_cast<std::size_t>(op.dst_rank)];
          break;
        }
        case OpType::Copy: {
          check_rank(op.rank, num_ranks_, "copy");
          if (op.gpu < 0 || op.gpu >= num_gpus_) {
            throw std::out_of_range("CompiledPlan: bad copy gpu " +
                                    std::to_string(op.gpu));
          }
          if (op.bytes < 0) {
            throw std::invalid_argument("CompiledPlan: negative copy size");
          }
          if (op.sharing_procs < 1) {
            throw std::invalid_argument(
                "CompiledPlan: copy sharing_procs must be >= 1");
          }
          CompiledPhase::CopyOp copy;
          copy.rank = op.rank;
          copy.gpu = op.gpu;
          copy.dir = op.dir;
          copy.sharing_procs = op.sharing_procs;
          copy.bytes = op.bytes;
          const PostalParams cp =
              copy_params_for(params.copies, op.dir, op.sharing_procs);
          const PostalParams raw = copy_params_for(params.copies, op.dir, 1);
          copy.occupancy =
              params.overheads.dma_op_overhead +
              raw.beta * static_cast<double>(op.bytes) / op.sharing_procs;
          copy.duration_base = cp.time(op.bytes);
          resolve_dep(out, op.depends_on, op.rank, false);
          out.steps.push_back(
              {StepKind::Copy, static_cast<std::uint32_t>(out.copies.size())});
          out.copies.push_back(copy);
          break;
        }
        case OpType::Pack: {
          check_rank(op.rank, num_ranks_, "pack");
          if (op.bytes < 0) {
            throw std::invalid_argument("CompiledPlan: negative pack size");
          }
          CompiledPhase::PackOp pack;
          pack.rank = op.rank;
          pack.bytes = op.bytes;
          pack.duration_base = params.overheads.pack_per_byte *
                               static_cast<double>(op.bytes);
          resolve_dep(out, op.depends_on, op.rank, false);
          out.steps.push_back(
              {StepKind::Pack, static_cast<std::uint32_t>(out.packs.size())});
          out.packs.push_back(pack);
          break;
        }
      }
    }

    // Queue-search cost folds the phase's (rep-invariant) posted-receive
    // depth at the destination into each message's noised completion term:
    // completion_base = (alpha + beta*s) + q_search * depth[dst], the same
    // association order the interpreter uses.
    for (CompiledPhase::MessageSchedule& msg : out.messages) {
      msg.completion_base =
          msg.send_occupancy +
          params.overheads.queue_search_per_entry *
              recv_depth[static_cast<std::size_t>(msg.dst)];
    }

    // FIFO send/receive matching by (src, dst, tag).  Every Message op
    // posts its send and its matching receive together (run_plan's
    // contract), and FIFO pairing per key preserves posting order on both
    // sides, so the k-th send of a key always pairs with the k-th receive
    // of that key -- which is the same op.  The matching is therefore the
    // identity permutation; resolve()'s per-repetition map rebuild is what
    // this hoists away.
    out.recv_of_send.resize(out.messages.size());
    std::iota(out.recv_of_send.begin(), out.recv_of_send.end(), 0u);

    // Dependency waves: bucket messages by dep-chain depth.  msg_dep edges
    // always point at earlier messages (resolve_dep enforces it), so one
    // forward pass computes depths and acyclicity is structural.  Phases
    // without message-to-message deps leave wave_begin empty and keep the
    // historical single-sort schedule path.
    std::vector<std::int32_t> depth(out.messages.size(), 0);
    std::int32_t max_depth = 0;
    for (std::size_t i = 0; i < out.messages.size(); ++i) {
      const std::int32_t d = out.msg_dep[i];
      if (d < 0) continue;
      depth[i] = depth[static_cast<std::size_t>(d)] + 1;
      max_depth = std::max(max_depth, depth[i]);
    }
    if (max_depth > 0) {
      out.wave_begin.assign(static_cast<std::size_t>(max_depth) + 2, 0);
      for (const std::int32_t d : depth) {
        ++out.wave_begin[static_cast<std::size_t>(d) + 1];
      }
      for (std::size_t w = 1; w < out.wave_begin.size(); ++w) {
        out.wave_begin[w] += out.wave_begin[w - 1];
      }
      out.wave_members.resize(out.messages.size());
      std::vector<std::uint32_t> cursor(out.wave_begin.begin(),
                                        out.wave_begin.end() - 1);
      for (std::size_t i = 0; i < out.messages.size(); ++i) {
        out.wave_members[cursor[static_cast<std::size_t>(depth[i])]++] =
            static_cast<std::uint32_t>(i);
      }
    }

    phases_.push_back(std::move(out));
  }
}

std::int64_t CompiledPlan::total_messages() const noexcept {
  std::int64_t n = 0;
  for (const CompiledPhase& p : phases_) {
    n += static_cast<std::int64_t>(p.messages.size());
  }
  return n;
}

}  // namespace hetcomm::core

namespace hetcomm {

namespace {

/// Sort `order` into exact (ready, index)-ascending order.
///
/// Keys are packed as (bit pattern of ready, index) integer pairs: ready
/// times are sums and maxima of nonnegative finite durations, and the
/// IEEE-754 bit patterns of nonnegative doubles order identically to their
/// values, so one integer pair comparison reproduces the exact
/// (ready, index) strict total order with no double-compare branches.
///
/// When `order` already holds a permutation of the right size -- the
/// previous repetition's (or sibling lane's) schedule order -- the keys
/// are built in that order and sorted by a warm-start insertion pass:
/// jitter rarely reorders ready times between adjacent repetitions, so
/// nearly every element stays put, where a comparison sort on freshly
/// jittered keys pays a misprediction per comparison.  Any permutation
/// yields the same unique total order, so results never depend on engine
/// history; a stale hint only costs time.
void sort_schedule_order(std::vector<std::uint32_t>& order,
                         std::vector<std::pair<std::uint64_t, std::uint32_t>>&
                             keyed,
                         std::size_t count, const double* ready) {
  const bool warm = order.size() == count;
  keyed.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t i = warm ? order[k] : static_cast<std::uint32_t>(k);
    std::uint64_t bits;
    std::memcpy(&bits, &ready[i], sizeof bits);
    keyed[k] = {bits, i};
  }
  if (warm) {
    for (std::size_t k = 1; k < count; ++k) {
      const std::pair<std::uint64_t, std::uint32_t> v = keyed[k];
      std::size_t j = k;
      while (j > 0 && v < keyed[j - 1]) {
        keyed[j] = keyed[j - 1];
        --j;
      }
      keyed[j] = v;
    }
  } else {
    order.resize(count);
    std::sort(keyed.begin(), keyed.end());
  }
  for (std::size_t k = 0; k < count; ++k) order[k] = keyed[k].second;
}

/// Subset variant of sort_schedule_order for one dependency wave: sorts the
/// explicit `members` list into (ready, index) order.  Always a cold sort --
/// the warm-start cache slots are shared across plans on a reused engine,
/// and a stale hint with the *wrong membership* would schedule the wrong
/// messages, so wave scheduling never reads or writes that cache.
void sort_wave_order(std::vector<std::uint32_t>& order,
                     std::vector<std::pair<std::uint64_t, std::uint32_t>>&
                         keyed,
                     const std::uint32_t* members, std::size_t count,
                     const double* ready) {
  keyed.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t i = members[k];
    std::uint64_t bits;
    std::memcpy(&bits, &ready[i], sizeof bits);
    keyed[k] = {bits, i};
  }
  std::sort(keyed.begin(), keyed.end());
  order.resize(count);
  for (std::size_t k = 0; k < count; ++k) order[k] = keyed[k].second;
}

}  // namespace

// Defined here (not engine.cpp) so the hetsim layer never depends on core's
// plan types; Engine::execute is a member, so it keeps access to the
// engine's resources and scratch.
void Engine::execute(const core::CompiledPlan& plan) {
  if (plan.num_ranks() != topo_.num_ranks() ||
      plan.num_gpus() != topo_.num_gpus() ||
      plan.num_nodes() != topo_.num_nodes() ||
      plan.num_paths() != paths_.num_classes() ||
      plan.nic_lanes() != params_.injection.nics_per_node) {
    throw std::invalid_argument(
        "Engine::execute: plan compiled for a different machine shape");
  }
  if (has_pending()) {
    throw std::logic_error(
        "Engine::execute: engine holds pending isend/irecv operations; "
        "resolve() or reset() first");
  }

  const double post_overhead = params_.overheads.post_overhead;
  if (sched_order_cache_.size() < plan.phases().size()) {
    sched_order_cache_.resize(plan.phases().size());
  }
  std::size_t phase_index = 0;
  for (const core::CompiledPhase& phase : plan.phases()) {
    std::vector<std::uint32_t>& sched_order = sched_order_cache_[phase_index];
    ++phase_index;
    const std::size_t num_messages = phase.messages.size();
    post_send_scratch_.resize(num_messages);
    post_recv_scratch_.resize(num_messages);

    // ---- Posting pass, in op order.  Copies and packs draw noise here,
    // exactly where the interpreted path draws it. ----
    for (const core::CompiledStep& step : phase.steps) {
      switch (step.kind) {
        case core::StepKind::Message: {
          const core::CompiledPhase::MessageSchedule& msg =
              phase.messages[step.index];
          clock_[msg.src] += post_overhead;  // isend posting
          post_send_scratch_[step.index] = clock_[msg.src];
          clock_[msg.dst] += post_overhead;  // irecv posting
          post_recv_scratch_[step.index] = clock_[msg.dst];
          break;
        }
        case core::StepKind::Copy: {
          const core::CompiledPhase::CopyOp& op = phase.copies[step.index];
          BusyServer& dma = op.dir == CopyDir::HostToDevice
                                ? dma_h2d_[op.gpu]
                                : dma_d2h_[op.gpu];
          const double ready = clock_[op.rank];
          const double start = dma.acquire(ready, op.occupancy);
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          const double duration = noise_.perturb(base);
          clock_[op.rank] = start + duration;
          if (metrics_inv_ || metrics_smp_) {
            const obs::SimResource res = op.dir == CopyDir::HostToDevice
                                             ? obs::SimResource::DmaH2D
                                             : obs::SimResource::DmaD2H;
            if (metrics_inv_) metrics_inv_->on_occupancy(res, op.occupancy);
            if (metrics_smp_) {
              metrics_smp_->on_wait(res, ready, start);
              metrics_smp_->on_copy(op.dir, op.sharing_procs, op.bytes,
                                    duration);
            }
          }
          if (tracing_) {
            trace_.copies.push_back({op.rank, op.gpu, op.dir, op.bytes,
                                     op.sharing_procs, start,
                                     clock_[op.rank]});
          }
          break;
        }
        case core::StepKind::Pack: {
          const core::CompiledPhase::PackOp& op = phase.packs[step.index];
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          const double duration = noise_.perturb(base);
          clock_[op.rank] += duration;
          if (metrics_smp_) metrics_smp_->on_pack(op.bytes, duration);
          break;
        }
      }
    }
    if (num_messages == 0) {
      // Phase-end clocks ride the sampled tier: max_clock() over every rank
      // is too hot for steady-state repetitions (see core::measure).
      if (metrics_smp_) metrics_smp_->on_phase_end(max_clock());
      continue;
    }

    // ---- Ready times; schedule order by (ready, posting order). ----
    ready_scratch_.resize(num_messages);
    for (std::uint32_t i = 0; i < num_messages; ++i) {
      ready_scratch_[i] =
          phase.messages[i].rendezvous
              ? std::max(post_send_scratch_[i],
                         post_recv_scratch_[phase.recv_of_send[i]])
              : post_send_scratch_[i];
    }
    // ---- Schedule: only queueing, one noise draw, clock advancement. ----
    // Mirrors Engine::schedule's send/resend loop step for step (same
    // resource order, same metric hooks, same fault helpers), so faulted
    // runs stay bit-identical across the two engine modes.
    const auto schedule_message = [&](std::uint32_t i,
                                      double ready0) -> double {
      const core::CompiledPhase::MessageSchedule& msg = phase.messages[i];

      FaultMsgState fst;
      fst.send_occupancy = msg.send_occupancy;
      fst.drain_occupancy = msg.drain_occupancy;
      fst.completion_base = msg.completion_base;
      fst.nic_occupancy_src = msg.nic_occupancy;
      fst.nic_occupancy_dst = msg.nic_occupancy;
      std::uint8_t fault_path = 0;
      if (faults_) {
        fault_path = phase.message_meta[i].path_id;
        fst = fault_prepare(msg.src, fault_path, msg.off_node, msg.src_node,
                            msg.dst_node, msg.src_nic, msg.dst_nic,
                            msg.send_occupancy, msg.drain_occupancy,
                            msg.completion_base, msg.nic_occupancy, ready0,
                            fault_msg_counter_++);
        if (fst.degraded && metrics_smp_) {
          metrics_smp_->on_fault_degraded(fault_path, fst.extra_seconds);
        }
      }

      const double hop_latency =
          (msg.off_node && fabric_)
              ? fabric_->hop_latency(msg.src_node, msg.dst_node)
              : 0.0;

      double ready = ready0;
      double t = 0.0;
      double completion = 0.0;
      std::int32_t egress_server = -1;  ///< last attempt's NIC lane server
      for (int attempt = 0;;) {
        t = send_port_[msg.src].acquire(ready, fst.send_occupancy);
        if (metrics_inv_) {
          if (attempt == 0) {
            const core::CompiledPhase::MessageMeta& meta =
                phase.message_meta[i];
            metrics_inv_->on_message(meta.path_id, meta.protocol, msg.bytes);
          }
          metrics_inv_->on_occupancy(obs::SimResource::SendPort,
                                     fst.send_occupancy);
        }
        if (metrics_smp_) {
          metrics_smp_->on_wait(obs::SimResource::SendPort, ready, t);
        }
        if (msg.off_node) {
          std::int32_t out_server = msg.src_nic;
          if (faults_ && faults_->has_outages()) {
            bool failover = false;
            out_server = fault_route_nic(msg.src_node, msg.src_nic, t,
                                         failover, msg.src, msg.dst,
                                         fault_path);
            if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
          }
          egress_server = out_server;
          const double t_out =
              nic_out_[out_server].acquire(t, fst.nic_occupancy_src);
          if (metrics_inv_) {
            metrics_inv_->on_occupancy(obs::SimResource::NicOut,
                                       fst.nic_occupancy_src);
            if (attempt == 0) {
              metrics_inv_->on_nic_egress(out_server, msg.bytes,
                                          msg.rail >= 0);
            }
          }
          if (metrics_smp_) {
            metrics_smp_->on_wait(obs::SimResource::NicOut, t, t_out);
          }
          t = t_out;
          if (fabric_) {
            const double t_fab =
                fabric_->acquire(msg.src_node, msg.dst_node, msg.bytes, t);
            // Fabric wait folds queueing and link serialization together
            // (the fabric returns only the final acquire time).
            if (metrics_smp_) {
              metrics_smp_->on_wait(obs::SimResource::FabricLink, t, t_fab);
            }
            t = t_fab;
          }
          std::int32_t in_server = msg.dst_nic;
          if (faults_ && faults_->has_outages()) {
            bool failover = false;
            in_server = fault_route_nic(msg.dst_node, msg.dst_nic, t,
                                        failover, msg.src, msg.dst,
                                        fault_path);
            if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
          }
          const double t_in =
              nic_in_[in_server].acquire(t, fst.nic_occupancy_dst);
          if (metrics_inv_) {
            metrics_inv_->on_occupancy(obs::SimResource::NicIn,
                                       fst.nic_occupancy_dst);
          }
          if (metrics_smp_) {
            metrics_smp_->on_wait(obs::SimResource::NicIn, t, t_in);
          }
          t = t_in;
        }
        const double t_drain =
            recv_port_[msg.dst].acquire(t, fst.drain_occupancy);
        if (metrics_inv_) {
          metrics_inv_->on_occupancy(obs::SimResource::RecvPort,
                                     fst.drain_occupancy);
        }
        if (metrics_smp_) {
          metrics_smp_->on_wait(obs::SimResource::RecvPort, t, t_drain);
        }
        t = t_drain;

        completion = t + noise_.perturb(fst.completion_base) + hop_latency;

        if (fault_lost(fst, attempt, fault_stream_)) {
          ++attempt;
          if (attempt >= fst.loss->retry.max_attempts) {
            throw_retries_exhausted(msg.src, msg.dst, fault_path, attempt);
          }
          const double delay = retry_delay(fst.loss->retry, attempt - 1);
          if (metrics_smp_) {
            const int lanes = std::max(1, params_.injection.nics_per_node);
            metrics_smp_->on_fault_retry(
                delay, egress_server < 0
                           ? -1
                           : egress_server - msg.src_node * lanes);
          }
          ready = completion + delay;
          continue;
        }
        break;
      }

      const double sender_done =
          msg.rendezvous ? completion : send_port_[msg.src].free_at();
      clock_[msg.src] = std::max(clock_[msg.src], sender_done);
      clock_[msg.dst] = std::max(clock_[msg.dst], completion);

      if (tracing_) {
        const core::CompiledPhase::MessageMeta& meta = phase.message_meta[i];
        trace_.messages.push_back({msg.src, msg.dst, msg.bytes, meta.tag,
                                   meta.space, meta.protocol, meta.path,
                                   ready0, t, completion});
      }
      return completion;
    };

    if (phase.num_waves() == 1) {
      // Posting order is send-seq order, so this is the same strict total
      // order resolve() sorts by; the schedule sequence (and with it the
      // noise-draw sequence) is bit-identical.  The per-phase cache warm-
      // starts the sort from the previous repetition's order.
      sort_schedule_order(sched_order, sched_key_scratch_, num_messages,
                          ready_scratch_.data());
      for (const std::uint32_t i : sched_order) {
        schedule_message(i, ready_scratch_[i]);
      }
    } else {
      // Dependency waves (split plans): a dependent message is ready no
      // earlier than its gating chunk's completion.  Each wave sorts its
      // own members cold -- see sort_wave_order on why the warm cache
      // must not be used here.
      matched_completion_scratch_.assign(num_messages, 0.0);
      for (std::size_t w = 0; w + 1 < phase.wave_begin.size(); ++w) {
        const std::uint32_t* members =
            phase.wave_members.data() + phase.wave_begin[w];
        const std::size_t count = phase.wave_begin[w + 1] -
                                  phase.wave_begin[w];
        for (std::size_t k = 0; k < count; ++k) {
          const std::uint32_t i = members[k];
          const std::int32_t d = phase.msg_dep[i];
          if (d >= 0) {
            ready_scratch_[i] =
                std::max(ready_scratch_[i],
                         matched_completion_scratch_[
                             static_cast<std::size_t>(d)]);
          }
        }
        sort_wave_order(wave_order_scratch_, sched_key_scratch_, members,
                        count, ready_scratch_.data());
        for (const std::uint32_t i : wave_order_scratch_) {
          matched_completion_scratch_[i] =
              schedule_message(i, ready_scratch_[i]);
        }
      }
    }
    network_bytes_ += phase.network_bytes;
    network_messages_ += phase.network_messages;
    if (metrics_smp_) metrics_smp_->on_phase_end(max_clock());
  }
}

// Lane-batched replay: run N repetitions of one CompiledPlan in lockstep.
// The plan tables are read once per batch; everything rep-varying lives in
// lane-indexed scratch with lane-innermost layout ([entity * lanes + lane]),
// so the posting pass is contiguous lane loops over shared op rows.  The
// schedule pass is lane-outer: post-time noise makes transfer-ready times
// lane-dependent, so each lane sorts its own (ready, index) schedule order
// -- exactly the per-repetition sort the serial engine performs -- and then
// drains its messages against its own servers.  Bit-identity with the
// serial engine holds lane by lane because both paths evaluate the same
// expression trees in the same per-repetition order, and the counter-based
// noise/fault streams make draw values a pure function of (lane seed, draw
// index), independent of lane interleaving.
void Engine::execute_batch(const core::CompiledPlan& plan,
                           std::span<const std::uint64_t> lane_seeds,
                           std::span<double> clocks_out, int traced_lane) {
  if (plan.num_ranks() != topo_.num_ranks() ||
      plan.num_gpus() != topo_.num_gpus() ||
      plan.num_nodes() != topo_.num_nodes() ||
      plan.num_paths() != paths_.num_classes() ||
      plan.nic_lanes() != params_.injection.nics_per_node) {
    throw std::invalid_argument(
        "Engine::execute_batch: plan compiled for a different machine shape");
  }
  if (has_pending()) {
    throw std::logic_error(
        "Engine::execute_batch: engine holds pending isend/irecv operations; "
        "resolve() or reset() first");
  }
  const std::size_t lanes = lane_seeds.size();
  const std::size_t num_ranks = clock_.size();
  if (clocks_out.size() != lanes * num_ranks) {
    throw std::invalid_argument(
        "Engine::execute_batch: clocks_out must hold lanes * num_ranks "
        "slots");
  }
  if (traced_lane >= static_cast<int>(lanes)) {
    throw std::invalid_argument(
        "Engine::execute_batch: traced_lane out of range");
  }
  if (lanes == 0) return;
  const std::size_t L = lanes;

  lane_clock_.assign(num_ranks * L, 0.0);
  lane_send_port_.assign(num_ranks * L, BusyServer{});
  lane_recv_port_.assign(num_ranks * L, BusyServer{});
  lane_nic_out_.assign(nic_out_.size() * L, BusyServer{});
  lane_nic_in_.assign(nic_in_.size() * L, BusyServer{});
  lane_dma_h2d_.assign(dma_h2d_.size() * L, BusyServer{});
  lane_dma_d2h_.assign(dma_d2h_.size() * L, BusyServer{});
  lane_noise_stream_.assign(lane_seeds.begin(), lane_seeds.end());
  lane_noise_draws_.assign(L, 0);
  lane_alive_.assign(L, 1);
  if (faults_) {
    lane_fault_stream_.resize(L);
    for (std::size_t l = 0; l < L; ++l) {
      lane_fault_stream_[l] = fault_stream_for(lane_seeds[l]);
    }
    lane_fault_msg_.assign(L, 0);
  }
  if (fabric_) {
    lane_fabric_.assign(L, *fabric_);
    for (FatTreeFabric& fab : lane_fabric_) fab.reset();
  }
  const bool traced = tracing_ && traced_lane >= 0;
  if (traced) trace_.clear();

  // The lowest-indexed lane's abort -- the failure a serial jobs=1 sweep of
  // the same repetitions would have surfaced first -- rethrown after every
  // surviving lane finishes.
  std::optional<FaultAbort> pending_abort;
  std::size_t abort_lane = L;

  const double post_overhead = params_.overheads.post_overhead;
  const double sigma = noise_.sigma();
  const auto lane_perturb = [&](std::size_t l, double base) {
    if (sigma <= 0.0) return base;  // matches NoiseModel::perturb: no draw
    return base * noise_factor(lane_noise_stream_[l],
                               lane_noise_draws_[l]++, sigma);
  };
  const auto lane_max_clock = [&](std::size_t l) {
    double m = 0.0;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      const double c = lane_clock_[r * L + l];
      m = m < c ? c : m;
    }
    return m;
  };

  if (sched_order_cache_.size() < plan.phases().size()) {
    sched_order_cache_.resize(plan.phases().size());
  }
  std::size_t phase_index = 0;
  for (const core::CompiledPhase& phase : plan.phases()) {
    std::vector<std::uint32_t>& sched_order = sched_order_cache_[phase_index];
    ++phase_index;
    const std::size_t num_messages = phase.messages.size();
    lane_post_send_.resize(num_messages * L);
    lane_post_recv_.resize(num_messages * L);

    // ---- Posting pass, in op order, lane-inner.  Dead lanes keep
    // accumulating posting arithmetic (their private streams advance; no
    // shared state is touched), which keeps these loops branch-free -- the
    // rethrown abort makes their outputs unobservable anyway. ----
    for (const core::CompiledStep& step : phase.steps) {
      switch (step.kind) {
        case core::StepKind::Message: {
          const core::CompiledPhase::MessageSchedule& msg =
              phase.messages[step.index];
          double* src_clock =
              lane_clock_.data() + static_cast<std::size_t>(msg.src) * L;
          double* dst_clock =
              lane_clock_.data() + static_cast<std::size_t>(msg.dst) * L;
          double* post_send = lane_post_send_.data() + step.index * L;
          double* post_recv = lane_post_recv_.data() + step.index * L;
          for (std::size_t l = 0; l < L; ++l) {
            src_clock[l] += post_overhead;  // isend posting
            post_send[l] = src_clock[l];
          }
          for (std::size_t l = 0; l < L; ++l) {
            dst_clock[l] += post_overhead;  // irecv posting
            post_recv[l] = dst_clock[l];
          }
          break;
        }
        case core::StepKind::Copy: {
          const core::CompiledPhase::CopyOp& op = phase.copies[step.index];
          BusyServer* dma =
              (op.dir == CopyDir::HostToDevice ? lane_dma_h2d_
                                               : lane_dma_d2h_)
                  .data() +
              static_cast<std::size_t>(op.gpu) * L;
          double* rank_clock =
              lane_clock_.data() + static_cast<std::size_t>(op.rank) * L;
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          for (std::size_t l = 0; l < L; ++l) {
            const double ready = rank_clock[l];
            const double start = dma[l].acquire(ready, op.occupancy);
            const double duration = lane_perturb(l, base);
            rank_clock[l] = start + duration;
            if (l == 0 && (metrics_inv_ || metrics_smp_)) {
              const obs::SimResource res = op.dir == CopyDir::HostToDevice
                                               ? obs::SimResource::DmaH2D
                                               : obs::SimResource::DmaD2H;
              if (metrics_inv_) metrics_inv_->on_occupancy(res, op.occupancy);
              if (metrics_smp_) {
                metrics_smp_->on_wait(res, ready, start);
                metrics_smp_->on_copy(op.dir, op.sharing_procs, op.bytes,
                                      duration);
              }
            }
            if (traced && static_cast<int>(l) == traced_lane) {
              trace_.copies.push_back({op.rank, op.gpu, op.dir, op.bytes,
                                       op.sharing_procs, start,
                                       rank_clock[l]});
            }
          }
          break;
        }
        case core::StepKind::Pack: {
          const core::CompiledPhase::PackOp& op = phase.packs[step.index];
          double* rank_clock =
              lane_clock_.data() + static_cast<std::size_t>(op.rank) * L;
          double base = op.duration_base;
          if (faults_) base = faults_->rank_compute_factor(op.rank) * base;
          for (std::size_t l = 0; l < L; ++l) {
            const double duration = lane_perturb(l, base);
            rank_clock[l] += duration;
            if (l == 0 && metrics_smp_) metrics_smp_->on_pack(op.bytes,
                                                              duration);
          }
          break;
        }
      }
    }
    if (num_messages == 0) {
      if (metrics_smp_ && lane_alive_[0]) {
        metrics_smp_->on_phase_end(lane_max_clock(0));
      }
      continue;
    }

    // ---- Schedule pass, lane-outer: each alive lane sorts and drains its
    // own schedule, exactly as a serial repetition would.  The shared
    // per-phase order is re-sorted for each lane in turn -- sibling lanes'
    // jittered ready times rarely cross, so each refinement is a cheap
    // near-sorted insertion pass. ----
    lane_ready_.resize(num_messages);
    for (std::size_t l = 0; l < L; ++l) {
      if (!lane_alive_[l]) continue;
      for (std::uint32_t i = 0; i < num_messages; ++i) {
        lane_ready_[i] =
            phase.messages[i].rendezvous
                ? std::max(lane_post_send_[i * L + l],
                           lane_post_recv_[phase.recv_of_send[i] * L + l])
                : lane_post_send_[i * L + l];
      }

      // The metrics tiers record lane 0 only (core::measure samples rep 0);
      // the traced lane records trace events.
      obs::EngineMetrics* minv = l == 0 ? metrics_inv_ : nullptr;
      obs::EngineMetrics* msmp = l == 0 ? metrics_smp_ : nullptr;
      const bool trc = traced && static_cast<int>(l) == traced_lane;
      const auto schedule_message = [&](std::uint32_t i,
                                        double ready0) -> double {
          const core::CompiledPhase::MessageSchedule& msg = phase.messages[i];

          FaultMsgState fst;
          fst.send_occupancy = msg.send_occupancy;
          fst.drain_occupancy = msg.drain_occupancy;
          fst.completion_base = msg.completion_base;
          fst.nic_occupancy_src = msg.nic_occupancy;
          fst.nic_occupancy_dst = msg.nic_occupancy;
          std::uint8_t fault_path = 0;
          if (faults_) {
            fault_path = phase.message_meta[i].path_id;
            fst = fault_prepare(msg.src, fault_path, msg.off_node,
                                msg.src_node, msg.dst_node, msg.src_nic,
                                msg.dst_nic, msg.send_occupancy,
                                msg.drain_occupancy, msg.completion_base,
                                msg.nic_occupancy, ready0,
                                lane_fault_msg_[l]++);
            if (fst.degraded && msmp) {
              msmp->on_fault_degraded(fault_path, fst.extra_seconds);
            }
          }

          const double hop_latency =
              (msg.off_node && fabric_)
                  ? lane_fabric_[l].hop_latency(msg.src_node, msg.dst_node)
                  : 0.0;

          double ready = ready0;
          double t = 0.0;
          double completion = 0.0;
          std::int32_t egress_server = -1;  ///< last attempt's NIC server
          BusyServer& send_port =
              lane_send_port_[static_cast<std::size_t>(msg.src) * L + l];
          for (int attempt = 0;;) {
            t = send_port.acquire(ready, fst.send_occupancy);
            if (minv) {
              if (attempt == 0) {
                const core::CompiledPhase::MessageMeta& meta =
                    phase.message_meta[i];
                minv->on_message(meta.path_id, meta.protocol, msg.bytes);
              }
              minv->on_occupancy(obs::SimResource::SendPort,
                                 fst.send_occupancy);
            }
            if (msmp) {
              msmp->on_wait(obs::SimResource::SendPort, ready, t);
            }
            if (msg.off_node) {
              std::int32_t out_server = msg.src_nic;
              if (faults_ && faults_->has_outages()) {
                bool failover = false;
                out_server = fault_route_nic(msg.src_node, msg.src_nic, t,
                                             failover, msg.src, msg.dst,
                                             fault_path);
                if (failover && msmp) msmp->on_fault_failover();
              }
              egress_server = out_server;
              const double t_out =
                  lane_nic_out_[static_cast<std::size_t>(out_server) * L + l]
                      .acquire(t, fst.nic_occupancy_src);
              if (minv) {
                minv->on_occupancy(obs::SimResource::NicOut,
                                   fst.nic_occupancy_src);
                if (attempt == 0) {
                  minv->on_nic_egress(out_server, msg.bytes, msg.rail >= 0);
                }
              }
              if (msmp) {
                msmp->on_wait(obs::SimResource::NicOut, t, t_out);
              }
              t = t_out;
              if (fabric_) {
                const double t_fab = lane_fabric_[l].acquire(
                    msg.src_node, msg.dst_node, msg.bytes, t);
                if (msmp) {
                  msmp->on_wait(obs::SimResource::FabricLink, t, t_fab);
                }
                t = t_fab;
              }
              std::int32_t in_server = msg.dst_nic;
              if (faults_ && faults_->has_outages()) {
                bool failover = false;
                in_server = fault_route_nic(msg.dst_node, msg.dst_nic, t,
                                            failover, msg.src, msg.dst,
                                            fault_path);
                if (failover && msmp) msmp->on_fault_failover();
              }
              const double t_in =
                  lane_nic_in_[static_cast<std::size_t>(in_server) * L + l]
                      .acquire(t, fst.nic_occupancy_dst);
              if (minv) {
                minv->on_occupancy(obs::SimResource::NicIn,
                                   fst.nic_occupancy_dst);
              }
              if (msmp) {
                msmp->on_wait(obs::SimResource::NicIn, t, t_in);
              }
              t = t_in;
            }
            const double t_drain =
                lane_recv_port_[static_cast<std::size_t>(msg.dst) * L + l]
                    .acquire(t, fst.drain_occupancy);
            if (minv) {
              minv->on_occupancy(obs::SimResource::RecvPort,
                                 fst.drain_occupancy);
            }
            if (msmp) {
              msmp->on_wait(obs::SimResource::RecvPort, t, t_drain);
            }
            t = t_drain;

            completion =
                t + lane_perturb(l, fst.completion_base) + hop_latency;

            if (faults_ && fault_lost(fst, attempt, lane_fault_stream_[l])) {
              ++attempt;
              if (attempt >= fst.loss->retry.max_attempts) {
                throw_retries_exhausted(msg.src, msg.dst, fault_path,
                                        attempt);
              }
              const double delay = retry_delay(fst.loss->retry, attempt - 1);
              if (msmp) {
                const int lanes_per_node =
                    std::max(1, params_.injection.nics_per_node);
                msmp->on_fault_retry(
                    delay, egress_server < 0
                               ? -1
                               : egress_server -
                                     msg.src_node * lanes_per_node);
              }
              ready = completion + delay;
              continue;
            }
            break;
          }

          const double sender_done =
              msg.rendezvous ? completion : send_port.free_at();
          double& src_clock =
              lane_clock_[static_cast<std::size_t>(msg.src) * L + l];
          double& dst_clock =
              lane_clock_[static_cast<std::size_t>(msg.dst) * L + l];
          src_clock = std::max(src_clock, sender_done);
          dst_clock = std::max(dst_clock, completion);

          if (trc) {
            const core::CompiledPhase::MessageMeta& meta =
                phase.message_meta[i];
            trace_.messages.push_back({msg.src, msg.dst, msg.bytes, meta.tag,
                                       meta.space, meta.protocol, meta.path,
                                       ready0, t, completion});
          }
          return completion;
      };
      try {
        if (phase.num_waves() == 1) {
          sort_schedule_order(sched_order, sched_key_scratch_, num_messages,
                              lane_ready_.data());
          for (const std::uint32_t i : sched_order) {
            schedule_message(i, lane_ready_[i]);
          }
        } else {
          // Dependency waves, per lane: adjust each dependent message's
          // ready time by its gating chunk's completion in this lane, then
          // cold-sort the wave (the shared warm cache is never used with a
          // subset membership; see sort_wave_order).
          matched_completion_scratch_.assign(num_messages, 0.0);
          for (std::size_t w = 0; w + 1 < phase.wave_begin.size(); ++w) {
            const std::uint32_t* members =
                phase.wave_members.data() + phase.wave_begin[w];
            const std::size_t count =
                phase.wave_begin[w + 1] - phase.wave_begin[w];
            for (std::size_t k = 0; k < count; ++k) {
              const std::uint32_t i = members[k];
              const std::int32_t d = phase.msg_dep[i];
              if (d >= 0) {
                lane_ready_[i] =
                    std::max(lane_ready_[i],
                             matched_completion_scratch_[
                                 static_cast<std::size_t>(d)]);
              }
            }
            sort_wave_order(wave_order_scratch_, sched_key_scratch_, members,
                            count, lane_ready_.data());
            for (const std::uint32_t i : wave_order_scratch_) {
              matched_completion_scratch_[i] =
                  schedule_message(i, lane_ready_[i]);
            }
          }
        }
        network_bytes_ += phase.network_bytes;
        network_messages_ += phase.network_messages;
        if (msmp) msmp->on_phase_end(lane_max_clock(l));
      } catch (FaultAbort& abort) {
        // The lane dies; siblings keep running.  Keep the abort a serial
        // jobs=1 sweep would have hit first (the lowest repetition index).
        lane_alive_[l] = 0;
        if (l < abort_lane) {
          abort_lane = l;
          pending_abort.emplace(std::move(abort));
        }
      }
    }
  }

  // Transpose lane-major scratch into the caller's rep-major layout (lane
  // l's ranks are contiguous, matching core::measure's rep_clocks rows).
  for (std::size_t l = 0; l < L; ++l) {
    for (std::size_t r = 0; r < num_ranks; ++r) {
      clocks_out[l * num_ranks + r] = lane_clock_[r * L + l];
    }
  }
  if (pending_abort) throw *pending_abort;
}

}  // namespace hetcomm
