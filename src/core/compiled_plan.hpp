#pragma once
// Compile-once / simulate-many execution of CommPlans.
//
// core::measure() runs the same CommPlan hundreds to thousands of times with
// nothing but the noise seed changing between repetitions.  Interpreting the
// plan op-by-op repeats a large amount of noise-independent work every rep:
// send/receive matching, path classification (on-socket / on-node /
// off-node), protocol selection, alpha/beta parameter lookups, queue-depth
// counting, and resource-id derivation (ports, NIC servers, DMA engines).
//
// CompiledPlan hoists all of that out of the repetition loop.  Compiling a
// (CommPlan, Topology, ParamSet) triple produces, per phase, flat
// struct-of-arrays op tables whose entries carry every rep-invariant
// quantity pre-folded into the exact floating-point values the interpreter
// would compute:
//
//   * messages: matched send/receive pairing (FIFO per (src,dst,tag), the
//     same pairing Engine::resolve() derives each call), path class,
//     protocol, sender occupancy alpha+beta*s, receiver drain beta*s,
//     completion base alpha+beta*s+queue_cost, NIC occupancy, node ids;
//   * copies: interpolated copy parameters, DMA occupancy, base duration;
//   * packs: base duration.
//
// Engine::execute(plan) then performs only the rep-varying work -- noise
// draws, single-server queueing, clock advancement -- on member-owned
// scratch that is cleared, never reallocated, across reps.  Execution is
// bit-identical (clocks, traces, counters, noise-stream position) to
// driving the same plan through run_plan()'s isend/irecv/copy/pack +
// resolve() path; tests/test_compiled_plan.cpp holds that contract.

#include <cstdint>
#include <vector>

#include "core/plan.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

/// Posting-order step: which op table the next op lives in.
enum class StepKind : std::uint8_t { Message, Copy, Pack };

struct CompiledStep {
  StepKind kind = StepKind::Message;
  std::uint32_t index = 0;  ///< index into the phase's per-kind table
};

/// One phase of a compiled plan: flat per-kind op tables plus the posting
/// order that interleaves them (noise draws must happen in posting order
/// for bit-identity with the interpreted path).
struct CompiledPhase {
  std::vector<CompiledStep> steps;  ///< original op order

  // -- Messages ----------------------------------------------------------
  // Hot scheduling constants, read every repetition in the inner loop.
  struct MessageSchedule {
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::int64_t bytes = 0;
    double send_occupancy = 0.0;   ///< alpha + beta*s (sender port)
    double drain_occupancy = 0.0;  ///< beta*s (receiver port)
    double completion_base = 0.0;  ///< alpha + beta*s + queue_cost (noised)
    double nic_occupancy = 0.0;    ///< inv_rate*s + nic_overhead (off-node)
    std::int32_t src_node = -1;    ///< valid when off_node
    std::int32_t dst_node = -1;
    std::int32_t src_nic = -1;     ///< NIC-lane server index (off-node)
    std::int32_t dst_nic = -1;
    std::int8_t rail = -1;         ///< explicit NIC lane (-1 = hashed)
    bool off_node = false;
    bool rendezvous = false;       ///< ready waits for the receive posting
  };
  // Cold metadata, touched only by tracing and the metrics invariant tier.
  struct MessageMeta {
    int tag = 0;
    MemSpace space = MemSpace::Host;
    Protocol protocol = Protocol::Eager;
    std::uint8_t path_id = 0;         ///< taxonomy class id (metrics slot)
    PathClass path = PathClass::OnSocket;  ///< base locality (traces)
  };
  std::vector<MessageSchedule> messages;  ///< in posting order
  std::vector<MessageMeta> message_meta;  ///< index-aligned with messages
  /// messages[i]'s send is FIFO-matched to messages[recv_of_send[i]]'s
  /// receive.  (For plans built by run_plan semantics -- send and matching
  /// receive posted by the same op -- this is the identity permutation, but
  /// compilation derives it from first principles.)
  std::vector<std::uint32_t> recv_of_send;
  /// Message-to-message dependency: messages[i] becomes ready no earlier
  /// than messages[msg_dep[i]]'s completion (-1 = independent).  Deps on
  /// copies/packs compile away -- blocking posting on the sending rank
  /// already orders them -- so only message targets appear here.
  std::vector<std::int32_t> msg_dep;
  /// Dependency waves: when any msg_dep edge exists, wave w's message
  /// indices are wave_members[wave_begin[w] .. wave_begin[w+1]), bucketed
  /// by dep-chain depth, index-ascending within a wave.  Empty wave_begin
  /// means one wave of all messages -- the historical schedule path with
  /// its warm-start sort cache.
  std::vector<std::uint32_t> wave_members;
  std::vector<std::uint32_t> wave_begin;
  [[nodiscard]] std::size_t num_waves() const noexcept {
    return wave_begin.empty() ? 1 : wave_begin.size() - 1;
  }

  // -- Copies ------------------------------------------------------------
  struct CopyOp {
    std::int32_t rank = -1;
    std::int32_t gpu = -1;
    CopyDir dir = CopyDir::DeviceToHost;
    std::int32_t sharing_procs = 1;
    std::int64_t bytes = 0;
    double occupancy = 0.0;      ///< dma_op_overhead + raw_beta*s/sharing
    double duration_base = 0.0;  ///< interpolated alpha + beta*s (noised)
  };
  std::vector<CopyOp> copies;

  // -- Packs -------------------------------------------------------------
  struct PackOp {
    std::int32_t rank = -1;
    std::int64_t bytes = 0;
    double duration_base = 0.0;  ///< pack_per_byte * s (noised)
  };
  std::vector<PackOp> packs;

  // Phase-constant network counters (sum over off-node messages), added to
  // the engine's totals once per phase instead of per message.
  std::int64_t network_bytes = 0;
  std::int64_t network_messages = 0;
};

/// Immutable compiled form of a CommPlan for one (Topology, ParamSet).
/// Thread-safe to share by const reference across workers: execution
/// mutates only the executing Engine.
class CompiledPlan {
 public:
  /// Compile `plan` against `topo`/`params`.  Performs the same
  /// validation the interpreted path would: bad ranks/GPUs and negative
  /// sizes throw (std::out_of_range / std::invalid_argument), and a phase
  /// whose sends and receives cannot be fully FIFO-matched throws
  /// std::logic_error -- at compile time, before any repetition runs.
  CompiledPlan(const CommPlan& plan, const Topology& topo,
               const ParamSet& params);

  [[nodiscard]] const std::vector<CompiledPhase>& phases() const noexcept {
    return phases_;
  }
  /// Structural shape of the machine this plan was compiled for;
  /// Engine::execute() rejects engines with a different shape.
  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] int num_gpus() const noexcept { return num_gpus_; }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  /// Path-class count and NIC-lane count the plan's precomputed ids assume
  /// (taxonomy/NIC layout are structural too, not just the shape).
  [[nodiscard]] int num_paths() const noexcept { return num_paths_; }
  [[nodiscard]] int nic_lanes() const noexcept { return nic_lanes_; }

  /// Total message count across phases (diagnostics / sizing).
  [[nodiscard]] std::int64_t total_messages() const noexcept;

 private:
  std::vector<CompiledPhase> phases_;
  int num_ranks_ = 0;
  int num_gpus_ = 0;
  int num_nodes_ = 0;
  int num_paths_ = 0;
  int nic_lanes_ = 1;
};

}  // namespace hetcomm::core
