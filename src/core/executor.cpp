#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/engine_metrics.hpp"

#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"

namespace hetcomm::core {

namespace {

void check_clock_span(const Engine& engine, std::span<double> clocks_out) {
  if (clocks_out.size() !=
      static_cast<std::size_t>(engine.topology().num_ranks())) {
    throw std::invalid_argument("run_plan: clocks_out must hold one slot per rank");
  }
}

}  // namespace

void run_plan(Engine& engine, const CommPlan& plan,
              std::span<double> clocks_out) {
  check_clock_span(engine, clocks_out);
  // Split plans (rails / dependency edges) thread per-op state into isend;
  // the scan keeps dep-free plans on the exact historical posting loop.
  bool has_split_ops = false;
  for (const PlanPhase& phase : plan.phases) {
    for (const PlanOp& op : phase.ops) {
      if (op.rail >= 0 || op.depends_on >= 0) {
        has_split_ops = true;
        break;
      }
    }
    if (has_split_ops) break;
  }
  std::vector<int> send_req;  // phase-local op index -> isend request id
  for (const PlanPhase& phase : plan.phases) {
    if (has_split_ops) send_req.assign(phase.ops.size(), -1);
    for (std::size_t oi = 0; oi < phase.ops.size(); ++oi) {
      const PlanOp& op = phase.ops[oi];
      switch (op.type) {
        case OpType::Message:
          if (!has_split_ops) {
            engine.isend(op.src_rank, op.dst_rank, op.bytes, op.tag,
                         op.space);
          } else {
            // Only message-target deps reach the engine: deps on copies or
            // packs are already enforced by blocking posting on the
            // sender's clock (the engine would reject them as non-send
            // request ids).
            int dep_req = -1;
            if (op.depends_on >= 0 &&
                static_cast<std::size_t>(op.depends_on) < phase.ops.size() &&
                phase.ops[static_cast<std::size_t>(op.depends_on)].type ==
                    OpType::Message) {
              dep_req = send_req[static_cast<std::size_t>(op.depends_on)];
            }
            send_req[oi] = engine.isend(op.src_rank, op.dst_rank, op.bytes,
                                        op.tag, op.space, op.rail, dep_req);
          }
          engine.irecv(op.dst_rank, op.src_rank, op.bytes, op.tag, op.space);
          break;
        case OpType::Copy:
          engine.copy(op.rank, op.gpu, op.dir, op.bytes, op.sharing_procs);
          break;
        case OpType::Pack:
          engine.pack(op.rank, op.bytes);
          break;
      }
    }
    if (engine.has_pending()) engine.resolve();
    // One phase-end sample per phase on the sampled tier, matching
    // Engine::execute.
    if (engine.sampled_metrics() != nullptr) {
      engine.sampled_metrics()->on_phase_end(engine.max_clock());
    }
  }
  const std::vector<double>& clocks = engine.clocks();
  std::copy(clocks.begin(), clocks.end(), clocks_out.begin());
}

std::vector<double> run_plan(Engine& engine, const CommPlan& plan) {
  std::vector<double> clocks(
      static_cast<std::size_t>(engine.topology().num_ranks()));
  run_plan(engine, plan, clocks);
  return clocks;
}

void run_plan(Engine& engine, const CompiledPlan& plan,
              std::span<double> clocks_out) {
  check_clock_span(engine, clocks_out);
  engine.execute(plan);
  const std::vector<double>& clocks = engine.clocks();
  std::copy(clocks.begin(), clocks.end(), clocks_out.begin());
}

MeasureResult measure(const CommPlan& plan, const Topology& topo,
                      const ParamSet& params, const MeasureOptions& options) {
  if (options.reps < 1) {
    throw std::invalid_argument("measure: reps must be >= 1");
  }
  if (options.jobs < 0) {
    throw std::invalid_argument("measure: jobs must be >= 0 (0 = hardware)");
  }
  if (options.batch < 0) {
    throw std::invalid_argument(
        "measure: batch must be >= 0 (0 = auto, 1 = serial)");
  }

  MeasureResult result;
  result.summary = plan.summarize(topo);
  result.per_rank_mean.assign(static_cast<std::size_t>(topo.num_ranks()), 0.0);
  result.makespan_min = std::numeric_limits<double>::infinity();
  result.makespan_max = 0.0;

  int jobs = options.jobs == 0 ? runtime::hardware_jobs() : options.jobs;
  jobs = std::min(jobs, options.reps);

  const std::size_t num_ranks = static_cast<std::size_t>(topo.num_ranks());

  // Span tracing: resolve the trace id up front; an unsampled id turns the
  // local tracer pointer off entirely, so the hot path below stays on the
  // exact tracing-off code for skipped traces.
  obs::Tracer* tracer = options.tracer;
  std::uint64_t trace_id = options.trace_id;
  std::uint32_t trace_root = options.trace_parent;
  bool own_root = false;
  obs::SpanRecord root_span;
  std::uint16_t n_compile = 0, n_block = 0, n_phase = 0;
  std::uint16_t k_block = 0, k_lanes = 0, k_phase = 0, k_sim = 0;
  if (tracer != nullptr && trace_id == 0) trace_id = tracer->begin_trace();
  if (tracer != nullptr && !tracer->sampled(trace_id)) tracer = nullptr;
  if (tracer != nullptr) {
    n_compile = tracer->intern("measure.compile");
    n_block = tracer->intern("measure.block");
    n_phase = tracer->intern("engine.phase");
    k_block = tracer->intern("first_rep");
    k_lanes = tracer->intern("lanes");
    k_phase = tracer->intern("phase");
    k_sim = tracer->intern("sim_ns");
    if (options.trace_parent == 0) {
      own_root = true;
      root_span.trace_id = trace_id;
      root_span.span_id = tracer->new_span_id();
      root_span.name = tracer->intern("measure");
      root_span.t_start = tracer->now();
      trace_root = root_span.span_id;
    }
  }

  // Compile the rep-invariant work once; the immutable CompiledPlan is
  // shared by const reference across every worker thread.  A caller-owned
  // precompiled plan (serve cache, stability ensemble) skips even that.
  std::optional<CompiledPlan> compiled_local;
  const CompiledPlan* compiled = nullptr;
  if (options.engine == ExecMode::Compiled) {
    if (options.precompiled != nullptr) {
      compiled = options.precompiled;
    } else {
      const obs::ScopedSpan compile_span(
          obs::TraceContext{tracer, 0, trace_id, trace_root, 0}, n_compile);
      compiled_local.emplace(plan, topo, params);
      compiled = &*compiled_local;
    }
  }

  // Effective lane width.  batch=0 auto-sizes: start at 16 lanes, halve
  // while the per-rank lane scratch would outgrow a cache-friendly budget
  // (~8192 doubles of lane clocks), then cap at ceil(reps / jobs) so every
  // worker still gets a block (--jobs x batch compose; an explicit batch
  // width wins over worker occupancy).  Interpreted mode has no compiled
  // tables to batch over and always runs the serial path, as does width 1.
  int width = options.batch;
  if (width == 0) {
    width = 16;
    while (width > 1 && topo.num_ranks() * width > 8192) width /= 2;
    width = std::min(width, static_cast<int>((options.reps + jobs - 1) / jobs));
  }
  width = std::min(width, options.reps);
  const bool batched = compiled != nullptr && width > 1;
  result.batch = batched ? width : 1;

  // Lane blocks (batched path): contiguous repetition ranges handed to
  // Engine::execute_batch, the trailing partial block included.  Workers
  // pick up whole blocks, so --jobs composes with --batch.
  std::vector<runtime::LaneBlock> blocks;
  std::vector<std::uint64_t> rep_seeds;
  if (batched) {
    blocks = runtime::lane_blocks(options.reps, width);
    jobs = std::min(jobs, static_cast<int>(blocks.size()));
    rep_seeds.resize(static_cast<std::size_t>(options.reps));
    for (std::int64_t rep = 0; rep < options.reps; ++rep) {
      rep_seeds[static_cast<std::size_t>(rep)] =
          mix_seed(options.seed, static_cast<std::uint64_t>(rep));
    }
  }

  // Per-repetition clocks in one flat reps x num_ranks buffer (a single
  // allocation instead of one per repetition), keyed by repetition so the
  // reduction below is independent of which worker ran which repetition.
  std::vector<double> rep_clocks(static_cast<std::size_t>(options.reps) *
                                 num_ranks);
  Trace last_trace;  // written only by the repetition reps-1

  // One reusable engine per worker, constructed lazily on first use.
  std::vector<std::unique_ptr<Engine>> engines(static_cast<std::size_t>(jobs));

  // Metrics plumbing (collect_metrics).  Each worker accumulates into its
  // own sink; phase-end clocks land in a flat reps x phases buffer keyed by
  // repetition, so aggregation below never depends on which worker ran
  // which repetition.
  const std::size_t num_phases = plan.phases.size();
  // Noise-dependent statistics (queue waits, copy/pack durations, phase-end
  // clocks) are sampled on repetitions where rep % sample_stride == 0 --
  // with the stride at `reps`, exactly repetition 0.  One profiled
  // repetition already pools hundreds of per-event wait samples at paper
  // scale, and every repetition that records pays for a full rank-clock
  // scan per phase, so bounding the sampled count is what holds the
  // enabled-mode overhead under the <2% budget (plan-invariant counters
  // record once; see Engine::set_metrics).  Keying the choice on the
  // repetition index alone keeps the aggregate identical at any jobs
  // count.
  const std::int64_t sample_stride = std::max<std::int64_t>(1, options.reps);
  const int sampled_reps = static_cast<int>(
      (options.reps + sample_stride - 1) / sample_stride);
  std::vector<obs::EngineMetrics> worker_metrics;
  std::vector<double> phase_ends;
  std::vector<std::int64_t> worker_rep_count;
  std::vector<double> worker_busy_seconds;
  if (options.collect_metrics) {
    worker_metrics.resize(static_cast<std::size_t>(jobs));
    phase_ends.assign(static_cast<std::size_t>(options.reps) * num_phases,
                      0.0);
    worker_rep_count.assign(static_cast<std::size_t>(jobs), 0);
    worker_busy_seconds.assign(static_cast<std::size_t>(jobs), 0.0);
  }

  // Tracing scratch.  The worker that runs repetition 0 (serial path) or
  // the leading block (batched path) is the only writer of the lead_* /
  // trace_phase_ends slots; they are read back serially after the pool
  // joins.  Without collect_metrics a throwaway sink is attached to that
  // one repetition so the engine still surfaces its phase-end clocks.
  obs::EngineMetrics trace_sink;
  const bool want_trace_phases = tracer != nullptr && !options.collect_metrics;
  std::vector<double> trace_phase_ends;
  std::uint32_t lead_span = 0;
  int lead_ring = 0;
  double lead_t0 = 0.0;
  double lead_t1 = 0.0;

  const auto run_rep = [&](std::int64_t rep, int worker) {
    std::unique_ptr<Engine>& slot = engines[static_cast<std::size_t>(worker)];
    if (!slot) {
      slot = std::make_unique<Engine>(topo, params,
                                      NoiseModel(0, options.noise_sigma));
      if (options.fabric) slot->set_fabric(*options.fabric);
      if (options.faults) slot->set_faults(options.faults);
    }
    const double trace_t0 = tracer != nullptr ? tracer->now() : 0.0;
    if (want_trace_phases) {
      slot->set_metrics(rep == 0 ? &trace_sink : nullptr, false, rep == 0);
    }
    if (options.collect_metrics) {
      // Plan-invariant slots record on repetition 0 only (exactly once per
      // measure() call, whichever worker runs it); waits, copy/pack
      // durations, and phase-end clocks record on the sampled repetitions.
      // Steady-state repetitions detach the sink entirely, so they run the
      // exact metrics-off code path -- that is what keeps the enabled-mode
      // overhead inside the <2% budget.
      const bool invariant_rep = rep == 0;
      const bool sampled_rep = rep % sample_stride == 0;
      slot->set_metrics(
          invariant_rep || sampled_rep
              ? &worker_metrics[static_cast<std::size_t>(worker)]
              : nullptr,
          invariant_rep, sampled_rep);
    }
    Engine& engine = *slot;
    engine.reset(mix_seed(options.seed, static_cast<std::uint64_t>(rep)));
    const bool traced =
        options.trace_last_rep && rep == static_cast<std::int64_t>(options.reps) - 1;
    engine.set_tracing(traced);
    const auto rep_start = options.collect_metrics
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    const std::span<double> clocks_out(
        rep_clocks.data() + static_cast<std::size_t>(rep) * num_ranks,
        num_ranks);
    if (compiled) {
      run_plan(engine, *compiled, clocks_out);
    } else {
      run_plan(engine, plan, clocks_out);
    }
    if (options.collect_metrics) {
      obs::EngineMetrics& sink = worker_metrics[static_cast<std::size_t>(worker)];
      // Move this repetition's phase-end clocks into the rep-keyed buffer;
      // every other sink slot keeps accumulating across repetitions.
      for (std::size_t p = 0; p < sink.phase_makespan.size(); ++p) {
        phase_ends[static_cast<std::size_t>(rep) * num_phases + p] =
            sink.phase_makespan[p];
      }
      sink.phase_makespan.clear();
      ++worker_rep_count[static_cast<std::size_t>(worker)];
      worker_busy_seconds[static_cast<std::size_t>(worker)] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        rep_start)
              .count();
    }
    if (traced) {
      last_trace = engine.trace();
      engine.set_tracing(false);
    }
    if (tracer != nullptr) {
      obs::SpanRecord s;
      s.trace_id = trace_id;
      s.span_id = tracer->new_span_id();
      s.parent = trace_root;
      s.name = n_block;
      s.track = static_cast<std::uint16_t>(worker);
      s.t_start = trace_t0;
      s.t_end = tracer->now();
      s.add_attr(k_block, rep);
      s.add_attr(k_lanes, 1);
      if (rep == 0) {
        lead_span = s.span_id;
        lead_ring = worker;
        lead_t0 = s.t_start;
        lead_t1 = s.t_end;
        if (want_trace_phases) {
          trace_phase_ends = trace_sink.phase_makespan;
          trace_sink.phase_makespan.clear();
        }
      }
      tracer->record(worker, s);
    }
  };

  // Batched counterpart of run_rep: one task per lane block, all lanes of
  // the block run in lockstep by Engine::execute_batch.  Lane l of block b
  // is bit-identical to run_rep(b.start + l), so the rep-keyed reduction
  // below is oblivious to which path filled rep_clocks.
  const auto run_block = [&](std::int64_t block, int worker) {
    std::unique_ptr<Engine>& slot = engines[static_cast<std::size_t>(worker)];
    if (!slot) {
      slot = std::make_unique<Engine>(topo, params,
                                      NoiseModel(0, options.noise_sigma));
      if (options.fabric) slot->set_fabric(*options.fabric);
      if (options.faults) slot->set_faults(options.faults);
    }
    const runtime::LaneBlock blk = blocks[static_cast<std::size_t>(block)];
    const double trace_t0 = tracer != nullptr ? tracer->now() : 0.0;
    if (want_trace_phases) {
      const bool leading = blk.start == 0;
      slot->set_metrics(leading ? &trace_sink : nullptr, false, leading);
    }
    if (options.collect_metrics) {
      // execute_batch records lane 0 only, so attaching the sink to the
      // block that starts at repetition 0 reproduces the serial sampling
      // policy exactly: invariants and samples from repetition 0, nothing
      // from any other repetition (sample_stride == reps).
      const bool leading = blk.start == 0;
      slot->set_metrics(leading
                            ? &worker_metrics[static_cast<std::size_t>(worker)]
                            : nullptr,
                        leading, leading);
    }
    Engine& engine = *slot;
    const bool traced =
        options.trace_last_rep &&
        blk.start + blk.width == static_cast<std::int64_t>(options.reps);
    engine.set_tracing(traced);
    const auto block_start = options.collect_metrics
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    const std::span<const std::uint64_t> lane_seeds(
        rep_seeds.data() + blk.start, static_cast<std::size_t>(blk.width));
    const std::span<double> clocks_out(
        rep_clocks.data() + static_cast<std::size_t>(blk.start) * num_ranks,
        static_cast<std::size_t>(blk.width) * num_ranks);
    engine.execute_batch(*compiled, lane_seeds, clocks_out,
                         traced ? blk.width - 1 : -1);
    if (options.collect_metrics) {
      obs::EngineMetrics& sink =
          worker_metrics[static_cast<std::size_t>(worker)];
      // Only the leading block's sink holds phase-end clocks (lane 0 ==
      // repetition 0); move them into that repetition's row.
      for (std::size_t p = 0; p < sink.phase_makespan.size(); ++p) {
        phase_ends[static_cast<std::size_t>(blk.start) * num_phases + p] =
            sink.phase_makespan[p];
      }
      sink.phase_makespan.clear();
      worker_rep_count[static_cast<std::size_t>(worker)] += blk.width;
      worker_busy_seconds[static_cast<std::size_t>(worker)] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        block_start)
              .count();
    }
    if (traced) {
      last_trace = engine.trace();
      engine.set_tracing(false);
    }
    if (tracer != nullptr) {
      obs::SpanRecord s;
      s.trace_id = trace_id;
      s.span_id = tracer->new_span_id();
      s.parent = trace_root;
      s.name = n_block;
      s.track = static_cast<std::uint16_t>(worker);
      s.t_start = trace_t0;
      s.t_end = tracer->now();
      s.add_attr(k_block, blk.start);
      s.add_attr(k_lanes, blk.width);
      if (blk.start == 0) {
        lead_span = s.span_id;
        lead_ring = worker;
        lead_t0 = s.t_start;
        lead_t1 = s.t_end;
        if (want_trace_phases) {
          trace_phase_ends = trace_sink.phase_makespan;
          trace_sink.phase_makespan.clear();
        }
      }
      tracer->record(worker, s);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  runtime::ThreadPool pool(jobs);
  try {
    if (batched) {
      pool.parallel_for(static_cast<std::int64_t>(blocks.size()), run_block);
    } else {
      pool.parallel_for(options.reps, run_rep);
    }
  } catch (const FaultAbort& e) {
    if (e.strategy.empty()) {
      // Stamp the structured error with the plan it killed; everything else
      // (ranks, path class, attempt count) came from the engine.
      throw FaultAbort(e.reason, plan.strategy_name, e.src, e.dst, e.path_id,
                       e.path, e.attempts);
    }
    throw;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.reps_per_second =
      result.wall_seconds > 0.0 ? options.reps / result.wall_seconds : 0.0;

  // Repetition-0 engine phase spans, nested inside the block span that ran
  // it.  The engine reports *simulated* phase-end clocks; the spans scale
  // them proportionally into the block's wall interval so the timeline
  // shows each phase's share of the block, not wall truth.
  if (tracer != nullptr && lead_span != 0) {
    const double* ends = nullptr;
    std::size_t count = 0;
    if (want_trace_phases) {
      ends = trace_phase_ends.data();
      count = trace_phase_ends.size();
    } else if (options.collect_metrics && num_phases > 0) {
      ends = phase_ends.data();  // row 0 == repetition 0
      count = num_phases;
    }
    const double total = count > 0 ? ends[count - 1] : 0.0;
    if (total > 0.0) {
      const double scale = (lead_t1 - lead_t0) / total;
      double prev = 0.0;
      for (std::size_t p = 0; p < count; ++p) {
        obs::SpanRecord s;
        s.trace_id = trace_id;
        s.span_id = tracer->new_span_id();
        s.parent = lead_span;
        s.name = n_phase;
        s.track = static_cast<std::uint16_t>(lead_ring);
        s.t_start = lead_t0 + prev * scale;
        s.t_end = lead_t0 + ends[p] * scale;
        s.add_attr(k_phase, static_cast<std::int64_t>(p));
        s.add_attr(k_sim, std::llround((ends[p] - prev) * 1e9));
        tracer->record(lead_ring, s);
        prev = ends[p];
      }
    }
  }

  // Serial reduction in repetition order: bit-identical at any jobs count.
  std::vector<double> makespans;
  if (options.collect_metrics) {
    makespans.reserve(static_cast<std::size_t>(options.reps));
  }
  for (int rep = 0; rep < options.reps; ++rep) {
    const double* clocks =
        rep_clocks.data() + static_cast<std::size_t>(rep) * num_ranks;
    double makespan = 0.0;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      result.per_rank_mean[r] += clocks[r];
      makespan = std::max(makespan, clocks[r]);
    }
    result.makespan_mean += makespan;
    result.makespan_min = std::min(result.makespan_min, makespan);
    result.makespan_max = std::max(result.makespan_max, makespan);
    if (options.collect_metrics) makespans.push_back(makespan);
  }

  const double inv = 1.0 / options.reps;
  result.makespan_mean *= inv;
  for (double& t : result.per_rank_mean) t *= inv;
  result.max_avg =
      *std::max_element(result.per_rank_mean.begin(), result.per_rank_mean.end());
  result.trace = std::move(last_trace);

  if (options.collect_metrics) {
    // Counter merges are commutative integer adds and histogram merges are
    // commutative bin adds, so folding per-worker sinks in worker order
    // yields the same aggregate however repetitions were partitioned.
    obs::EngineMetrics aggregate;
    for (const obs::EngineMetrics& wm : worker_metrics) aggregate.merge(wm);

    obs::RunReport report;
    report.engine = to_string(options.engine);
    report.reps = options.reps;
    report.jobs = jobs;
    report.batch = result.batch;
    report.seed = options.seed;
    report.noise_sigma = options.noise_sigma;
    report.ranks = topo.num_ranks();
    report.nodes = topo.num_nodes();
    report.makespan = obs::summarize(makespans);
    report.max_avg = result.max_avg;
    report.wall_seconds = result.wall_seconds;
    report.reps_per_second = result.reps_per_second;

    // Per-phase makespan contributions: delta between consecutive phase-end
    // clocks within each sampled repetition, summarized across the sampled
    // repetitions (phase-end clocks ride the sampled tier).
    std::vector<double> deltas(static_cast<std::size_t>(sampled_reps));
    double share_total = 0.0;
    for (std::size_t p = 0; p < num_phases; ++p) {
      for (int s = 0; s < sampled_reps; ++s) {
        const std::int64_t rep = static_cast<std::int64_t>(s) * sample_stride;
        const std::size_t base =
            static_cast<std::size_t>(rep) * num_phases;
        const double prev = p == 0 ? 0.0 : phase_ends[base + p - 1];
        deltas[static_cast<std::size_t>(s)] = phase_ends[base + p] - prev;
      }
      obs::PhaseStat stat;
      stat.phase = static_cast<int>(p);
      stat.makespan = obs::summarize(deltas);
      report.phases.push_back(std::move(stat));
      share_total += report.phases.back().makespan.mean;
    }
    if (share_total > 0.0) {
      for (obs::PhaseStat& stat : report.phases) {
        stat.share = stat.makespan.mean / share_total;
      }
    }

    obs::fill_from_engine_metrics(report, aggregate, options.reps,
                                  /*invariant_reps=*/1, sampled_reps);
    report.sampled_reps = sampled_reps;
    for (int w = 0; w < jobs; ++w) {
      if (worker_rep_count[static_cast<std::size_t>(w)] == 0) continue;
      report.workers.push_back(
          {w, worker_rep_count[static_cast<std::size_t>(w)],
           worker_busy_seconds[static_cast<std::size_t>(w)]});
    }
    result.metrics = std::move(report);
  }

  if (tracer != nullptr && own_root) {
    root_span.t_end = tracer->now();
    root_span.add_attr(tracer->intern("reps"), options.reps);
    root_span.add_attr(tracer->intern("jobs"), jobs);
    root_span.add_attr(tracer->intern("batch"), result.batch);
    tracer->record(0, root_span);
  }
  return result;
}

}  // namespace hetcomm::core
