#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace hetcomm::core {

namespace {

void check_clock_span(const Engine& engine, std::span<double> clocks_out) {
  if (clocks_out.size() !=
      static_cast<std::size_t>(engine.topology().num_ranks())) {
    throw std::invalid_argument("run_plan: clocks_out must hold one slot per rank");
  }
}

}  // namespace

void run_plan(Engine& engine, const CommPlan& plan,
              std::span<double> clocks_out) {
  check_clock_span(engine, clocks_out);
  for (const PlanPhase& phase : plan.phases) {
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message:
          engine.isend(op.src_rank, op.dst_rank, op.bytes, op.tag, op.space);
          engine.irecv(op.dst_rank, op.src_rank, op.bytes, op.tag, op.space);
          break;
        case OpType::Copy:
          engine.copy(op.rank, op.gpu, op.dir, op.bytes, op.sharing_procs);
          break;
        case OpType::Pack:
          engine.pack(op.rank, op.bytes);
          break;
      }
    }
    if (engine.has_pending()) engine.resolve();
  }
  const std::vector<double>& clocks = engine.clocks();
  std::copy(clocks.begin(), clocks.end(), clocks_out.begin());
}

std::vector<double> run_plan(Engine& engine, const CommPlan& plan) {
  std::vector<double> clocks(
      static_cast<std::size_t>(engine.topology().num_ranks()));
  run_plan(engine, plan, clocks);
  return clocks;
}

void run_plan(Engine& engine, const CompiledPlan& plan,
              std::span<double> clocks_out) {
  check_clock_span(engine, clocks_out);
  engine.execute(plan);
  const std::vector<double>& clocks = engine.clocks();
  std::copy(clocks.begin(), clocks.end(), clocks_out.begin());
}

MeasureResult measure(const CommPlan& plan, const Topology& topo,
                      const ParamSet& params, const MeasureOptions& options) {
  if (options.reps < 1) {
    throw std::invalid_argument("measure: reps must be >= 1");
  }
  if (options.jobs < 0) {
    throw std::invalid_argument("measure: jobs must be >= 0 (0 = hardware)");
  }

  MeasureResult result;
  result.summary = plan.summarize(topo);
  result.per_rank_mean.assign(static_cast<std::size_t>(topo.num_ranks()), 0.0);
  result.makespan_min = std::numeric_limits<double>::infinity();
  result.makespan_max = 0.0;

  int jobs = options.jobs == 0 ? runtime::hardware_jobs() : options.jobs;
  jobs = std::min(jobs, options.reps);

  const std::size_t num_ranks = static_cast<std::size_t>(topo.num_ranks());

  // Compile the rep-invariant work once; the immutable CompiledPlan is
  // shared by const reference across every worker thread.
  std::optional<CompiledPlan> compiled;
  if (options.engine == ExecMode::Compiled) {
    compiled.emplace(plan, topo, params);
  }

  // Per-repetition clocks in one flat reps x num_ranks buffer (a single
  // allocation instead of one per repetition), keyed by repetition so the
  // reduction below is independent of which worker ran which repetition.
  std::vector<double> rep_clocks(static_cast<std::size_t>(options.reps) *
                                 num_ranks);
  Trace last_trace;  // written only by the repetition reps-1

  // One reusable engine per worker, constructed lazily on first use.
  std::vector<std::unique_ptr<Engine>> engines(static_cast<std::size_t>(jobs));

  const auto run_rep = [&](std::int64_t rep, int worker) {
    std::unique_ptr<Engine>& slot = engines[static_cast<std::size_t>(worker)];
    if (!slot) {
      slot = std::make_unique<Engine>(topo, params,
                                      NoiseModel(0, options.noise_sigma));
      if (options.fabric) slot->set_fabric(*options.fabric);
    }
    Engine& engine = *slot;
    engine.reset(mix_seed(options.seed, static_cast<std::uint64_t>(rep)));
    const bool traced =
        options.trace_last_rep && rep == static_cast<std::int64_t>(options.reps) - 1;
    engine.set_tracing(traced);
    const std::span<double> clocks_out(
        rep_clocks.data() + static_cast<std::size_t>(rep) * num_ranks,
        num_ranks);
    if (compiled) {
      run_plan(engine, *compiled, clocks_out);
    } else {
      run_plan(engine, plan, clocks_out);
    }
    if (traced) {
      last_trace = engine.trace();
      engine.set_tracing(false);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  runtime::ThreadPool pool(jobs);
  pool.parallel_for(options.reps, run_rep);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.reps_per_second =
      result.wall_seconds > 0.0 ? options.reps / result.wall_seconds : 0.0;

  // Serial reduction in repetition order: bit-identical at any jobs count.
  for (int rep = 0; rep < options.reps; ++rep) {
    const double* clocks =
        rep_clocks.data() + static_cast<std::size_t>(rep) * num_ranks;
    double makespan = 0.0;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      result.per_rank_mean[r] += clocks[r];
      makespan = std::max(makespan, clocks[r]);
    }
    result.makespan_mean += makespan;
    result.makespan_min = std::min(result.makespan_min, makespan);
    result.makespan_max = std::max(result.makespan_max, makespan);
  }

  const double inv = 1.0 / options.reps;
  result.makespan_mean *= inv;
  for (double& t : result.per_rank_mean) t *= inv;
  result.max_avg =
      *std::max_element(result.per_rank_mean.begin(), result.per_rank_mean.end());
  result.trace = std::move(last_trace);
  return result;
}

}  // namespace hetcomm::core
