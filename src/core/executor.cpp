#include "core/executor.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hetcomm::core {

std::vector<double> run_plan(Engine& engine, const CommPlan& plan) {
  for (const PlanPhase& phase : plan.phases) {
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message:
          engine.isend(op.src_rank, op.dst_rank, op.bytes, op.tag, op.space);
          engine.irecv(op.dst_rank, op.src_rank, op.bytes, op.tag, op.space);
          break;
        case OpType::Copy:
          engine.copy(op.rank, op.gpu, op.dir, op.bytes, op.sharing_procs);
          break;
        case OpType::Pack:
          engine.pack(op.rank, op.bytes);
          break;
      }
    }
    if (engine.has_pending()) engine.resolve();
  }

  std::vector<double> clocks(static_cast<std::size_t>(engine.topology().num_ranks()));
  for (std::size_t r = 0; r < clocks.size(); ++r) {
    clocks[r] = engine.clock(static_cast<int>(r));
  }
  return clocks;
}

MeasureResult measure(const CommPlan& plan, const Topology& topo,
                      const ParamSet& params, const MeasureOptions& options) {
  if (options.reps < 1) {
    throw std::invalid_argument("measure: reps must be >= 1");
  }

  MeasureResult result;
  result.summary = plan.summarize(topo);
  result.per_rank_mean.assign(static_cast<std::size_t>(topo.num_ranks()), 0.0);
  result.makespan_min = std::numeric_limits<double>::infinity();
  result.makespan_max = 0.0;

  for (int rep = 0; rep < options.reps; ++rep) {
    Engine engine(topo, params,
                  NoiseModel(options.seed + static_cast<std::uint64_t>(rep),
                             options.noise_sigma));
    if (options.trace_last_rep && rep == options.reps - 1) {
      engine.set_tracing(true);
    }
    const std::vector<double> clocks = run_plan(engine, plan);
    double makespan = 0.0;
    for (std::size_t r = 0; r < clocks.size(); ++r) {
      result.per_rank_mean[r] += clocks[r];
      makespan = std::max(makespan, clocks[r]);
    }
    result.makespan_mean += makespan;
    result.makespan_min = std::min(result.makespan_min, makespan);
    result.makespan_max = std::max(result.makespan_max, makespan);
  }

  const double inv = 1.0 / options.reps;
  result.makespan_mean *= inv;
  for (double& t : result.per_rank_mean) t *= inv;
  result.max_avg =
      *std::max_element(result.per_rank_mean.begin(), result.per_rank_mean.end());
  return result;
}

}  // namespace hetcomm::core
