#pragma once
// Execute a CommPlan on the discrete-event simulator and collect timing
// statistics the way the paper reports them: per-process times averaged over
// repetitions, then the maximum over processes ("maximum average time
// required for communication by any single process", §4.5/§5).

#include <cstdint>
#include <vector>

#include "core/plan.hpp"
#include "hetsim/engine.hpp"

namespace hetcomm::core {

struct MeasureOptions {
  int reps = 25;              ///< repetitions (the paper uses 1000)
  std::uint64_t seed = 0x5eedULL;
  double noise_sigma = 0.02;  ///< lognormal noise; 0 = deterministic
  bool trace_last_rep = false;
};

struct MeasureResult {
  double max_avg = 0.0;       ///< max over ranks of per-rank mean time
  double makespan_mean = 0.0; ///< mean over reps of max rank time
  double makespan_min = 0.0;
  double makespan_max = 0.0;
  std::vector<double> per_rank_mean;
  PlanSummary summary;
};

/// Run `plan` once on `engine` (which must be reset by the caller) and
/// return each rank's final clock.
std::vector<double> run_plan(Engine& engine, const CommPlan& plan);

/// Repeatedly execute `plan` on a fresh engine built from (topo, params),
/// with reseeded noise per repetition, and aggregate.
[[nodiscard]] MeasureResult measure(const CommPlan& plan, const Topology& topo,
                                    const ParamSet& params,
                                    const MeasureOptions& options = {});

}  // namespace hetcomm::core
