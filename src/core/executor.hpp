#pragma once
// Execute a CommPlan on the discrete-event simulator and collect timing
// statistics the way the paper reports them: per-process times averaged over
// repetitions, then the maximum over processes ("maximum average time
// required for communication by any single process", §4.5/§5).
//
// measure() is the repetition runtime: it keeps one reusable Engine per
// worker thread (reset(seed) between repetitions instead of reconstructing),
// derives each repetition's noise seed as mix_seed(options.seed, rep), and
// reduces per-repetition results in repetition order -- so the aggregate is
// bit-identical for any `jobs` value, including jobs=1.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/compiled_plan.hpp"
#include "core/plan.hpp"
#include "hetsim/engine.hpp"
#include "hetsim/network.hpp"
#include "hetsim/trace.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace hetcomm::core {

/// How measure() drives each repetition.  Both paths are bit-identical
/// (clocks, traces, statistics); Compiled hoists the rep-invariant work
/// (matching, classification, parameter lookups) into a CompiledPlan built
/// once per measure() call and is several times faster per repetition.
enum class ExecMode : std::uint8_t {
  Compiled,     ///< compile once, Engine::execute() per repetition
  Interpreted,  ///< re-interpret the CommPlan op-by-op per repetition
};

[[nodiscard]] constexpr const char* to_string(ExecMode m) noexcept {
  return m == ExecMode::Compiled ? "compiled" : "interpreted";
}

struct MeasureOptions {
  MeasureOptions() = default;
  /// Pre-runtime callers spell out the first four options positionally;
  /// keep that working without -Wmissing-field-initializers noise.
  MeasureOptions(int reps_, std::uint64_t seed_, double noise_sigma_,
                 bool trace_last_rep_) noexcept
      : reps(reps_),
        seed(seed_),
        noise_sigma(noise_sigma_),
        trace_last_rep(trace_last_rep_) {}

  int reps = 25;              ///< repetitions (the paper uses 1000)
  std::uint64_t seed = 0x5eedULL;
  double noise_sigma = 0.02;  ///< mean-one jitter factor; 0 = deterministic
  bool trace_last_rep = false;
  /// Worker threads for repetitions: 1 = serial (default), 0 = hardware
  /// concurrency.  Results are bit-identical for every value.
  int jobs = 1;
  /// Lane width for batched execution (Engine::execute_batch): repetitions
  /// run `batch` at a time in lockstep over the shared CompiledPlan.
  /// 0 = auto (a width sized to keep lane scratch cache-resident),
  /// 1 = the historical one-rep-at-a-time path.  Composes with `jobs`
  /// (workers pick up lane *blocks*; a trailing partial block is a
  /// narrower batch, never a serial fallback) and is bit-identical to
  /// batch=1 for every width.  Ignored (always serial) in Interpreted
  /// mode, which has no compiled tables to batch over.
  int batch = 0;
  /// Attach a tapered fat-tree fabric to every engine (what-if studies).
  std::optional<FatTreeConfig> fabric;
  /// Execution path; Compiled is the default fast path, Interpreted is the
  /// reference path (bench `--engine interpreted` A/Bs them).
  ExecMode engine = ExecMode::Compiled;
  /// Collect per-phase/per-path metrics into MeasureResult::metrics.
  /// Recording never perturbs the simulation: clocks, traces and statistics
  /// are bit-identical with this on or off (and for every jobs value).
  bool collect_metrics = false;
  /// Caller-owned fault model attached to every per-worker engine (nullptr
  /// or an empty model = unfaulted).  Faulted results stay bit-identical
  /// across `jobs` values and engine modes (the fault stream is keyed by
  /// repetition seed and schedule-order message id, never worker identity).
  /// A FaultAbort raised mid-sweep is rethrown with the plan's strategy
  /// name filled in; no partial result is returned.
  const FaultModel* faults = nullptr;
  /// Caller-owned pre-compiled plan to replay instead of compiling inside
  /// measure() (Compiled mode only; ignored when Interpreted).  Must have
  /// been compiled from exactly the (plan, topo, params) triple passed to
  /// measure() -- results are then bit-identical to the compile-in-call
  /// path.  This is how callers that re-measure one plan many times (the
  /// serve plan cache, the ranking-stability fault ensemble) skip the
  /// per-call compile entirely.
  const CompiledPlan* precompiled = nullptr;
  /// Span tracing (null = off; see obs/trace.hpp and docs/tracing.md).
  /// When set -- and trace_id is on the tracer's sampled grid -- measure()
  /// records a compile span, one span per execution block on the running
  /// worker's ring/track (the tracer needs rings >= effective jobs), and
  /// repetition-0 engine phase spans scaled into that block's wall
  /// interval.  trace_id 0 allocates a fresh trace with a root `measure`
  /// span; a nonzero trace_id parents everything under `trace_parent`.
  /// Tracing never perturbs results: clocks and statistics stay
  /// bit-identical with the tracer attached or not.
  obs::Tracer* tracer = nullptr;
  std::uint64_t trace_id = 0;
  std::uint32_t trace_parent = 0;
};

struct MeasureResult {
  double max_avg = 0.0;       ///< max over ranks of per-rank mean time
  double makespan_mean = 0.0; ///< mean over reps of max rank time
  double makespan_min = 0.0;
  double makespan_max = 0.0;
  std::vector<double> per_rank_mean;
  PlanSummary summary;
  Trace trace;                ///< last repetition's events (trace_last_rep)
  double wall_seconds = 0.0;  ///< wall time spent simulating repetitions
  double reps_per_second = 0.0;
  /// Effective lane width the repetitions actually ran at (resolves
  /// batch=0 auto; 1 whenever the serial path ran, e.g. Interpreted mode).
  int batch = 1;
  /// Aggregated run report (collect_metrics).  `name` is left empty for the
  /// caller to label.  Simulated-time sections depend only on the plan,
  /// machine, seed and noise; the `workers` / wall-time sections describe
  /// this host-side execution and naturally vary with `jobs`.
  std::optional<obs::RunReport> metrics;
};

/// Run `plan` once on `engine` (which must be reset by the caller),
/// writing rank r's final clock into `clocks_out[r]`.  `clocks_out.size()`
/// must equal the engine's rank count (throws std::invalid_argument
/// otherwise).  Allocation-free after engine warm-up.
void run_plan(Engine& engine, const CommPlan& plan,
              std::span<double> clocks_out);

/// Convenience overload returning a freshly allocated clock vector.
std::vector<double> run_plan(Engine& engine, const CommPlan& plan);

/// Compiled counterpart of run_plan(): execute a pre-compiled plan and
/// write the final per-rank clocks into `clocks_out`.
void run_plan(Engine& engine, const CompiledPlan& plan,
              std::span<double> clocks_out);

/// Repeatedly execute `plan` with per-repetition reseeded noise -- on
/// per-worker reused engines, fanned across `options.jobs` threads -- and
/// aggregate.  Deterministic: the result depends only on (plan, topo,
/// params, reps, seed, noise_sigma, fabric), never on the thread count and
/// never on the execution mode (compiled and interpreted are bit-identical).
/// In Compiled mode the plan is compiled once per call and the immutable
/// CompiledPlan is shared across all workers.
[[nodiscard]] MeasureResult measure(const CommPlan& plan, const Topology& topo,
                                    const ParamSet& params,
                                    const MeasureOptions& options = {});

}  // namespace hetcomm::core
