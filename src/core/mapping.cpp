#include "core/mapping.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hetcomm::core {

GpuMapping GpuMapping::identity(int num_gpus) {
  GpuMapping m;
  m.logical_to_physical.resize(static_cast<std::size_t>(num_gpus));
  for (int g = 0; g < num_gpus; ++g) {
    m.logical_to_physical[static_cast<std::size_t>(g)] = g;
  }
  return m;
}

void GpuMapping::validate() const {
  std::vector<bool> seen(logical_to_physical.size(), false);
  for (const int p : logical_to_physical) {
    if (p < 0 || p >= size() || seen[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("GpuMapping: not a permutation");
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
}

CommPattern apply_mapping(const CommPattern& pattern,
                          const GpuMapping& mapping, const Topology& topo) {
  if (mapping.size() != pattern.num_gpus() ||
      topo.num_gpus() != pattern.num_gpus()) {
    throw std::invalid_argument("apply_mapping: size mismatch");
  }
  mapping.validate();

  CommPattern out(pattern.num_gpus());
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int p_src = mapping.logical_to_physical[static_cast<std::size_t>(src)];
    for (const GpuMessage& m : pattern.sends_from(src)) {
      const int p_dst =
          mapping.logical_to_physical[static_cast<std::size_t>(m.dst_gpu)];
      const std::int64_t each = m.bytes / m.count;
      std::int64_t left = m.bytes;
      for (int i = 0; i < m.count; ++i) {
        const std::int64_t b = i + 1 == m.count ? left : each;
        out.add(p_src, p_dst, b);
        left -= b;
      }
    }
  }

  // Remap dedup annotations: the deduplicated volume toward a *set of
  // logical GPUs* follows those GPUs' physical node only when the whole
  // destination group stays on one node; otherwise the annotation is
  // dropped (conservative: strategies fall back to payload sizes).
  for (const auto& [src, dst_node, bytes] : pattern.node_dedup_entries()) {
    const int p_src = mapping.logical_to_physical[static_cast<std::size_t>(src)];
    // Find the logical GPUs on dst_node, and their physical nodes.
    std::map<int, std::int64_t> payload_by_physical_node;
    bool single_node = true;
    int the_node = -1;
    for (const GpuMessage& m : pattern.sends_from(src)) {
      if (topo.gpu_location(m.dst_gpu).node != dst_node) continue;
      const int p_dst =
          mapping.logical_to_physical[static_cast<std::size_t>(m.dst_gpu)];
      const int p_node = topo.gpu_location(p_dst).node;
      payload_by_physical_node[p_node] += m.bytes;
      if (the_node == -1) the_node = p_node;
      if (p_node != the_node) single_node = false;
    }
    if (single_node && the_node >= 0 &&
        the_node != topo.gpu_location(p_src).node) {
      out.set_node_dedup(p_src, the_node, bytes);
    }
  }
  return out;
}

std::int64_t internode_bytes_under(const CommPattern& pattern,
                                   const GpuMapping& mapping,
                                   const Topology& topo) {
  if (mapping.size() != pattern.num_gpus()) {
    throw std::invalid_argument("internode_bytes_under: size mismatch");
  }
  std::int64_t total = 0;
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(
        mapping.logical_to_physical[static_cast<std::size_t>(src)]).node;
    for (const GpuMessage& m : pattern.sends_from(src)) {
      const int dst_node = topo.gpu_location(
          mapping.logical_to_physical[static_cast<std::size_t>(m.dst_gpu)]).node;
      if (dst_node != src_node) total += m.bytes;
    }
  }
  return total;
}

GpuMapping greedy_locality_mapping(const CommPattern& pattern,
                                   const Topology& topo) {
  if (topo.num_gpus() != pattern.num_gpus()) {
    throw std::invalid_argument("greedy_locality_mapping: size mismatch");
  }
  const int n = pattern.num_gpus();
  const int per_node = topo.gpn();

  // Symmetric traffic matrix.
  std::vector<std::map<int, std::int64_t>> traffic(
      static_cast<std::size_t>(n));
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n), 0);
  for (int src = 0; src < n; ++src) {
    for (const GpuMessage& m : pattern.sends_from(src)) {
      traffic[static_cast<std::size_t>(src)][m.dst_gpu] += m.bytes;
      traffic[static_cast<std::size_t>(m.dst_gpu)][src] += m.bytes;
      degree[static_cast<std::size_t>(src)] += m.bytes;
      degree[static_cast<std::size_t>(m.dst_gpu)] += m.bytes;
    }
  }

  std::vector<bool> placed(static_cast<std::size_t>(n), false);
  GpuMapping mapping;
  mapping.logical_to_physical.assign(static_cast<std::size_t>(n), -1);

  int next_slot = 0;
  for (int round = 0; round < topo.num_nodes(); ++round) {
    // Seed: heaviest unplaced GPU.
    int seed = -1;
    for (int g = 0; g < n; ++g) {
      if (placed[static_cast<std::size_t>(g)]) continue;
      if (seed == -1 ||
          degree[static_cast<std::size_t>(g)] >
              degree[static_cast<std::size_t>(seed)]) {
        seed = g;
      }
    }
    if (seed == -1) break;
    std::vector<int> members{seed};
    placed[static_cast<std::size_t>(seed)] = true;

    while (static_cast<int>(members.size()) < per_node) {
      // Pick the unplaced GPU with the most traffic toward current members.
      int best = -1;
      std::int64_t best_affinity = -1;
      for (int g = 0; g < n; ++g) {
        if (placed[static_cast<std::size_t>(g)]) continue;
        std::int64_t affinity = 0;
        for (const int m : members) {
          const auto it = traffic[static_cast<std::size_t>(g)].find(m);
          if (it != traffic[static_cast<std::size_t>(g)].end()) {
            affinity += it->second;
          }
        }
        if (affinity > best_affinity) {
          best_affinity = affinity;
          best = g;
        }
      }
      if (best == -1) break;
      members.push_back(best);
      placed[static_cast<std::size_t>(best)] = true;
    }
    for (const int g : members) {
      mapping.logical_to_physical[static_cast<std::size_t>(g)] = next_slot++;
    }
  }
  mapping.validate();
  return mapping;
}

}  // namespace hetcomm::core
