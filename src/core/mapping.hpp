#pragma once
// Locality-aware process (GPU) mapping.
//
// Node-aware strategies optimize how inter-node traffic moves; process
// mapping optimizes how much traffic is inter-node in the first place.
// Given a CommPattern, this module finds a permutation of GPU indices that
// groups heavily-communicating GPUs onto the same node (greedy agglomerative
// clustering on the traffic graph), so more of the pattern is served by
// cheap on-node paths.  Composes with any strategy; see
// bench/ablation_mapping.

#include <cstdint>
#include <vector>

#include "core/comm_pattern.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

/// mapping[logical_gpu] = physical GPU slot it is placed on.
struct GpuMapping {
  std::vector<int> logical_to_physical;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(logical_to_physical.size());
  }
  /// Identity placement.
  static GpuMapping identity(int num_gpus);
  void validate() const;  ///< throws unless a permutation of [0, size)
};

/// Rewrite a pattern so logical GPU g's traffic originates from/targets its
/// physical slot.  Dedup annotations are remapped along (node ids follow
/// the physical placement).
[[nodiscard]] CommPattern apply_mapping(const CommPattern& pattern,
                                        const GpuMapping& mapping,
                                        const Topology& topo);

/// Greedy locality mapping: repeatedly seed a node with the unplaced GPU
/// having the largest remaining traffic, then fill the node with the
/// unplaced GPUs communicating most with the node's current members.
[[nodiscard]] GpuMapping greedy_locality_mapping(const CommPattern& pattern,
                                                 const Topology& topo);

/// Total bytes crossing node boundaries under a mapping (the objective the
/// greedy mapper minimizes).
[[nodiscard]] std::int64_t internode_bytes_under(const CommPattern& pattern,
                                                 const GpuMapping& mapping,
                                                 const Topology& topo);

}  // namespace hetcomm::core
