#include "core/models/scenario.hpp"

#include <stdexcept>

namespace hetcomm::core::models {

CommPattern make_scenario_pattern(const Topology& topo,
                                  const Scenario& scenario) {
  if (scenario.num_dest_nodes < 1 ||
      topo.num_nodes() < scenario.num_dest_nodes + 1) {
    throw std::invalid_argument(
        "make_scenario_pattern: topology needs num_dest_nodes + 1 nodes");
  }
  if (scenario.num_messages < 1 || scenario.msg_bytes < 1) {
    throw std::invalid_argument("make_scenario_pattern: bad message spec");
  }

  const int gpn = topo.gpn();
  const int n_dest = scenario.num_dest_nodes;
  CommPattern pattern(topo.num_gpus());

  for (int i = 0; i < scenario.num_messages; ++i) {
    int src_gpu_local;
    int dst_node;
    int dst_gpu_local;
    if (scenario.single_active_gpu) {
      // All traffic for a destination node comes from one GPU; destination
      // nodes rotate over the sender's GPUs so every GPU stays active.
      dst_node = 1 + (i % n_dest);
      src_gpu_local = (dst_node - 1) % gpn;
      dst_gpu_local = (i / n_dest) % gpn;
    } else {
      // Even distribution: source GPU and destination node vary on
      // different strides so each GPU fans out over the destination nodes.
      src_gpu_local = i % gpn;
      dst_node = 1 + (i / gpn) % n_dest;
      dst_gpu_local = (src_gpu_local + dst_node + i / (gpn * n_dest)) % gpn;
    }
    const int src_gpu = topo.gpus_on_node(0)[src_gpu_local];
    const int dst_gpu = topo.gpus_on_node(dst_node)[dst_gpu_local];
    pattern.add(src_gpu, dst_gpu, scenario.msg_bytes);
  }
  return pattern;
}

PatternStats scenario_stats(const Topology& topo, const Scenario& scenario) {
  return compute_stats(make_scenario_pattern(topo, scenario), topo);
}

}  // namespace hetcomm::core::models
