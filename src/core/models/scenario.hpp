#pragma once
// Synthetic irregular-communication scenarios (paper §4.6, Figure 4.3).
//
// One node sends `num_messages` inter-node messages of `msg_bytes` each to
// `num_dest_nodes` destination nodes.  Two data distributions:
//   * even  -- messages distributed evenly across the sending node's GPUs
//              (the paper's main scenario; yields "2-Step All" behavior);
//   * single_active_gpu -- all messages bound for a given destination node
//              originate from one GPU ("2-Step 1", the best case).

#include <cstdint>

#include "core/comm_pattern.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core::models {

struct Scenario {
  int num_dest_nodes = 4;       ///< 4 or 16 in the paper
  int num_messages = 32;        ///< 32 or 256 in the paper
  std::int64_t msg_bytes = 1024;
  bool single_active_gpu = false;
};

/// Build the scenario's communication pattern.  The topology must have at
/// least num_dest_nodes + 1 nodes; node 0 sends, nodes 1..num_dest_nodes
/// receive.
[[nodiscard]] CommPattern make_scenario_pattern(const Topology& topo,
                                                const Scenario& scenario);

/// Shorthand: Table 7 statistics of the scenario pattern.
[[nodiscard]] PatternStats scenario_stats(const Topology& topo,
                                          const Scenario& scenario);

}  // namespace hetcomm::core::models
