#include "core/models/strategy_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/models/submodels.hpp"
#include "hetsim/engine.hpp"  // copy_params_for

namespace hetcomm::core::models {

namespace {

PatternStats scale_stats(const PatternStats& in, double factor) {
  PatternStats out = in;
  auto scale = [factor](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) * factor));
  };
  out.s_proc = scale(in.s_proc);
  out.s_node = scale(in.s_node);
  out.s_node_node = scale(in.s_node_node);
  out.dedup_s_proc = scale(in.dedup_s_proc);
  out.dedup_s_node = scale(in.dedup_s_node);
  out.dedup_s_node_node = scale(in.dedup_s_node_node);
  out.total_internode_bytes = scale(in.total_internode_bytes);
  out.typical_msg_bytes = std::max<std::int64_t>(1, scale(in.typical_msg_bytes));
  return out;
}

/// Node-aware strategies ship the deduplicated volumes; fall back to the
/// plain values for hand-built stats without dedup fields.
PatternStats dedup_view(const PatternStats& in) {
  PatternStats out = in;
  if (in.dedup_s_proc > 0) out.s_proc = in.dedup_s_proc;
  if (in.dedup_s_node > 0) out.s_node = in.dedup_s_node;
  if (in.dedup_s_node_node > 0) out.s_node_node = in.dedup_s_node_node;
  return out;
}

int ceil_div(std::int64_t a, std::int64_t b) {
  return static_cast<int>((a + b - 1) / b);
}

/// Prediction decomposed into the off-node wire term -- the part a
/// message-splitting variant re-shapes -- plus the on-node and staging-copy
/// terms splitting leaves alone.  The off-term inputs are kept symbolic so
/// the variant can re-evaluate them with chunked message sizes.
struct Decomposed {
  enum class OffForm : std::uint8_t {
    MaxRateHost,   ///< t_off / max_rate (eq. 4.3): staged through host
    PostalDevice,  ///< t_off_da (eq. 4.4): device-aware postal
  };
  OffForm form = OffForm::MaxRateHost;
  int m = 1;                 ///< messages the bottleneck process posts
  std::int64_t s_proc = 1;   ///< per-process wire volume
  std::int64_t s_node = 1;   ///< per-node wire volume (MaxRateHost only)
  std::int64_t msg = 1;      ///< per-message bytes (protocol selection)
  double on = 0.0;           ///< gather/redistribute term
  double copy = 0.0;         ///< staging copies, sum form
  std::int64_t copy_send = 0;  ///< D2H volume a pipeline can overlap
  std::int64_t copy_recv = 0;  ///< trailing H2D volume
  /// True when `copy` is a plain per-sender d2h+h2d pair that the
  /// chunked-pipeline lowering actually carves (Split+DD's shared-pointer
  /// copy ladder and 3-step's gather-fed leader sends are not).
  bool pipeline_copy = false;
};

/// Evaluate the off-node term with `m_mult` times the messages, each
/// 1/`chunk_div` of the bytes, spread over `rail_par` parallel NIC rails.
/// (1, 1, 1) reproduces the unsplit term exactly.
double off_term(const ParamSet& params, const Decomposed& d, int m_mult,
                std::int64_t chunk_div, int rail_par) {
  const int m = std::max(1, d.m * m_mult);
  const std::int64_t msg = std::max<std::int64_t>(1, d.msg / chunk_div);
  if (d.form == Decomposed::OffForm::MaxRateHost) {
    // Chunk alphas serialize on the sending process; the per-process
    // transport term (send-port serialization) does not parallelize, but
    // the node injection bound spreads across the rails.
    const std::int64_t s_node =
        std::max<std::int64_t>(1, d.s_node / rail_par);
    return t_off(params, m, d.s_proc, s_node, msg);
  }
  // Device-aware postal: each rail drains its share of the per-process
  // volume concurrently; alphas stay serial on the poster.
  const std::int64_t s = std::max<std::int64_t>(1, d.s_proc / rail_par);
  return t_off_da(params, m, s, msg);
}

/// Combine the decomposed terms under the config's split mode, mirroring
/// what apply_split() does to the plan: identity below the rendezvous
/// switch point or on single-rail machines, otherwise chunked re-shapes of
/// the off-node term (Striped) or a copy/wire overlap max-form
/// (ChunkedPipeline).
double combine(const StrategyConfig& config, const Decomposed& d,
               const ParamSet& params) {
  const std::int64_t eager_max = params.thresholds.eager_max;
  if (config.split == SplitMode::Striped) {
    const int rails = std::max(1, params.injection.nics_per_node);
    if (rails > 1 && d.msg > eager_max) {
      return off_term(params, d, rails, rails, rails) + d.on + d.copy;
    }
  } else if (config.split == SplitMode::ChunkedPipeline &&
             d.pipeline_copy && d.copy_send > 0 && d.msg > eager_max) {
    const int depth = kDefaultPipelineDepth;
    const double off = off_term(params, d, depth, depth, 1);
    // The carved D2H pays one copy alpha per chunk but overlaps the wire;
    // the trailing H2D cannot overlap (data must land before delivery).
    const PostalParams d2h =
        copy_params_for(params.copies, CopyDir::DeviceToHost, 1);
    const PostalParams h2d =
        copy_params_for(params.copies, CopyDir::HostToDevice, 1);
    const double t_d2h =
        d2h.alpha * depth + d2h.beta * static_cast<double>(d.copy_send);
    return std::max(off, t_d2h) + h2d.time(d.copy_recv) + d.on;
  }
  return off_term(params, d, 1, 1, 1) + d.on + d.copy;
}

}  // namespace

double predict(const StrategyConfig& config, const PatternStats& stats,
               const ParamSet& params, const Topology& topo,
               const PredictOptions& options) {
  config.validate();
  if (options.duplicate_fraction < 0.0 || options.duplicate_fraction >= 1.0) {
    throw std::invalid_argument("predict: duplicate_fraction out of [0,1)");
  }
  if (stats.total_internode_messages == 0) return 0.0;

  const bool node_aware = config.kind != StrategyKind::Standard;
  PatternStats st = node_aware ? dedup_view(stats) : stats;
  if (node_aware && options.duplicate_fraction > 0.0) {
    st = scale_stats(st, 1.0 - options.duplicate_fraction);
  }

  const bool staged = config.transport == MemSpace::Host;
  Decomposed d;

  switch (config.kind) {
    case StrategyKind::Standard: {
      d.m = st.m_proc;
      d.s_proc = st.s_proc;
      d.s_node = st.s_node;
      d.msg = st.typical_msg_bytes;
      if (staged) {
        // Max-rate model (eq. 2.2) per paper Table 6, plus the staging
        // copies.  (Table 6 lists only the max-rate term; physically the
        // staged path cannot avoid the two copies, and including them is
        // what lets standard device-aware win at very large message sizes,
        // as Figure 4.3 predicts.)
        d.form = Decomposed::OffForm::MaxRateHost;
        d.copy = t_copy(params, st.s_proc, st.s_proc);
        d.copy_send = st.s_proc;
        d.copy_recv = st.s_proc;
        d.pipeline_copy = true;
      } else {
        // Device-aware: postal model (eq. 2.1).
        d.form = Decomposed::OffForm::PostalDevice;
      }
      return combine(config, d, params);
    }

    case StrategyKind::ThreeStep: {
      // Table 6 literal: the off-node term takes m_node->node (Table 7).
      d.m = std::max(1, st.m_node_node);
      d.s_proc = st.s_node_node;
      d.s_node = st.s_node;
      d.msg = st.s_node_node;
      d.on = 2.0 * t_on(params, topo, config.transport, st.s_node_node);
      if (staged) {
        d.form = Decomposed::OffForm::MaxRateHost;
        d.copy = t_copy(params, st.s_proc, st.s_node_node);
        // The leader's sends are fed by gather messages, not by its own
        // staging copy, so the pipeline lowering leaves them whole.
      } else {
        d.form = Decomposed::OffForm::PostalDevice;
      }
      return combine(config, d, params);
    }

    case StrategyKind::TwoStep: {
      // One node-conglomerated message per (process, destination node).
      d.m = std::max(1, st.m_proc_node);
      d.s_proc = st.s_proc;
      d.s_node = st.s_node;
      d.msg = std::max<std::int64_t>(1, st.s_proc / d.m);
      d.on = t_on(params, topo, config.transport, st.s_proc);
      if (staged) {
        d.form = Decomposed::OffForm::MaxRateHost;
        d.copy = t_copy(params, st.s_proc, st.s_node_node);
        d.copy_send = st.s_proc;
        d.copy_recv = st.s_node_node;
        d.pipeline_copy = true;
      } else {
        d.form = Decomposed::OffForm::PostalDevice;
      }
      return combine(config, d, params);
    }

    case StrategyKind::SplitMD:
    case StrategyKind::SplitDD: {
      const int ppg = config.kind == StrategyKind::SplitDD ? config.ppg : 1;
      const std::int64_t cap = config.message_cap > 0
                                   ? config.message_cap
                                   : params.thresholds.eager_max;
      // Algorithm-1 effective cap for the bottleneck node.
      std::int64_t eff_cap = cap;
      if (st.s_node_node >= cap) {
        eff_cap = std::max<std::int64_t>(
            cap, (st.s_node + topo.ppn() - 1) / topo.ppn());
      }
      // Chunks the bottleneck node injects: at least one per destination
      // node, at most what the cap dictates.
      const int chunks = std::max(st.num_internode_nodes,
                                  ceil_div(st.s_node, eff_cap));
      const int m_split = std::max(1, ceil_div(chunks, topo.ppn()));
      const std::int64_t s_per_proc =
          std::max<std::int64_t>(1, st.s_node / topo.ppn());
      const std::int64_t msg = std::min<std::int64_t>(eff_cap, st.s_node_node);

      // Distribution parallelism: how many GPUs on the bottleneck node hold
      // inter-node data (the paper's eq. 4.2 is the d = 1 worst case).
      const int dist = std::max(1, st.active_internode_gpus);
      d.form = Decomposed::OffForm::MaxRateHost;
      d.m = m_split;
      d.s_proc = s_per_proc;
      d.s_node = st.s_node;
      d.msg = msg;
      d.on = 2.0 * t_on_split(params, topo, st.s_node, ppg, dist);
      double copy;
      if (ppg <= 1) {
        copy = t_copy(params, st.s_proc, st.s_node_node, 1);
      } else {
        // Duplicate device pointers: one shared-parameter copy *per chunk
        // contribution* per holder instead of one bulk copy -- the copy
        // latency (~1.5e-5 s on Lassen) is paid per chunk, which is the
        // mechanism behind Split+DD's consistently worse measured times
        // (paper §5.1).
        const int copies_per_holder = std::max(1, ceil_div(chunks, ppg));
        const PostalParams d2h =
            copy_params_for(params.copies, CopyDir::DeviceToHost, ppg);
        const PostalParams h2d =
            copy_params_for(params.copies, CopyDir::HostToDevice, ppg);
        copy = copies_per_holder * d2h.alpha +
               d2h.beta * static_cast<double>(st.s_proc) / ppg +
               copies_per_holder * h2d.alpha +
               h2d.beta * static_cast<double>(st.s_node_node) / ppg;
      }
      d.copy = copy;
      return combine(config, d, params);
    }
  }
  throw std::logic_error("predict: unknown strategy kind");
}

std::vector<NamedPrediction> predict_all(const PatternStats& stats,
                                         const ParamSet& params,
                                         const Topology& topo,
                                         const PredictOptions& options) {
  std::vector<NamedPrediction> out;
  for (const StrategyConfig& cfg : all_strategies()) {
    out.push_back({cfg, predict(cfg, stats, params, topo, options)});
  }
  return out;
}

}  // namespace hetcomm::core::models
