#include "core/models/strategy_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/models/submodels.hpp"
#include "hetsim/engine.hpp"  // copy_params_for

namespace hetcomm::core::models {

namespace {

PatternStats scale_stats(const PatternStats& in, double factor) {
  PatternStats out = in;
  auto scale = [factor](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) * factor));
  };
  out.s_proc = scale(in.s_proc);
  out.s_node = scale(in.s_node);
  out.s_node_node = scale(in.s_node_node);
  out.dedup_s_proc = scale(in.dedup_s_proc);
  out.dedup_s_node = scale(in.dedup_s_node);
  out.dedup_s_node_node = scale(in.dedup_s_node_node);
  out.total_internode_bytes = scale(in.total_internode_bytes);
  out.typical_msg_bytes = std::max<std::int64_t>(1, scale(in.typical_msg_bytes));
  return out;
}

/// Node-aware strategies ship the deduplicated volumes; fall back to the
/// plain values for hand-built stats without dedup fields.
PatternStats dedup_view(const PatternStats& in) {
  PatternStats out = in;
  if (in.dedup_s_proc > 0) out.s_proc = in.dedup_s_proc;
  if (in.dedup_s_node > 0) out.s_node = in.dedup_s_node;
  if (in.dedup_s_node_node > 0) out.s_node_node = in.dedup_s_node_node;
  return out;
}

int ceil_div(std::int64_t a, std::int64_t b) {
  return static_cast<int>((a + b - 1) / b);
}

}  // namespace

double predict(const StrategyConfig& config, const PatternStats& stats,
               const ParamSet& params, const Topology& topo,
               const PredictOptions& options) {
  config.validate();
  if (options.duplicate_fraction < 0.0 || options.duplicate_fraction >= 1.0) {
    throw std::invalid_argument("predict: duplicate_fraction out of [0,1)");
  }
  if (stats.total_internode_messages == 0) return 0.0;

  const bool node_aware = config.kind != StrategyKind::Standard;
  PatternStats st = node_aware ? dedup_view(stats) : stats;
  if (node_aware && options.duplicate_fraction > 0.0) {
    st = scale_stats(st, 1.0 - options.duplicate_fraction);
  }

  const bool staged = config.transport == MemSpace::Host;

  switch (config.kind) {
    case StrategyKind::Standard: {
      if (staged) {
        // Max-rate model (eq. 2.2) per paper Table 6, plus the staging
        // copies.  (Table 6 lists only the max-rate term; physically the
        // staged path cannot avoid the two copies, and including them is
        // what lets standard device-aware win at very large message sizes,
        // as Figure 4.3 predicts.)
        return max_rate(params, MemSpace::Host, st.m_proc, st.s_proc,
                        st.s_node, st.typical_msg_bytes) +
               t_copy(params, st.s_proc, st.s_proc);
      }
      // Device-aware: postal model (eq. 2.1).
      return t_off_da(params, st.m_proc, st.s_proc, st.typical_msg_bytes);
    }

    case StrategyKind::ThreeStep: {
      // Table 6 literal: the off-node term takes m_node->node (Table 7).
      const int m3 = std::max(1, st.m_node_node);
      const double on = 2.0 * t_on(params, topo, config.transport,
                                   st.s_node_node);
      if (staged) {
        return t_off(params, m3, st.s_node_node, st.s_node, st.s_node_node) +
               on + t_copy(params, st.s_proc, st.s_node_node);
      }
      return t_off_da(params, m3, st.s_node_node, st.s_node_node) + on;
    }

    case StrategyKind::TwoStep: {
      // One node-conglomerated message per (process, destination node).
      const int m2 = std::max(1, st.m_proc_node);
      const std::int64_t msg =
          std::max<std::int64_t>(1, st.s_proc / m2);
      const double on = t_on(params, topo, config.transport, st.s_proc);
      if (staged) {
        return t_off(params, m2, st.s_proc, st.s_node, msg) + on +
               t_copy(params, st.s_proc, st.s_node_node);
      }
      return t_off_da(params, m2, st.s_proc, msg) + on;
    }

    case StrategyKind::SplitMD:
    case StrategyKind::SplitDD: {
      const int ppg = config.kind == StrategyKind::SplitDD ? config.ppg : 1;
      const std::int64_t cap = config.message_cap > 0
                                   ? config.message_cap
                                   : params.thresholds.eager_max;
      // Algorithm-1 effective cap for the bottleneck node.
      std::int64_t eff_cap = cap;
      if (st.s_node_node >= cap) {
        eff_cap = std::max<std::int64_t>(
            cap, (st.s_node + topo.ppn() - 1) / topo.ppn());
      }
      // Chunks the bottleneck node injects: at least one per destination
      // node, at most what the cap dictates.
      const int chunks = std::max(st.num_internode_nodes,
                                  ceil_div(st.s_node, eff_cap));
      const int m_split = std::max(1, ceil_div(chunks, topo.ppn()));
      const std::int64_t s_per_proc =
          std::max<std::int64_t>(1, st.s_node / topo.ppn());
      const std::int64_t msg = std::min<std::int64_t>(eff_cap, st.s_node_node);

      // Distribution parallelism: how many GPUs on the bottleneck node hold
      // inter-node data (the paper's eq. 4.2 is the d = 1 worst case).
      const int d = std::max(1, st.active_internode_gpus);
      const double off = t_off(params, m_split, s_per_proc, st.s_node, msg);
      const double on = 2.0 * t_on_split(params, topo, st.s_node, ppg, d);
      double copy;
      if (ppg <= 1) {
        copy = t_copy(params, st.s_proc, st.s_node_node, 1);
      } else {
        // Duplicate device pointers: one shared-parameter copy *per chunk
        // contribution* per holder instead of one bulk copy -- the copy
        // latency (~1.5e-5 s on Lassen) is paid per chunk, which is the
        // mechanism behind Split+DD's consistently worse measured times
        // (paper §5.1).
        const int copies_per_holder = std::max(1, ceil_div(chunks, ppg));
        const PostalParams d2h =
            copy_params_for(params.copies, CopyDir::DeviceToHost, ppg);
        const PostalParams h2d =
            copy_params_for(params.copies, CopyDir::HostToDevice, ppg);
        copy = copies_per_holder * d2h.alpha +
               d2h.beta * static_cast<double>(st.s_proc) / ppg +
               copies_per_holder * h2d.alpha +
               h2d.beta * static_cast<double>(st.s_node_node) / ppg;
      }
      return off + on + copy;
    }
  }
  throw std::logic_error("predict: unknown strategy kind");
}

std::vector<NamedPrediction> predict_all(const PatternStats& stats,
                                         const ParamSet& params,
                                         const Topology& topo,
                                         const PredictOptions& options) {
  std::vector<NamedPrediction> out;
  for (const StrategyConfig& cfg : table5_strategies()) {
    out.push_back({cfg, predict(cfg, stats, params, topo, options)});
  }
  return out;
}

}  // namespace hetcomm::core::models
