#pragma once
// Full strategy performance models (paper Table 6).
//
// Each model composes the sub-models of §4.1-§4.4 with pattern statistics
// (Table 7).  Model inputs per strategy follow the paper, with two
// documented interpretation choices (see predict() implementation):
//   * the per-process message count after 3-step aggregation is
//     ceil(#destination nodes / GPUs-per-node) -- the leaders rotate over
//     a node's GPU owners;
//   * the per-process chunk count for the split strategies follows from the
//     Algorithm-1 effective cap.
// Duplicate-data removal (paper Figure 4.3, bottom rows) scales the volume
// statistics of the *node-aware* strategies only; standard communication
// keeps sending duplicates.

#include "core/comm_pattern.hpp"
#include "core/strategy.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core::models {

struct PredictOptions {
  /// Fraction of the inter-node volume that is duplicate data a node-aware
  /// scheme would not resend (0 = keep everything).
  double duplicate_fraction = 0.0;
};

/// Predicted communication time (seconds) for one strategy on one pattern.
[[nodiscard]] double predict(const StrategyConfig& config,
                             const PatternStats& stats, const ParamSet& params,
                             const Topology& topo,
                             const PredictOptions& options = {});

/// Convenience: predictions for all Table 5 strategies.
struct NamedPrediction {
  StrategyConfig config;
  double seconds = 0.0;
};
[[nodiscard]] std::vector<NamedPrediction> predict_all(
    const PatternStats& stats, const ParamSet& params, const Topology& topo,
    const PredictOptions& options = {});

}  // namespace hetcomm::core::models
