#include "core/models/submodels.hpp"

#include <algorithm>

#include "hetsim/engine.hpp"  // copy_params_for

namespace hetcomm::core::models {

double postal(const PostalParams& p, std::int64_t bytes) {
  return p.time(bytes);
}

double max_rate(const ParamSet& params, MemSpace space, int m,
                std::int64_t s_proc, std::int64_t s_node,
                std::int64_t msg_bytes) {
  // The analytic models speak in localities; the machine's taxonomy picks
  // the representative class for each (classic machines: ids 0/1/2).
  const PostalParams& pp = params.messages.for_message(
      space, params.taxonomy.representative(PathClass::OffNode), msg_bytes,
      params.thresholds);
  const double inv_rn = space == MemSpace::Host
                            ? params.injection.inv_rate_cpu
                            : params.injection.inv_rate_gpu;
  const double injection = static_cast<double>(s_node) * inv_rn;
  const double transport = static_cast<double>(s_proc) * pp.beta;
  return pp.alpha * m + std::max(injection, transport);
}

double t_on(const ParamSet& params, const Topology& topo, MemSpace space,
            std::int64_t s) {
  const int gps = topo.gps();
  const PostalParams& sock = params.messages.for_message(
      space, params.taxonomy.representative(PathClass::OnSocket), s,
      params.thresholds);
  const PostalParams& node = params.messages.for_message(
      space, params.taxonomy.representative(PathClass::OnNode), s,
      params.thresholds);
  return (gps - 1) * sock.time(s) + gps * node.time(s);
}

double t_on_split(const ParamSet& params, const Topology& topo,
                  std::int64_t s_total, int ppg, int distributing_gpus) {
  const int pps = topo.pps();
  const int ppn = topo.ppn();
  const int d = std::max(1, distributing_gpus) * std::max(1, ppg);
  // Per-message size once the node's inter-node volume is spread across all
  // on-node processes.
  const std::int64_t s_msg = std::max<std::int64_t>(1, s_total / ppn);
  const PostalParams& sock = params.messages.for_message(
      MemSpace::Host, params.taxonomy.representative(PathClass::OnSocket),
      s_msg, params.thresholds);
  const PostalParams& node = params.messages.for_message(
      MemSpace::Host, params.taxonomy.representative(PathClass::OnNode),
      s_msg, params.thresholds);
  const double n_sock = static_cast<double>(pps) / d - 1.0;
  const double n_node = static_cast<double>(pps) / d;
  return std::max(0.0, n_sock) * sock.time(s_msg) + n_node * node.time(s_msg);
}

double t_off(const ParamSet& params, int m, std::int64_t s_proc,
             std::int64_t s_node, std::int64_t msg_bytes) {
  return max_rate(params, MemSpace::Host, m, s_proc, s_node, msg_bytes);
}

double t_off_da(const ParamSet& params, int m, std::int64_t s,
                std::int64_t msg_bytes) {
  const PostalParams& pp = params.messages.for_message(
      MemSpace::Device, params.taxonomy.representative(PathClass::OffNode),
      msg_bytes, params.thresholds);
  return pp.alpha * m + pp.beta * static_cast<double>(s);
}

double t_copy(const ParamSet& params, std::int64_t s_send,
              std::int64_t s_recv, int nprocs) {
  // Physically the data leaving the source GPU is a D2H copy and the data
  // landing on the destination GPU is H2D (the paper's eq. 4.5 labels them
  // the other way round; the measured parameter pairs are nearly equal so
  // the distinction is cosmetic).
  const PostalParams d2h = copy_params_for(params.copies,
                                           CopyDir::DeviceToHost, nprocs);
  const PostalParams h2d = copy_params_for(params.copies,
                                           CopyDir::HostToDevice, nprocs);
  const std::int64_t send_share =
      nprocs > 1 ? (s_send + nprocs - 1) / nprocs : s_send;
  const std::int64_t recv_share =
      nprocs > 1 ? (s_recv + nprocs - 1) / nprocs : s_recv;
  return d2h.time(send_share) + h2d.time(recv_share);
}

double loggp(const PostalParams& p, std::int64_t bytes) {
  // Map postal parameters onto LogGP: L + 2o ~= alpha (half latency, half
  // per-side overhead), G = beta, g ignored for a single message.
  if (bytes <= 0) return p.alpha;
  return p.alpha + (static_cast<double>(bytes) - 1.0) * p.beta;
}

}  // namespace hetcomm::core::models
