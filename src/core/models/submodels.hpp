#pragma once
// Sub-models composed into the full strategy models (paper §4.1-§4.4).
//
// All functions return seconds.  Protocol selection follows the machine's
// thresholds applied to the per-message size of the step being modeled.

#include <cstdint>

#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core::models {

/// Postal model (eq. 2.1): T = alpha + beta * s.
[[nodiscard]] double postal(const PostalParams& p, std::int64_t bytes);

/// Max-rate model (eq. 2.2):
///   T = alpha * m + max(s_node / R_N, s_proc * beta)
/// with alpha/beta for the given space/path selected by `msg_bytes`.
[[nodiscard]] double max_rate(const ParamSet& params, MemSpace space,
                              int m, std::int64_t s_proc,
                              std::int64_t s_node, std::int64_t msg_bytes);

/// On-node gather/redistribute for 3-step and 2-step (eq. 4.1):
///   (gps - 1)(a_sock + b_sock s) + gps (a_node + b_node s).
/// `space` distinguishes staged (CPU messages) from device-aware (GPU).
[[nodiscard]] double t_on(const ParamSet& params, const Topology& topo,
                          MemSpace space, std::int64_t s);

/// On-node distribution for the split strategies (eq. 4.2).  `s_total` is
/// the node's inter-node volume; it travels in per-process messages of
/// s_total / ppn bytes, (pps/(d*ppg) - 1) of them on-socket and pps/(d*ppg)
/// off-socket from each holder's perspective.  `distributing_gpus` (d)
/// generalizes the equation from the paper's worst case (all data on one
/// GPU, d = 1, the published form) to the common case where d GPUs hold
/// inter-node data and distribute in parallel.
[[nodiscard]] double t_on_split(const ParamSet& params, const Topology& topo,
                                std::int64_t s_total, int ppg,
                                int distributing_gpus = 1);

/// Off-node communication, staged-through-host (eq. 4.3, max-rate form).
[[nodiscard]] double t_off(const ParamSet& params, int m,
                           std::int64_t s_proc, std::int64_t s_node,
                           std::int64_t msg_bytes);

/// Off-node communication, device-aware (eq. 4.4, postal form).
[[nodiscard]] double t_off_da(const ParamSet& params, int m, std::int64_t s,
                              std::int64_t msg_bytes);

/// Staging copies (eq. 4.5): D2H of the data leaving the source GPU plus
/// H2D of the data arriving at the destination GPU.  `nprocs` selects the
/// duplicate-device-pointer parameter rows (Split+DD uses 4).
[[nodiscard]] double t_copy(const ParamSet& params, std::int64_t s_send,
                            std::int64_t s_recv, int nprocs = 1);

/// LogGP estimate for one message (extension; used for model comparison):
///   T = L + 2o + (s - 1) G, with o folded into alpha/2 and G = beta.
[[nodiscard]] double loggp(const PostalParams& p, std::int64_t bytes);

}  // namespace hetcomm::core::models
