#include "core/neighborhood.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace hetcomm::core {

namespace {

/// Phase labels that carry the inter-node traffic, per strategy family.
bool is_internode_label(const std::string& label) {
  return label == "global" || label == "pairwise" || label == "exchange";
}

}  // namespace

NeighborhoodExchange::NeighborhoodExchange(const CommPattern& pattern,
                                           const Topology& topo,
                                           const ParamSet& params,
                                           const StrategyConfig& config)
    : topo_(topo),
      params_(params),
      config_(config),
      plan_(build_plan(pattern, topo, params, config)) {
  for (std::size_t i = 0; i < plan_.phases.size(); ++i) {
    if (is_internode_label(plan_.phases[i].label)) {
      internode_phase_ = i;
      has_internode_phase_ = true;
      break;
    }
  }
}

void NeighborhoodExchange::run(Engine& engine, double compute_seconds,
                               bool overlap) const {
  for (std::size_t i = 0; i < plan_.phases.size(); ++i) {
    const PlanPhase& phase = plan_.phases[i];
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message:
          engine.isend(op.src_rank, op.dst_rank, op.bytes, op.tag, op.space);
          engine.irecv(op.dst_rank, op.src_rank, op.bytes, op.tag, op.space);
          break;
        case OpType::Copy:
          engine.copy(op.rank, op.gpu, op.dir, op.bytes, op.sharing_procs);
          break;
        case OpType::Pack:
          engine.pack(op.rank, op.bytes);
          break;
      }
    }
    // Overlap: issue the local computation while the inter-node traffic is
    // in flight (posted but not yet resolved).  Eager messages then land
    // during the computation; rendezvous transfers still synchronize.
    if (overlap && has_internode_phase_ && i == internode_phase_ &&
        compute_seconds > 0.0) {
      for (int gpu = 0; gpu < topo_.num_gpus(); ++gpu) {
        engine.compute(topo_.owner_rank_of_gpu(gpu), compute_seconds);
      }
    }
    if (engine.has_pending()) engine.resolve();
  }
  // Without an inter-node phase (or without overlap) the computation still
  // has to happen -- append it sequentially for a fair comparison.
  if (compute_seconds > 0.0 &&
      (!overlap || !has_internode_phase_)) {
    for (int gpu = 0; gpu < topo_.num_gpus(); ++gpu) {
      engine.compute(topo_.owner_rank_of_gpu(gpu), compute_seconds);
    }
  }
}

void NeighborhoodExchange::execute(Engine& engine) const {
  run(engine, 0.0, /*overlap=*/false);
}

void NeighborhoodExchange::execute_overlapped(Engine& engine,
                                              double compute_seconds) const {
  if (compute_seconds < 0.0) {
    throw std::invalid_argument(
        "NeighborhoodExchange: negative compute time");
  }
  run(engine, compute_seconds, /*overlap=*/true);
}

MeasureResult NeighborhoodExchange::measure(const MeasureOptions& opts) const {
  return core::measure(plan_, topo_, params_, opts);
}

MeasureResult NeighborhoodExchange::measure_overlapped(
    double compute_seconds, const MeasureOptions& opts) const {
  if (opts.reps < 1) {
    throw std::invalid_argument("measure_overlapped: reps must be >= 1");
  }
  MeasureResult result;
  result.summary = plan_.summarize(topo_);
  result.per_rank_mean.assign(static_cast<std::size_t>(topo_.num_ranks()),
                              0.0);
  result.makespan_min = std::numeric_limits<double>::infinity();
  result.makespan_max = 0.0;
  for (int rep = 0; rep < opts.reps; ++rep) {
    Engine engine(topo_, params_,
                  NoiseModel(opts.seed + static_cast<std::uint64_t>(rep),
                             opts.noise_sigma));
    execute_overlapped(engine, compute_seconds);
    double makespan = 0.0;
    for (int r = 0; r < topo_.num_ranks(); ++r) {
      result.per_rank_mean[static_cast<std::size_t>(r)] += engine.clock(r);
      makespan = std::max(makespan, engine.clock(r));
    }
    result.makespan_mean += makespan;
    result.makespan_min = std::min(result.makespan_min, makespan);
    result.makespan_max = std::max(result.makespan_max, makespan);
  }
  const double inv = 1.0 / opts.reps;
  result.makespan_mean *= inv;
  for (double& t : result.per_rank_mean) t *= inv;
  result.max_avg = *std::max_element(result.per_rank_mean.begin(),
                                     result.per_rank_mean.end());
  return result;
}

double NeighborhoodExchange::setup_cost() const {
  // Metadata exchange: one eager-latency round trip per distinct
  // communicating rank pair in the plan, batched per phase (partners are
  // discovered once, in parallel), plus a synchronization per communicator
  // the strategy needs (Algorithm 1 creates four for split, fewer for the
  // simpler strategies -- approximated by the number of phases that carry
  // messages).
  const PostalParams& on = params_.messages.get(
      MemSpace::Host, Protocol::Short,
      params_.taxonomy.representative(PathClass::OnNode));
  const PostalParams& off = params_.messages.get(
      MemSpace::Host, Protocol::Short,
      params_.taxonomy.representative(PathClass::OffNode));

  double total = 0.0;
  for (const PlanPhase& phase : plan_.phases) {
    int max_partners_per_rank = 0;
    std::map<int, int> partners;
    bool has_offnode = false;
    for (const PlanOp& op : phase.ops) {
      if (op.type != OpType::Message) continue;
      ++partners[op.src_rank];
      max_partners_per_rank =
          std::max(max_partners_per_rank, partners[op.src_rank]);
      if (topo_.classify(op.src_rank, op.dst_rank) == PathClass::OffNode) {
        has_offnode = true;
      }
    }
    if (partners.empty()) continue;
    const PostalParams& pp = has_offnode ? off : on;
    // Handshakes proceed in parallel across ranks; each rank serializes
    // its own partners.  One extra latency for the communicator barrier.
    total += max_partners_per_rank * 2.0 * pp.alpha + pp.alpha;
  }
  return total;
}

int NeighborhoodExchange::iterations_to_amortize(
    double baseline_setup, double baseline_per_iter,
    const MeasureOptions& opts) const {
  const double mine_setup = setup_cost();
  const double mine_iter = measure(opts).max_avg;
  if (mine_iter >= baseline_per_iter) return -1;  // never catches up
  const double deficit = mine_setup - baseline_setup;
  if (deficit <= 0.0) return 0;
  return static_cast<int>(
      std::ceil(deficit / (baseline_per_iter - mine_iter)));
}

std::vector<PhaseCost> report_phases(const CommPlan& plan,
                                     const Topology& topo,
                                     const ParamSet& params,
                                     const MeasureOptions& opts) {
  std::vector<PhaseCost> out;
  double previous = 0.0;
  CommPlan prefix;
  prefix.strategy_name = plan.strategy_name;
  for (const PlanPhase& phase : plan.phases) {
    prefix.phases.push_back(phase);
    const double t = measure(prefix, topo, params, opts).makespan_mean;
    out.push_back({phase.label, t - previous, 0.0});
    previous = t;
  }
  if (previous > 0.0) {
    for (PhaseCost& c : out) c.fraction = c.seconds / previous;
  }
  return out;
}

}  // namespace hetcomm::core
