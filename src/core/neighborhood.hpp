#pragma once
// Persistent neighborhood exchange.
//
// Iterative solvers execute the same irregular exchange hundreds of times
// (one per SpMV).  This wraps the setup-once / execute-many pattern of MPI
// neighborhood collectives (and of the paper's Algorithm 1, whose
// communicator construction is explicitly a setup phase): compile the
// pattern into a CommPlan once, then replay it cheaply, optionally
// overlapping the inter-node phase with local computation (paper §2.3.3:
// "Lines 2 to 4 of Algorithm 2 can be overlapped with various pieces of the
// computation").

#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/executor.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core {

class NeighborhoodExchange {
 public:
  /// Setup phase: compile `pattern` for the machine.  Equivalent to
  /// Algorithm 1 plus communicator construction; reusable across
  /// executions.
  NeighborhoodExchange(const CommPattern& pattern, const Topology& topo,
                       const ParamSet& params, const StrategyConfig& config);

  [[nodiscard]] const CommPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const StrategyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Execute once on `engine` (clocks continue from their current values,
  /// so repeated calls model an iterative solver's communication stream).
  void execute(Engine& engine) const;

  /// Execute with `compute_seconds` of local work per GPU owner rank
  /// overlapped with the inter-node phase: the computation is issued after
  /// the inter-node operations are posted, so eager traffic progresses
  /// "in the background" while ranks compute.
  void execute_overlapped(Engine& engine, double compute_seconds) const;

  /// Convenience: fresh-engine repetition measurement (no overlap).
  [[nodiscard]] MeasureResult measure(const MeasureOptions& opts = {}) const;

  /// Measurement with overlapped local computation per repetition.
  [[nodiscard]] MeasureResult measure_overlapped(
      double compute_seconds, const MeasureOptions& opts = {}) const;

  /// Simulated cost of the setup phase itself (Algorithm 1): a metadata
  /// handshake with every communication partner plus one synchronization
  /// per communicator.  Partner discovery dominates, so standard
  /// communication (one handshake per destination process) pays the most
  /// and node-aware aggregation reduces setup along with execution --
  /// consistent with dynamic-discovery costs in irregular MPI codes.
  [[nodiscard]] double setup_cost() const;

  /// Executions needed before (setup + n*this) beats (baseline setup +
  /// n*baseline) for a baseline per-iteration time; returns -1 when this
  /// strategy never breaks even.
  [[nodiscard]] int iterations_to_amortize(double baseline_setup,
                                           double baseline_per_iter,
                                           const MeasureOptions& opts = {}) const;

 private:
  void run(Engine& engine, double compute_seconds, bool overlap) const;

  Topology topo_;
  ParamSet params_;
  StrategyConfig config_;
  CommPlan plan_;
  std::size_t internode_phase_ = 0;  ///< index of the inter-node phase
  bool has_internode_phase_ = false;
};

/// Per-phase timing attribution for a plan: the makespan increase
/// contributed by each phase (measured by executing successive prefixes).
struct PhaseCost {
  std::string label;
  double seconds = 0.0;    ///< incremental makespan of this phase
  double fraction = 0.0;   ///< share of the total
};

[[nodiscard]] std::vector<PhaseCost> report_phases(
    const CommPlan& plan, const Topology& topo, const ParamSet& params,
    const MeasureOptions& opts = {});

}  // namespace hetcomm::core
