#include "core/pattern_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hetcomm::core {

namespace {

constexpr const char* kHeader = "hetcomm-pattern v1";

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold one 64-bit word into the FNV-1a state byte by byte (little-endian
/// byte order, so the hash is identical on every platform).
constexpr std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    h ^= (word >> (8 * b)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t pattern_hash(const CommPattern& pattern) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_word(h, static_cast<std::uint64_t>(pattern.num_gpus()));
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    for (const GpuMessage& m : pattern.sends_from(src)) {
      h = fnv1a_word(h, static_cast<std::uint64_t>(src));
      h = fnv1a_word(h, static_cast<std::uint64_t>(m.dst_gpu));
      h = fnv1a_word(h, static_cast<std::uint64_t>(m.bytes));
      h = fnv1a_word(h, static_cast<std::uint64_t>(m.count));
    }
  }
  for (const auto& [src, node, bytes] : pattern.node_dedup_entries()) {
    // Tag dedup entries so a pattern with annotations can never collide
    // with one whose message list happens to encode the same words.
    h = fnv1a_word(h, 0xdedaULL);
    h = fnv1a_word(h, static_cast<std::uint64_t>(src));
    h = fnv1a_word(h, static_cast<std::uint64_t>(node));
    h = fnv1a_word(h, static_cast<std::uint64_t>(bytes));
  }
  return h;
}

void write_pattern(std::ostream& os, const CommPattern& pattern) {
  os << kHeader << "\n";
  os << "gpus " << pattern.num_gpus() << "\n";
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    for (const GpuMessage& m : pattern.sends_from(src)) {
      os << "msg " << src << " " << m.dst_gpu << " " << m.bytes << " "
         << m.count << "\n";
    }
  }
  for (const auto& [src, node, bytes] : pattern.node_dedup_entries()) {
    os << "dedup " << src << " " << node << " " << bytes << "\n";
  }
}

CommPattern read_pattern(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("read_pattern: bad header: '" + line + "'");
  }
  if (!std::getline(is, line)) {
    throw std::runtime_error("read_pattern: missing gpus line");
  }
  std::istringstream gpus_line(line);
  std::string keyword;
  int num_gpus = 0;
  if (!(gpus_line >> keyword >> num_gpus) || keyword != "gpus" ||
      num_gpus <= 0) {
    throw std::runtime_error("read_pattern: bad gpus line: '" + line + "'");
  }

  CommPattern pattern(num_gpus);
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream entry(line);
    entry >> keyword;
    if (keyword == "msg") {
      int src = 0, dst = 0, count = 0;
      std::int64_t bytes = 0;
      if (!(entry >> src >> dst >> bytes >> count) || count <= 0 ||
          bytes < count) {
        throw std::runtime_error("read_pattern: bad msg line: '" + line + "'");
      }
      // Reconstruct `count` logical messages totaling `bytes`.
      const std::int64_t each = bytes / count;
      std::int64_t left = bytes;
      for (int i = 0; i < count; ++i) {
        const std::int64_t b = i + 1 == count ? left : each;
        pattern.add(src, dst, b);
        left -= b;
      }
    } else if (keyword == "dedup") {
      int src = 0, node = 0;
      std::int64_t bytes = 0;
      if (!(entry >> src >> node >> bytes)) {
        throw std::runtime_error("read_pattern: bad dedup line: '" + line +
                                 "'");
      }
      pattern.set_node_dedup(src, node, bytes);
    } else {
      throw std::runtime_error("read_pattern: unknown keyword '" + keyword +
                               "'");
    }
  }
  return pattern;
}

void write_pattern_file(const std::string& path, const CommPattern& pattern) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_pattern_file: cannot open " + path);
  write_pattern(os, pattern);
}

CommPattern read_pattern_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_pattern_file: cannot open " + path);
  return read_pattern(is);
}

}  // namespace hetcomm::core
