#pragma once
// CommPattern (de)serialization.
//
// A small line-oriented text format so patterns extracted from production
// runs (or generated elsewhere) can be replayed through the strategies and
// models:
//
//   hetcomm-pattern v1
//   gpus <N>
//   msg <src_gpu> <dst_gpu> <bytes> <count>
//   dedup <src_gpu> <dst_node> <bytes>
//
// `msg` lines record `count` logical messages totaling `bytes`; `dedup`
// lines carry the duplicate-data annotations (see CommPattern).

#include <iosfwd>
#include <string>

#include "core/comm_pattern.hpp"

namespace hetcomm::core {

void write_pattern(std::ostream& os, const CommPattern& pattern);
[[nodiscard]] CommPattern read_pattern(std::istream& is);

void write_pattern_file(const std::string& path, const CommPattern& pattern);
[[nodiscard]] CommPattern read_pattern_file(const std::string& path);

}  // namespace hetcomm::core
