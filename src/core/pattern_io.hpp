#pragma once
// CommPattern (de)serialization.
//
// A small line-oriented text format so patterns extracted from production
// runs (or generated elsewhere) can be replayed through the strategies and
// models:
//
//   hetcomm-pattern v1
//   gpus <N>
//   msg <src_gpu> <dst_gpu> <bytes> <count>
//   dedup <src_gpu> <dst_node> <bytes>
//
// `msg` lines record `count` logical messages totaling `bytes`; `dedup`
// lines carry the duplicate-data annotations (see CommPattern).

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/comm_pattern.hpp"

namespace hetcomm::core {

void write_pattern(std::ostream& os, const CommPattern& pattern);
[[nodiscard]] CommPattern read_pattern(std::istream& is);

/// Stable 64-bit fingerprint of a pattern: FNV-1a over the canonicalized
/// content -- GPU count, then every (src, dst, bytes, count) flow in
/// (src, dst) order, then every (src, dst_node, bytes) dedup annotation in
/// that order.  The canonical order is the one write_pattern emits, so two
/// patterns hash equal exactly when their serialized forms are equal,
/// regardless of the order add() calls built them in.  The value is stable
/// across processes and platforms (no pointer or seed inputs) and keys the
/// serve plan cache and sweep-level workload dedup.
[[nodiscard]] std::uint64_t pattern_hash(const CommPattern& pattern);

void write_pattern_file(const std::string& path, const CommPattern& pattern);
[[nodiscard]] CommPattern read_pattern_file(const std::string& path);

}  // namespace hetcomm::core
