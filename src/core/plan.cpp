#include "core/plan.hpp"

#include <algorithm>
#include <ostream>

namespace hetcomm::core {

PlanSummary CommPlan::summarize(const Topology& topo) const {
  PlanSummary s;
  s.num_phases = static_cast<int>(phases.size());
  for (const PlanPhase& phase : phases) {
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message: {
          ++s.messages;
          const PathClass path = topo.classify(op.src_rank, op.dst_rank);
          TrafficCount& cls = s.by_path[static_cast<std::size_t>(path)];
          ++cls.messages;
          cls.bytes += op.bytes;
          if (op.depends_on >= 0) ++s.dependent_messages;
          if (path == PathClass::OffNode) {
            ++s.internode_messages;
            s.internode_bytes += op.bytes;
            TrafficCount& rail =
                op.rail >= 0
                    ? (s.rails.resize(std::max(
                           s.rails.size(),
                           static_cast<std::size_t>(op.rail) + 1)),
                       s.rails[static_cast<std::size_t>(op.rail)])
                    : s.unrailed;
            ++rail.messages;
            rail.bytes += op.bytes;
          } else {
            ++s.intranode_messages;
            s.intranode_bytes += op.bytes;
          }
          break;
        }
        case OpType::Copy:
          ++s.copies;
          s.copy_bytes += op.bytes;
          break;
        case OpType::Pack:
          break;
      }
    }
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const PlanSummary& s) {
  os << "{phases=" << s.num_phases << ", msgs=" << s.messages
     << " (inter=" << s.internode_messages << "/" << s.internode_bytes
     << "B, intra=" << s.intranode_messages << "/" << s.intranode_bytes
     << "B), copies=" << s.copies << "/" << s.copy_bytes << "B";
  if (!s.rails.empty()) {
    os << ", rails=[";
    for (std::size_t r = 0; r < s.rails.size(); ++r) {
      if (r != 0) os << ", ";
      os << r << ":" << s.rails[r].messages << "/" << s.rails[r].bytes << "B";
    }
    os << "]";
  }
  if (s.dependent_messages != 0) os << ", dep_msgs=" << s.dependent_messages;
  os << "}";
  return os;
}

}  // namespace hetcomm::core
