#include "core/plan.hpp"

#include <ostream>

namespace hetcomm::core {

PlanSummary CommPlan::summarize(const Topology& topo) const {
  PlanSummary s;
  s.num_phases = static_cast<int>(phases.size());
  for (const PlanPhase& phase : phases) {
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message: {
          ++s.messages;
          if (topo.classify(op.src_rank, op.dst_rank) == PathClass::OffNode) {
            ++s.internode_messages;
            s.internode_bytes += op.bytes;
          } else {
            ++s.intranode_messages;
            s.intranode_bytes += op.bytes;
          }
          break;
        }
        case OpType::Copy:
          ++s.copies;
          s.copy_bytes += op.bytes;
          break;
        case OpType::Pack:
          break;
      }
    }
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const PlanSummary& s) {
  os << "{phases=" << s.num_phases << ", msgs=" << s.messages
     << " (inter=" << s.internode_messages << "/" << s.internode_bytes
     << "B, intra=" << s.intranode_messages << "/" << s.intranode_bytes
     << "B), copies=" << s.copies << "/" << s.copy_bytes << "B}";
  return os;
}

}  // namespace hetcomm::core
