#pragma once
// Executable communication plans.
//
// A CommPlan is the compiled form of a strategy applied to a CommPattern on
// a concrete topology: an ordered list of phases, each holding message and
// copy operations expressed in terms of *world host ranks* and GPU ids.
// Plans are plain data -- they can be executed on the simulator (Executor),
// summarized, pretty-printed, or inspected by tests.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

enum class OpType : std::uint8_t {
  Message,  ///< point-to-point message between two host ranks
  Copy,     ///< host<->device copy against a GPU DMA engine
  Pack,     ///< CPU-side buffer (un)packing
};

struct PlanOp {
  OpType type = OpType::Message;
  // Message fields
  int src_rank = -1;
  int dst_rank = -1;
  std::int64_t bytes = 0;
  int tag = 0;
  MemSpace space = MemSpace::Host;
  // Copy fields
  int rank = -1;  ///< rank performing a Copy/Pack
  int gpu = -1;
  CopyDir dir = CopyDir::DeviceToHost;
  int sharing_procs = 1;
  // Split-plan fields (see plan_transform.hpp).  `rail` pins an off-node
  // message to one of the machine's NIC lanes (-1 = the engine's default
  // hash-to-lane choice); `depends_on` is the phase-local index of an
  // *earlier* op in the same phase whose completion produces this op's
  // data (-1 = independent).  Earlier-index-only makes dependency chains
  // acyclic by construction.
  int rail = -1;
  int depends_on = -1;

  [[nodiscard]] static PlanOp message(int src, int dst, std::int64_t bytes,
                                      int tag, MemSpace space, int rail = -1,
                                      int depends_on = -1) {
    PlanOp op;
    op.type = OpType::Message;
    op.src_rank = src;
    op.dst_rank = dst;
    op.bytes = bytes;
    op.tag = tag;
    op.space = space;
    op.rail = rail;
    op.depends_on = depends_on;
    return op;
  }

  [[nodiscard]] static PlanOp copy(int rank, int gpu, CopyDir dir,
                                   std::int64_t bytes, int sharing_procs = 1) {
    PlanOp op;
    op.type = OpType::Copy;
    op.rank = rank;
    op.gpu = gpu;
    op.dir = dir;
    op.bytes = bytes;
    op.sharing_procs = sharing_procs;
    return op;
  }

  [[nodiscard]] static PlanOp pack(int rank, std::int64_t bytes) {
    PlanOp op;
    op.type = OpType::Pack;
    op.rank = rank;
    op.bytes = bytes;
    return op;
  }
};

struct PlanPhase {
  std::string label;
  std::vector<PlanOp> ops;
};

/// Message/byte totals for one bucket of a PlanSummary breakdown.
struct TrafficCount {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;

  friend bool operator==(const TrafficCount&, const TrafficCount&) = default;
};

/// Aggregate shape of a plan, for tests and reports.
struct PlanSummary {
  int num_phases = 0;
  std::int64_t messages = 0;
  std::int64_t internode_messages = 0;
  std::int64_t internode_bytes = 0;
  std::int64_t intranode_messages = 0;
  std::int64_t intranode_bytes = 0;
  std::int64_t copies = 0;
  std::int64_t copy_bytes = 0;
  /// Placement breakdown, indexed by PathClass (on-socket, on-node,
  /// off-node); sums to `messages`.
  std::array<TrafficCount, 3> by_path{};
  /// Off-node traffic pinned to an explicit NIC rail (PlanOp::rail >= 0),
  /// indexed by rail id; empty for plans that never pin a rail.  Striped
  /// lowering shows up here as near-even bytes per rail.
  std::vector<TrafficCount> rails;
  /// Off-node traffic left to the engine's hash-to-lane routing
  /// (PlanOp::rail == -1).
  TrafficCount unrailed;
  /// Messages gated on an earlier op via PlanOp::depends_on (chunked
  /// pipelining shows up here).
  std::int64_t dependent_messages = 0;
};

struct CommPlan {
  std::string strategy_name;
  std::vector<PlanPhase> phases;

  [[nodiscard]] PlanSummary summarize(const Topology& topo) const;
};

std::ostream& operator<<(std::ostream& os, const PlanSummary& s);

}  // namespace hetcomm::core
