#include "core/plan_check.hpp"

#include <map>
#include <sstream>

#include "core/strategies/common.hpp"

namespace hetcomm::core {

namespace {

std::string fmt(const char* what, std::int64_t got, std::int64_t expect,
                int id) {
  std::ostringstream os;
  os << what << " mismatch for gpu/node " << id << ": got " << got
     << ", expected " << expect;
  return os.str();
}

}  // namespace

PlanCheckResult check_plan(const CommPlan& plan, const CommPattern& pattern,
                           const Topology& topo, bool staged) {
  PlanCheckResult result;

  std::map<int, std::int64_t> d2h_per_gpu;
  std::map<int, std::int64_t> h2d_per_gpu;
  std::int64_t wire_total = 0;

  for (const PlanPhase& phase : plan.phases) {
    for (const PlanOp& op : phase.ops) {
      switch (op.type) {
        case OpType::Message: {
          if (op.src_rank < 0 || op.src_rank >= topo.num_ranks() ||
              op.dst_rank < 0 || op.dst_rank >= topo.num_ranks()) {
            result.fail("message endpoint out of range in phase " +
                        phase.label);
            continue;
          }
          if (op.src_rank == op.dst_rank) {
            result.fail("self-message in phase " + phase.label);
          }
          if (op.bytes < 0 || op.tag < 0) {
            result.fail("negative bytes/tag in phase " + phase.label);
          }
          if (!staged && op.space != MemSpace::Device) {
            result.fail("host-space message in a device-aware plan (phase " +
                        phase.label + ")");
          }
          if (topo.classify(op.src_rank, op.dst_rank) == PathClass::OffNode) {
            wire_total += op.bytes;
          }
          break;
        }
        case OpType::Copy: {
          if (!staged) {
            result.fail("copy operation in a device-aware plan (phase " +
                        phase.label + ")");
            break;
          }
          if (op.gpu < 0 || op.gpu >= topo.num_gpus()) {
            result.fail("copy GPU out of range in phase " + phase.label);
            break;
          }
          if (op.dir == CopyDir::DeviceToHost) {
            d2h_per_gpu[op.gpu] += op.bytes;
          } else {
            h2d_per_gpu[op.gpu] += op.bytes;
          }
          break;
        }
        case OpType::Pack:
          if (op.bytes < 0) result.fail("negative pack in " + phase.label);
          break;
      }
    }
  }

  // Expected inter-node wire volume: deduplicated per (src GPU, dst node).
  std::int64_t wire_expected = 0;
  std::int64_t wire_payload = 0;
  for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
    wire_expected += detail::dedup_send_bytes(pattern, topo, gpu);
    const int node = topo.gpu_location(gpu).node;
    for (const GpuMessage& m : pattern.sends_from(gpu)) {
      if (topo.gpu_location(m.dst_gpu).node != node) wire_payload += m.bytes;
    }
  }
  // Standard never dedups; node-aware plans ship exactly the wire volume.
  if (wire_total != wire_expected && wire_total != wire_payload) {
    result.fail(fmt("inter-node wire volume", wire_total, wire_expected, -1));
  }

  if (staged) {
    for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
      const std::int64_t recv = pattern.recv_bytes(gpu);
      const auto h2d = h2d_per_gpu.find(gpu);
      const std::int64_t got_h2d = h2d == h2d_per_gpu.end() ? 0 : h2d->second;
      if (got_h2d != recv) {
        result.fail(fmt("H2D volume", got_h2d, recv, gpu));
      }

      const std::int64_t send_payload = pattern.send_bytes(gpu);
      const int node = topo.gpu_location(gpu).node;
      std::int64_t intra = 0;
      for (const GpuMessage& m : pattern.sends_from(gpu)) {
        if (topo.gpu_location(m.dst_gpu).node == node) intra += m.bytes;
      }
      const std::int64_t send_wire =
          intra + detail::dedup_send_bytes(pattern, topo, gpu);
      const auto d2h = d2h_per_gpu.find(gpu);
      const std::int64_t got_d2h = d2h == d2h_per_gpu.end() ? 0 : d2h->second;
      if (got_d2h < send_wire || got_d2h > send_payload) {
        result.fail(fmt("D2H volume (outside [wire, payload])", got_d2h,
                        send_wire, gpu));
      }
    }
  }

  return result;
}

}  // namespace hetcomm::core
