#include "core/plan_check.hpp"

#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/strategies/common.hpp"

namespace hetcomm::core {

namespace {

std::string fmt(const char* what, std::int64_t got, std::int64_t expect,
                int id) {
  std::ostringstream os;
  os << what << " mismatch for gpu/node " << id << ": got " << got
     << ", expected " << expect;
  return os.str();
}

}  // namespace

PlanCheckResult check_plan(const CommPlan& plan, const CommPattern& pattern,
                           const Topology& topo, bool staged, int nic_lanes) {
  PlanCheckResult result;

  std::map<int, std::int64_t> d2h_per_gpu;
  std::map<int, std::int64_t> h2d_per_gpu;
  std::int64_t wire_total = 0;

  for (const PlanPhase& phase : plan.phases) {
    for (std::size_t oi = 0; oi < phase.ops.size(); ++oi) {
      const PlanOp& op = phase.ops[oi];
      // Split-plan structure: dependency edges must point at an earlier op
      // in the same phase (forward/self references would be cycles) and
      // obey the execution model's rank rules.
      if (op.depends_on >= 0) {
        if (static_cast<std::size_t>(op.depends_on) >= oi) {
          result.fail("dependency does not reference an earlier op in phase " +
                      phase.label);
        } else {
          const PlanOp& dep = phase.ops[op.depends_on];
          const bool op_msg = op.type == OpType::Message;
          const bool dep_msg = dep.type == OpType::Message;
          if (!op_msg && dep_msg) {
            result.fail("copy/pack depends on a message in phase " +
                        phase.label);
          } else if (op_msg && !dep_msg && dep.rank != op.src_rank) {
            result.fail(
                "message depends on a copy/pack on a different rank in "
                "phase " + phase.label);
          } else if (!op_msg && !dep_msg && dep.rank != op.rank) {
            result.fail("cross-rank copy/pack dependency in phase " +
                        phase.label);
          }
        }
      }
      if (op.rail >= 0) {
        if (op.type != OpType::Message) {
          result.fail("rail set on a non-message op in phase " + phase.label);
        } else if (nic_lanes > 0 && op.rail >= nic_lanes) {
          result.fail("rail " + std::to_string(op.rail) +
                      " outside the machine's " + std::to_string(nic_lanes) +
                      " NIC lane(s) in phase " + phase.label);
        } else if (op.src_rank >= 0 && op.src_rank < topo.num_ranks() &&
                   op.dst_rank >= 0 && op.dst_rank < topo.num_ranks() &&
                   topo.classify(op.src_rank, op.dst_rank) !=
                       PathClass::OffNode) {
          result.fail("rail pinned on an on-node message in phase " +
                      phase.label);
        }
      }
      switch (op.type) {
        case OpType::Message: {
          if (op.src_rank < 0 || op.src_rank >= topo.num_ranks() ||
              op.dst_rank < 0 || op.dst_rank >= topo.num_ranks()) {
            result.fail("message endpoint out of range in phase " +
                        phase.label);
            continue;
          }
          if (op.src_rank == op.dst_rank) {
            result.fail("self-message in phase " + phase.label);
          }
          if (op.bytes < 0 || op.tag < 0) {
            result.fail("negative bytes/tag in phase " + phase.label);
          }
          if (!staged && op.space != MemSpace::Device) {
            result.fail("host-space message in a device-aware plan (phase " +
                        phase.label + ")");
          }
          if (topo.classify(op.src_rank, op.dst_rank) == PathClass::OffNode) {
            wire_total += op.bytes;
          }
          break;
        }
        case OpType::Copy: {
          if (!staged) {
            result.fail("copy operation in a device-aware plan (phase " +
                        phase.label + ")");
            break;
          }
          if (op.gpu < 0 || op.gpu >= topo.num_gpus()) {
            result.fail("copy GPU out of range in phase " + phase.label);
            break;
          }
          if (op.dir == CopyDir::DeviceToHost) {
            d2h_per_gpu[op.gpu] += op.bytes;
          } else {
            h2d_per_gpu[op.gpu] += op.bytes;
          }
          break;
        }
        case OpType::Pack:
          if (op.bytes < 0) result.fail("negative pack in " + phase.label);
          break;
      }
    }
  }

  // Expected inter-node wire volume: deduplicated per (src GPU, dst node).
  std::int64_t wire_expected = 0;
  std::int64_t wire_payload = 0;
  for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
    wire_expected += detail::dedup_send_bytes(pattern, topo, gpu);
    const int node = topo.gpu_location(gpu).node;
    for (const GpuMessage& m : pattern.sends_from(gpu)) {
      if (topo.gpu_location(m.dst_gpu).node != node) wire_payload += m.bytes;
    }
  }
  // Standard never dedups; node-aware plans ship exactly the wire volume.
  if (wire_total != wire_expected && wire_total != wire_payload) {
    result.fail(fmt("inter-node wire volume", wire_total, wire_expected, -1));
  }

  if (staged) {
    for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
      const std::int64_t recv = pattern.recv_bytes(gpu);
      const auto h2d = h2d_per_gpu.find(gpu);
      const std::int64_t got_h2d = h2d == h2d_per_gpu.end() ? 0 : h2d->second;
      if (got_h2d != recv) {
        result.fail(fmt("H2D volume", got_h2d, recv, gpu));
      }

      const std::int64_t send_payload = pattern.send_bytes(gpu);
      const int node = topo.gpu_location(gpu).node;
      std::int64_t intra = 0;
      for (const GpuMessage& m : pattern.sends_from(gpu)) {
        if (topo.gpu_location(m.dst_gpu).node == node) intra += m.bytes;
      }
      const std::int64_t send_wire =
          intra + detail::dedup_send_bytes(pattern, topo, gpu);
      const auto d2h = d2h_per_gpu.find(gpu);
      const std::int64_t got_d2h = d2h == d2h_per_gpu.end() ? 0 : d2h->second;
      if (got_d2h < send_wire || got_d2h > send_payload) {
        result.fail(fmt("D2H volume (outside [wire, payload])", got_d2h,
                        send_wire, gpu));
      }
    }
  }

  return result;
}

PlanCheckResult check_split_against(const CommPlan& lowered,
                                    const CommPlan& logical) {
  PlanCheckResult result;
  if (lowered.phases.size() != logical.phases.size()) {
    result.fail("phase count changed: " +
                std::to_string(lowered.phases.size()) + " vs " +
                std::to_string(logical.phases.size()));
    return result;
  }

  using FlowKey = std::tuple<int, int, int>;  // (src, dst, tag)
  const auto flow_bytes = [](const PlanPhase& phase) {
    std::map<FlowKey, std::int64_t> flows;
    for (const PlanOp& op : phase.ops) {
      if (op.type != OpType::Message) continue;
      flows[{op.src_rank, op.dst_rank, op.tag}] += op.bytes;
    }
    return flows;
  };
  // Copies may move across phases (the pipeline pass carves a staging copy
  // out of its original phase), so compare their totals globally.
  std::map<std::pair<int, int>, std::int64_t> copies[2];
  std::map<int, std::int64_t> packs[2];
  const CommPlan* plans[2] = {&lowered, &logical};
  for (int side = 0; side < 2; ++side) {
    for (const PlanPhase& phase : plans[side]->phases) {
      for (const PlanOp& op : phase.ops) {
        if (op.type == OpType::Copy) {
          copies[side][{op.gpu, static_cast<int>(op.dir)}] += op.bytes;
        } else if (op.type == OpType::Pack) {
          packs[side][op.rank] += op.bytes;
        }
      }
    }
  }

  for (std::size_t p = 0; p < lowered.phases.size(); ++p) {
    const auto low = flow_bytes(lowered.phases[p]);
    const auto log = flow_bytes(logical.phases[p]);
    for (const auto& [key, bytes] : log) {
      const auto it = low.find(key);
      const std::int64_t got = it == low.end() ? 0 : it->second;
      if (got != bytes) {
        std::ostringstream os;
        os << "chunk bytes for flow (" << std::get<0>(key) << " -> "
           << std::get<1>(key) << ", tag " << std::get<2>(key)
           << ") in phase " << lowered.phases[p].label << ": got " << got
           << ", logical message has " << bytes;
        result.fail(os.str());
      }
    }
    for (const auto& [key, bytes] : low) {
      if (log.find(key) == log.end()) {
        std::ostringstream os;
        os << "lowered plan invents flow (" << std::get<0>(key) << " -> "
           << std::get<1>(key) << ", tag " << std::get<2>(key)
           << ") in phase " << lowered.phases[p].label;
        result.fail(os.str());
      }
    }
  }
  if (copies[0] != copies[1]) {
    result.fail("per-(gpu, dir) copy byte totals changed by lowering");
  }
  if (packs[0] != packs[1]) {
    result.fail("per-rank pack byte totals changed by lowering");
  }
  return result;
}

}  // namespace hetcomm::core
