#pragma once
// Plan verification: does a compiled CommPlan actually deliver the pattern?
//
// Strategies are nontrivial transformations (conglomeration, chunking,
// deduplication, multi-hop staging); this checker verifies conservation
// properties that every correct plan must satisfy, independent of how the
// plan was built.  Used by tests and available to library users who write
// their own strategies.

#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/plan.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

struct PlanCheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message) {
    ok = false;
    violations.push_back(std::move(message));
  }
};

/// Verify a plan against its source pattern:
///   1. every destination GPU's H2D copy volume (staged) equals its receive
///      payload; every source GPU's D2H volume covers its send data;
///   2. inter-node wire volume equals the pattern's deduplicated volume
///      (never more; never less);
///   3. device-aware plans contain no copies and only device-space messages;
///   4. message endpoints are valid ranks and tags are non-negative;
///   5. per-phase, no rank both sends and receives the same tag to itself.
/// `staged` tells the checker which flavor the plan is.
[[nodiscard]] PlanCheckResult check_plan(const CommPlan& plan,
                                         const CommPattern& pattern,
                                         const Topology& topo, bool staged);

}  // namespace hetcomm::core
