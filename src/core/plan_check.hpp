#pragma once
// Plan verification: does a compiled CommPlan actually deliver the pattern?
//
// Strategies are nontrivial transformations (conglomeration, chunking,
// deduplication, multi-hop staging); this checker verifies conservation
// properties that every correct plan must satisfy, independent of how the
// plan was built.  Used by tests and available to library users who write
// their own strategies.

#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/plan.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

struct PlanCheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message) {
    ok = false;
    violations.push_back(std::move(message));
  }
};

/// Verify a plan against its source pattern:
///   1. every destination GPU's H2D copy volume (staged) equals its receive
///      payload; every source GPU's D2H volume covers its send data;
///   2. inter-node wire volume equals the pattern's deduplicated volume
///      (never more; never less);
///   3. device-aware plans contain no copies and only device-space messages;
///   4. message endpoints are valid ranks and tags are non-negative;
///   5. per-phase, no rank both sends and receives the same tag to itself;
///   6. split-plan structure: PlanOp::rail only on off-node messages and,
///      when `nic_lanes` > 0, within [0, nic_lanes); PlanOp::depends_on
///      edges reference an earlier op in the same phase (which makes them
///      acyclic by construction) and obey the execution model's rank rules
///      (a message may depend on a copy/pack only on its own sending rank,
///      copies/packs may not depend on messages, and copy/pack chains stay
///      on one rank).
/// `staged` tells the checker which flavor the plan is.  `nic_lanes` <= 0
/// skips the rail upper-bound check for callers without a machine model.
[[nodiscard]] PlanCheckResult check_plan(const CommPlan& plan,
                                         const CommPattern& pattern,
                                         const Topology& topo, bool staged,
                                         int nic_lanes = 0);

/// Verify a lowered (striped / chunk-pipelined) plan against the logical
/// plan it was derived from: phase counts match, per-phase message byte
/// totals per (src, dst, tag) flow are conserved (chunks of one logical
/// transfer keep its tag, so their bytes must sum back to the original),
/// and global copy/pack volumes per (gpu, dir) / rank are conserved (the
/// pipeline pass may carve a copy across phases but never change totals).
[[nodiscard]] PlanCheckResult check_split_against(const CommPlan& lowered,
                                                  const CommPlan& logical);

}  // namespace hetcomm::core
