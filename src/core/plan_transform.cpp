#include "core/plan_transform.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hetcomm::core {

namespace {

std::int64_t resolve_min_bytes(const ParamSet& params,
                               const SplitOptions& options) {
  if (options.min_bytes > 0) return options.min_bytes;
  return params.thresholds.eager_max + 1;
}

bool off_node(const Topology& topo, const PlanOp& op) {
  return topo.node_of_rank(op.src_rank) != topo.node_of_rank(op.dst_rank);
}

/// Near-even split: the first `bytes % chunks` chunks carry one extra byte.
std::int64_t chunk_bytes(std::int64_t bytes, int chunks, int c) {
  const std::int64_t base = bytes / chunks;
  return base + (c < bytes % chunks ? 1 : 0);
}

/// Flags ops that other ops depend on.  Those stay whole: a single
/// depends_on edge cannot express "all chunks done".
std::vector<std::vector<char>> dep_targets(const CommPlan& plan) {
  std::vector<std::vector<char>> target(plan.phases.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    target[p].assign(phase.ops.size(), 0);
    for (const PlanOp& op : phase.ops) {
      if (op.depends_on >= 0 &&
          static_cast<std::size_t>(op.depends_on) < phase.ops.size()) {
        target[p][static_cast<std::size_t>(op.depends_on)] = 1;
      }
    }
  }
  return target;
}

CommPlan stripe(const CommPlan& plan, const Topology& topo,
                const ParamSet& params, const SplitOptions& options) {
  const int rails = params.injection.nics_per_node;
  if (rails <= 1) return plan;  // one lane: nothing to stripe across
  const std::int64_t min_bytes = resolve_min_bytes(params, options);
  const int chunks = options.chunks > 0 ? options.chunks : rails;
  if (chunks <= 1) return plan;
  const auto is_target = dep_targets(plan);

  CommPlan out;
  out.strategy_name = plan.strategy_name;
  out.phases.reserve(plan.phases.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    PlanPhase lowered;
    lowered.label = phase.label;
    std::vector<int> new_index(phase.ops.size(), -1);
    for (std::size_t i = 0; i < phase.ops.size(); ++i) {
      PlanOp op = phase.ops[i];
      new_index[i] = static_cast<int>(lowered.ops.size());
      if (op.depends_on >= 0) {
        op.depends_on = new_index[static_cast<std::size_t>(op.depends_on)];
      }
      const bool split = op.type == OpType::Message && op.rail < 0 &&
                         !is_target[p][i] && op.bytes >= min_bytes &&
                         off_node(topo, op);
      if (!split) {
        lowered.ops.push_back(op);
        continue;
      }
      // Chunks keep the logical tag and post in order, so FIFO matching
      // by (src, dst, tag) still pairs each send with its receive.
      for (int c = 0; c < chunks; ++c) {
        const std::int64_t piece = chunk_bytes(op.bytes, chunks, c);
        if (piece == 0) continue;
        lowered.ops.push_back(PlanOp::message(op.src_rank, op.dst_rank, piece,
                                              op.tag, op.space, c % rails,
                                              op.depends_on));
      }
    }
    out.phases.push_back(std::move(lowered));
  }
  return out;
}

CommPlan chunk_pipeline(const CommPlan& plan, const Topology& topo,
                        const ParamSet& params, const SplitOptions& options) {
  const std::int64_t min_bytes = resolve_min_bytes(params, options);
  const int depth =
      options.chunks > 0 ? options.chunks : kDefaultPipelineDepth;
  if (depth <= 1) return plan;
  const auto is_target = dep_targets(plan);

  // Un-carved bytes left in each D2H staging copy, keyed by (phase, op).
  std::vector<std::vector<std::int64_t>> remaining(plan.phases.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    remaining[p].assign(phase.ops.size(), 0);
    for (std::size_t i = 0; i < phase.ops.size(); ++i) {
      const PlanOp& op = phase.ops[i];
      if (op.type == OpType::Copy && op.dir == CopyDir::DeviceToHost) {
        remaining[p][i] = op.bytes;
      }
    }
  }

  // Pass 1: each candidate message claims its bytes from the first
  // earlier-phase D2H copy on its source rank with enough left.  Messages
  // with no such copy (e.g. 3-step leader sends fed by gather messages)
  // pass through unchanged.
  struct Feed {
    bool active = false;
    int gpu = -1;
    int sharing = 1;
  };
  std::vector<std::vector<Feed>> feeds(plan.phases.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    feeds[p].resize(phase.ops.size());
    for (std::size_t i = 0; i < phase.ops.size(); ++i) {
      const PlanOp& op = phase.ops[i];
      const bool candidate = op.type == OpType::Message &&
                             op.space == MemSpace::Host &&
                             op.depends_on < 0 && !is_target[p][i] &&
                             op.bytes >= min_bytes && off_node(topo, op);
      if (!candidate) continue;
      for (std::size_t q = 0; q < p && !feeds[p][i].active; ++q) {
        const PlanPhase& early = plan.phases[q];
        for (std::size_t j = 0; j < early.ops.size(); ++j) {
          const PlanOp& copy = early.ops[j];
          if (copy.type != OpType::Copy ||
              copy.dir != CopyDir::DeviceToHost ||
              copy.rank != op.src_rank || is_target[q][j] ||
              remaining[q][j] < op.bytes) {
            continue;
          }
          remaining[q][j] -= op.bytes;
          feeds[p][i] = {true, copy.gpu, copy.sharing_procs};
          break;
        }
      }
    }
  }

  // Pass 2: emit the lowered plan.  Carved copies shrink to their kept
  // bytes (dropped when fully carved); pipelined messages become
  // interleaved copy -> send chunk pairs, each send gated on its chunk's
  // copy via depends_on.
  CommPlan out;
  out.strategy_name = plan.strategy_name;
  out.phases.reserve(plan.phases.size());
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    PlanPhase lowered;
    lowered.label = phase.label;
    std::vector<int> new_index(phase.ops.size(), -1);
    for (std::size_t i = 0; i < phase.ops.size(); ++i) {
      PlanOp op = phase.ops[i];
      if (op.type == OpType::Copy && op.dir == CopyDir::DeviceToHost &&
          remaining[p][i] != op.bytes) {
        if (remaining[p][i] == 0) continue;  // fully carved away
        op.bytes = remaining[p][i];
      }
      new_index[i] = static_cast<int>(lowered.ops.size());
      if (op.depends_on >= 0) {
        op.depends_on = new_index[static_cast<std::size_t>(op.depends_on)];
      }
      if (!feeds[p][i].active) {
        lowered.ops.push_back(op);
        continue;
      }
      const Feed& feed = feeds[p][i];
      for (int c = 0; c < depth; ++c) {
        const std::int64_t piece = chunk_bytes(op.bytes, depth, c);
        if (piece == 0) continue;
        const int copy_index = static_cast<int>(lowered.ops.size());
        lowered.ops.push_back(PlanOp::copy(op.src_rank, feed.gpu,
                                           CopyDir::DeviceToHost, piece,
                                           feed.sharing));
        lowered.ops.push_back(PlanOp::message(op.src_rank, op.dst_rank, piece,
                                              op.tag, op.space, op.rail,
                                              copy_index));
      }
    }
    out.phases.push_back(std::move(lowered));
  }
  return out;
}

}  // namespace

CommPlan apply_split(const CommPlan& plan, const Topology& topo,
                     const ParamSet& params, SplitMode mode,
                     const SplitOptions& options) {
  if (options.chunks < 0) {
    throw std::invalid_argument("apply_split: negative chunk count");
  }
  if (options.min_bytes < 0) {
    throw std::invalid_argument("apply_split: negative min_bytes");
  }
  switch (mode) {
    case SplitMode::None: return plan;
    case SplitMode::Striped: return stripe(plan, topo, params, options);
    case SplitMode::ChunkedPipeline:
      return chunk_pipeline(plan, topo, params, options);
  }
  throw std::logic_error("apply_split: unknown split mode");
}

}  // namespace hetcomm::core
