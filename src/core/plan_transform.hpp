#pragma once
// Post-pass plan transforms: lower logical transfers into split form.
//
// Strategy builders emit one PlanOp::message per logical transfer.  These
// passes rewrite a built CommPlan so a rendezvous-sized transfer becomes
// several scheduled ops:
//
//  - SplitMode::Striped splits each off-node rendezvous-sized message into
//    near-even chunks pinned round-robin to the machine's NIC rails
//    (PlanOp::rail), so one transfer injects through every lane in parallel
//    instead of serializing through the rank's hash-assigned lane.
//    Identity on single-rail machines.
//
//  - SplitMode::ChunkedPipeline carves the staging D2H copy that feeds an
//    off-node rendezvous-sized host-space send out of its earlier phase and
//    re-emits it as interleaved per-chunk copy -> send pairs chained with
//    PlanOp::depends_on, overlapping chunk k's wire time with chunk k+1's
//    DMA.  Messages with no matching staging copy (e.g. 3-step leader
//    sends fed by gather messages) pass through unchanged.
//
// Both passes preserve FIFO-match safety: chunks keep the logical
// message's tag and are emitted in posting order, so sends and receives
// still pair up by (src, dst, tag) order.

#include <cstdint>
#include <string>

#include "core/plan.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

enum class SplitMode : std::uint8_t {
  None,             ///< leave logical messages whole
  Striped,          ///< split across NIC rails, one chunk per rail
  ChunkedPipeline,  ///< pipeline through per-chunk copy->send stages
};

[[nodiscard]] constexpr const char* to_string(SplitMode m) noexcept {
  switch (m) {
    case SplitMode::None: return "none";
    case SplitMode::Striped: return "striped";
    case SplitMode::ChunkedPipeline: return "chunked-pipeline";
  }
  return "?";
}

struct SplitOptions {
  /// Chunks per split message.  0 = one per NIC rail (Striped) or
  /// kDefaultPipelineDepth (ChunkedPipeline).
  int chunks = 0;
  /// Only messages of at least this many bytes are split.  0 = the
  /// machine's rendezvous switch point (thresholds.eager_max + 1).
  std::int64_t min_bytes = 0;
};

/// Pipeline depth used when SplitOptions::chunks is 0 for ChunkedPipeline.
inline constexpr int kDefaultPipelineDepth = 4;

/// Apply `mode` to `plan` and return the lowered plan.  Deterministic:
/// same inputs, same output.  SplitMode::None returns the plan unchanged.
/// Existing PlanOp::depends_on edges are re-indexed to the lowered op
/// positions; messages that are themselves dependency targets are never
/// split (a single edge cannot express "all chunks done").
[[nodiscard]] CommPlan apply_split(const CommPlan& plan, const Topology& topo,
                                   const ParamSet& params, SplitMode mode,
                                   const SplitOptions& options = {});

}  // namespace hetcomm::core
