#include "core/split_setup.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/strategies/common.hpp"

namespace hetcomm::core {

std::vector<const SplitChunk*> SplitSetup::recv_chunks(int node) const {
  std::vector<const SplitChunk*> out;
  for (const SplitChunk& c : chunks) {
    if (c.dst_node == node) out.push_back(&c);
  }
  return out;
}

std::vector<const SplitChunk*> SplitSetup::send_chunks(int node) const {
  std::vector<const SplitChunk*> out;
  for (const SplitChunk& c : chunks) {
    if (c.src_node == node) out.push_back(&c);
  }
  return out;
}

SplitSetup split_setup(const CommPattern& pattern, const Topology& topo,
                       std::int64_t message_cap) {
  if (message_cap <= 0) {
    throw std::invalid_argument("split_setup: message_cap must be positive");
  }

  const detail::NodeTraffic traffic = detail::internode_traffic(pattern, topo);
  const int ppn = topo.ppn();
  SplitSetup setup;

  // ---- Lines 10-11: per-receiving-node volumes (Table 1 parameters).
  //      Volumes are deduplicated (wire) sizes: split removes the data
  //      redundancy of standard communication. ----
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    (void)src_node;
    (void)flows;
    SplitNodeInfo& info = setup.node_info[dst_node];
    const std::int64_t vol =
        traffic.pair_wire_bytes(nodes.first, nodes.second);
    info.total_in_recv_vol += vol;
    info.max_in_recv_size = std::max(info.max_in_recv_size, vol);
    ++info.num_in_nodes;
  }

  // ---- Lines 12-17: effective message cap per receiving node. ----
  for (auto& [node, info] : setup.node_info) {
    if (info.max_in_recv_size < message_cap) {
      // Conglomerate: one message per source node; use an unbounded cap.
      info.effective_cap = info.max_in_recv_size;
    } else {
      const std::int64_t per_ppn =
          (info.total_in_recv_vol + ppn - 1) / ppn;  // ceil
      info.effective_cap = std::max(message_cap, per_ppn);
    }
    if (info.effective_cap <= 0) info.effective_cap = 1;
  }

  // ---- Cut each node pair's flow list into chunks of <= effective cap. ----
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    const std::int64_t cap = setup.node_info.at(dst_node).effective_cap;

    SplitChunk current;
    current.src_node = src_node;
    current.dst_node = dst_node;
    auto flush = [&]() {
      if (current.bytes > 0 || !current.slices.empty()) {
        setup.chunks.push_back(std::move(current));
        current = SplitChunk{};
        current.src_node = src_node;
        current.dst_node = dst_node;
      }
    };

    for (const detail::Flow& f : flows) {
      std::int64_t remaining = f.wire_bytes;
      std::int64_t payload_left = f.bytes;
      if (remaining == 0 && payload_left > 0) {
        // Fully duplicated flow: nothing extra crosses the wire, but the
        // destination GPU still receives its payload via redistribution.
        current.slices.push_back({f.src_gpu, f.dst_gpu, 0, payload_left});
        continue;
      }
      while (remaining > 0) {
        const std::int64_t room = cap - current.bytes;
        const std::int64_t take = std::min(remaining, room);
        // Proportional share of the payload; the last slice absorbs the
        // rounding remainder so payload is conserved exactly.
        const std::int64_t payload_take =
            take == remaining ? payload_left : f.bytes * take / f.wire_bytes;
        current.slices.push_back({f.src_gpu, f.dst_gpu, take, payload_take});
        current.bytes += take;
        remaining -= take;
        payload_left -= payload_take;
        if (current.bytes >= cap) flush();
      }
    }
    flush();
  }

  // ---- Line 18: sender/receiver assignment, one pass per node. ----
  // Receive side: chunks inbound to node n, descending by size, local ranks
  // 0, 1, 2, ... cyclically.  Send side: chunks outbound from node n,
  // descending by size, local ranks PPN-1, PPN-2, ... cyclically.
  auto order_desc = [](std::vector<SplitChunk*>& v) {
    std::stable_sort(v.begin(), v.end(),
                     [](const SplitChunk* a, const SplitChunk* b) {
                       if (a->bytes != b->bytes) return a->bytes > b->bytes;
                       if (a->src_node != b->src_node)
                         return a->src_node < b->src_node;
                       return a->dst_node < b->dst_node;
                     });
  };

  std::map<int, std::vector<SplitChunk*>> inbound;
  std::map<int, std::vector<SplitChunk*>> outbound;
  for (SplitChunk& c : setup.chunks) {
    inbound[c.dst_node].push_back(&c);
    outbound[c.src_node].push_back(&c);
  }

  for (auto& [node, list] : inbound) {
    order_desc(list);
    const std::vector<int> ranks = topo.ranks_on_node(node);
    for (std::size_t i = 0; i < list.size(); ++i) {
      list[i]->recv_rank = ranks[i % static_cast<std::size_t>(ppn)];
    }
  }
  for (auto& [node, list] : outbound) {
    order_desc(list);
    const std::vector<int> ranks = topo.ranks_on_node(node);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::size_t local =
          static_cast<std::size_t>(ppn) - 1 - (i % static_cast<std::size_t>(ppn));
      list[i]->send_rank = ranks[local];
    }
  }

  return setup;
}

}  // namespace hetcomm::core
