#pragma once
// Setup for split node-aware communication (paper Algorithm 1).
//
// Inter-node traffic is conglomerated per (source node, destination node)
// pair, then split into chunks no larger than an effective message cap and
// assigned to on-node sender/receiver processes so that every process stays
// active:
//   * If the largest per-node receive volume is below the user cap, each
//     node pair exchanges a single conglomerated message (lines 12-13).
//   * Otherwise the cap is raised to ceil(total inter-node receive volume /
//     PPN) when that is larger, so at most PPN chunks arrive per node
//     (lines 14-17).
//   * Receive chunks are assigned in descending size order starting at
//     local rank 0; send chunks in descending order starting at local rank
//     PPN-1 (line 18).

#include <cstdint>
#include <map>
#include <vector>

#include "core/comm_pattern.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

/// A contiguous byte range of one GPU-to-GPU flow carried inside a chunk.
/// `bytes` is the share of the deduplicated (wire) volume carried across
/// the network; `payload_bytes` is the share of the full payload the
/// destination GPU must receive after on-node redistribution (equal when
/// the pattern has no duplicate-data annotations).
struct FlowSlice {
  int src_gpu = -1;
  int dst_gpu = -1;
  std::int64_t bytes = 0;
  std::int64_t payload_bytes = 0;
};

/// One inter-node message of the split scheme.
struct SplitChunk {
  int src_node = -1;
  int dst_node = -1;
  std::int64_t bytes = 0;  ///< wire bytes crossing the network
  std::vector<FlowSlice> slices;
  int send_rank = -1;  ///< world host rank injecting this chunk
  int recv_rank = -1;  ///< world host rank receiving this chunk
};

/// Per-receiving-node parameters of Table 1.
struct SplitNodeInfo {
  std::int64_t total_in_recv_vol = 0;  ///< total_IN_recv_vol
  std::int64_t max_in_recv_size = 0;   ///< max_IN_recv_size
  int num_in_nodes = 0;                ///< num_IN_nodes
  std::int64_t effective_cap = 0;      ///< cap actually used for splitting
};

struct SplitSetup {
  std::vector<SplitChunk> chunks;
  std::map<int, SplitNodeInfo> node_info;  ///< keyed by receiving node

  /// Chunks received by / sent from one node, in assignment order.
  [[nodiscard]] std::vector<const SplitChunk*> recv_chunks(int node) const;
  [[nodiscard]] std::vector<const SplitChunk*> send_chunks(int node) const;
};

/// Run Algorithm 1 on the inter-node part of `pattern`.
/// `message_cap` <= 0 is invalid (callers resolve the machine default
/// first).
[[nodiscard]] SplitSetup split_setup(const CommPattern& pattern,
                                     const Topology& topo,
                                     std::int64_t message_cap);

}  // namespace hetcomm::core
