#include "core/strategies/common.hpp"

namespace hetcomm::core::detail {

NodeTraffic internode_traffic(const CommPattern& pattern,
                              const Topology& topo) {
  NodeTraffic traffic;
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(src).node;
    // Collect this GPU's flows grouped by destination node.
    std::map<int, std::vector<Flow>> flows_by_dst_node;
    for (const GpuMessage& m : pattern.sends_from(src)) {
      const int dst_node = topo.gpu_location(m.dst_gpu).node;
      if (dst_node == src_node) continue;
      flows_by_dst_node[dst_node].push_back({src, m.dst_gpu, m.bytes, m.bytes});
    }
    // Spread the deduplicated per-node volume proportionally over the flows
    // toward that node, then append to the global map.
    for (auto& [dst_node, flows] : flows_by_dst_node) {
      const std::int64_t dedup = pattern.node_dedup_bytes(src, dst_node);
      if (dedup >= 0) {
        std::int64_t payload = 0;
        for (const Flow& f : flows) payload += f.bytes;
        std::int64_t assigned = 0;
        for (std::size_t i = 0; i < flows.size(); ++i) {
          if (i + 1 == flows.size()) {
            flows[i].wire_bytes = dedup - assigned;
          } else {
            flows[i].wire_bytes =
                payload > 0 ? dedup * flows[i].bytes / payload : 0;
          }
          assigned += flows[i].wire_bytes;
        }
      }
      auto& vec = traffic.flows[{src_node, dst_node}];
      vec.insert(vec.end(), flows.begin(), flows.end());
    }
  }
  return traffic;
}

int send_leader(const Topology& topo, int src_node, int dst_node) {
  const int local_gpu = dst_node % topo.gpn();
  return topo.owner_rank_of_gpu(topo.gpus_on_node(src_node)[local_gpu]);
}

int recv_leader(const Topology& topo, int dst_node, int src_node) {
  const int local_gpu = src_node % topo.gpn();
  return topo.owner_rank_of_gpu(topo.gpus_on_node(dst_node)[local_gpu]);
}

int paired_rank(const Topology& topo, int src_gpu, int dst_node) {
  const int local_gpu = topo.gpu_location(src_gpu).local_index;
  return topo.owner_rank_of_gpu(topo.gpus_on_node(dst_node)[local_gpu]);
}

void append_local_phase(CommPlan& plan, const CommPattern& pattern,
                        const Topology& topo, MemSpace space) {
  PlanPhase phase;
  phase.label = "local";
  int tag = kTagLocal;
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(src).node;
    for (const GpuMessage& m : pattern.sends_from(src)) {
      if (topo.gpu_location(m.dst_gpu).node != src_node) continue;
      phase.ops.push_back(PlanOp::message(topo.owner_rank_of_gpu(src),
                                          topo.owner_rank_of_gpu(m.dst_gpu),
                                          m.bytes, tag++, space));
    }
  }
  if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
}

std::int64_t dedup_send_bytes(const CommPattern& pattern,
                              const Topology& topo, int gpu) {
  const int src_node = topo.gpu_location(gpu).node;
  std::map<int, std::int64_t> payload_by_node;
  for (const GpuMessage& m : pattern.sends_from(gpu)) {
    const int dst_node = topo.gpu_location(m.dst_gpu).node;
    if (dst_node == src_node) continue;
    payload_by_node[dst_node] += m.bytes;
  }
  std::int64_t wire = 0;
  for (const auto& [dst_node, payload] : payload_by_node) {
    const std::int64_t dedup = pattern.node_dedup_bytes(gpu, dst_node);
    wire += dedup >= 0 ? dedup : payload;
  }
  return wire;
}

void append_dedup_d2h_copies(CommPlan& plan, const CommPattern& pattern,
                             const Topology& topo, const char* label) {
  PlanPhase phase;
  phase.label = label;
  for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
    const int node = topo.gpu_location(gpu).node;
    std::int64_t intra = 0;
    for (const GpuMessage& m : pattern.sends_from(gpu)) {
      if (topo.gpu_location(m.dst_gpu).node == node) intra += m.bytes;
    }
    const std::int64_t bytes = intra + dedup_send_bytes(pattern, topo, gpu);
    if (bytes == 0) continue;
    phase.ops.push_back(
        PlanOp::copy(topo.owner_rank_of_gpu(gpu), gpu, CopyDir::DeviceToHost,
                     bytes));
  }
  if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
}

void append_owner_copies(CommPlan& plan, const CommPattern& pattern,
                         const Topology& topo, CopyDir dir,
                         const char* label) {
  PlanPhase phase;
  phase.label = label;
  for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
    const std::int64_t bytes = dir == CopyDir::DeviceToHost
                                   ? pattern.send_bytes(gpu)
                                   : pattern.recv_bytes(gpu);
    if (bytes == 0) continue;
    phase.ops.push_back(
        PlanOp::copy(topo.owner_rank_of_gpu(gpu), gpu, dir, bytes));
  }
  if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
}

}  // namespace hetcomm::core::detail
