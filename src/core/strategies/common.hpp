#pragma once
// Internal helpers shared by the strategy plan builders.

#include <cstdint>
#include <map>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/plan.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core::detail {

// Tag bases; each phase allocates tags from its own range so FIFO matching
// within a phase stays unambiguous even for repeated rank pairs.
inline constexpr int kTagLocal = 1'000'000;
inline constexpr int kTagGather = 2'000'000;
inline constexpr int kTagGlobal = 3'000'000;
inline constexpr int kTagRedist = 4'000'000;
inline constexpr int kTagScatter = 5'000'000;
inline constexpr int kTagStandard = 6'000'000;

/// One GPU-to-GPU flow crossing a given node pair.
///
/// `bytes` is the payload the destination GPU must end up with; `wire_bytes`
/// is this flow's share of the *deduplicated* volume that actually crosses
/// the network under a node-aware strategy (<= bytes; equal when the pattern
/// carries no dedup annotations).  Standard communication always sends the
/// full payload per destination GPU -- that is its data redundancy.
struct Flow {
  int src_gpu = -1;
  int dst_gpu = -1;
  std::int64_t bytes = 0;
  std::int64_t wire_bytes = 0;
};

/// All inter-node traffic grouped by (src_node, dst_node), flows in
/// deterministic (src_gpu, dst_gpu) order.
struct NodeTraffic {
  std::map<std::pair<int, int>, std::vector<Flow>> flows;

  [[nodiscard]] std::int64_t pair_bytes(int src_node, int dst_node) const {
    const auto it = flows.find({src_node, dst_node});
    if (it == flows.end()) return 0;
    std::int64_t sum = 0;
    for (const Flow& f : it->second) sum += f.bytes;
    return sum;
  }

  [[nodiscard]] std::int64_t pair_wire_bytes(int src_node, int dst_node) const {
    const auto it = flows.find({src_node, dst_node});
    if (it == flows.end()) return 0;
    std::int64_t sum = 0;
    for (const Flow& f : it->second) sum += f.wire_bytes;
    return sum;
  }
};

[[nodiscard]] NodeTraffic internode_traffic(const CommPattern& pattern,
                                            const Topology& topo);

/// Sending leader on `src_node` for traffic toward `dst_node`: the host
/// rank owning local GPU (dst_node mod gpus-per-node).  Distinct
/// destination nodes rotate over the node's GPU owners so every process
/// stays active (paper §2.3.1).
[[nodiscard]] int send_leader(const Topology& topo, int src_node,
                              int dst_node);

/// Receiving leader on `dst_node` for traffic from `src_node`.
[[nodiscard]] int recv_leader(const Topology& topo, int dst_node,
                              int src_node);

/// The 2-step pair of `src_gpu` on `dst_node`: owner of the GPU with the
/// same local index.
[[nodiscard]] int paired_rank(const Topology& topo, int src_gpu,
                              int dst_node);

/// Append the direct on-node exchanges (owner-to-owner) for all intra-node
/// flows of `pattern`; used identically by every strategy.
void append_local_phase(CommPlan& plan, const CommPattern& pattern,
                        const Topology& topo, MemSpace space);

/// Append per-GPU-owner D2H (of total sent bytes) or H2D (of total received
/// bytes) staging copies.
void append_owner_copies(CommPlan& plan, const CommPattern& pattern,
                         const Topology& topo, CopyDir dir,
                         const char* label);

/// D2H staging copies for node-aware staged strategies: each owner copies
/// its intra-node payload plus its *deduplicated* inter-node volume (a
/// node-aware send buffer holds each datum once per destination node).
void append_dedup_d2h_copies(CommPlan& plan, const CommPattern& pattern,
                             const Topology& topo, const char* label);

/// Deduplicated inter-node send volume of one GPU (sum over destination
/// nodes of the dedup annotation, falling back to the payload sum).
[[nodiscard]] std::int64_t dedup_send_bytes(const CommPattern& pattern,
                                            const Topology& topo, int gpu);

}  // namespace hetcomm::core::detail
