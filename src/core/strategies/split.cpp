// Split node-aware communication (paper §2.3.3, Algorithms 1 and 2).
//
// Inter-node volumes are conglomerated per node pair, cut into chunks no
// larger than the (effective) message cap, and spread across on-node
// processes before injection, so every CPU core participates in network
// communication.  Two staging variants:
//
//   Split+MD  -- each GPU's data is copied to its single host process in one
//                cudaMemcpyAsync, which then distributes chunk payloads to
//                the assigned sender ranks with extra on-node messages.
//   Split+DD  -- `ppg` host processes per GPU hold duplicate device pointers
//                (CUDA MPS style): each chunk's contribution is copied
//                directly by one of the holders with the (worse) shared-copy
//                parameters, one copy *per chunk contribution*.  Fewer
//                on-node bytes concentrate on a single process, but every
//                copy pays the duplicate-device-pointer latency (~1.5e-5 s)
//                where Split+MD pays an on-socket message latency (~4e-7 s).
//                This is exactly the trade-off the paper identifies in §5.1.
//
// Device-aware transport does not apply to split strategies (Table 5).

#include <map>
#include <stdexcept>

#include "core/split_setup.hpp"
#include "core/strategies/common.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core::detail {

namespace {

/// Holder ranks for a GPU under Split+DD: `ppg` cores on the GPU's socket,
/// disjoint between the socket's GPUs when capacity allows.
std::vector<int> holder_ranks(const Topology& topo, int gpu, int ppg) {
  const GpuLocation loc = topo.gpu_location(gpu);
  const int pps = topo.pps();
  std::vector<int> holders;
  holders.reserve(static_cast<std::size_t>(ppg));
  for (int i = 0; i < ppg; ++i) {
    const int core = (loc.index_on_socket * ppg + i) % pps;
    holders.push_back(topo.rank_of(loc.node, loc.socket, core));
  }
  return holders;
}

/// Per-GPU bytes destined off-node (send) and arriving from off-node (recv).
struct InterVolumes {
  std::map<int, std::int64_t> send;  // gpu -> bytes
  std::map<int, std::int64_t> recv;
};

InterVolumes inter_volumes(const CommPattern& pattern, const Topology& topo) {
  InterVolumes v;
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    const int src_node = topo.gpu_location(src).node;
    std::int64_t inter_payload = 0;
    for (const GpuMessage& m : pattern.sends_from(src)) {
      if (topo.gpu_location(m.dst_gpu).node == src_node) continue;
      v.recv[m.dst_gpu] += m.bytes;
      inter_payload += m.bytes;
    }
    // Staged send volume is the deduplicated one: the send buffer holds
    // each datum once per destination node.
    if (inter_payload > 0) v.send[src] = dedup_send_bytes(pattern, topo, src);
  }
  return v;
}

/// Per-chunk, per-GPU aggregation of a chunk's slices.  Source-side
/// aggregation uses wire (deduplicated) bytes -- what is staged, scattered
/// and injected; destination-side aggregation uses payload bytes -- what the
/// receiving GPUs must end up with after redistribution.
std::map<int, std::int64_t> chunk_bytes_by(const SplitChunk& chunk,
                                           bool by_src) {
  std::map<int, std::int64_t> out;
  for (const FlowSlice& s : chunk.slices) {
    out[by_src ? s.src_gpu : s.dst_gpu] += by_src ? s.bytes : s.payload_bytes;
  }
  return out;
}

/// DD holder assignment: (chunk index, gpu) -> holder rank, round-robin per
/// GPU so load spreads over the holders.  Computed once and reused by the
/// copy and message phases so data provenance is consistent.
struct HolderAssignment {
  std::map<std::pair<std::size_t, int>, int> send_holder;  // (chunk, src_gpu)
  std::map<std::pair<std::size_t, int>, int> recv_holder;  // (chunk, dst_gpu)
};

HolderAssignment assign_holders(const SplitSetup& setup, const Topology& topo,
                                int ppg) {
  HolderAssignment a;
  std::map<int, int> send_cursor;
  std::map<int, int> recv_cursor;
  for (std::size_t ci = 0; ci < setup.chunks.size(); ++ci) {
    const SplitChunk& chunk = setup.chunks[ci];
    for (const auto& [gpu, bytes] : chunk_bytes_by(chunk, /*by_src=*/true)) {
      (void)bytes;
      const std::vector<int> holders = holder_ranks(topo, gpu, ppg);
      a.send_holder[{ci, gpu}] =
          holders[static_cast<std::size_t>(send_cursor[gpu]++ % ppg)];
    }
    for (const auto& [gpu, bytes] : chunk_bytes_by(chunk, /*by_src=*/false)) {
      (void)bytes;
      const std::vector<int> holders = holder_ranks(topo, gpu, ppg);
      a.recv_holder[{ci, gpu}] =
          holders[static_cast<std::size_t>(recv_cursor[gpu]++ % ppg)];
    }
  }
  return a;
}

}  // namespace

CommPlan build_split(const CommPattern& pattern, const Topology& topo,
                     const ParamSet& params, const StrategyConfig& config) {
  if (config.transport != MemSpace::Host) {
    throw std::invalid_argument(
        "split strategies are staged-through-host only (paper Table 5)");
  }
  const bool dd = config.kind == StrategyKind::SplitDD;
  const int ppg = dd ? config.ppg : 1;
  if (dd && (ppg < 1 || ppg > topo.pps())) {
    throw std::invalid_argument("split+DD: ppg out of range");
  }

  const std::int64_t cap =
      config.message_cap > 0 ? config.message_cap : params.thresholds.eager_max;

  CommPlan plan;
  plan.strategy_name = config.name();

  const SplitSetup setup = split_setup(pattern, topo, cap);
  const InterVolumes vols = inter_volumes(pattern, topo);
  const HolderAssignment holders =
      dd ? assign_holders(setup, topo, ppg) : HolderAssignment{};

  // ---- Staging copies, device to host. ----
  //
  // Intra-node-destined data always goes through the owner in one copy.
  // Inter-node data: MD copies it in one shot per GPU; DD performs one
  // shared-parameter copy per (chunk, source GPU) contribution by the
  // assigned holder.
  {
    PlanPhase phase;
    phase.label = "d2h";
    for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
      const int node = topo.gpu_location(gpu).node;
      std::int64_t intra = 0;
      for (const GpuMessage& m : pattern.sends_from(gpu)) {
        if (topo.gpu_location(m.dst_gpu).node == node) intra += m.bytes;
      }
      const auto it = vols.send.find(gpu);
      const std::int64_t inter = it == vols.send.end() ? 0 : it->second;
      const int owner = topo.owner_rank_of_gpu(gpu);
      if (intra > 0) {
        phase.ops.push_back(
            PlanOp::copy(owner, gpu, CopyDir::DeviceToHost, intra));
      }
      if (inter > 0 && !dd) {
        phase.ops.push_back(
            PlanOp::copy(owner, gpu, CopyDir::DeviceToHost, inter));
      }
    }
    if (dd) {
      for (std::size_t ci = 0; ci < setup.chunks.size(); ++ci) {
        for (const auto& [src_gpu, bytes] :
             chunk_bytes_by(setup.chunks[ci], true)) {
          phase.ops.push_back(
              PlanOp::copy(holders.send_holder.at({ci, src_gpu}), src_gpu,
                           CopyDir::DeviceToHost, bytes, ppg));
        }
      }
    }
    if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
  }

  // ---- Algorithm 2 line 1: local_comm, on-node exchanges. ----
  append_local_phase(plan, pattern, topo, MemSpace::Host);

  // ---- Algorithm 2 line 2: local_Scomm, distribute chunk payloads to the
  //      assigned sender ranks. ----
  {
    PlanPhase phase;
    phase.label = "scatter";
    int tag = kTagScatter;
    for (std::size_t ci = 0; ci < setup.chunks.size(); ++ci) {
      const SplitChunk& chunk = setup.chunks[ci];
      for (const auto& [src_gpu, bytes] : chunk_bytes_by(chunk, true)) {
        const int source_rank = dd ? holders.send_holder.at({ci, src_gpu})
                                   : topo.owner_rank_of_gpu(src_gpu);
        if (source_rank == chunk.send_rank) continue;
        phase.ops.push_back(PlanOp::message(source_rank, chunk.send_rank,
                                            bytes, tag++, MemSpace::Host));
      }
    }
    if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
  }

  // ---- Algorithm 2 line 3: global_comm, inter-node chunk exchange. ----
  {
    PlanPhase phase;
    phase.label = "global";
    int tag = kTagGlobal;
    for (const SplitChunk& chunk : setup.chunks) {
      phase.ops.push_back(PlanOp::message(chunk.send_rank, chunk.recv_rank,
                                          chunk.bytes, tag++, MemSpace::Host));
    }
    if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
  }

  // ---- Algorithm 2 line 4: local_Rcomm, redistribute received chunks. ----
  {
    PlanPhase phase;
    phase.label = "redistribute";
    int tag = kTagRedist;
    for (std::size_t ci = 0; ci < setup.chunks.size(); ++ci) {
      const SplitChunk& chunk = setup.chunks[ci];
      for (const auto& [dst_gpu, bytes] : chunk_bytes_by(chunk, false)) {
        const int target_rank = dd ? holders.recv_holder.at({ci, dst_gpu})
                                   : topo.owner_rank_of_gpu(dst_gpu);
        if (target_rank == chunk.recv_rank) continue;
        phase.ops.push_back(PlanOp::message(chunk.recv_rank, target_rank,
                                            bytes, tag++, MemSpace::Host));
      }
    }
    if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
  }

  // ---- Staging copies, host to device (mirror of the D2H phase). ----
  {
    PlanPhase phase;
    phase.label = "h2d";
    for (int gpu = 0; gpu < pattern.num_gpus(); ++gpu) {
      const std::int64_t total = pattern.recv_bytes(gpu);
      const auto it = vols.recv.find(gpu);
      const std::int64_t inter = it == vols.recv.end() ? 0 : it->second;
      const std::int64_t intra = total - inter;
      const int owner = topo.owner_rank_of_gpu(gpu);
      if (intra > 0) {
        phase.ops.push_back(
            PlanOp::copy(owner, gpu, CopyDir::HostToDevice, intra));
      }
      if (inter > 0 && !dd) {
        phase.ops.push_back(
            PlanOp::copy(owner, gpu, CopyDir::HostToDevice, inter));
      }
    }
    if (dd) {
      for (std::size_t ci = 0; ci < setup.chunks.size(); ++ci) {
        for (const auto& [dst_gpu, bytes] :
             chunk_bytes_by(setup.chunks[ci], false)) {
          phase.ops.push_back(
              PlanOp::copy(holders.recv_holder.at({ci, dst_gpu}), dst_gpu,
                           CopyDir::HostToDevice, bytes, ppg));
        }
      }
    }
    if (!phase.ops.empty()) plan.phases.push_back(std::move(phase));
  }

  return plan;
}

}  // namespace hetcomm::core::detail
