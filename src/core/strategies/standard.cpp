// Standard communication (paper §2.3, Figure 2.2): every GPU sends one
// message per destination GPU, with no node-aware aggregation.  Both
// redundancies (message and data) are left in place.

#include "core/strategies/common.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core::detail {

CommPlan build_standard(const CommPattern& pattern, const Topology& topo,
                        const ParamSet& params, const StrategyConfig& config) {
  (void)params;
  CommPlan plan;
  plan.strategy_name = config.name();

  const bool staged = config.transport == MemSpace::Host;
  if (staged) {
    append_owner_copies(plan, pattern, topo, CopyDir::DeviceToHost, "d2h");
  }

  PlanPhase msgs;
  msgs.label = "exchange";
  int tag = kTagStandard;
  for (int src = 0; src < pattern.num_gpus(); ++src) {
    for (const GpuMessage& m : pattern.sends_from(src)) {
      // Standard communication keeps every logical message distinct: no
      // conglomeration, so a flow of `count` messages crosses `count` times.
      const std::int64_t each = m.bytes / m.count;
      std::int64_t left = m.bytes;
      for (int i = 0; i < m.count; ++i) {
        const std::int64_t b = i + 1 == m.count ? left : each;
        left -= b;
        msgs.ops.push_back(PlanOp::message(topo.owner_rank_of_gpu(src),
                                           topo.owner_rank_of_gpu(m.dst_gpu),
                                           b, tag++, config.transport));
      }
    }
  }
  if (!msgs.ops.empty()) plan.phases.push_back(std::move(msgs));

  if (staged) {
    append_owner_copies(plan, pattern, topo, CopyDir::HostToDevice, "h2d");
  }
  return plan;
}

}  // namespace hetcomm::core::detail
