// 3-Step node-aware communication (paper §2.3.1, Figure 2.3).
//
// For every node pair (k, l) with traffic:
//   Step 1: every GPU owner on k sends its l-bound data to the sending
//           leader for l (all of node k's l-bound data lands in one buffer);
//   Step 2: the leader sends the single conglomerated buffer to the
//           receiving leader on l;
//   Step 3: the receiving leader redistributes to the destination GPU
//           owners on l.
// Both standard-communication redundancies are eliminated: one message per
// node pair crosses the network and each datum crosses at most once.

#include <map>

#include "core/strategies/common.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core::detail {

CommPlan build_three_step(const CommPattern& pattern, const Topology& topo,
                          const ParamSet& params,
                          const StrategyConfig& config) {
  (void)params;
  CommPlan plan;
  plan.strategy_name = config.name();

  const bool staged = config.transport == MemSpace::Host;
  const MemSpace space = config.transport;
  const NodeTraffic traffic = internode_traffic(pattern, topo);

  if (staged) {
    append_dedup_d2h_copies(plan, pattern, topo, "d2h");
  }
  append_local_phase(plan, pattern, topo, space);

  // Step 1: gather each node's l-bound data on the sending leader.
  PlanPhase gather;
  gather.label = "gather";
  int tag = kTagGather;
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    const int leader = send_leader(topo, src_node, dst_node);
    // Only the deduplicated (wire) volume is gathered and injected.
    std::map<int, std::int64_t> per_src_gpu;  // src_gpu -> wire bytes to l
    for (const Flow& f : flows) per_src_gpu[f.src_gpu] += f.wire_bytes;
    for (const auto& [src_gpu, bytes] : per_src_gpu) {
      const int owner = topo.owner_rank_of_gpu(src_gpu);
      if (owner == leader || bytes == 0) continue;  // already resident
      gather.ops.push_back(PlanOp::message(owner, leader, bytes, tag++, space));
    }
    // The leader packs the conglomerated buffer before injection.
    gather.ops.push_back(
        PlanOp::pack(leader, traffic.pair_wire_bytes(src_node, dst_node)));
  }
  if (!gather.ops.empty()) plan.phases.push_back(std::move(gather));

  // Step 2: one inter-node message per communicating node pair.
  PlanPhase global;
  global.label = "global";
  tag = kTagGlobal;
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    (void)flows;
    global.ops.push_back(PlanOp::message(
        send_leader(topo, src_node, dst_node),
        recv_leader(topo, dst_node, src_node),
        traffic.pair_wire_bytes(src_node, dst_node), tag++, space));
  }
  if (!global.ops.empty()) plan.phases.push_back(std::move(global));

  // Step 3: redistribute on the destination node.
  PlanPhase redist;
  redist.label = "redistribute";
  tag = kTagRedist;
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    const int leader = recv_leader(topo, dst_node, src_node);
    std::map<int, std::int64_t> per_dst_gpu;
    for (const Flow& f : flows) per_dst_gpu[f.dst_gpu] += f.bytes;
    for (const auto& [dst_gpu, bytes] : per_dst_gpu) {
      const int owner = topo.owner_rank_of_gpu(dst_gpu);
      if (owner == leader) continue;
      redist.ops.push_back(PlanOp::message(leader, owner, bytes, tag++, space));
    }
  }
  if (!redist.ops.empty()) plan.phases.push_back(std::move(redist));

  if (staged) {
    append_owner_copies(plan, pattern, topo, CopyDir::HostToDevice, "h2d");
  }
  return plan;
}

}  // namespace hetcomm::core::detail
