// 2-Step node-aware communication (paper §2.3.2, Figure 2.4).
//
// Each process conglomerates its own data per destination *node* and sends
// it directly to its paired process on that node (same local GPU index);
// the paired process then redistributes on-node.  The data redundancy of
// standard communication is removed but multiple messages may still cross
// the network per node pair (one per active source GPU).

#include <map>

#include "core/strategies/common.hpp"
#include "core/strategy.hpp"

namespace hetcomm::core::detail {

CommPlan build_two_step(const CommPattern& pattern, const Topology& topo,
                        const ParamSet& params, const StrategyConfig& config) {
  (void)params;
  CommPlan plan;
  plan.strategy_name = config.name();

  const bool staged = config.transport == MemSpace::Host;
  const MemSpace space = config.transport;
  const NodeTraffic traffic = internode_traffic(pattern, topo);

  if (staged) {
    append_dedup_d2h_copies(plan, pattern, topo, "d2h");
  }
  append_local_phase(plan, pattern, topo, space);

  // Step 1: each source GPU sends one node-conglomerated message per
  // destination node, to its paired process there.
  PlanPhase global;
  global.label = "pairwise";
  int tag = kTagGlobal;
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    (void)src_node;
    // Each process injects only its deduplicated (wire) volume.
    std::map<int, std::int64_t> per_src_gpu;
    for (const Flow& f : flows) per_src_gpu[f.src_gpu] += f.wire_bytes;
    for (const auto& [src_gpu, bytes] : per_src_gpu) {
      if (bytes == 0) continue;
      global.ops.push_back(
          PlanOp::message(topo.owner_rank_of_gpu(src_gpu),
                          paired_rank(topo, src_gpu, dst_node), bytes, tag++,
                          space));
    }
  }
  if (!global.ops.empty()) plan.phases.push_back(std::move(global));

  // Step 2: the paired receivers redistribute on-node.
  PlanPhase redist;
  redist.label = "redistribute";
  tag = kTagRedist;
  for (const auto& [nodes, flows] : traffic.flows) {
    const auto [src_node, dst_node] = nodes;
    (void)src_node;
    // Receiver of src_gpu's bundle forwards each dst_gpu portion.
    std::map<std::pair<int, int>, std::int64_t> per_pair;  // (src,dst gpu)
    for (const Flow& f : flows) per_pair[{f.src_gpu, f.dst_gpu}] += f.bytes;
    for (const auto& [gpus, bytes] : per_pair) {
      const auto [src_gpu, dst_gpu] = gpus;
      const int receiver = paired_rank(topo, src_gpu, dst_node);
      const int owner = topo.owner_rank_of_gpu(dst_gpu);
      if (receiver == owner) continue;
      redist.ops.push_back(PlanOp::message(receiver, owner, bytes, tag++,
                                           space));
    }
  }
  if (!redist.ops.empty()) plan.phases.push_back(std::move(redist));

  if (staged) {
    append_owner_copies(plan, pattern, topo, CopyDir::HostToDevice, "h2d");
  }
  return plan;
}

}  // namespace hetcomm::core::detail
