#include "core/strategy.hpp"

#include <stdexcept>

namespace hetcomm::core {

std::string StrategyConfig::name() const {
  std::string n = to_string(kind);
  if (kind == StrategyKind::SplitMD || kind == StrategyKind::SplitDD) {
    return n;  // split strategies are implicitly staged-through-host
  }
  n += transport == MemSpace::Host ? " (staged)" : " (device-aware)";
  return n;
}

void StrategyConfig::validate() const {
  const bool is_split =
      kind == StrategyKind::SplitMD || kind == StrategyKind::SplitDD;
  if (is_split && transport == MemSpace::Device) {
    throw std::invalid_argument(
        "StrategyConfig: device-aware transport is undefined for split "
        "strategies (paper Table 5)");
  }
  if (message_cap < 0) {
    throw std::invalid_argument("StrategyConfig: negative message_cap");
  }
  if (ppg < 1) {
    throw std::invalid_argument("StrategyConfig: ppg must be >= 1");
  }
}

CommPlan build_plan(const CommPattern& pattern, const Topology& topo,
                    const ParamSet& params, const StrategyConfig& config) {
  config.validate();
  if (pattern.num_gpus() != topo.num_gpus()) {
    throw std::invalid_argument("build_plan: pattern/topology GPU mismatch");
  }
  switch (config.kind) {
    case StrategyKind::Standard:
      return detail::build_standard(pattern, topo, params, config);
    case StrategyKind::ThreeStep:
      return detail::build_three_step(pattern, topo, params, config);
    case StrategyKind::TwoStep:
      return detail::build_two_step(pattern, topo, params, config);
    case StrategyKind::SplitMD:
    case StrategyKind::SplitDD:
      return detail::build_split(pattern, topo, params, config);
  }
  throw std::logic_error("build_plan: unknown strategy kind");
}

StrategyConfig parse_strategy(const std::string& name) {
  for (const StrategyConfig& cfg : table5_strategies()) {
    if (cfg.name() == name) return cfg;
  }
  // Bare kind names default to staged-through-host.
  for (const StrategyKind kind :
       {StrategyKind::Standard, StrategyKind::ThreeStep, StrategyKind::TwoStep,
        StrategyKind::SplitMD, StrategyKind::SplitDD}) {
    if (name == to_string(kind)) return {kind, MemSpace::Host};
  }
  throw std::invalid_argument("parse_strategy: unknown strategy '" + name +
                              "'");
}

std::vector<StrategyConfig> table5_strategies() {
  std::vector<StrategyConfig> out;
  for (const StrategyKind kind :
       {StrategyKind::Standard, StrategyKind::ThreeStep,
        StrategyKind::TwoStep}) {
    out.push_back({kind, MemSpace::Host});
    out.push_back({kind, MemSpace::Device});
  }
  out.push_back({StrategyKind::SplitMD, MemSpace::Host});
  out.push_back({StrategyKind::SplitDD, MemSpace::Host});
  return out;
}

}  // namespace hetcomm::core
