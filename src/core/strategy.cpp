#include "core/strategy.hpp"

#include <stdexcept>

namespace hetcomm::core {

std::string StrategyConfig::name() const {
  std::string n = to_string(kind);
  const bool split_kind =
      kind == StrategyKind::SplitMD || kind == StrategyKind::SplitDD;
  // Split strategies are implicitly staged-through-host (Table 5).
  std::string qual;
  if (!split_kind) {
    qual = transport == MemSpace::Host ? "staged" : "device-aware";
  }
  if (split != SplitMode::None) {
    if (!qual.empty()) qual += ", ";
    qual += to_string(split);
  }
  if (!qual.empty()) n += " (" + qual + ")";
  return n;
}

void StrategyConfig::validate() const {
  const bool is_split =
      kind == StrategyKind::SplitMD || kind == StrategyKind::SplitDD;
  if (is_split && transport == MemSpace::Device) {
    throw std::invalid_argument(
        "StrategyConfig: device-aware transport is undefined for split "
        "strategies (paper Table 5)");
  }
  if (split == SplitMode::ChunkedPipeline && transport == MemSpace::Device) {
    throw std::invalid_argument(
        "StrategyConfig: chunked-pipeline lowering requires staged "
        "transport (device-aware sends have no staging copy to pipeline)");
  }
  if (message_cap < 0) {
    throw std::invalid_argument("StrategyConfig: negative message_cap");
  }
  if (ppg < 1) {
    throw std::invalid_argument("StrategyConfig: ppg must be >= 1");
  }
}

CommPlan build_plan(const CommPattern& pattern, const Topology& topo,
                    const ParamSet& params, const StrategyConfig& config) {
  config.validate();
  if (pattern.num_gpus() != topo.num_gpus()) {
    throw std::invalid_argument("build_plan: pattern/topology GPU mismatch");
  }
  CommPlan plan;
  switch (config.kind) {
    case StrategyKind::Standard:
      plan = detail::build_standard(pattern, topo, params, config);
      break;
    case StrategyKind::ThreeStep:
      plan = detail::build_three_step(pattern, topo, params, config);
      break;
    case StrategyKind::TwoStep:
      plan = detail::build_two_step(pattern, topo, params, config);
      break;
    case StrategyKind::SplitMD:
    case StrategyKind::SplitDD:
      plan = detail::build_split(pattern, topo, params, config);
      break;
    default:
      throw std::logic_error("build_plan: unknown strategy kind");
  }
  if (config.split != SplitMode::None) {
    plan = apply_split(plan, topo, params, config.split);
  }
  return plan;
}

StrategyConfig parse_strategy(const std::string& name) {
  for (const StrategyKind kind :
       {StrategyKind::Standard, StrategyKind::ThreeStep, StrategyKind::TwoStep,
        StrategyKind::SplitMD, StrategyKind::SplitDD}) {
    const bool split_kind =
        kind == StrategyKind::SplitMD || kind == StrategyKind::SplitDD;
    for (const MemSpace transport : {MemSpace::Host, MemSpace::Device}) {
      if (split_kind && transport == MemSpace::Device) continue;
      for (const SplitMode split :
           {SplitMode::None, SplitMode::Striped, SplitMode::ChunkedPipeline}) {
        if (split == SplitMode::ChunkedPipeline &&
            transport == MemSpace::Device) {
          continue;
        }
        StrategyConfig cfg;
        cfg.kind = kind;
        cfg.transport = transport;
        cfg.split = split;
        if (cfg.name() == name) return cfg;
      }
    }
    // Bare kind names default to staged-through-host, unsplit.
    if (name == to_string(kind)) return {kind, MemSpace::Host};
  }
  throw std::invalid_argument("parse_strategy: unknown strategy '" + name +
                              "'");
}

std::vector<StrategyConfig> table5_strategies() {
  std::vector<StrategyConfig> out;
  for (const StrategyKind kind :
       {StrategyKind::Standard, StrategyKind::ThreeStep,
        StrategyKind::TwoStep}) {
    out.push_back({kind, MemSpace::Host});
    out.push_back({kind, MemSpace::Device});
  }
  out.push_back({StrategyKind::SplitMD, MemSpace::Host});
  out.push_back({StrategyKind::SplitDD, MemSpace::Host});
  return out;
}

std::vector<StrategyConfig> split_variant_strategies() {
  std::vector<StrategyConfig> out;
  const auto add = [&out](StrategyKind kind, MemSpace transport,
                          SplitMode split) {
    StrategyConfig cfg;
    cfg.kind = kind;
    cfg.transport = transport;
    cfg.split = split;
    out.push_back(cfg);
  };
  // Striping feeds on large node-conglomerated rendezvous transfers.
  add(StrategyKind::ThreeStep, MemSpace::Host, SplitMode::Striped);
  add(StrategyKind::ThreeStep, MemSpace::Device, SplitMode::Striped);
  add(StrategyKind::TwoStep, MemSpace::Host, SplitMode::Striped);
  add(StrategyKind::Standard, MemSpace::Device, SplitMode::Striped);
  // Chunked pipelining needs staged per-message D2H copies to carve.
  add(StrategyKind::Standard, MemSpace::Host, SplitMode::ChunkedPipeline);
  add(StrategyKind::TwoStep, MemSpace::Host, SplitMode::ChunkedPipeline);
  return out;
}

std::vector<StrategyConfig> all_strategies() {
  std::vector<StrategyConfig> out = table5_strategies();
  for (const StrategyConfig& cfg : split_variant_strategies()) {
    out.push_back(cfg);
  }
  return out;
}

}  // namespace hetcomm::core
