#pragma once
// Node-aware communication strategies (paper §2.3, Table 5).
//
// Every strategy compiles a CommPattern into a CommPlan.  The staged
// (through-host) flavor moves GPU payloads to host memory first and
// communicates with CPU parameters; the device-aware flavor sends directly
// from device memory with GPU parameters.  Split strategies exist only in
// staged form (paper Table 5).

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/plan.hpp"
#include "core/plan_transform.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::core {

enum class StrategyKind : std::uint8_t {
  Standard,   ///< direct GPU-to-GPU messages (baseline)
  ThreeStep,  ///< gather on-node -> one message per node pair -> redistribute
  TwoStep,    ///< per-process node-conglomerated messages -> redistribute
  SplitMD,    ///< split inter-node volume across on-node processes;
              ///< GPU data staged through a single host process per GPU
  SplitDD,    ///< like SplitMD but duplicate device pointers: several host
              ///< processes copy from each GPU simultaneously
};

[[nodiscard]] constexpr const char* to_string(StrategyKind k) noexcept {
  switch (k) {
    case StrategyKind::Standard: return "standard";
    case StrategyKind::ThreeStep: return "3-step";
    case StrategyKind::TwoStep: return "2-step";
    case StrategyKind::SplitMD: return "split+MD";
    case StrategyKind::SplitDD: return "split+DD";
  }
  return "?";
}

struct StrategyConfig {
  StrategyKind kind = StrategyKind::Standard;
  /// Host = staged-through-host, Device = device-aware (CUDA-aware MPI).
  MemSpace transport = MemSpace::Host;
  /// Maximum inter-node message size for the split strategies; 0 selects
  /// the machine's rendezvous switch point (paper default).
  std::int64_t message_cap = 0;
  /// Host processes per GPU for SplitDD copies (4 on Lassen).
  int ppg = 4;
  /// Message-splitting lowering applied after the base builder (see
  /// plan_transform.hpp).  None reproduces the paper's Table-5 plans;
  /// Striped fans rendezvous-sized transfers across NIC rails;
  /// ChunkedPipeline overlaps staging copies with wire time.
  SplitMode split = SplitMode::None;

  [[nodiscard]] std::string name() const;
  /// Device-aware transport is undefined for the split strategies
  /// (Table 5); a ChunkedPipeline lowering of a device-aware transport
  /// has no staging copy to pipeline; throws std::invalid_argument in
  /// either case.
  void validate() const;
};

/// Compile `pattern` for the given machine.  The returned plan is
/// deterministic: same inputs, same plan.
[[nodiscard]] CommPlan build_plan(const CommPattern& pattern,
                                  const Topology& topo,
                                  const ParamSet& params,
                                  const StrategyConfig& config);

/// The eight modeled strategy configurations of paper Table 5.
[[nodiscard]] std::vector<StrategyConfig> table5_strategies();

/// Message-splitting variants of the Table-5 strategies: striped lowering
/// of the node-conglomerating strategies (which produce the large
/// rendezvous transfers striping feeds on) plus chunked-pipeline lowering
/// of the staged strategies with per-message staging copies.
[[nodiscard]] std::vector<StrategyConfig> split_variant_strategies();

/// Table-5 roster plus the split variants, in ranking order: what the
/// Fig-5.1 comparison, the advisor, `hetcomm serve`, and
/// ranking-stability iterate.
[[nodiscard]] std::vector<StrategyConfig> all_strategies();

/// Parse a strategy name as produced by StrategyConfig::name(), e.g.
/// "standard (staged)", "3-step (device-aware)", "split+MD".  Also accepts
/// bare kind names ("standard", "2-step"), defaulting to staged transport.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] StrategyConfig parse_strategy(const std::string& name);

namespace detail {
// Plan builders, one per strategy family (defined in strategies/*.cpp).
CommPlan build_standard(const CommPattern&, const Topology&, const ParamSet&,
                        const StrategyConfig&);
CommPlan build_three_step(const CommPattern&, const Topology&,
                          const ParamSet&, const StrategyConfig&);
CommPlan build_two_step(const CommPattern&, const Topology&, const ParamSet&,
                        const StrategyConfig&);
CommPlan build_split(const CommPattern&, const Topology&, const ParamSet&,
                     const StrategyConfig&);
}  // namespace detail

}  // namespace hetcomm::core
