#include "fault/fault_json.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace hetcomm::fault {

namespace {

using obs::JsonValue;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Emission.

JsonValue window_json(const FaultWindow& w) {
  JsonValue out = JsonValue::object();
  out.set("begin", w.begin);
  if (w.end != kInf) out.set("end", w.end);
  return out;
}

/// Append "window" only when it constrains anything: an always-active
/// window round-trips as an absent key.
void emit_window(JsonValue& obj, const FaultWindow& w) {
  if (!w.always()) obj.set("window", window_json(w));
}

JsonValue retry_json(const RetryPolicy& r) {
  JsonValue out = JsonValue::object();
  out.set("timeout", r.timeout);
  out.set("backoff", r.backoff);
  out.set("max_delay", r.max_delay);
  out.set("max_attempts", r.max_attempts);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing helpers.  Error strings name the JSON location (rule kind +
// array index) so a failing file is diagnosable without a debugger.

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw std::invalid_argument("fault plan JSON: " + where + ": " + what);
}

const JsonValue& require(const JsonValue& obj, std::string_view key,
                         const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(where, "missing required key \"" + std::string(key) + '"');
  return *v;
}

double number_at(const JsonValue& obj, std::string_view key,
                 const std::string& where, double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail(where, '"' + std::string(key) + "\" must be a number");
  return v->as_double();
}

int int_at(const JsonValue& obj, std::string_view key, const std::string& where,
           int fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind() != JsonValue::Kind::Int) {
    fail(where, '"' + std::string(key) + "\" must be an integer");
  }
  return static_cast<int>(v->as_int());
}

std::string string_at(const JsonValue& obj, std::string_view key,
                      const std::string& where, const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) fail(where, '"' + std::string(key) + "\" must be a string");
  return v->as_string();
}

FaultWindow window_at(const JsonValue& obj, const std::string& where) {
  FaultWindow w;  // defaults to always-active
  const JsonValue* v = obj.find("window");
  if (v == nullptr) return w;
  if (!v->is_object()) fail(where, "\"window\" must be an object");
  const std::string wwhere = where + ".window";
  w.begin = number_at(*v, "begin", wwhere, 0.0);
  w.end = number_at(*v, "end", wwhere, kInf);
  return w;
}

RetryPolicy retry_at(const JsonValue& obj, const std::string& where) {
  RetryPolicy r;  // schema defaults
  const JsonValue* v = obj.find("retry");
  if (v == nullptr) return r;
  if (!v->is_object()) fail(where, "\"retry\" must be an object");
  const std::string rwhere = where + ".retry";
  r.timeout = number_at(*v, "timeout", rwhere, r.timeout);
  r.backoff = number_at(*v, "backoff", rwhere, r.backoff);
  r.max_delay = number_at(*v, "max_delay", rwhere, r.max_delay);
  r.max_attempts = int_at(*v, "max_attempts", rwhere, r.max_attempts);
  return r;
}

/// Visit each element of an optional array-of-objects key.
template <typename Fn>
void each_rule(const JsonValue& doc, std::string_view key, Fn&& fn) {
  const JsonValue* arr = doc.find(key);
  if (arr == nullptr) return;
  if (!arr->is_array()) {
    fail(std::string(key), "must be an array of rule objects");
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const std::string where =
        std::string(key) + '[' + std::to_string(i) + ']';
    const JsonValue& rule = arr->at(i);
    if (!rule.is_object()) fail(where, "rule must be an object");
    fn(rule, where);
  }
}

}  // namespace

JsonValue to_json(const FaultPlan& plan) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kFaultSchema);
  if (!plan.name.empty()) doc.set("name", plan.name);
  doc.set("seed", static_cast<std::int64_t>(plan.seed));

  if (!plan.link_degradations.empty()) {
    JsonValue arr = JsonValue::array();
    for (const LinkDegradation& r : plan.link_degradations) {
      JsonValue rule = JsonValue::object();
      rule.set("path", r.path);
      rule.set("alpha_factor", r.alpha_factor);
      rule.set("beta_factor", r.beta_factor);
      emit_window(rule, r.window);
      arr.push_back(std::move(rule));
    }
    doc.set("link_degradations", std::move(arr));
  }
  if (!plan.nic_degradations.empty()) {
    JsonValue arr = JsonValue::array();
    for (const NicDegradation& r : plan.nic_degradations) {
      JsonValue rule = JsonValue::object();
      rule.set("node", r.node);
      rule.set("lane", r.lane);
      rule.set("alpha_factor", r.alpha_factor);
      rule.set("beta_factor", r.beta_factor);
      emit_window(rule, r.window);
      arr.push_back(std::move(rule));
    }
    doc.set("nic_degradations", std::move(arr));
  }
  if (!plan.nic_outages.empty()) {
    JsonValue arr = JsonValue::array();
    for (const NicOutage& r : plan.nic_outages) {
      JsonValue rule = JsonValue::object();
      rule.set("node", r.node);
      rule.set("lane", r.lane);
      emit_window(rule, r.window);
      arr.push_back(std::move(rule));
    }
    doc.set("nic_outages", std::move(arr));
  }
  if (!plan.stragglers.empty()) {
    JsonValue arr = JsonValue::array();
    for (const Straggler& s : plan.stragglers) {
      JsonValue rule = JsonValue::object();
      rule.set("rank", s.rank);
      rule.set("compute_factor", s.compute_factor);
      rule.set("injection_factor", s.injection_factor);
      arr.push_back(std::move(rule));
    }
    doc.set("stragglers", std::move(arr));
  }
  if (!plan.message_loss.empty()) {
    JsonValue arr = JsonValue::array();
    for (const MessageLoss& r : plan.message_loss) {
      JsonValue rule = JsonValue::object();
      rule.set("path", r.path);
      rule.set("probability", r.probability);
      rule.set("retry", retry_json(r.retry));
      emit_window(rule, r.window);
      arr.push_back(std::move(rule));
    }
    doc.set("message_loss", std::move(arr));
  }
  return doc;
}

FaultPlan plan_from_json(const JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument(
        "fault plan JSON: document must be an object");
  }
  const JsonValue& schema = require(doc, "schema", "document");
  if (!schema.is_string() || schema.as_string() != kFaultSchema) {
    const std::string got = schema.is_string() ? schema.as_string() : "<non-string>";
    throw std::invalid_argument("fault plan JSON: unexpected schema \"" + got +
                                "\" (expected \"" + kFaultSchema + "\")");
  }

  FaultPlan plan;
  plan.name = string_at(doc, "name", "document", "");
  const JsonValue* seed = doc.find("seed");
  if (seed != nullptr) {
    if (seed->kind() != JsonValue::Kind::Int || seed->as_int() < 0) {
      fail("document", "\"seed\" must be a non-negative integer");
    }
    plan.seed = static_cast<std::uint64_t>(seed->as_int());
  }

  each_rule(doc, "link_degradations",
            [&](const JsonValue& rule, const std::string& where) {
              LinkDegradation r;
              r.path = string_at(rule, "path", where, "");
              r.alpha_factor = number_at(rule, "alpha_factor", where, 1.0);
              r.beta_factor = number_at(rule, "beta_factor", where, 1.0);
              r.window = window_at(rule, where);
              plan.link_degradations.push_back(std::move(r));
            });
  each_rule(doc, "nic_degradations",
            [&](const JsonValue& rule, const std::string& where) {
              NicDegradation r;
              r.node = int_at(rule, "node", where, -1);
              r.lane = int_at(rule, "lane", where, -1);
              r.alpha_factor = number_at(rule, "alpha_factor", where, 1.0);
              r.beta_factor = number_at(rule, "beta_factor", where, 1.0);
              r.window = window_at(rule, where);
              plan.nic_degradations.push_back(r);
            });
  each_rule(doc, "nic_outages",
            [&](const JsonValue& rule, const std::string& where) {
              NicOutage r;
              r.node = int_at(rule, "node", where, -1);
              r.lane = int_at(rule, "lane", where, 0);
              r.window = window_at(rule, where);
              plan.nic_outages.push_back(r);
            });
  each_rule(doc, "stragglers",
            [&](const JsonValue& rule, const std::string& where) {
              Straggler s;
              s.rank = int_at(rule, "rank", where, 0);
              s.compute_factor = number_at(rule, "compute_factor", where, 1.0);
              s.injection_factor =
                  number_at(rule, "injection_factor", where, 1.0);
              plan.stragglers.push_back(s);
            });
  each_rule(doc, "message_loss",
            [&](const JsonValue& rule, const std::string& where) {
              MessageLoss r;
              r.path = string_at(rule, "path", where, "");
              r.probability = number_at(rule, "probability", where, 0.0);
              r.retry = retry_at(rule, where);
              r.window = window_at(rule, where);
              plan.message_loss.push_back(std::move(r));
            });

  plan.validate();
  return plan;
}

FaultPlan load_fault_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open fault plan file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return plan_from_json(JsonValue::parse(buffer.str()));
  } catch (const std::exception& e) {
    // Parse errors carry line/column context; re-key every failure to the
    // file so CLI diagnostics always name their source.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace hetcomm::fault
