#pragma once
// JSON projection of fault plans: the hetcomm.fault.v1 schema.
//
// Document shape (arrays may be omitted when empty; a window object may
// omit "end" for an open-ended window, and a missing "window" means
// always-active):
//
//   {
//     "schema": "hetcomm.fault.v1",
//     "name": "lossy-fabric",
//     "seed": 7,
//     "link_degradations": [
//       {"path": "off-node", "alpha_factor": 1.0, "beta_factor": 3.0,
//        "window": {"begin": 0.0, "end": 0.002}}
//     ],
//     "nic_degradations": [
//       {"node": -1, "lane": 0, "alpha_factor": 2.0, "beta_factor": 2.0}
//     ],
//     "nic_outages": [{"node": 0, "lane": 0,
//                      "window": {"begin": 0.0, "end": 0.001}}],
//     "stragglers": [{"rank": 0, "compute_factor": 2.0,
//                     "injection_factor": 1.5}],
//     "message_loss": [
//       {"path": "", "probability": 0.05,
//        "retry": {"timeout": 1e-4, "backoff": 2.0, "max_delay": 1e-2,
//                  "max_attempts": 5}}
//     ]
//   }
//
// plan_from_json(to_json(p)) reproduces p exactly; loading errors are
// std::invalid_argument with the file path and (for parse errors)
// line/column context, mapping to CLI exit code 2.

#include <string>

#include "fault/plan.hpp"
#include "obs/json.hpp"

namespace hetcomm::fault {

inline constexpr const char* kFaultSchema = "hetcomm.fault.v1";

[[nodiscard]] obs::JsonValue to_json(const FaultPlan& plan);
[[nodiscard]] FaultPlan plan_from_json(const obs::JsonValue& doc);

/// Read + parse + validate a hetcomm.fault.v1 file.  Every failure --
/// unreadable path, malformed JSON, wrong schema tag, invalid rule --
/// throws std::invalid_argument prefixed with the path.
[[nodiscard]] FaultPlan load_fault_file(const std::string& path);

}  // namespace hetcomm::fault
