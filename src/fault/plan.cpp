#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hetcomm::fault {

namespace {

void check_factor(double f, const std::string& rule, const char* which) {
  if (!(f > 0.0) || !std::isfinite(f)) {
    throw std::invalid_argument("fault plan: " + rule + ": " + which +
                                " factor must be finite and > 0");
  }
}

void check_window(const FaultWindow& w, const std::string& rule) {
  if (std::isnan(w.begin) || std::isnan(w.end) || w.begin < 0.0) {
    throw std::invalid_argument("fault plan: " + rule +
                                ": window begin/end must be >= 0");
  }
}

/// Resolve a taxonomy class name to a dense id; "" means every class (-1).
int resolve_path(const ParamSet& params, const std::string& path,
                 const std::string& rule) {
  if (path.empty()) return -1;
  const int id = params.taxonomy.id_of(path);
  if (id < 0) {
    throw std::invalid_argument(
        "fault plan: " + rule + ": undeclared path class '" + path +
        "' (the machine's taxonomy does not define it)");
  }
  return id;
}

}  // namespace

bool FaultPlan::empty() const noexcept {
  for (const LinkDegradation& r : link_degradations) {
    if (r.alpha_factor != 1.0 || r.beta_factor != 1.0) return false;
  }
  for (const NicDegradation& r : nic_degradations) {
    if (r.alpha_factor != 1.0 || r.beta_factor != 1.0) return false;
  }
  if (!nic_outages.empty()) return false;
  for (const Straggler& s : stragglers) {
    if (s.compute_factor != 1.0 || s.injection_factor != 1.0) return false;
  }
  for (const MessageLoss& r : message_loss) {
    if (r.probability != 0.0) return false;
  }
  return true;
}

void FaultPlan::validate() const {
  for (const LinkDegradation& r : link_degradations) {
    check_factor(r.alpha_factor, "link degradation", "alpha");
    check_factor(r.beta_factor, "link degradation", "beta");
    check_window(r.window, "link degradation");
  }
  for (const NicDegradation& r : nic_degradations) {
    if (r.node < -1) {
      throw std::invalid_argument("fault plan: NIC degradation: node must "
                                  "be >= 0, or -1 for every node");
    }
    if (r.lane < -1) {
      throw std::invalid_argument("fault plan: NIC degradation: lane must "
                                  "be >= 0, or -1 for every lane");
    }
    check_factor(r.alpha_factor, "NIC degradation", "alpha");
    check_factor(r.beta_factor, "NIC degradation", "beta");
    check_window(r.window, "NIC degradation");
  }
  for (const NicOutage& r : nic_outages) {
    if (r.node < -1) {
      throw std::invalid_argument(
          "fault plan: NIC outage: node must be >= 0, or -1 for every node");
    }
    if (r.lane < -1) {
      throw std::invalid_argument(
          "fault plan: NIC outage: lane must be >= 0, or -1 for every lane");
    }
    check_window(r.window, "NIC outage");
  }
  for (const Straggler& s : stragglers) {
    if (s.rank < 0) {
      throw std::invalid_argument("fault plan: straggler: rank must be >= 0");
    }
    check_factor(s.compute_factor, "straggler", "compute");
    check_factor(s.injection_factor, "straggler", "injection");
  }
  for (const MessageLoss& r : message_loss) {
    if (!(r.probability >= 0.0) || !(r.probability <= 1.0)) {
      throw std::invalid_argument(
          "fault plan: message loss: probability must be in [0, 1]");
    }
    if (!(r.retry.timeout >= 0.0) || !std::isfinite(r.retry.timeout)) {
      throw std::invalid_argument(
          "fault plan: message loss: retry timeout must be finite and >= 0");
    }
    if (!(r.retry.backoff >= 1.0) || !std::isfinite(r.retry.backoff)) {
      throw std::invalid_argument(
          "fault plan: message loss: retry backoff must be >= 1");
    }
    if (!(r.retry.max_delay >= 0.0)) {
      throw std::invalid_argument(
          "fault plan: message loss: retry max_delay must be >= 0");
    }
    if (r.retry.max_attempts < 1) {
      throw std::invalid_argument(
          "fault plan: message loss: retry max_attempts must be >= 1");
    }
    check_window(r.window, "message loss");
  }
}

FaultModel FaultPlan::compile(const Topology& topo,
                              const ParamSet& params) const {
  validate();
  FaultModel model;
  model.seed = seed;

  // Factor-neutral rules (x1.0 degradations, p=0 losses) are dropped here
  // so an operationally empty plan compiles to an empty model, which
  // Engine::set_faults then normalizes to a fully detached fault layer.
  // Scope resolution still runs first: a neutral rule naming an undeclared
  // path class is an input error, not a silent no-op.
  for (const LinkDegradation& r : link_degradations) {
    LinkDegradeRule out;
    out.path_id = resolve_path(params, r.path, "link degradation");
    out.alpha_factor = r.alpha_factor;
    out.beta_factor = r.beta_factor;
    out.window = r.window;
    if (out.alpha_factor != 1.0 || out.beta_factor != 1.0) {
      model.degradations.push_back(out);
    }
  }
  for (const NicDegradation& r : nic_degradations) {
    if (r.alpha_factor != 1.0 || r.beta_factor != 1.0) {
      model.nic_degradations.push_back(
          {r.node, r.lane, r.alpha_factor, r.beta_factor, r.window});
    }
  }
  for (const NicOutage& r : nic_outages) {
    model.outages.push_back({r.node, r.lane, r.window});
  }
  for (const MessageLoss& r : message_loss) {
    LossRule out;
    out.path_id = resolve_path(params, r.path, "message loss");
    out.probability = r.probability;
    out.retry = r.retry;
    out.window = r.window;
    if (out.probability != 0.0) model.losses.push_back(out);
  }
  if (!stragglers.empty()) {
    const std::size_t n = static_cast<std::size_t>(topo.num_ranks());
    model.compute_factor.assign(n, 1.0);
    model.injection_factor.assign(n, 1.0);
    for (const Straggler& s : stragglers) {
      if (s.rank >= topo.num_ranks()) {
        throw std::invalid_argument(
            "fault plan: straggler: rank " + std::to_string(s.rank) +
            " out of range (machine has " +
            std::to_string(topo.num_ranks()) + " ranks)");
      }
      model.compute_factor[static_cast<std::size_t>(s.rank)] *=
          s.compute_factor;
      model.injection_factor[static_cast<std::size_t>(s.rank)] *=
          s.injection_factor;
    }
  }

  // Final structural cross-check against the machine (node/lane/path
  // ranges), exactly the check Engine::set_faults repeats defensively.
  model.validate(topo.num_ranks(), params.taxonomy.num_classes(),
                 topo.num_nodes(), std::max(1, params.injection.nics_per_node));
  return model;
}

}  // namespace hetcomm::fault
