#pragma once
// Declarative fault plans.
//
// A FaultPlan is the user-facing description of a degraded-machine
// scenario: rules are scoped by *names* (taxonomy path classes) and
// machine-relative indices (nodes, NIC lanes, ranks), so one plan can be
// applied to any machine that declares the referenced scopes.  Plans are
// constructible in code and round-trippable through the hetcomm.fault.v1
// JSON schema (fault_json.hpp); compile() cross-validates a plan against a
// concrete machine and lowers it into the dense runtime FaultModel the
// engine consumes (hetsim/faults.hpp).
//
// The split mirrors machine::MachineModel vs ParamSet: the declarative
// layer owns names, schemas and validation; the runtime layer owns the
// hot-path representation.

#include <cstdint>
#include <string>
#include <vector>

#include "hetsim/faults.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::fault {

/// Postal-parameter degradation on one taxonomy path class ("" = every
/// class): alpha scales by alpha_factor and beta by beta_factor while the
/// window is active.
struct LinkDegradation {
  std::string path;  ///< taxonomy class name; "" = every class
  double alpha_factor = 1.0;
  double beta_factor = 1.0;
  FaultWindow window;
};

/// NIC-lane degradation on (node, lane); -1 = every node / every lane.
struct NicDegradation {
  int node = -1;
  int lane = -1;
  double alpha_factor = 1.0;  ///< scales the per-message NIC overhead
  double beta_factor = 1.0;   ///< scales the inverse injection rate
  FaultWindow window;
};

/// NIC rail outage: the lane is down over the window; off-node traffic
/// fails over to surviving lanes (re-queued on their busy servers) or
/// waits for the earliest recovery.
struct NicOutage {
  int node = -1;  ///< -1 = every node
  int lane = 0;
  FaultWindow window;
};

/// Per-rank slowdown: compute_factor dilates compute/pack/copy durations;
/// injection_factor dilates the rank's send-port and NIC-egress
/// occupancies.
struct Straggler {
  int rank = 0;
  double compute_factor = 1.0;
  double injection_factor = 1.0;
};

/// Transient message loss on a path class ("" = every class) with an
/// exponential-backoff retry policy; exhausting max_attempts raises
/// FaultAbort.
struct MessageLoss {
  std::string path;  ///< taxonomy class name; "" = every class
  double probability = 0.0;
  RetryPolicy retry;
  FaultWindow window;
};

struct FaultPlan {
  std::string name;        ///< scenario label (reports, stability sweeps)
  std::uint64_t seed = 0;  ///< fault-stream seed; vary for ensemble members

  std::vector<LinkDegradation> link_degradations;
  std::vector<NicDegradation> nic_degradations;
  std::vector<NicOutage> nic_outages;
  std::vector<Straggler> stragglers;
  std::vector<MessageLoss> message_loss;

  /// True when the plan perturbs nothing (no rules, or only neutral ones).
  [[nodiscard]] bool empty() const noexcept;

  /// Machine-independent sanity checks (factors finite and positive,
  /// probabilities in [0, 1], retry policies sane, windows ordered);
  /// throws std::invalid_argument naming the offending rule.
  void validate() const;

  /// Cross-validate against a concrete machine and lower into the dense
  /// runtime model: path names resolve through the machine's taxonomy
  /// (unknown names throw std::invalid_argument), node/lane/rank indices
  /// are range-checked, stragglers densify into per-rank factor arrays.
  [[nodiscard]] FaultModel compile(const Topology& topo,
                                   const ParamSet& params) const;
};

}  // namespace hetcomm::fault
