#include "fault/stability.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/strategy.hpp"
#include "fault/fault_json.hpp"
#include "hetsim/faults.hpp"
#include "hetsim/noise.hpp"

namespace hetcomm::fault {

namespace {

using obs::JsonValue;

/// Winner of one instance: the lowest non-failed max_avg, ties broken by
/// Table-5 order (outcomes keep that order).  "" when everything failed.
std::string pick_winner(const std::vector<StrategyOutcome>& outcomes) {
  double best = std::numeric_limits<double>::infinity();
  std::string winner;
  for (const StrategyOutcome& o : outcomes) {
    if (!o.failed && o.max_avg < best) {
      best = o.max_avg;
      winner = o.strategy;
    }
  }
  return winner;
}

/// Measure every Table-5 plan under one fault model (nullptr = nominal).
/// `compiled` (when non-null, index-aligned with `plans`) carries the
/// once-compiled form each measurement replays instead of recompiling.
std::vector<StrategyOutcome> measure_all(
    const std::vector<core::CommPlan>& plans,
    const std::vector<core::CompiledPlan>* compiled, const Topology& topo,
    const ParamSet& params, const FaultModel* faults,
    const core::MeasureOptions& base) {
  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const core::CommPlan& plan = plans[i];
    StrategyOutcome o;
    o.strategy = plan.strategy_name;
    core::MeasureOptions mopts = base;
    mopts.faults = faults;
    if (compiled != nullptr) mopts.precompiled = &(*compiled)[i];
    try {
      o.max_avg = core::measure(plan, topo, params, mopts).max_avg;
    } catch (const FaultAbort& e) {
      o.failed = true;
      o.error = e.what();
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

JsonValue outcome_json(const StrategyOutcome& o) {
  JsonValue v = JsonValue::object();
  v.set("strategy", o.strategy);
  if (o.failed) {
    v.set("failed", true);
    v.set("error", o.error);
  } else {
    v.set("max_avg", o.max_avg);
  }
  return v;
}

JsonValue instance_json(const StabilityInstance& inst, bool with_seed) {
  JsonValue v = JsonValue::object();
  if (with_seed) {
    v.set("instance", inst.instance);
    v.set("fault_seed", static_cast<std::int64_t>(inst.fault_seed));
  }
  v.set("winner", inst.winner);
  JsonValue arr = JsonValue::array();
  for (const StrategyOutcome& o : inst.outcomes) {
    arr.push_back(outcome_json(o));
  }
  v.set("outcomes", std::move(arr));
  return v;
}

}  // namespace

JsonValue StabilityReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kStabilitySchema);
  doc.set("machine", machine);
  doc.set("nodes", nodes);
  doc.set("fault_plan", fault_plan);
  doc.set("plan_seed", static_cast<std::int64_t>(plan_seed));
  doc.set("instances", instances);
  doc.set("reps", reps);
  doc.set("seed", static_cast<std::int64_t>(seed));
  doc.set("engine", engine);
  doc.set("nominal", instance_json(nominal, /*with_seed=*/false));
  JsonValue arr = JsonValue::array();
  for (const StabilityInstance& inst : results) {
    arr.push_back(instance_json(inst, /*with_seed=*/true));
  }
  doc.set("results", std::move(arr));
  JsonValue summary = JsonValue::object();
  summary.set("winner_survived", winner_survived);
  summary.set("survival_rate", survival_rate);
  JsonValue compile = JsonValue::object();
  compile.set("plans_precompiled", plans_precompiled);
  compile.set("compile_seconds", compile_seconds);
  compile.set("saved_compile_seconds", saved_compile_seconds);
  summary.set("compile", std::move(compile));
  JsonValue per = JsonValue::array();
  for (const StrategySummary& s : strategies) {
    JsonValue row = JsonValue::object();
    row.set("strategy", s.strategy);
    row.set("wins", s.wins);
    row.set("failures", s.failures);
    per.push_back(std::move(row));
  }
  summary.set("strategies", std::move(per));
  doc.set("summary", std::move(summary));
  return doc;
}

StabilityReport ranking_stability(const core::CommPattern& pattern,
                                  const Topology& topo, const ParamSet& params,
                                  const FaultPlan& plan,
                                  const StabilityOptions& options) {
  if (options.instances < 1) {
    throw std::invalid_argument(
        "ranking stability: instances must be >= 1");
  }
  if (options.measure.faults != nullptr) {
    throw std::invalid_argument(
        "ranking stability: MeasureOptions::faults is managed by the sweep");
  }
  // Compile fault plan first: scope errors (unknown path class, bad lane)
  // should surface before any simulation work happens.
  plan.validate();
  { const FaultModel probe = plan.compile(topo, params); (void)probe; }

  // Build each Table-5 plan once; plans are rep- and fault-invariant.
  std::vector<core::CommPlan> plans;
  for (const core::StrategyConfig& cfg : core::all_strategies()) {
    plans.push_back(core::build_plan(pattern, topo, params, cfg));
  }

  // Compiled engine: pay the compile cost once per strategy here and replay
  // the CompiledPlan across the nominal run plus every ensemble member.
  // Fault models perturb execution (lane failures, retries), never the
  // compiled event tables, so reuse is exact -- measurements stay
  // bit-identical to the recompile-per-call path.
  std::vector<core::CompiledPlan> compiled;
  double compile_seconds = 0.0;
  const bool precompile = options.measure.engine == core::ExecMode::Compiled;
  if (precompile) {
    compiled.reserve(plans.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::CommPlan& p : plans) {
      compiled.emplace_back(p, topo, params);
    }
    const auto t1 = std::chrono::steady_clock::now();
    compile_seconds = std::chrono::duration<double>(t1 - t0).count();
  }
  const std::vector<core::CompiledPlan>* compiled_ptr =
      precompile ? &compiled : nullptr;

  StabilityReport report;
  report.plans_precompiled = precompile;
  report.compile_seconds = compile_seconds;
  report.saved_compile_seconds =
      compile_seconds * static_cast<double>(options.instances);
  report.machine = params.name;
  report.nodes = topo.num_nodes();
  report.fault_plan = plan.name;
  report.plan_seed = plan.seed;
  report.instances = options.instances;
  report.reps = options.measure.reps;
  report.seed = options.measure.seed;
  report.engine = core::to_string(options.measure.engine);

  report.nominal.outcomes =
      measure_all(plans, compiled_ptr, topo, params, nullptr, options.measure);
  report.nominal.winner = pick_winner(report.nominal.outcomes);

  for (const core::CommPlan& p : plans) {
    report.strategies.push_back({p.strategy_name, 0, 0});
  }

  for (int k = 0; k < options.instances; ++k) {
    FaultPlan member = plan;
    member.seed = mix_seed(plan.seed, static_cast<std::uint64_t>(k));
    const FaultModel model = member.compile(topo, params);

    StabilityInstance inst;
    inst.instance = k;
    inst.fault_seed = member.seed;
    inst.outcomes = measure_all(plans, compiled_ptr, topo, params, &model,
                                options.measure);
    inst.winner = pick_winner(inst.outcomes);

    if (!inst.winner.empty() && inst.winner == report.nominal.winner) {
      ++report.winner_survived;
    }
    for (std::size_t i = 0; i < inst.outcomes.size(); ++i) {
      if (inst.outcomes[i].failed) ++report.strategies[i].failures;
      if (!inst.winner.empty() &&
          inst.outcomes[i].strategy == inst.winner) {
        ++report.strategies[i].wins;
      }
    }
    report.results.push_back(std::move(inst));
  }
  report.survival_rate = static_cast<double>(report.winner_survived) /
                         static_cast<double>(options.instances);
  return report;
}

}  // namespace hetcomm::fault
