#pragma once
// Ranking-stability analysis: does the nominal strategy winner survive
// degradation?
//
// The paper's headline result is a *ranking* (Table 5 strategies ordered by
// measured max-avg time, Fig 5.1), but every parameter behind it is a point
// estimate from a quiet machine.  ranking_stability() stress-tests that
// ranking: it measures the fault-free baseline, then re-measures every
// strategy under an ensemble of FaultPlan instances (the plan with its
// fault-stream seed re-derived per instance) and reports how often the
// nominal winner stays on top.
//
// Everything is deterministic: instance k uses fault seed
// mix_seed(plan.seed, k), each measurement inherits the caller's
// MeasureOptions (seed, reps, jobs, engine mode), and results are
// bit-identical for any --jobs value.  A strategy whose run hard-fails
// (FaultAbort: retry budget exhausted, no NIC lane recovers) is recorded as
// a structured failure for that instance, not a crash -- an undeliverable
// plan losing its ranking slot is exactly the signal this analysis exists
// to surface.
//
// The report round-trips through the hetcomm.stability.v1 JSON schema
// (tools/validate_stability checks the contract in CI).

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm_pattern.hpp"
#include "core/executor.hpp"
#include "fault/plan.hpp"
#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"
#include "obs/json.hpp"

namespace hetcomm::fault {

inline constexpr const char* kStabilitySchema = "hetcomm.stability.v1";

struct StabilityOptions {
  /// Ensemble size: number of fault-seed instances to sweep.
  int instances = 4;
  /// Per-measurement options (reps, seed, jobs, engine, fabric); `faults`
  /// is managed by the sweep itself and must be left null.
  core::MeasureOptions measure;
};

/// One strategy's result under one fault instance (or the nominal run).
struct StrategyOutcome {
  std::string strategy;
  double max_avg = 0.0;  ///< meaningless when failed
  bool failed = false;   ///< FaultAbort: undeliverable under this instance
  std::string error;     ///< structured FaultAbort message when failed
};

/// One fault-seed ensemble member: every strategy measured under the same
/// degraded machine.
struct StabilityInstance {
  int instance = 0;
  std::uint64_t fault_seed = 0;
  std::string winner;  ///< "" when every strategy failed
  std::vector<StrategyOutcome> outcomes;
};

/// Per-strategy aggregate over the ensemble.
struct StrategySummary {
  std::string strategy;
  int wins = 0;
  int failures = 0;
};

struct StabilityReport {
  std::string machine;     ///< parameter-set name
  int nodes = 0;
  std::string fault_plan;  ///< FaultPlan::name
  std::uint64_t plan_seed = 0;
  int instances = 0;
  int reps = 0;
  std::uint64_t seed = 0;  ///< measurement seed
  std::string engine;      ///< "compiled" / "interpreted"

  StabilityInstance nominal;  ///< fault-free baseline (fault_seed unused)
  std::vector<StabilityInstance> results;

  /// Compile-reuse accounting (Compiled engine mode): every Table-5 plan is
  /// compiled exactly once and the CompiledPlan replayed across the nominal
  /// run plus all `instances` ensemble members (fault models never change a
  /// plan's compiled tables -- they perturb execution, not structure).
  /// `compile_seconds` is the wall time of that single compile pass;
  /// `saved_compile_seconds` estimates what re-compiling inside every
  /// measurement would have cost on top: compile_seconds * instances.
  /// Both are 0 in Interpreted mode, which has nothing to compile.
  bool plans_precompiled = false;
  double compile_seconds = 0.0;
  double saved_compile_seconds = 0.0;

  /// True when instance `winner` matches the nominal winner.
  int winner_survived = 0;
  double survival_rate = 0.0;  ///< winner_survived / instances
  std::vector<StrategySummary> strategies;

  [[nodiscard]] obs::JsonValue to_json() const;
};

/// Sweep the Table-5 strategies across a FaultPlan ensemble.  Throws
/// std::invalid_argument when the plan does not compile against the machine
/// (unknown path class, out-of-range scopes) or when options are invalid.
[[nodiscard]] StabilityReport ranking_stability(
    const core::CommPattern& pattern, const Topology& topo,
    const ParamSet& params, const FaultPlan& plan,
    const StabilityOptions& options = {});

}  // namespace hetcomm::fault
