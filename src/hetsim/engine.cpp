#include "hetsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <tuple>

#include "obs/engine_metrics.hpp"

namespace hetcomm {

Engine::Engine(Topology topology, ParamSet params, NoiseModel noise)
    : topo_(std::move(topology)),
      params_(std::move(params)),
      noise_(noise),
      clock_(static_cast<std::size_t>(topo_.num_ranks()), 0.0),
      send_port_(static_cast<std::size_t>(topo_.num_ranks())),
      recv_port_(static_cast<std::size_t>(topo_.num_ranks())),
      nic_out_(static_cast<std::size_t>(topo_.num_nodes()) *
               static_cast<std::size_t>(std::max(1, params_.injection.nics_per_node))),
      nic_in_(nic_out_.size()),
      dma_h2d_(static_cast<std::size_t>(topo_.num_gpus())),
      dma_d2h_(static_cast<std::size_t>(topo_.num_gpus())) {
  params_.validate();
  paths_ = PathTable(topo_, params_.taxonomy);
  nic_of_rank_.resize(static_cast<std::size_t>(topo_.num_ranks()));
  for (int r = 0; r < topo_.num_ranks(); ++r) {
    nic_of_rank_[static_cast<std::size_t>(r)] =
        params_.injection.nic_of(topo_.rank_location(r));
  }
}

void Engine::check_rank(int rank) const {
  if (rank < 0 || rank >= topo_.num_ranks()) {
    throw std::out_of_range("Engine: rank " + std::to_string(rank) +
                            " out of range");
  }
}

int Engine::isend(int src, int dst, std::int64_t bytes, int tag,
                  MemSpace space, int rail, int depends_on) {
  check_rank(src);
  check_rank(dst);
  if (bytes < 0) throw std::invalid_argument("Engine::isend: negative size");
  if (rail >= std::max(1, params_.injection.nics_per_node)) {
    throw std::invalid_argument("Engine::isend: rail " + std::to_string(rail) +
                                " >= " +
                                std::to_string(std::max(
                                    1, params_.injection.nics_per_node)) +
                                " NIC lane(s)");
  }
  if (depends_on >= next_seq_) {
    throw std::invalid_argument(
        "Engine::isend: depends_on references a not-yet-posted request");
  }
  clock_[src] += params_.overheads.post_overhead;
  sends_.push_back({src, dst, bytes, tag, space, clock_[src], next_seq_++,
                    rail < 0 ? -1 : rail, depends_on < 0 ? -1 : depends_on});
  return next_seq_ - 1;
}

int Engine::irecv(int dst, int src, std::int64_t bytes, int tag,
                  MemSpace space) {
  check_rank(src);
  check_rank(dst);
  if (bytes < 0) throw std::invalid_argument("Engine::irecv: negative size");
  clock_[dst] += params_.overheads.post_overhead;
  recvs_.push_back({dst, src, bytes, tag, space, clock_[dst], next_seq_++});
  return next_seq_ - 1;
}

void Engine::copy(int rank, int gpu, CopyDir dir, std::int64_t bytes,
                  int sharing_procs) {
  check_rank(rank);
  if (gpu < 0 || gpu >= topo_.num_gpus()) {
    throw std::out_of_range("Engine::copy: bad gpu");
  }
  if (bytes < 0) throw std::invalid_argument("Engine::copy: negative size");
  if (sharing_procs < 1) {
    throw std::invalid_argument("Engine::copy: sharing_procs must be >= 1");
  }

  const PostalParams cp = copy_params_for(params_.copies, dir, sharing_procs);
  // The DMA engine serializes distinct copies.  For shared (MPS-style)
  // copies the measured betas already embody the sharing penalty, so the
  // occupancy uses the raw 1-process link rate scaled down by the sharing
  // degree: concurrent sharers overlap nearly fully while sequential copies
  // still queue.
  const PostalParams raw = copy_params_for(params_.copies, dir, 1);
  const double occupancy =
      params_.overheads.dma_op_overhead +
      raw.beta * static_cast<double>(bytes) / sharing_procs;

  BusyServer& dma =
      dir == CopyDir::HostToDevice ? dma_h2d_[gpu] : dma_d2h_[gpu];
  const double ready = clock_[rank];
  const double start = dma.acquire(ready, occupancy);
  double base = cp.time(bytes);
  if (faults_) base = faults_->rank_compute_factor(rank) * base;
  const double duration = noise_.perturb(base);
  clock_[rank] = start + duration;

  if (metrics_inv_ || metrics_smp_) {
    const obs::SimResource res = dir == CopyDir::HostToDevice
                                     ? obs::SimResource::DmaH2D
                                     : obs::SimResource::DmaD2H;
    // The DMA occupancy is deterministic (invariant tier); the wait and
    // the noised duration are sampled statistics.
    if (metrics_inv_) metrics_inv_->on_occupancy(res, occupancy);
    if (metrics_smp_) {
      metrics_smp_->on_wait(res, ready, start);
      metrics_smp_->on_copy(dir, sharing_procs, bytes, duration);
    }
  }
  if (tracing_) {
    trace_.copies.push_back(
        {rank, gpu, dir, bytes, sharing_procs, start, clock_[rank]});
  }
}

void Engine::set_fabric(const FatTreeConfig& config) {
  fabric_.emplace(config, topo_.num_nodes(),
                  params_.injection.inv_rate_cpu);
}

void Engine::compute(int rank, double seconds) {
  check_rank(rank);
  if (seconds < 0) throw std::invalid_argument("Engine::compute: negative");
  // Straggler ranks dilate their local work multiplicatively (a factor of
  // exactly 1.0 is bit-exact, so neutral fault models change nothing).
  if (faults_) seconds = faults_->rank_compute_factor(rank) * seconds;
  clock_[rank] += noise_.perturb(seconds);
}

void Engine::pack(int rank, std::int64_t bytes) {
  check_rank(rank);
  if (bytes < 0) throw std::invalid_argument("Engine::pack: negative size");
  double base = params_.overheads.pack_per_byte * static_cast<double>(bytes);
  if (faults_) base = faults_->rank_compute_factor(rank) * base;
  const double duration = noise_.perturb(base);
  clock_[rank] += duration;
  if (metrics_smp_) metrics_smp_->on_pack(bytes, duration);
}

void Engine::set_metrics(obs::EngineMetrics* sink, bool record_invariants,
                         bool record_samples) {
  metrics_ = sink;
  metrics_inv_ = record_invariants ? sink : nullptr;
  metrics_smp_ = record_samples ? sink : nullptr;
  if (metrics_) {
    metrics_->ensure_lanes(static_cast<int>(nic_out_.size()),
                           std::max(1, params_.injection.nics_per_node));
    // Label the sink's path slots with this machine's declared class names
    // so exports speak the machine's taxonomy, not the fixed enum.
    metrics_->path_names.clear();
    for (const PathClassDef& c : params_.taxonomy.classes()) {
      metrics_->path_names.push_back(c.name);
    }
  }
}

void Engine::set_faults(const FaultModel* faults) {
  if (faults != nullptr && faults->empty()) faults = nullptr;
  if (faults != nullptr) {
    faults->validate(topo_.num_ranks(), params_.taxonomy.num_classes(),
                     topo_.num_nodes(),
                     std::max(1, params_.injection.nics_per_node));
  }
  faults_ = faults;
  refresh_fault_stream();
}

std::uint64_t Engine::fault_stream_for(std::uint64_t run_seed) const noexcept {
  // Salted double-mix: decoheres the fault stream from the noise stream
  // (which consumes the raw run seed) and from other fault-model seeds.
  constexpr std::uint64_t kFaultStreamSalt = 0xfa17'5eedULL;
  return faults_ ? mix_seed(mix_seed(run_seed, kFaultStreamSalt), faults_->seed)
                 : 0;
}

void Engine::refresh_fault_stream() noexcept {
  fault_stream_ = fault_stream_for(run_seed_);
}

void Engine::throw_retries_exhausted(std::int32_t src, std::int32_t dst,
                                     std::uint8_t path_id,
                                     int attempts) const {
  throw FaultAbort(FaultAbort::Reason::RetriesExhausted, "", src, dst,
                   path_id, params_.taxonomy.cls(path_id).name, attempts);
}

void Engine::throw_nic_unavailable(std::int32_t src, std::int32_t dst,
                                   std::uint8_t path_id) const {
  throw FaultAbort(FaultAbort::Reason::NicUnavailable, "", src, dst, path_id,
                   params_.taxonomy.cls(path_id).name, 0);
}

void Engine::fail_resolve(const std::string& what) {
  // A failed resolve drops every pending operation so the engine is not
  // left unusable-yet-has_pending(); clocks keep the posting overheads
  // already charged, so reset() is the full-recovery path.
  sends_.clear();
  recvs_.clear();
  throw std::logic_error("Engine::resolve: " + what);
}

void Engine::resolve() {
  // ---- Match sends to receives by (src, dst, tag), FIFO within a key. ----
  // Allocation-free matching: instead of building a std::map of per-key
  // receive lists each call, sort index arrays (member scratch) of both
  // sides by (key, seq) and walk them in lockstep -- within one key the
  // seq order gives FIFO pairing, and any key imbalance is an unmatched
  // operation.  The pairing is identical to the historical map-based
  // matcher; only its cost changed.
  using Key = std::tuple<int, int, int>;  // (src, dst, tag)
  const auto send_key = [](const PendingOp& s) {
    return Key{s.self, s.peer, s.tag};
  };
  const auto recv_key = [](const PendingOp& r) {
    return Key{r.peer, r.self, r.tag};  // receive stores (dst, src)
  };

  send_order_scratch_.resize(sends_.size());
  for (std::uint32_t i = 0; i < sends_.size(); ++i) send_order_scratch_[i] = i;
  std::sort(send_order_scratch_.begin(), send_order_scratch_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Key ka = send_key(sends_[a]), kb = send_key(sends_[b]);
              if (ka != kb) return ka < kb;
              return sends_[a].seq < sends_[b].seq;
            });
  recv_order_scratch_.resize(recvs_.size());
  for (std::uint32_t i = 0; i < recvs_.size(); ++i) recv_order_scratch_[i] = i;
  std::sort(recv_order_scratch_.begin(), recv_order_scratch_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Key ka = recv_key(recvs_[a]), kb = recv_key(recvs_[b]);
              if (ka != kb) return ka < kb;
              return recvs_[a].seq < recvs_[b].seq;
            });

  matched_scratch_.clear();
  std::size_t si = 0, ri = 0;
  while (si < sends_.size() && ri < recvs_.size()) {
    const PendingOp& s = sends_[send_order_scratch_[si]];
    const PendingOp& r = recvs_[recv_order_scratch_[ri]];
    const Key ks = send_key(s), kr = recv_key(r);
    if (ks < kr) {
      fail_resolve("unmatched send " + std::to_string(s.self) + "->" +
                   std::to_string(s.peer) + " tag " + std::to_string(s.tag));
    }
    if (kr < ks) {
      fail_resolve("unmatched receive " + std::to_string(r.peer) + "->" +
                   std::to_string(r.self) + " tag " + std::to_string(r.tag));
    }
    if (r.bytes != s.bytes) {
      fail_resolve("size mismatch " + std::to_string(s.self) + "->" +
                   std::to_string(s.peer) + " tag " + std::to_string(s.tag) +
                   ": send " + std::to_string(s.bytes) + "B vs recv " +
                   std::to_string(r.bytes) + "B");
    }
    const Protocol proto = params_.thresholds.select(s.space, s.bytes);
    const double ready = proto == Protocol::Rendezvous
                             ? std::max(s.post_time, r.post_time)
                             : s.post_time;
    matched_scratch_.push_back({s, r, ready});
    ++si;
    ++ri;
  }
  if (si < sends_.size()) {
    const PendingOp& s = sends_[send_order_scratch_[si]];
    fail_resolve("unmatched send " + std::to_string(s.self) + "->" +
                 std::to_string(s.peer) + " tag " + std::to_string(s.tag));
  }
  if (ri < recvs_.size()) {
    fail_resolve(std::to_string(recvs_.size() - ri) +
                 " unmatched receive(s)");
  }

  // Queue-search cost: proportional to how many receives each rank has
  // posted in this resolution batch (a proxy for posted-queue length).
  recv_depth_scratch_.assign(static_cast<std::size_t>(topo_.num_ranks()), 0);
  for (const PendingOp& r : recvs_) ++recv_depth_scratch_[r.self];

  bool has_deps = false;
  for (const PendingOp& s : sends_) {
    if (s.dep_seq >= 0) {
      has_deps = true;
      break;
    }
  }

  // A mid-plan FaultAbort honors the same failure contract as a matching
  // failure: every pending operation is dropped so the engine is reusable
  // (reset() for full recovery), then the structured error propagates.
  try {
    if (!has_deps) {
      // ---- Schedule in global ready order (deterministic tie-break). ----
      // (ready, send.seq) is a strict total order -- seqs are unique -- so
      // the sorted schedule is independent of the matching order above.
      // This is the historical path, taken by every plan without
      // depends_on edges.
      std::sort(matched_scratch_.begin(), matched_scratch_.end(),
                [](const Matched& a, const Matched& b) {
                  if (a.ready != b.ready) return a.ready < b.ready;
                  return a.send.seq < b.send.seq;
                });
      for (Matched& m : matched_scratch_) schedule(m, recv_depth_scratch_);
    } else {
      resolve_waves();
    }
  } catch (...) {
    sends_.clear();
    recvs_.clear();
    throw;
  }

  sends_.clear();
  recvs_.clear();
}

void Engine::resolve_waves() {
  // Dependency-wave scheduling: chunk k+1's transfer is ready no earlier
  // than chunk k's completion.  Transfers are bucketed by dep-chain depth
  // (wave) and scheduled wave by wave; within a wave the order is the same
  // strict (adjusted ready, send seq) total order the dep-free path uses
  // globally, so a plan whose dep edges never bind reproduces the dep-free
  // schedule exactly.
  const std::size_t m_count = matched_scratch_.size();
  seq_to_matched_scratch_.assign(static_cast<std::size_t>(next_seq_), -1);
  for (std::size_t i = 0; i < m_count; ++i) {
    seq_to_matched_scratch_[static_cast<std::size_t>(
        matched_scratch_[i].send.seq)] = static_cast<std::int32_t>(i);
  }
  matched_dep_scratch_.assign(m_count, -1);
  matched_depth_scratch_.assign(m_count, 0);
  std::int32_t max_depth = 0;
  // Send seqs increase with posting order and every dep targets an earlier
  // request, so a seq-order walk sees each dependency before its dependent
  // (acyclic by construction).
  for (int s = 0; s < next_seq_; ++s) {
    const std::int32_t i = seq_to_matched_scratch_[static_cast<std::size_t>(s)];
    if (i < 0) continue;
    const int dep_seq = matched_scratch_[static_cast<std::size_t>(i)].send.dep_seq;
    if (dep_seq < 0) continue;
    const std::int32_t d =
        seq_to_matched_scratch_[static_cast<std::size_t>(dep_seq)];
    if (d < 0) {
      fail_resolve("send " + std::to_string(s) +
                   " depends on request " + std::to_string(dep_seq) +
                   ", which is not a send");
    }
    matched_dep_scratch_[static_cast<std::size_t>(i)] = d;
    matched_depth_scratch_[static_cast<std::size_t>(i)] =
        matched_depth_scratch_[static_cast<std::size_t>(d)] + 1;
    max_depth = std::max(max_depth,
                         matched_depth_scratch_[static_cast<std::size_t>(i)]);
  }

  matched_completion_scratch_.assign(m_count, 0.0);
  for (std::int32_t wave = 0; wave <= max_depth; ++wave) {
    wave_order_scratch_.clear();
    for (std::size_t i = 0; i < m_count; ++i) {
      if (matched_depth_scratch_[i] != wave) continue;
      const std::int32_t d = matched_dep_scratch_[i];
      if (d >= 0) {
        matched_scratch_[i].ready =
            std::max(matched_scratch_[i].ready,
                     matched_completion_scratch_[static_cast<std::size_t>(d)]);
      }
      wave_order_scratch_.push_back(static_cast<std::uint32_t>(i));
    }
    std::sort(wave_order_scratch_.begin(), wave_order_scratch_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Matched& ma = matched_scratch_[a];
                const Matched& mb = matched_scratch_[b];
                if (ma.ready != mb.ready) return ma.ready < mb.ready;
                return ma.send.seq < mb.send.seq;
              });
    for (const std::uint32_t i : wave_order_scratch_) {
      matched_completion_scratch_[i] =
          schedule(matched_scratch_[i], recv_depth_scratch_);
    }
  }
}

double Engine::schedule(Matched& m, std::vector<int>& recv_queue_depth) {
  const PendingOp& s = m.send;
  const std::uint8_t path_id = paths_.path_of(s.self, s.peer);
  const PathClass path = paths_.locality_of(path_id);
  const Protocol proto = params_.thresholds.select(s.space, s.bytes);
  const PostalParams pp = params_.messages.get(s.space, proto, path_id);
  const double size = static_cast<double>(s.bytes);
  const bool off_node = path == PathClass::OffNode;

  // Rep-invariant costs.  completion_base folds the queue-search term in
  // (left-associated exactly like the historical inline expression, so the
  // fault-free doubles are bit-identical to the pre-fault engine).
  const double send_occupancy = pp.alpha + pp.beta * size;
  const double drain_occupancy = pp.beta * size;
  const double completion_base =
      send_occupancy +
      params_.overheads.queue_search_per_entry * recv_queue_depth[s.peer];

  double nic_occupancy = 0.0;
  int src_node = -1;
  int dst_node = -1;
  std::int32_t src_nic = -1;
  std::int32_t dst_nic = -1;
  if (off_node) {
    const double inv_rate = s.space == MemSpace::Host
                                ? params_.injection.inv_rate_cpu
                                : params_.injection.inv_rate_gpu;
    src_node = topo_.node_of_rank(s.self);
    dst_node = topo_.node_of_rank(s.peer);
    if (s.rail >= 0) {
      // Explicit rail assignment (striped plans): pin both endpoints to the
      // rail's NIC pair instead of the default hash-to-lane choice.
      const int lanes = std::max(1, params_.injection.nics_per_node);
      src_nic = src_node * lanes + s.rail;
      dst_nic = dst_node * lanes + s.rail;
    } else {
      src_nic = nic_of_rank_[s.self];
      dst_nic = nic_of_rank_[s.peer];
    }
    nic_occupancy = inv_rate * size + params_.overheads.nic_message_overhead;
  }

  FaultMsgState fst;
  fst.send_occupancy = send_occupancy;
  fst.drain_occupancy = drain_occupancy;
  fst.completion_base = completion_base;
  fst.nic_occupancy_src = nic_occupancy;
  fst.nic_occupancy_dst = nic_occupancy;
  if (faults_) {
    fst = fault_prepare(s.self, path_id, off_node, src_node, dst_node,
                        src_nic, dst_nic, send_occupancy, drain_occupancy,
                        completion_base, nic_occupancy, m.ready,
                        fault_msg_counter_++);
    if (fst.degraded && metrics_smp_) {
      metrics_smp_->on_fault_degraded(path_id, fst.extra_seconds);
    }
  }

  const double hop_latency =
      (off_node && fabric_) ? fabric_->hop_latency(src_node, dst_node) : 0.0;

  // Send/resend loop.  Without a matching loss rule (fst.loss == nullptr)
  // the body runs exactly once and is the historical scheduling path.  A
  // lost attempt still consumed every resource it acquired (the wire time
  // is real); the retry re-queues from scratch after the backoff delay.
  double ready = m.ready;
  double t = 0.0;
  double completion = 0.0;
  std::int32_t egress_server = -1;  ///< last attempt's NIC lane server
  for (int attempt = 0;;) {
    // Sender-side occupancy: the sending process cannot initiate the next
    // message until this one's latency+transfer work is handed off.
    t = send_port_[s.self].acquire(ready, fst.send_occupancy);
    if (metrics_inv_) {
      if (attempt == 0) metrics_inv_->on_message(path_id, proto, s.bytes);
      metrics_inv_->on_occupancy(obs::SimResource::SendPort,
                                 fst.send_occupancy);
    }
    if (metrics_smp_) {
      metrics_smp_->on_wait(obs::SimResource::SendPort, ready, t);
    }

    if (off_node) {
      std::int32_t out_server = src_nic;
      if (faults_ && faults_->has_outages()) {
        bool failover = false;
        out_server = fault_route_nic(src_node, src_nic, t, failover, s.self,
                                     s.peer, path_id);
        if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
      }
      egress_server = out_server;
      const double t_out =
          nic_out_[out_server].acquire(t, fst.nic_occupancy_src);
      if (metrics_inv_) {
        metrics_inv_->on_occupancy(obs::SimResource::NicOut,
                                   fst.nic_occupancy_src);
        if (attempt == 0) {
          metrics_inv_->on_nic_egress(out_server, s.bytes, s.rail >= 0);
        }
      }
      if (metrics_smp_) {
        metrics_smp_->on_wait(obs::SimResource::NicOut, t, t_out);
      }
      t = t_out;
      if (fabric_) {
        const double t_fab = fabric_->acquire(src_node, dst_node, s.bytes, t);
        // Fabric wait folds queueing and link serialization together (the
        // fabric returns only the final acquire time).
        if (metrics_smp_) {
          metrics_smp_->on_wait(obs::SimResource::FabricLink, t, t_fab);
        }
        t = t_fab;
      }
      std::int32_t in_server = dst_nic;
      if (faults_ && faults_->has_outages()) {
        bool failover = false;
        in_server = fault_route_nic(dst_node, dst_nic, t, failover, s.self,
                                    s.peer, path_id);
        if (failover && metrics_smp_) metrics_smp_->on_fault_failover();
      }
      const double t_in = nic_in_[in_server].acquire(t, fst.nic_occupancy_dst);
      if (metrics_inv_) {
        metrics_inv_->on_occupancy(obs::SimResource::NicIn,
                                   fst.nic_occupancy_dst);
      }
      if (metrics_smp_) metrics_smp_->on_wait(obs::SimResource::NicIn, t, t_in);
      t = t_in;
      if (attempt == 0) {
        network_bytes_ += s.bytes;
        ++network_messages_;
      }
    }

    // Receiver-side drain occupancy.
    const double t_drain = recv_port_[s.peer].acquire(t, fst.drain_occupancy);
    if (metrics_inv_) {
      metrics_inv_->on_occupancy(obs::SimResource::RecvPort,
                                 fst.drain_occupancy);
    }
    if (metrics_smp_) {
      metrics_smp_->on_wait(obs::SimResource::RecvPort, t, t_drain);
    }
    t = t_drain;

    completion = t + noise_.perturb(fst.completion_base) + hop_latency;

    if (fault_lost(fst, attempt, fault_stream_)) {
      ++attempt;
      if (attempt >= fst.loss->retry.max_attempts) {
        throw_retries_exhausted(s.self, s.peer, path_id, attempt);
      }
      const double delay = retry_delay(fst.loss->retry, attempt - 1);
      if (metrics_smp_) {
        const int lanes = std::max(1, params_.injection.nics_per_node);
        metrics_smp_->on_fault_retry(
            delay, egress_server < 0 ? -1
                                     : egress_server - src_node * lanes);
      }
      ready = completion + delay;
      continue;
    }
    break;
  }

  // Sender finishes when its buffer may be reused: for rendezvous that is
  // the full transfer; for short/eager the data is buffered once the local
  // handoff (port occupancy) completes.
  const double sender_done = proto == Protocol::Rendezvous
                                 ? completion
                                 : send_port_[s.self].free_at();
  clock_[s.self] = std::max(clock_[s.self], sender_done);
  clock_[s.peer] = std::max(clock_[s.peer], completion);

  if (tracing_) {
    trace_.messages.push_back({s.self, s.peer, s.bytes, s.tag, s.space, proto,
                               path, m.ready, t, completion});
  }
  return completion;
}

double Engine::clock(int rank) const {
  check_rank(rank);
  return clock_[rank];
}

void Engine::set_clock(int rank, double time) {
  check_rank(rank);
  clock_[rank] = time;
}

double Engine::max_clock() const {
  // Four independent accumulators: a single running max is a chain of
  // data-dependent maxsd ops (3-4 cycles each), which dominates the metrics
  // phase-end path on wide topologies.  Clocks are non-negative, so 0 is a
  // safe identity.
  const double* p = clock_.data();
  const std::size_t n = clock_.size();
  double m0 = 0.0;
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = m0 < p[i] ? p[i] : m0;
    m1 = m1 < p[i + 1] ? p[i + 1] : m1;
    m2 = m2 < p[i + 2] ? p[i + 2] : m2;
    m3 = m3 < p[i + 3] ? p[i + 3] : m3;
  }
  for (; i < n; ++i) m0 = m0 < p[i] ? p[i] : m0;
  m0 = m0 < m1 ? m1 : m0;
  m2 = m2 < m3 ? m3 : m2;
  return m0 < m2 ? m2 : m0;
}

void Engine::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  for (auto& r : send_port_) r.reset();
  for (auto& r : recv_port_) r.reset();
  for (auto& r : nic_out_) r.reset();
  for (auto& r : nic_in_) r.reset();
  for (auto& r : dma_h2d_) r.reset();
  for (auto& r : dma_d2h_) r.reset();
  if (fabric_) fabric_->reset();
  sends_.clear();
  recvs_.clear();
  next_seq_ = 0;
  trace_.clear();
  network_bytes_ = 0;
  network_messages_ = 0;
  fault_msg_counter_ = 0;
}

void Engine::reset(std::uint64_t noise_seed) {
  reset();
  noise_.reseed(noise_seed);
  run_seed_ = noise_seed;
  refresh_fault_stream();
}

PostalParams copy_params_for(const CopyParamTable& table, CopyDir dir,
                             int np) {
  if (np < 1) throw std::invalid_argument("copy_params_for: np must be >= 1");
  const PostalParams& one = table.get(dir, 1);
  const PostalParams& shared = table.get(dir, table.shared_procs);
  if (np == 1) return one;
  if (np >= table.shared_procs) {
    // Beyond the measured sharing level the paper observed no benefit in
    // splitting further: keep the *aggregate* throughput flat (per-process
    // rate degrades proportionally) and let the per-copy latency grow with
    // the number of time-sliced MPS clients.
    const double factor = static_cast<double>(np) / table.shared_procs;
    PostalParams out = shared;
    out.alpha = shared.alpha * factor;
    out.beta = shared.beta * factor;
    return out;
  }
  // Geometric interpolation in log(np) between the two measured rows.
  const double f = std::log(static_cast<double>(np)) /
                   std::log(static_cast<double>(table.shared_procs));
  PostalParams out;
  out.alpha = one.alpha * std::pow(shared.alpha / one.alpha, f);
  out.beta = one.beta * std::pow(shared.beta / one.beta, f);
  return out;
}

}  // namespace hetcomm
