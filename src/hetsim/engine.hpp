#pragma once
// Discrete-event simulation engine for heterogeneous-node communication.
//
// Programming model (rank-phase):
//   * Client code iterates over ranks and posts nonblocking operations
//     (isend / irecv) plus blocking local work (copy / compute / pack),
//     all stamped with the posting rank's local clock.
//   * resolve() matches every pending send to its receive, schedules the
//     transfers against contended resources (per-process ports, per-node NIC
//     ingress/egress servers, per-GPU DMA engines) in global ready-time
//     order, and advances each rank's clock to the completion of its own
//     operations -- there is no global barrier.
//
// An uncontended message costs exactly alpha + beta*s from the calibrated
// parameter table; contention (queueing on shared resources) and measurement
// noise create the spread between the analytic models and "measured" times,
// just as on real hardware.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "hetsim/faults.hpp"
#include "hetsim/network.hpp"
#include "hetsim/noise.hpp"
#include "hetsim/params.hpp"
#include "hetsim/resources.hpp"
#include "hetsim/topology.hpp"
#include "hetsim/trace.hpp"

namespace hetcomm {

namespace core {
class CompiledPlan;  // compiled (rep-invariant) form of a core::CommPlan
}  // namespace core

namespace obs {
struct EngineMetrics;  // fixed-slot metrics sink (obs/engine_metrics.hpp)
}  // namespace obs

class Engine {
 public:
  Engine(Topology topology, ParamSet params,
         NoiseModel noise = NoiseModel{});

  // Non-copyable (owns mutable resource state), movable.  The defaulted
  // moves are safe: every member is value-owned (vectors, optional fabric,
  // trace) and nothing holds a pointer or reference back into the engine,
  // so a moved-to engine is fully usable mid-sweep.  A moved-FROM engine is
  // valid-but-empty; reconstruct or assign before reusing it.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const ParamSet& params() const noexcept { return params_; }
  /// Resolved per-placement path-class ids (built once at construction from
  /// the ParamSet's taxonomy; the scheduling hot path does O(1) lookups).
  [[nodiscard]] const PathTable& paths() const noexcept { return paths_; }

  /// Post a nonblocking send of `bytes` from `src` to `dst`.  The payload
  /// lives in `space` (Host = staged-through-host path, Device =
  /// device-aware path).  Returns a request id.
  ///
  /// `rail` pins an off-node transfer to one of the machine's NIC lanes
  /// (0-based; -1 = the default hash-to-lane choice; >= nics_per_node
  /// throws std::invalid_argument).  `depends_on` is the request id of an
  /// earlier isend whose *completion* produces this send's data (chunked
  /// pipelining); -1 = independent.  resolve() schedules dependency waves
  /// in order, so a dependent transfer becomes ready no earlier than its
  /// gating transfer completes.
  int isend(int src, int dst, std::int64_t bytes, int tag, MemSpace space,
            int rail = -1, int depends_on = -1);

  /// Post a matching nonblocking receive at `dst`.  Returns a request id.
  int irecv(int dst, int src, std::int64_t bytes, int tag, MemSpace space);

  /// Blocking host<->device copy by `rank` against `gpu`'s DMA engine.
  /// `sharing_procs` selects the copy parameter row: >1 means this copy is
  /// one of `sharing_procs` simultaneous copies via duplicate device
  /// pointers (CUDA MPS style); `bytes` is this process's portion.
  void copy(int rank, int gpu, CopyDir dir, std::int64_t bytes,
            int sharing_procs = 1);

  /// Blocking local computation on `rank`.
  void compute(int rank, double seconds);

  /// Blocking CPU-side buffer packing/unpacking of `bytes` on `rank`.
  void pack(int rank, std::int64_t bytes);

  /// Match and schedule all pending sends/receives, then advance each
  /// rank's clock past its own completed operations.  Throws
  /// std::logic_error if any operation remains unmatched or sizes
  /// mismatch; on failure every pending operation is dropped (so
  /// has_pending() is false and a reused per-worker engine is not
  /// poisoned), but clocks already carry the posting overheads -- call
  /// reset() before reusing the engine for a fresh run.  Matching and
  /// scheduling run entirely on member-owned scratch: after warm-up,
  /// resolve() performs no heap allocation.
  void resolve();

  /// Execute a compiled plan: the rep-invariant work (send/recv matching,
  /// path classification, protocol selection, alpha/beta lookups, queue
  /// depths) was hoisted into the CompiledPlan at compile time, so this
  /// inner loop only draws noise, queues on contended resources, and
  /// advances clocks.  Event-for-event identical -- clocks, traces,
  /// counters, noise stream -- to posting the original CommPlan through
  /// isend/irecv/copy/pack + resolve().  The engine must have been
  /// constructed with the same Topology and ParamSet the plan was
  /// compiled against (checked structurally; a mismatch throws
  /// std::invalid_argument), and must not hold pending operations.
  /// Defined in core/compiled_plan.cpp; callers link hetcore.
  void execute(const core::CompiledPlan& plan);

  /// Execute `plan` for lane_seeds.size() repetitions in lockstep over the
  /// same compiled tables (lane-major replay): the plan is read once per
  /// batch, and every per-repetition quantity -- clocks, queue free times,
  /// NIC egress, noise and fault stream positions -- lives in lane-indexed
  /// scratch with lane-innermost layout, so per-step lane loops are
  /// contiguous and vectorizable.  Lane `l` is bit-identical -- clocks,
  /// traces, counters, noise stream -- to `reset(lane_seeds[l]);
  /// execute(plan)` on a serial engine (the counter-based noise and fault
  /// streams are pure hashes of (seed, draw index), so lockstep replay
  /// reproduces each repetition's draw sequence exactly).
  ///
  /// Rank r of lane l finishes at clocks_out[l * num_ranks + r];
  /// clocks_out.size() must be lane_seeds.size() * num_ranks.  When
  /// tracing is enabled and traced_lane >= 0, that lane's events replace
  /// trace() (other lanes record nothing).  The metrics tiers
  /// (set_metrics) record lane 0 only, mirroring core::measure()'s
  /// rep-0-sampled recording.  Network counters accumulate each phase's
  /// totals once per completing lane.
  ///
  /// A per-lane FaultAbort never poisons sibling lanes: the dead lane
  /// stops scheduling, every other lane runs to completion (their
  /// clocks_out slots are valid), and the abort of the lowest-indexed dead
  /// lane -- the one a serial jobs=1 sweep would have hit first -- is
  /// rethrown at the end.  The engine's serial state is untouched either
  /// way; it stays fully reusable without an intervening reset().
  void execute_batch(const core::CompiledPlan& plan,
                     std::span<const std::uint64_t> lane_seeds,
                     std::span<double> clocks_out, int traced_lane = -1);

  /// True if any isend/irecv has been posted and not yet resolved.
  [[nodiscard]] bool has_pending() const noexcept {
    return !sends_.empty() || !recvs_.empty();
  }

  [[nodiscard]] double clock(int rank) const;
  /// All per-rank clocks, indexed by rank (no copy).
  [[nodiscard]] const std::vector<double>& clocks() const noexcept {
    return clock_;
  }
  void set_clock(int rank, double t);
  /// Maximum clock over all ranks (makespan so far).
  [[nodiscard]] double max_clock() const;
  /// Reset all clocks, resources, counters and traces to time zero,
  /// reusing every allocation.  After reset() the engine is
  /// indistinguishable (event-for-event) from a freshly constructed one
  /// with the same topology/params/noise; an attached fabric survives with
  /// its links drained.  Tracing enablement is preserved.
  void reset();
  /// reset(), then reseed the noise stream -- the reuse path of
  /// core::measure(): one engine serves thousands of repetitions without
  /// reallocating resource or queue state.
  void reset(std::uint64_t noise_seed);

  /// Attach a fat-tree fabric (default: NIC-only non-blocking network).
  /// Cross-pod messages then queue on shared, possibly tapered pod links
  /// and pay per-hop switch latency.
  void set_fabric(const FatTreeConfig& config);
  [[nodiscard]] bool has_fabric() const noexcept { return fabric_.has_value(); }

  /// Enable/disable trace recording (disabled by default).
  void set_tracing(bool on) noexcept { tracing_ = on; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Attach a caller-owned metrics sink (nullptr detaches; the default).
  /// Recording only *reads* values the simulation already computed -- it
  /// never touches clocks, resources, or the noise stream -- so results are
  /// bit-identical with a sink attached or not.  The sink accumulates
  /// across reset() calls (per-repetition reuse aggregates in place); the
  /// caller resets it between runs when per-run numbers are wanted.
  ///
  /// The flags gate the sink's recording tiers (obs/engine_metrics.hpp):
  /// `record_invariants` covers the plan-invariant slots (message/byte
  /// counters, deterministic occupancies, NIC egress), identical every
  /// repetition of the same plan, so a replaying caller records them once;
  /// `record_samples` covers the noise-dependent statistics (queue waits,
  /// copy/pack durations), which core::measure() samples on a
  /// deterministic subset of repetitions.  Phase-end clocks ride the
  /// sampled tier too: scanning every rank clock per phase is the single
  /// most expensive recording step, so steady-state repetitions skip it.
  /// Both flags default to on -- a plain set_metrics(&sink) records
  /// everything.
  void set_metrics(obs::EngineMetrics* sink, bool record_invariants = true,
                   bool record_samples = true);
  [[nodiscard]] obs::EngineMetrics* metrics() const noexcept {
    return metrics_;
  }
  /// The sink iff the sampled tier is recording (see set_metrics), else
  /// nullptr.  Phase-end recording outside Engine keys on this.
  [[nodiscard]] obs::EngineMetrics* sampled_metrics() const noexcept {
    return metrics_smp_;
  }

  /// Attach a caller-owned fault model (nullptr detaches; the default).
  /// The model is validated structurally against this engine's machine
  /// (taxonomy classes, node count, NIC lanes, ranks; a mismatch throws
  /// std::invalid_argument) and then shared read-only -- one model may be
  /// attached to many per-worker engines.  An empty model is normalized to
  /// nullptr, so zero-fault plans take the exact unfaulted hot path and are
  /// bit-identical to running with no fault layer at all.  Fault decisions
  /// draw from a dedicated mix_seed stream keyed by (run seed, model seed,
  /// message id, attempt) -- never from the noise stream and never from
  /// worker identity -- so faulted runs keep the bit-identical-across-jobs
  /// guarantee.  Exhausted retries and permanent NIC outages raise
  /// FaultAbort; resolve() then drops all pending operations (same contract
  /// as a matching failure) and the engine is reusable after reset().
  void set_faults(const FaultModel* faults);
  [[nodiscard]] const FaultModel* faults() const noexcept { return faults_; }

  /// Total bytes that crossed the network (off-node messages), since reset.
  [[nodiscard]] std::int64_t network_bytes() const noexcept {
    return network_bytes_;
  }
  /// Total off-node message count since reset.
  [[nodiscard]] std::int64_t network_messages() const noexcept {
    return network_messages_;
  }

 private:
  struct PendingOp {
    int self = -1;   ///< posting rank
    int peer = -1;   ///< the other side
    std::int64_t bytes = 0;
    int tag = 0;
    MemSpace space = MemSpace::Host;
    double post_time = 0.0;
    int seq = 0;  ///< global posting order, for deterministic tie-breaks
    int rail = -1;     ///< explicit NIC lane (sends only; -1 = hashed)
    int dep_seq = -1;  ///< gating send's request id (sends only; -1 = none)
  };

  struct Matched {
    PendingOp send;
    PendingOp recv;
    double ready = 0.0;
  };

  void check_rank(int rank) const;
  /// Schedule one matched transfer; returns its completion time (what a
  /// dependent send in a later wave becomes ready at).
  double schedule(Matched& m, std::vector<int>& recv_queue_depth);
  /// resolve() tail for batches holding depends_on edges: buckets matched
  /// transfers into dependency waves and schedules wave by wave.
  void resolve_waves();
  void fail_resolve(const std::string& what);  ///< clear pending, then throw

  /// Per-message fault state resolved once before the (re)send loop.
  /// Occupancies default to the unfaulted inputs; loss stays null when no
  /// rule matches, which also disables the retry loop entirely.
  struct FaultMsgState {
    double send_occupancy = 0.0;
    double drain_occupancy = 0.0;
    double completion_base = 0.0;
    double nic_occupancy_src = 0.0;
    double nic_occupancy_dst = 0.0;
    const LossRule* loss = nullptr;
    std::uint64_t msg_id = 0;
    bool degraded = false;
    double extra_seconds = 0.0;
  };

  // The fault helpers are inline members so the interpreted (engine.cpp),
  // compiled, and lane-batched (core/compiled_plan.cpp) scheduling paths
  // share the exact same expression trees -- a requirement for the
  // bit-identity contract between the engine modes.  The caller supplies
  // the schedule-order message id and the fault stream (the serial paths
  // pass fault_msg_counter_++ / fault_stream_; execute_batch passes its
  // per-lane equivalents).  Only call them when faults_ != nullptr.
  [[nodiscard]] FaultMsgState fault_prepare(
      std::int32_t src, std::uint8_t path_id, bool off_node,
      std::int32_t src_node, std::int32_t dst_node, std::int32_t src_nic,
      std::int32_t dst_nic, double send_occupancy, double drain_occupancy,
      double completion_base, double nic_occupancy, double ready,
      std::uint64_t msg_id) {
    FaultMsgState st;
    st.msg_id = msg_id;
    const int lanes = std::max(1, params_.injection.nics_per_node);
    FaultModel::MessageView view;
    view.src = src;
    view.path_id = path_id;
    view.off_node = off_node;
    view.src_node = src_node;
    view.dst_node = dst_node;
    view.src_lane = off_node ? src_nic - src_node * lanes : -1;
    view.dst_lane = off_node ? dst_nic - dst_node * lanes : -1;
    view.send_occupancy = send_occupancy;
    view.drain_occupancy = drain_occupancy;
    view.completion_base = completion_base;
    view.nic_occupancy = nic_occupancy;
    view.nic_overhead = params_.overheads.nic_message_overhead;
    const FaultModel::EffectiveMessage eff = faults_->effective(view, ready);
    st.send_occupancy = eff.send_occupancy;
    st.drain_occupancy = eff.drain_occupancy;
    st.completion_base = eff.completion_base;
    st.nic_occupancy_src = eff.nic_occupancy_src;
    st.nic_occupancy_dst = eff.nic_occupancy_dst;
    st.degraded = eff.degraded;
    st.extra_seconds = eff.extra_seconds;
    st.loss = faults_->loss_rule(path_id, ready);
    return st;
  }

  /// Outage-aware lane selection for NIC server `nic_server`
  /// (= node*lanes + lane) at time `t`.  Returns the server index to use,
  /// advancing `t` to the earliest recovery when every lane of the node is
  /// down; sets `failover` when the home lane was not used.  Throws
  /// FaultAbort when no lane of the node ever recovers.
  [[nodiscard]] std::int32_t fault_route_nic(std::int32_t node,
                                             std::int32_t nic_server,
                                             double& t, bool& failover,
                                             std::int32_t src,
                                             std::int32_t dst,
                                             std::uint8_t path_id) {
    const int lanes = std::max(1, params_.injection.nics_per_node);
    const FaultModel::LaneRoute r =
        faults_->route_lane(node, nic_server - node * lanes, lanes, t);
    if (r.at == std::numeric_limits<double>::infinity()) {
      throw_nic_unavailable(src, dst, path_id);
    }
    failover = r.failover;
    if (r.at > t) t = r.at;
    return node * lanes + r.lane;
  }

  /// Deterministic loss decision for send attempt `attempt` (0-based) drawn
  /// from `stream` (the engine's fault_stream_, or a lane's own stream).
  [[nodiscard]] bool fault_lost(const FaultMsgState& st, int attempt,
                                std::uint64_t stream) const noexcept {
    return st.loss != nullptr &&
           fault_uniform(stream, st.msg_id,
                         static_cast<std::uint32_t>(attempt)) <
               st.loss->probability;
  }

  // Cold structured-failure paths (defined in engine.cpp; they build the
  // taxonomy-name string, which must stay out of the scheduling loop).
  [[noreturn]] void throw_retries_exhausted(std::int32_t src,
                                            std::int32_t dst,
                                            std::uint8_t path_id,
                                            int attempts) const;
  [[noreturn]] void throw_nic_unavailable(std::int32_t src, std::int32_t dst,
                                          std::uint8_t path_id) const;
  /// Fault stream for a run seed: the salted double-mix shared by the
  /// serial engine (refresh_fault_stream) and execute_batch's per-lane
  /// streams, so lane l's fault draws equal those of a serial run reseeded
  /// with lane l's seed.
  [[nodiscard]] std::uint64_t fault_stream_for(
      std::uint64_t run_seed) const noexcept;
  void refresh_fault_stream() noexcept;

  Topology topo_;
  ParamSet params_;
  NoiseModel noise_;
  PathTable paths_;  ///< dense (rank,rank) -> taxonomy class id

  std::vector<double> clock_;
  std::vector<BusyServer> send_port_;  ///< per-rank outbound transport
  std::vector<BusyServer> recv_port_;  ///< per-rank inbound transport
  std::vector<BusyServer> nic_out_;    ///< per-NIC-lane egress (node x lanes)
  std::vector<BusyServer> nic_in_;     ///< per-NIC-lane ingress (node x lanes)
  std::vector<std::int32_t> nic_of_rank_;  ///< rank -> NIC-lane server index
  std::vector<BusyServer> dma_h2d_;    ///< per-GPU DMA engine, H2D
  std::vector<BusyServer> dma_d2h_;    ///< per-GPU DMA engine, D2H
  std::optional<FatTreeFabric> fabric_;  ///< optional tapered fat tree

  std::vector<PendingOp> sends_;
  std::vector<PendingOp> recvs_;
  int next_seq_ = 0;

  // Per-resolve / per-execute scratch.  Member-owned so repeated calls on a
  // reused engine clear-and-refill instead of reallocating; sized lazily on
  // first use, capacity retained across reset().  Never read across calls.
  std::vector<std::uint32_t> send_order_scratch_;  ///< sends by (key, seq)
  std::vector<std::uint32_t> recv_order_scratch_;  ///< recvs by (key, seq)
  std::vector<Matched> matched_scratch_;
  std::vector<int> recv_depth_scratch_;        ///< posted recvs per rank
  // Dependency-wave scratch (resolve with dep_seq edges; see resolve()).
  std::vector<std::int32_t> seq_to_matched_scratch_;  ///< send seq -> matched
  std::vector<std::int32_t> matched_dep_scratch_;     ///< matched -> matched
  std::vector<std::int32_t> matched_depth_scratch_;   ///< dep-chain depth
  std::vector<double> matched_completion_scratch_;    ///< per-transfer finish
  std::vector<std::uint32_t> wave_order_scratch_;     ///< one wave's members
  std::vector<double> post_send_scratch_;      ///< compiled: send post times
  std::vector<double> post_recv_scratch_;      ///< compiled: recv post times
  std::vector<double> ready_scratch_;          ///< compiled: transfer ready
  /// Per-phase schedule orders, kept across execute()/execute_batch() calls
  /// as the *starting permutation* for the next (ready, index) sort.  Noise
  /// jitter rarely reorders ready times between repetitions (or sibling
  /// lanes), so re-sorting from the previous order is a near-linear
  /// insertion pass with predictable branches instead of an O(M log M)
  /// comparison sort on freshly jittered keys.  Purely a warm start: the
  /// sort result is the unique strict total order whatever the hint holds,
  /// so results never depend on engine history.
  std::vector<std::vector<std::uint32_t>> sched_order_cache_;
  /// Scratch for the schedule sort: (ready bit pattern, index) keys packed
  /// so the sort compares integers in place of gathered doubles.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sched_key_scratch_;

  // Lane-batched scratch (execute_batch; defined in core/compiled_plan.cpp).
  // Lane-innermost layout: entity e of lane l lives at [e * lanes + l], so
  // the posting pass's per-step lane loops touch contiguous memory.  Sized
  // on entry, capacity retained across calls; never read across calls.
  std::vector<double> lane_clock_;             ///< ranks x lanes
  std::vector<BusyServer> lane_send_port_;     ///< ranks x lanes
  std::vector<BusyServer> lane_recv_port_;     ///< ranks x lanes
  std::vector<BusyServer> lane_nic_out_;       ///< NIC servers x lanes
  std::vector<BusyServer> lane_nic_in_;        ///< NIC servers x lanes
  std::vector<BusyServer> lane_dma_h2d_;       ///< GPUs x lanes
  std::vector<BusyServer> lane_dma_d2h_;       ///< GPUs x lanes
  std::vector<FatTreeFabric> lane_fabric_;     ///< per-lane fabric copies
  std::vector<double> lane_post_send_;         ///< messages x lanes
  std::vector<double> lane_post_recv_;         ///< messages x lanes
  std::vector<double> lane_ready_;             ///< one lane at a time
  std::vector<std::uint64_t> lane_noise_stream_;  ///< per-lane noise seeds
  std::vector<std::uint64_t> lane_noise_draws_;   ///< per-lane draw counters
  std::vector<std::uint64_t> lane_fault_stream_;  ///< per-lane fault streams
  std::vector<std::uint64_t> lane_fault_msg_;     ///< per-lane message ids
  std::vector<std::uint8_t> lane_alive_;          ///< 0 after a FaultAbort

  bool tracing_ = false;
  Trace trace_;
  obs::EngineMetrics* metrics_ = nullptr;  ///< caller-owned; may be null
  /// Tier gates: the same sink while that tier should record, else null.
  /// Hot paths test these pointers, so repetitions with a tier disabled
  /// skip its recording work entirely (no extra loads or flag checks).
  obs::EngineMetrics* metrics_inv_ = nullptr;  ///< plan-invariant slots
  obs::EngineMetrics* metrics_smp_ = nullptr;  ///< sampled statistics
  std::int64_t network_bytes_ = 0;
  std::int64_t network_messages_ = 0;

  // Fault layer (null = no faults, the hot paths' fast case).  The stream
  // mixes the run seed with the model seed so distinct fault seeds decohere
  // even under the same run seed; the message counter advances in schedule
  // order (identical across worker counts and engine modes) and resets with
  // the engine, keying every loss decision deterministically.
  const FaultModel* faults_ = nullptr;  ///< caller-owned; may be null
  std::uint64_t run_seed_ = 0x5eedULL;
  std::uint64_t fault_stream_ = 0;
  std::uint64_t fault_msg_counter_ = 0;
};

/// Copy parameters for `np` processes sharing one GPU's DMA engine.
/// np == 1 and np == table.shared_procs return measured rows; intermediate
/// values interpolate geometrically in np.  Above the measured sharing
/// level both alpha and beta scale linearly with np (flat aggregate
/// throughput, growing per-client latency), reflecting the paper's "no
/// benefit past four processes" observation.
[[nodiscard]] PostalParams copy_params_for(const CopyParamTable& table,
                                           CopyDir dir, int np);

}  // namespace hetcomm
