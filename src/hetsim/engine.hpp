#pragma once
// Discrete-event simulation engine for heterogeneous-node communication.
//
// Programming model (rank-phase):
//   * Client code iterates over ranks and posts nonblocking operations
//     (isend / irecv) plus blocking local work (copy / compute / pack),
//     all stamped with the posting rank's local clock.
//   * resolve() matches every pending send to its receive, schedules the
//     transfers against contended resources (per-process ports, per-node NIC
//     ingress/egress servers, per-GPU DMA engines) in global ready-time
//     order, and advances each rank's clock to the completion of its own
//     operations -- there is no global barrier.
//
// An uncontended message costs exactly alpha + beta*s from the calibrated
// parameter table; contention (queueing on shared resources) and measurement
// noise create the spread between the analytic models and "measured" times,
// just as on real hardware.

#include <cstdint>
#include <optional>
#include <vector>

#include "hetsim/network.hpp"
#include "hetsim/noise.hpp"
#include "hetsim/params.hpp"
#include "hetsim/resources.hpp"
#include "hetsim/topology.hpp"
#include "hetsim/trace.hpp"

namespace hetcomm {

namespace core {
class CompiledPlan;  // compiled (rep-invariant) form of a core::CommPlan
}  // namespace core

namespace obs {
struct EngineMetrics;  // fixed-slot metrics sink (obs/engine_metrics.hpp)
}  // namespace obs

class Engine {
 public:
  Engine(Topology topology, ParamSet params,
         NoiseModel noise = NoiseModel{});

  // Non-copyable (owns mutable resource state), movable.  The defaulted
  // moves are safe: every member is value-owned (vectors, optional fabric,
  // trace) and nothing holds a pointer or reference back into the engine,
  // so a moved-to engine is fully usable mid-sweep.  A moved-FROM engine is
  // valid-but-empty; reconstruct or assign before reusing it.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const ParamSet& params() const noexcept { return params_; }
  /// Resolved per-placement path-class ids (built once at construction from
  /// the ParamSet's taxonomy; the scheduling hot path does O(1) lookups).
  [[nodiscard]] const PathTable& paths() const noexcept { return paths_; }

  /// Post a nonblocking send of `bytes` from `src` to `dst`.  The payload
  /// lives in `space` (Host = staged-through-host path, Device =
  /// device-aware path).  Returns a request id.
  int isend(int src, int dst, std::int64_t bytes, int tag, MemSpace space);

  /// Post a matching nonblocking receive at `dst`.  Returns a request id.
  int irecv(int dst, int src, std::int64_t bytes, int tag, MemSpace space);

  /// Blocking host<->device copy by `rank` against `gpu`'s DMA engine.
  /// `sharing_procs` selects the copy parameter row: >1 means this copy is
  /// one of `sharing_procs` simultaneous copies via duplicate device
  /// pointers (CUDA MPS style); `bytes` is this process's portion.
  void copy(int rank, int gpu, CopyDir dir, std::int64_t bytes,
            int sharing_procs = 1);

  /// Blocking local computation on `rank`.
  void compute(int rank, double seconds);

  /// Blocking CPU-side buffer packing/unpacking of `bytes` on `rank`.
  void pack(int rank, std::int64_t bytes);

  /// Match and schedule all pending sends/receives, then advance each
  /// rank's clock past its own completed operations.  Throws
  /// std::logic_error if any operation remains unmatched or sizes
  /// mismatch; on failure every pending operation is dropped (so
  /// has_pending() is false and a reused per-worker engine is not
  /// poisoned), but clocks already carry the posting overheads -- call
  /// reset() before reusing the engine for a fresh run.  Matching and
  /// scheduling run entirely on member-owned scratch: after warm-up,
  /// resolve() performs no heap allocation.
  void resolve();

  /// Execute a compiled plan: the rep-invariant work (send/recv matching,
  /// path classification, protocol selection, alpha/beta lookups, queue
  /// depths) was hoisted into the CompiledPlan at compile time, so this
  /// inner loop only draws noise, queues on contended resources, and
  /// advances clocks.  Event-for-event identical -- clocks, traces,
  /// counters, noise stream -- to posting the original CommPlan through
  /// isend/irecv/copy/pack + resolve().  The engine must have been
  /// constructed with the same Topology and ParamSet the plan was
  /// compiled against (checked structurally; a mismatch throws
  /// std::invalid_argument), and must not hold pending operations.
  /// Defined in core/compiled_plan.cpp; callers link hetcore.
  void execute(const core::CompiledPlan& plan);

  /// True if any isend/irecv has been posted and not yet resolved.
  [[nodiscard]] bool has_pending() const noexcept {
    return !sends_.empty() || !recvs_.empty();
  }

  [[nodiscard]] double clock(int rank) const;
  /// All per-rank clocks, indexed by rank (no copy).
  [[nodiscard]] const std::vector<double>& clocks() const noexcept {
    return clock_;
  }
  void set_clock(int rank, double t);
  /// Maximum clock over all ranks (makespan so far).
  [[nodiscard]] double max_clock() const;
  /// Reset all clocks, resources, counters and traces to time zero,
  /// reusing every allocation.  After reset() the engine is
  /// indistinguishable (event-for-event) from a freshly constructed one
  /// with the same topology/params/noise; an attached fabric survives with
  /// its links drained.  Tracing enablement is preserved.
  void reset();
  /// reset(), then reseed the noise stream -- the reuse path of
  /// core::measure(): one engine serves thousands of repetitions without
  /// reallocating resource or queue state.
  void reset(std::uint64_t noise_seed);

  /// Attach a fat-tree fabric (default: NIC-only non-blocking network).
  /// Cross-pod messages then queue on shared, possibly tapered pod links
  /// and pay per-hop switch latency.
  void set_fabric(const FatTreeConfig& config);
  [[nodiscard]] bool has_fabric() const noexcept { return fabric_.has_value(); }

  /// Enable/disable trace recording (disabled by default).
  void set_tracing(bool on) noexcept { tracing_ = on; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Attach a caller-owned metrics sink (nullptr detaches; the default).
  /// Recording only *reads* values the simulation already computed -- it
  /// never touches clocks, resources, or the noise stream -- so results are
  /// bit-identical with a sink attached or not.  The sink accumulates
  /// across reset() calls (per-repetition reuse aggregates in place); the
  /// caller resets it between runs when per-run numbers are wanted.
  ///
  /// The flags gate the sink's recording tiers (obs/engine_metrics.hpp):
  /// `record_invariants` covers the plan-invariant slots (message/byte
  /// counters, deterministic occupancies, NIC egress), identical every
  /// repetition of the same plan, so a replaying caller records them once;
  /// `record_samples` covers the noise-dependent statistics (queue waits,
  /// copy/pack durations), which core::measure() samples on a
  /// deterministic subset of repetitions.  Phase-end clocks ride the
  /// sampled tier too: scanning every rank clock per phase is the single
  /// most expensive recording step, so steady-state repetitions skip it.
  /// Both flags default to on -- a plain set_metrics(&sink) records
  /// everything.
  void set_metrics(obs::EngineMetrics* sink, bool record_invariants = true,
                   bool record_samples = true);
  [[nodiscard]] obs::EngineMetrics* metrics() const noexcept {
    return metrics_;
  }
  /// The sink iff the sampled tier is recording (see set_metrics), else
  /// nullptr.  Phase-end recording outside Engine keys on this.
  [[nodiscard]] obs::EngineMetrics* sampled_metrics() const noexcept {
    return metrics_smp_;
  }

  /// Total bytes that crossed the network (off-node messages), since reset.
  [[nodiscard]] std::int64_t network_bytes() const noexcept {
    return network_bytes_;
  }
  /// Total off-node message count since reset.
  [[nodiscard]] std::int64_t network_messages() const noexcept {
    return network_messages_;
  }

 private:
  struct PendingOp {
    int self = -1;   ///< posting rank
    int peer = -1;   ///< the other side
    std::int64_t bytes = 0;
    int tag = 0;
    MemSpace space = MemSpace::Host;
    double post_time = 0.0;
    int seq = 0;  ///< global posting order, for deterministic tie-breaks
  };

  struct Matched {
    PendingOp send;
    PendingOp recv;
    double ready = 0.0;
  };

  void check_rank(int rank) const;
  void schedule(Matched& m, std::vector<int>& recv_queue_depth);
  void fail_resolve(const std::string& what);  ///< clear pending, then throw

  Topology topo_;
  ParamSet params_;
  NoiseModel noise_;
  PathTable paths_;  ///< dense (rank,rank) -> taxonomy class id

  std::vector<double> clock_;
  std::vector<BusyServer> send_port_;  ///< per-rank outbound transport
  std::vector<BusyServer> recv_port_;  ///< per-rank inbound transport
  std::vector<BusyServer> nic_out_;    ///< per-NIC-lane egress (node x lanes)
  std::vector<BusyServer> nic_in_;     ///< per-NIC-lane ingress (node x lanes)
  std::vector<std::int32_t> nic_of_rank_;  ///< rank -> NIC-lane server index
  std::vector<BusyServer> dma_h2d_;    ///< per-GPU DMA engine, H2D
  std::vector<BusyServer> dma_d2h_;    ///< per-GPU DMA engine, D2H
  std::optional<FatTreeFabric> fabric_;  ///< optional tapered fat tree

  std::vector<PendingOp> sends_;
  std::vector<PendingOp> recvs_;
  int next_seq_ = 0;

  // Per-resolve / per-execute scratch.  Member-owned so repeated calls on a
  // reused engine clear-and-refill instead of reallocating; sized lazily on
  // first use, capacity retained across reset().  Never read across calls.
  std::vector<std::uint32_t> send_order_scratch_;  ///< sends by (key, seq)
  std::vector<std::uint32_t> recv_order_scratch_;  ///< recvs by (key, seq)
  std::vector<Matched> matched_scratch_;
  std::vector<int> recv_depth_scratch_;        ///< posted recvs per rank
  std::vector<double> post_send_scratch_;      ///< compiled: send post times
  std::vector<double> post_recv_scratch_;      ///< compiled: recv post times
  std::vector<double> ready_scratch_;          ///< compiled: transfer ready
  std::vector<std::uint32_t> sched_order_scratch_;  ///< compiled: schedule order

  bool tracing_ = false;
  Trace trace_;
  obs::EngineMetrics* metrics_ = nullptr;  ///< caller-owned; may be null
  /// Tier gates: the same sink while that tier should record, else null.
  /// Hot paths test these pointers, so repetitions with a tier disabled
  /// skip its recording work entirely (no extra loads or flag checks).
  obs::EngineMetrics* metrics_inv_ = nullptr;  ///< plan-invariant slots
  obs::EngineMetrics* metrics_smp_ = nullptr;  ///< sampled statistics
  std::int64_t network_bytes_ = 0;
  std::int64_t network_messages_ = 0;
};

/// Copy parameters for `np` processes sharing one GPU's DMA engine.
/// np == 1 and np == table.shared_procs return measured rows; intermediate
/// values interpolate geometrically in np.  Above the measured sharing
/// level both alpha and beta scale linearly with np (flat aggregate
/// throughput, growing per-client latency), reflecting the paper's "no
/// benefit past four processes" observation.
[[nodiscard]] PostalParams copy_params_for(const CopyParamTable& table,
                                           CopyDir dir, int np);

}  // namespace hetcomm
