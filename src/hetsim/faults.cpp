#include "hetsim/faults.hpp"

#include <cmath>
#include <sstream>

namespace hetcomm {

namespace {

std::string format_abort(FaultAbort::Reason reason,
                         const std::string& strategy, int src, int dst,
                         const std::string& path, int attempts) {
  std::ostringstream os;
  os << "fault abort";
  if (!strategy.empty()) os << " [strategy " << strategy << "]";
  os << ": message " << src << "->" << dst << " on path '" << path << "'";
  switch (reason) {
    case FaultAbort::Reason::RetriesExhausted:
      os << ": lost on all " << attempts << " send attempts"
         << " (retry budget exhausted)";
      break;
    case FaultAbort::Reason::NicUnavailable:
      os << ": every NIC lane is down with no scheduled recovery";
      break;
  }
  return os.str();
}

void check_window(const FaultWindow& w, const char* rule) {
  if (std::isnan(w.begin) || std::isnan(w.end) || w.begin < 0.0) {
    throw std::invalid_argument(std::string("fault model: ") + rule +
                                ": invalid window");
  }
}

void check_factor(double f, const char* rule, const char* which) {
  if (!(f > 0.0) || !std::isfinite(f)) {
    throw std::invalid_argument(std::string("fault model: ") + rule + ": " +
                                which + " factor must be finite and > 0");
  }
}

void check_rank_factors(const std::vector<double>& factors, int num_ranks,
                        const char* which) {
  if (factors.size() > static_cast<std::size_t>(num_ranks)) {
    throw std::invalid_argument(std::string("fault model: ") + which +
                                " factors cover more ranks than the machine "
                                "has (" +
                                std::to_string(factors.size()) + " > " +
                                std::to_string(num_ranks) + ")");
  }
  for (double f : factors) check_factor(f, which, "per-rank");
}

}  // namespace

FaultAbort::FaultAbort(Reason reason_in, std::string strategy_in, int src_in,
                       int dst_in, int path_id_in, std::string path_in,
                       int attempts_in)
    : std::runtime_error(format_abort(reason_in, strategy_in, src_in, dst_in,
                                      path_in, attempts_in)),
      reason(reason_in),
      strategy(std::move(strategy_in)),
      src(src_in),
      dst(dst_in),
      path_id(path_id_in),
      path(std::move(path_in)),
      attempts(attempts_in) {}

bool FaultModel::empty() const noexcept {
  if (!degradations.empty() || !nic_degradations.empty() ||
      !outages.empty() || !losses.empty()) {
    return false;
  }
  for (double f : compute_factor) {
    if (f != 1.0) return false;
  }
  for (double f : injection_factor) {
    if (f != 1.0) return false;
  }
  return true;
}

void FaultModel::validate(int num_ranks, int num_paths, int num_nodes,
                          int nic_lanes) const {
  for (const LinkDegradeRule& r : degradations) {
    if (r.path_id < -1 || r.path_id >= num_paths) {
      throw std::invalid_argument(
          "fault model: link degradation: path class id " +
          std::to_string(r.path_id) + " out of range (machine declares " +
          std::to_string(num_paths) + ")");
    }
    check_factor(r.alpha_factor, "link degradation", "alpha");
    check_factor(r.beta_factor, "link degradation", "beta");
    check_window(r.window, "link degradation");
  }
  for (const NicDegradeRule& r : nic_degradations) {
    if (r.node < -1 || r.node >= num_nodes) {
      throw std::invalid_argument("fault model: NIC degradation: node " +
                                  std::to_string(r.node) + " out of range");
    }
    if (r.lane < -1 || r.lane >= nic_lanes) {
      throw std::invalid_argument("fault model: NIC degradation: lane " +
                                  std::to_string(r.lane) +
                                  " out of range (machine has " +
                                  std::to_string(nic_lanes) + " lanes)");
    }
    check_factor(r.alpha_factor, "NIC degradation", "alpha");
    check_factor(r.beta_factor, "NIC degradation", "beta");
    check_window(r.window, "NIC degradation");
  }
  for (const NicOutageRule& r : outages) {
    if (r.node < -1 || r.node >= num_nodes) {
      throw std::invalid_argument("fault model: NIC outage: node " +
                                  std::to_string(r.node) + " out of range");
    }
    if (r.lane < -1 || r.lane >= nic_lanes) {
      throw std::invalid_argument("fault model: NIC outage: lane " +
                                  std::to_string(r.lane) +
                                  " out of range (machine has " +
                                  std::to_string(nic_lanes) + " lanes)");
    }
    check_window(r.window, "NIC outage");
  }
  for (const LossRule& r : losses) {
    if (r.path_id < -1 || r.path_id >= num_paths) {
      throw std::invalid_argument("fault model: message loss: path class id " +
                                  std::to_string(r.path_id) +
                                  " out of range (machine declares " +
                                  std::to_string(num_paths) + ")");
    }
    if (!(r.probability >= 0.0) || !(r.probability <= 1.0)) {
      throw std::invalid_argument(
          "fault model: message loss: probability must be in [0, 1]");
    }
    if (!(r.retry.timeout >= 0.0) || !std::isfinite(r.retry.timeout)) {
      throw std::invalid_argument(
          "fault model: message loss: retry timeout must be finite and >= 0");
    }
    if (!(r.retry.backoff >= 1.0) || !std::isfinite(r.retry.backoff)) {
      throw std::invalid_argument(
          "fault model: message loss: retry backoff must be >= 1");
    }
    if (!(r.retry.max_delay >= 0.0)) {
      throw std::invalid_argument(
          "fault model: message loss: retry max_delay must be >= 0");
    }
    if (r.retry.max_attempts < 1) {
      throw std::invalid_argument(
          "fault model: message loss: retry max_attempts must be >= 1");
    }
    check_window(r.window, "message loss");
  }
  check_rank_factors(compute_factor, num_ranks, "compute");
  check_rank_factors(injection_factor, num_ranks, "injection");
}

}  // namespace hetcomm
