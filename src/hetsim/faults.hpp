#pragma once
// Runtime fault/degradation model for the simulation engine.
//
// A FaultModel is the *resolved* form of a declarative fault::FaultPlan
// (src/fault/plan.hpp): every scope has already been cross-validated against
// a concrete machine and turned into dense ids -- taxonomy class ids, node
// and NIC-lane indices, per-rank factor arrays -- so the engine's hot path
// does integer compares and multiplications, never string lookups.
//
// Four perturbation kinds compose:
//
//   * link degradation   -- multiply a path class's postal alpha/beta (and,
//     separately, a NIC lane's per-message overhead / inverse rate) over a
//     sim-time window;
//   * NIC rail outage    -- a lane is down over a window; off-node traffic
//     fails over to a surviving lane of the same node (re-queuing on that
//     lane's busy server) or waits for the earliest recovery;
//   * straggler ranks    -- per-rank multiplicative compute / injection
//     slowdowns;
//   * transient loss     -- each send attempt of a matching message is lost
//     with probability p; lost attempts still consume the resources they
//     acquired, then retry after an exponential-backoff delay.  Exhausting
//     the retry budget raises FaultAbort (a structured error, never a hang).
//
// Determinism contract: loss decisions are pure hashes of
// (fault stream, message id, attempt) via mix_seed -- message ids count
// scheduled messages in schedule order, which is identical across worker
// counts and across the compiled/interpreted engines -- so faulted runs are
// bit-identical for any --jobs value and both execution modes.  A FaultModel
// with no rules behaves exactly like no fault layer at all: every hook is
// guarded so that neutral factors (1.0) and zero probabilities leave each
// double untouched bit-for-bit.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "hetsim/noise.hpp"

namespace hetcomm {

/// Half-open sim-time window [begin, end).  The default window is always
/// active; a window with end <= begin never is.
struct FaultWindow {
  double begin = 0.0;
  double end = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool contains(double t) const noexcept {
    return t >= begin && t < end;
  }
  [[nodiscard]] bool always() const noexcept {
    return begin <= 0.0 && end == std::numeric_limits<double>::infinity();
  }
};

/// Exponential-backoff retry policy for lossy links.  Retry i (0-based)
/// waits min(timeout * backoff^i, max_delay) after the lost attempt's
/// completion; after max_attempts total send attempts the message hard-fails
/// with FaultAbort.
struct RetryPolicy {
  double timeout = 1e-4;   ///< delay before the first retry [s]
  double backoff = 2.0;    ///< multiplier per further retry (>= 1)
  double max_delay = 1e-2; ///< cap on any single retry delay [s]
  int max_attempts = 5;    ///< total send attempts before FaultAbort
};

/// Delay injected before 0-based retry `retry_index`:
/// min(timeout * backoff^retry_index, max_delay).  Multiplies iteratively
/// with an early exit at the cap, so large indices cannot overflow.
[[nodiscard]] inline double retry_delay(const RetryPolicy& policy,
                                        int retry_index) noexcept {
  double delay = policy.timeout;
  for (int i = 0; i < retry_index; ++i) {
    delay *= policy.backoff;
    if (delay >= policy.max_delay) return policy.max_delay;
  }
  return delay < policy.max_delay ? delay : policy.max_delay;
}

/// Total delay injected by the first `retries` retries (monotone in
/// `retries`, capped per-retry by max_delay).
[[nodiscard]] inline double total_retry_delay(const RetryPolicy& policy,
                                              int retries) noexcept {
  double total = 0.0;
  for (int i = 0; i < retries; ++i) total += retry_delay(policy, i);
  return total;
}

/// Stateless uniform draw in [0, 1) keyed by (stream, message id, attempt).
/// A pure mix_seed hash: no generator state, so fault decisions can never
/// depend on scheduling interleaving or worker threads.
[[nodiscard]] inline double fault_uniform(std::uint64_t stream,
                                          std::uint64_t message,
                                          std::uint32_t attempt) noexcept {
  const std::uint64_t h = mix_seed(mix_seed(stream, message), attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Link degradation scoped to one taxonomy path class (-1 = every class):
/// the message's postal alpha scales by alpha_factor and beta by
/// beta_factor while the window is active.
struct LinkDegradeRule {
  int path_id = -1;
  double alpha_factor = 1.0;
  double beta_factor = 1.0;
  FaultWindow window;
};

/// NIC-lane degradation scoped to (node, lane), -1 = wildcard: the lane's
/// per-message overhead scales by alpha_factor and its inverse injection
/// rate by beta_factor.
struct NicDegradeRule {
  int node = -1;
  int lane = -1;
  double alpha_factor = 1.0;
  double beta_factor = 1.0;
  FaultWindow window;
};

/// NIC rail outage: lane `lane` of node `node` (-1 = wildcard) is down over
/// the window.
struct NicOutageRule {
  int node = -1;
  int lane = 0;
  FaultWindow window;
};

/// Transient message loss on a path class (-1 = every class): each send
/// attempt of a matching message is lost with `probability`, retried per
/// `retry`.  The first matching rule wins.
struct LossRule {
  int path_id = -1;
  double probability = 0.0;
  RetryPolicy retry;
  FaultWindow window;
};

/// Structured hard failure raised when a fault makes a message undeliverable
/// (retry budget exhausted, or no NIC lane ever recovers).  The engine
/// leaves no pending state behind (resolve()'s failure contract) and is
/// reusable after reset().  core::measure() fills `strategy` from the
/// plan's name before propagating.
class FaultAbort : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t {
    RetriesExhausted,  ///< loss rule hit max_attempts
    NicUnavailable,    ///< every NIC lane of a node is down forever
  };

  FaultAbort(Reason reason, std::string strategy, int src, int dst,
             int path_id, std::string path, int attempts);

  Reason reason;
  std::string strategy;  ///< plan/strategy label ("" until a caller fills it)
  int src;               ///< sending rank
  int dst;               ///< receiving rank
  int path_id;           ///< taxonomy class id
  std::string path;      ///< taxonomy class name
  int attempts;          ///< send attempts consumed
};

/// Resolved, machine-validated fault rules.  Plain data: tests build one
/// directly; production code compiles one from a fault::FaultPlan.  Shared
/// by const pointer across engines/workers (attach via Engine::set_faults);
/// never mutated during simulation.
class FaultModel {
 public:
  std::uint64_t seed = 0;  ///< fault-stream seed (mixed with the run seed)

  std::vector<LinkDegradeRule> degradations;
  std::vector<NicDegradeRule> nic_degradations;
  std::vector<NicOutageRule> outages;
  std::vector<LossRule> losses;
  /// Per-rank multiplicative slowdowns (empty = all 1.0).  compute_factor
  /// scales compute/pack/copy durations; injection_factor scales the rank's
  /// send-port and NIC-egress occupancies.
  std::vector<double> compute_factor;
  std::vector<double> injection_factor;

  /// True when the model perturbs nothing at all; Engine::set_faults
  /// normalizes an empty model to a detached fault layer.
  [[nodiscard]] bool empty() const noexcept;

  /// Structural cross-check against the machine an engine was built for;
  /// throws std::invalid_argument naming the offending rule.
  void validate(int num_ranks, int num_paths, int num_nodes,
                int nic_lanes) const;

  [[nodiscard]] bool has_outages() const noexcept { return !outages.empty(); }

  [[nodiscard]] double rank_compute_factor(int rank) const noexcept {
    return static_cast<std::size_t>(rank) < compute_factor.size()
               ? compute_factor[static_cast<std::size_t>(rank)]
               : 1.0;
  }
  [[nodiscard]] double rank_injection_factor(int rank) const noexcept {
    return static_cast<std::size_t>(rank) < injection_factor.size()
               ? injection_factor[static_cast<std::size_t>(rank)]
               : 1.0;
  }

  /// First loss rule matching (path class, window at `t`), else nullptr.
  [[nodiscard]] const LossRule* loss_rule(int path_id,
                                          double t) const noexcept {
    for (const LossRule& r : losses) {
      if ((r.path_id < 0 || r.path_id == path_id) && r.window.contains(t)) {
        return &r;
      }
    }
    return nullptr;
  }

  /// Rep-invariant per-message inputs, identical in the interpreted and
  /// compiled scheduling paths (the compiled path reads them from the
  /// CompiledPlan tables, which are bit-equal to the interpreter's
  /// expressions by contract).
  struct MessageView {
    std::int32_t src = -1;
    std::uint8_t path_id = 0;
    bool off_node = false;
    std::int32_t src_node = -1;
    std::int32_t dst_node = -1;
    std::int32_t src_lane = -1;
    std::int32_t dst_lane = -1;
    double send_occupancy = 0.0;
    double drain_occupancy = 0.0;
    double completion_base = 0.0;
    double nic_occupancy = 0.0;
    double nic_overhead = 0.0;  ///< alpha part of nic_occupancy
  };

  /// Fault-adjusted occupancies for one message.  Windows gate on the
  /// message's first transfer-ready time `t` (one deterministic probe per
  /// message, not per resource).  Neutral rules leave every field
  /// bit-identical to the inputs: each adjustment is guarded by an exact
  /// factor != 1.0 test, so an all-neutral FaultPlan cannot change results.
  struct EffectiveMessage {
    double send_occupancy = 0.0;
    double drain_occupancy = 0.0;
    double completion_base = 0.0;
    double nic_occupancy_src = 0.0;
    double nic_occupancy_dst = 0.0;
    bool degraded = false;
    double extra_seconds = 0.0;  ///< occupancy added by degradation
  };

  [[nodiscard]] EffectiveMessage effective(const MessageView& m,
                                           double t) const noexcept {
    EffectiveMessage e;
    e.send_occupancy = m.send_occupancy;
    e.drain_occupancy = m.drain_occupancy;
    e.completion_base = m.completion_base;
    e.nic_occupancy_src = m.nic_occupancy;
    e.nic_occupancy_dst = m.nic_occupancy;

    double fa = 1.0;
    double fb = 1.0;
    for (const LinkDegradeRule& r : degradations) {
      if ((r.path_id < 0 || r.path_id == m.path_id) && r.window.contains(t)) {
        fa *= r.alpha_factor;
        fb *= r.beta_factor;
      }
    }
    if (fa != 1.0 || fb != 1.0) {
      // Recover alpha and the queue-search term from the precomputed sums
      // instead of the raw parameter table: both engine modes carry the
      // same sums, so the degraded values are bit-identical across modes.
      const double beta_s = m.drain_occupancy;
      const double alpha = m.send_occupancy - beta_s;
      const double queue_term = m.completion_base - m.send_occupancy;
      e.send_occupancy = fa * alpha + fb * beta_s;
      e.drain_occupancy = fb * beta_s;
      e.completion_base = e.send_occupancy + queue_term;
      e.degraded = true;
    }

    if (m.off_node && !nic_degradations.empty()) {
      double sa = 1.0;
      double sb = 1.0;
      double da = 1.0;
      double db = 1.0;
      for (const NicDegradeRule& r : nic_degradations) {
        if (!r.window.contains(t)) continue;
        if ((r.node < 0 || r.node == m.src_node) &&
            (r.lane < 0 || r.lane == m.src_lane)) {
          sa *= r.alpha_factor;
          sb *= r.beta_factor;
        }
        if ((r.node < 0 || r.node == m.dst_node) &&
            (r.lane < 0 || r.lane == m.dst_lane)) {
          da *= r.alpha_factor;
          db *= r.beta_factor;
        }
      }
      const double rate_part = m.nic_occupancy - m.nic_overhead;
      if (sa != 1.0 || sb != 1.0) {
        e.nic_occupancy_src = sa * m.nic_overhead + sb * rate_part;
        e.degraded = true;
      }
      if (da != 1.0 || db != 1.0) {
        e.nic_occupancy_dst = da * m.nic_overhead + db * rate_part;
        e.degraded = true;
      }
    }

    const double inj = rank_injection_factor(m.src);
    if (inj != 1.0) {
      e.send_occupancy *= inj;
      e.nic_occupancy_src *= inj;
      e.degraded = true;
    }

    if (e.degraded) {
      e.extra_seconds = (e.send_occupancy - m.send_occupancy) +
                        (e.drain_occupancy - m.drain_occupancy);
      if (m.off_node) {
        e.extra_seconds += (e.nic_occupancy_src - m.nic_occupancy) +
                           (e.nic_occupancy_dst - m.nic_occupancy);
      }
    }
    return e;
  }

  [[nodiscard]] bool lane_down(int node, int lane, double t) const noexcept {
    for (const NicOutageRule& r : outages) {
      if ((r.node < 0 || r.node == node) && (r.lane < 0 || r.lane == lane) &&
          r.window.contains(t)) {
        return true;
      }
    }
    return false;
  }

  /// Earliest time >= t at which (node, lane) is up; +inf when an unbounded
  /// outage covers it.  Iterates to a fixpoint over overlapping windows.
  [[nodiscard]] double lane_up_at(int node, int lane,
                                  double t) const noexcept {
    double u = t;
    for (;;) {
      bool moved = false;
      for (const NicOutageRule& r : outages) {
        if ((r.node < 0 || r.node == node) &&
            (r.lane < 0 || r.lane == lane) && r.window.contains(u)) {
          if (r.window.end == std::numeric_limits<double>::infinity()) {
            return r.window.end;
          }
          u = r.window.end;
          moved = true;
        }
      }
      if (!moved) return u;
    }
  }

  struct LaneRoute {
    std::int32_t lane = 0;  ///< lane to inject on
    double at = 0.0;        ///< earliest usable time (>= probe time)
    bool failover = false;  ///< true when not the home lane at probe time
  };

  /// Route (node, home_lane) at time t around outages: the home lane when
  /// up, else the first surviving lane scanning (home+1) % lanes onward,
  /// else the lane with the earliest recovery (lowest index on ties).
  /// `at` is +inf when no lane of the node ever recovers.
  [[nodiscard]] LaneRoute route_lane(int node, int home_lane, int lanes,
                                     double t) const noexcept {
    if (!lane_down(node, home_lane, t)) {
      return {home_lane, t, false};
    }
    for (int k = 1; k < lanes; ++k) {
      const int lane = (home_lane + k) % lanes;
      if (!lane_down(node, lane, t)) return {lane, t, true};
    }
    double best = std::numeric_limits<double>::infinity();
    std::int32_t best_lane = static_cast<std::int32_t>(home_lane);
    for (int lane = 0; lane < lanes; ++lane) {
      const double up = lane_up_at(node, lane, t);
      if (up < best) {
        best = up;
        best_lane = lane;
      }
    }
    return {best_lane, best, true};
  }
};

}  // namespace hetcomm
