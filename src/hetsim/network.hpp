#pragma once
// Optional fat-tree network fabric.
//
// The engine's default network model is NIC-only: a non-blocking fabric
// where the only shared resources are each node's injection/ejection ports
// (accurate for Lassen/Summit's non-blocking EDR fat trees, paper §2.1).
// For what-if studies of *tapered* (oversubscribed) fat trees -- common on
// cost-constrained clusters -- this fabric adds per-pod uplink/downlink
// capacity and per-hop switch latency: traffic between nodes in the same
// leaf pod sees only the extra leaf-switch hop, while cross-pod traffic
// also queues on the pod's (possibly oversubscribed) uplinks.

#include <stdexcept>
#include <vector>

#include "hetsim/resources.hpp"

namespace hetcomm {

struct FatTreeConfig {
  /// Nodes attached to one leaf switch (half the switch radix).
  int nodes_per_pod = 18;
  /// Oversubscription factor: 1.0 = non-blocking, 2.0 = a pod's aggregate
  /// uplink bandwidth is half its injection bandwidth, etc.
  double taper = 1.0;
  /// Extra latency per switch hop (leaf = 1 hop, leaf-spine-leaf = 3 hops).
  double per_hop_latency = 1.0e-7;

  void validate() const {
    if (nodes_per_pod < 1) {
      throw std::invalid_argument("FatTreeConfig: nodes_per_pod must be >= 1");
    }
    if (taper < 1.0) {
      throw std::invalid_argument("FatTreeConfig: taper must be >= 1");
    }
    if (per_hop_latency < 0.0) {
      throw std::invalid_argument("FatTreeConfig: negative hop latency");
    }
  }
};

/// Mutable fabric state: per-pod uplink and downlink servers.
class FatTreeFabric {
 public:
  FatTreeFabric(FatTreeConfig config, int num_nodes, double nic_inv_rate)
      : config_(config), nic_inv_rate_(nic_inv_rate) {
    config_.validate();
    const int pods =
        (num_nodes + config_.nodes_per_pod - 1) / config_.nodes_per_pod;
    up_.resize(static_cast<std::size_t>(pods));
    down_.resize(static_cast<std::size_t>(pods));
  }

  [[nodiscard]] int pod_of(int node) const {
    return node / config_.nodes_per_pod;
  }
  [[nodiscard]] bool same_pod(int node_a, int node_b) const {
    return pod_of(node_a) == pod_of(node_b);
  }

  /// Extra one-way latency for a message between two nodes.
  [[nodiscard]] double hop_latency(int src_node, int dst_node) const {
    const int hops = same_pod(src_node, dst_node) ? 1 : 3;
    return hops * config_.per_hop_latency;
  }

  /// Byte occupancy on a pod's shared up/down links.  The pod aggregates
  /// nodes_per_pod NICs; with taper t its uplink capacity is
  /// (nodes_per_pod / t) NIC-equivalents.
  [[nodiscard]] double link_occupancy(std::int64_t bytes) const {
    return static_cast<double>(bytes) * nic_inv_rate_ * config_.taper /
           config_.nodes_per_pod;
  }

  /// Route a cross-pod transfer through the shared links; returns the time
  /// the last resource was acquired.  Same-pod traffic bypasses the spine.
  double acquire(int src_node, int dst_node, std::int64_t bytes,
                 double ready) {
    if (same_pod(src_node, dst_node)) return ready;
    const double occupancy = link_occupancy(bytes);
    double t = up_[static_cast<std::size_t>(pod_of(src_node))].acquire(
        ready, occupancy);
    t = down_[static_cast<std::size_t>(pod_of(dst_node))].acquire(t,
                                                                  occupancy);
    return t;
  }

  void reset() {
    for (BusyServer& s : up_) s.reset();
    for (BusyServer& s : down_) s.reset();
  }

  [[nodiscard]] const FatTreeConfig& config() const noexcept { return config_; }

 private:
  FatTreeConfig config_;
  double nic_inv_rate_;
  std::vector<BusyServer> up_;
  std::vector<BusyServer> down_;
};

}  // namespace hetcomm
