#pragma once
// Multiplicative timing noise for the simulator.
//
// Real measurements jitter; the paper averages 1000 iterations and reports
// the max over ranks.  The simulator reproduces that methodology with a
// seeded lognormal perturbation applied to every scheduled duration, so
// repeated runs with different seeds behave like repeated measurements while
// a fixed seed keeps unit tests deterministic.

#include <cmath>
#include <cstdint>
#include <random>

namespace hetcomm {

/// SplitMix64-style hash of (base seed, sequence number) into an
/// independent per-repetition seed.  Unlike `base + rep`, distinct
/// (base, rep) pairs never collide into the same stream, adjacent
/// repetitions are decorrelated, and the seed depends only on the
/// repetition index -- never on which worker thread runs it -- which is
/// what makes multi-threaded measurement bit-identical to serial.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t base,
                                               std::uint64_t sequence) noexcept {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (sequence + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class NoiseModel {
 public:
  /// `sigma` is the lognormal shape parameter; 0 disables noise entirely.
  explicit NoiseModel(std::uint64_t seed = 0x5eedULL, double sigma = 0.0)
      : rng_(seed), sigma_(sigma) {}

  /// Perturb a duration.  The lognormal is mean-corrected so that
  /// E[perturb(t)] == t for any sigma.
  [[nodiscard]] double perturb(double duration) {
    if (sigma_ <= 0.0) return duration;
    std::lognormal_distribution<double> dist(-0.5 * sigma_ * sigma_, sigma_);
    return duration * dist(rng_);
  }

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  void reseed(std::uint64_t seed) { rng_.seed(seed); }

 private:
  std::mt19937_64 rng_;
  double sigma_;
};

}  // namespace hetcomm
