#pragma once
// Multiplicative timing noise for the simulator.
//
// Real measurements jitter; the paper averages 1000 iterations and reports
// the max over ranks.  The simulator reproduces that methodology with a
// seeded, mean-one multiplicative perturbation applied to every scheduled
// duration, so repeated runs with different seeds behave like repeated
// measurements while a fixed seed keeps unit tests deterministic.
//
// The stream is *counter-based*: draw `i` of stream `s` is a pure hash of
// (s, i), with no generator state beyond the counter itself.  That is what
// lets the lane-batched engine (Engine::execute_batch) replay any
// repetition's draws out of order and in lockstep with other repetitions
// while staying bit-identical to the serial engine -- the k-th draw of a
// repetition has the same value no matter which lane, worker, or engine
// mode produces it.  It is also several times cheaper than the historical
// stateful mt19937_64 + lognormal_distribution draw (no transcendentals,
// no rejection loops), which matters because noise draws are the dominant
// per-repetition cost once a plan is compiled.

#include <cstdint>

namespace hetcomm {

/// SplitMix64-style hash of (base seed, sequence number) into an
/// independent per-repetition seed.  Unlike `base + rep`, distinct
/// (base, rep) pairs never collide into the same stream, adjacent
/// repetitions are decorrelated, and the seed depends only on the
/// repetition index -- never on which worker thread runs it -- which is
/// what makes multi-threaded measurement bit-identical to serial.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t base,
                                               std::uint64_t sequence) noexcept {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (sequence + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Multiplicative jitter factor for draw `draw` of noise stream `stream`:
/// 1 + sigma * z, where z is a unit-variance, exactly-mean-zero Bates(4)
/// variate (the average of four independent uniforms, recentred and
/// rescaled) built from four mix_seed hashes.  E[factor] == 1 exactly for
/// any sigma, z is bounded to [-2*sqrt(3), 2*sqrt(3)], and the whole
/// expression is branch-light straight-line arithmetic -- no libm calls --
/// so per-lane draw loops vectorize.  The floor keeps pathological sigmas
/// (> ~0.29, far beyond the calibrated 0.02-0.05 range) from producing
/// non-positive durations; it is unreachable below that.
[[nodiscard]] inline double noise_factor(std::uint64_t stream,
                                         std::uint64_t draw,
                                         double sigma) noexcept {
  constexpr double kUniform = 0x1.0p-53;  // 53-bit mantissa -> [0, 1)
  constexpr double kSqrt3 = 1.7320508075688772935;  // unit variance scale
  const double u0 = static_cast<double>(mix_seed(stream, 4 * draw) >> 11);
  const double u1 = static_cast<double>(mix_seed(stream, 4 * draw + 1) >> 11);
  const double u2 = static_cast<double>(mix_seed(stream, 4 * draw + 2) >> 11);
  const double u3 = static_cast<double>(mix_seed(stream, 4 * draw + 3) >> 11);
  const double sum = (u0 + u1 + u2 + u3) * kUniform;  // in [0, 4)
  const double factor = 1.0 + sigma * ((sum - 2.0) * kSqrt3);
  return factor > 0x1.0p-6 ? factor : 0x1.0p-6;
}

/// A position in a counter-based noise stream: (stream seed, draws so far).
/// perturb() scales a duration by noise_factor(stream, draws++, sigma), so
/// the model is trivially copyable and a fresh model at the same seed
/// replays the identical sequence.
class NoiseModel {
 public:
  /// `sigma` is the relative jitter magnitude (the factor's standard
  /// deviation); 0 disables noise entirely.
  explicit NoiseModel(std::uint64_t seed = 0x5eedULL, double sigma = 0.0)
      : stream_(seed), sigma_(sigma) {}

  /// Perturb a duration.  The factor is mean-corrected by construction:
  /// E[perturb(t)] == t for any sigma.  sigma == 0 consumes no draw.
  [[nodiscard]] double perturb(double duration) {
    if (sigma_ <= 0.0) return duration;
    return duration * noise_factor(stream_, draws_++, sigma_);
  }

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  /// Stream seed / draw counter, exposed so batched replay can mirror the
  /// serial stream position exactly.
  [[nodiscard]] std::uint64_t stream() const noexcept { return stream_; }
  [[nodiscard]] std::uint64_t draws() const noexcept { return draws_; }

  /// Restart as a fresh stream at `seed` (draw counter rewinds to zero).
  void reseed(std::uint64_t seed) {
    stream_ = seed;
    draws_ = 0;
  }

 private:
  std::uint64_t stream_;
  std::uint64_t draws_ = 0;
  double sigma_;
};

}  // namespace hetcomm
