#include "hetsim/params.hpp"

namespace hetcomm {

namespace {

// Shorthand used by the preset constructors below.
void set_row(MessageParamTable& t, MemSpace space, Protocol proto,
             PostalParams on_socket, PostalParams on_node,
             PostalParams off_node) {
  t.set(space, proto, PathClass::OnSocket, on_socket);
  t.set(space, proto, PathClass::OnNode, on_node);
  t.set(space, proto, PathClass::OffNode, off_node);
}

}  // namespace

void ParamSet::validate() const {
  try {
    taxonomy.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("ParamSet '" + name + "': " + e.what());
  }
  auto check_pair = [this](const PostalParams& p, const std::string& what) {
    if (p.alpha <= 0.0 || p.beta <= 0.0) {
      throw std::invalid_argument("ParamSet '" + name + "': " + what +
                                  " has non-positive alpha/beta");
    }
  };
  for (const MemSpace space : {MemSpace::Host, MemSpace::Device}) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      for (int path = 0; path < taxonomy.num_classes(); ++path) {
        check_pair(messages.get(space, proto, path),
                   std::string(to_string(space)) + "/" + to_string(proto) +
                       "/" + taxonomy.cls(path).name);
      }
    }
  }
  check_pair(copies.h2d_1proc, "copy H2D (1 proc)");
  check_pair(copies.d2h_1proc, "copy D2H (1 proc)");
  check_pair(copies.h2d_4proc, "copy H2D (shared)");
  check_pair(copies.d2h_4proc, "copy D2H (shared)");
  if (copies.shared_procs < 2) {
    throw std::invalid_argument("ParamSet '" + name +
                                "': shared_procs must be >= 2");
  }
  if (injection.inv_rate_cpu <= 0.0 || injection.inv_rate_gpu <= 0.0) {
    throw std::invalid_argument("ParamSet '" + name +
                                "': injection rates must be set");
  }
  if (injection.nics_per_node < 1) {
    throw std::invalid_argument("ParamSet '" + name +
                                "': nics_per_node must be >= 1");
  }
  if (thresholds.short_max <= 0 ||
      thresholds.eager_max <= thresholds.short_max) {
    throw std::invalid_argument(
        "ParamSet '" + name +
        "': protocol thresholds must satisfy 0 < short_max < eager_max");
  }
  if (overheads.queue_search_per_entry < 0.0 || overheads.post_overhead < 0.0 ||
      overheads.dma_op_overhead < 0.0 ||
      overheads.nic_message_overhead < 0.0 || overheads.pack_per_byte < 0.0) {
    throw std::invalid_argument("ParamSet '" + name +
                                "': overheads must be non-negative");
  }
}

ParamSet lassen_params() {
  ParamSet p;
  p.name = "lassen";

  // Paper Table 2: inter-CPU rows.
  set_row(p.messages, MemSpace::Host, Protocol::Short,
          {3.67e-07, 1.32e-10}, {9.25e-07, 1.19e-09}, {1.89e-06, 6.88e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Eager,
          {4.61e-07, 7.12e-11}, {1.17e-06, 2.18e-10}, {2.44e-06, 3.79e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Rendezvous,
          {3.15e-06, 3.40e-11}, {6.77e-06, 1.49e-10}, {7.76e-06, 7.97e-11});

  // Paper Table 2: inter-GPU rows (no short protocol for device-aware).
  set_row(p.messages, MemSpace::Device, Protocol::Eager,
          {1.87e-06, 5.79e-11}, {2.02e-05, 2.15e-10}, {8.95e-06, 1.72e-10});
  set_row(p.messages, MemSpace::Device, Protocol::Rendezvous,
          {1.82e-05, 1.46e-11}, {1.93e-05, 2.39e-11}, {1.10e-05, 1.72e-10});

  // Paper Table 3: cudaMemcpyAsync.
  p.copies.h2d_1proc = {1.30e-05, 1.85e-11};
  p.copies.d2h_1proc = {1.27e-05, 1.96e-11};
  p.copies.h2d_4proc = {1.52e-05, 5.52e-10};
  p.copies.d2h_4proc = {1.47e-05, 1.50e-10};
  p.copies.shared_procs = 4;

  // Paper Table 4: R_N^-1 = 4.19e-11 s/byte (~23.9 GB/s per NIC).
  p.injection.inv_rate_cpu = 4.19e-11;
  // The inter-GPU injection limit is not reached with 4 GPUs/node (paper
  // §3); give the device path the same NIC ceiling so the simulator still
  // has a finite server rate.
  p.injection.inv_rate_gpu = 4.19e-11;

  // Spectrum-MPI-like protocol switch points on Lassen.  The rendezvous
  // switch point also serves as the paper's default split message cap.
  p.thresholds.short_max = 512;
  p.thresholds.eager_max = 16384;

  return p;
}

ParamSet frontier_params() {
  // Frontier-like what-if preset (paper §6): Slingshot-11 class network with
  // ~25 GB/s per NIC x 4 NICs/node treated as one fat server, lower off-node
  // latency, Infinity-Fabric-attached GPUs with cheaper device paths.
  ParamSet p = lassen_params();
  p.name = "frontier-like";

  set_row(p.messages, MemSpace::Host, Protocol::Short,
          {3.0e-07, 1.1e-10}, {3.0e-07, 1.1e-10}, {1.5e-06, 2.0e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Eager,
          {4.0e-07, 6.0e-11}, {4.0e-07, 6.0e-11}, {2.0e-06, 1.2e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Rendezvous,
          {2.5e-06, 3.0e-11}, {2.5e-06, 3.0e-11}, {5.5e-06, 3.0e-11});

  set_row(p.messages, MemSpace::Device, Protocol::Eager,
          {1.5e-06, 3.0e-11}, {1.5e-06, 3.0e-11}, {6.0e-06, 8.0e-11});
  set_row(p.messages, MemSpace::Device, Protocol::Rendezvous,
          {9.0e-06, 8.0e-12}, {9.0e-06, 8.0e-12}, {8.0e-06, 6.0e-11});

  p.copies.h2d_1proc = {8.0e-06, 8.0e-12};
  p.copies.d2h_1proc = {8.0e-06, 8.5e-12};
  p.copies.h2d_4proc = {1.0e-05, 2.4e-10};
  p.copies.d2h_4proc = {1.0e-05, 6.5e-11};

  p.injection.inv_rate_cpu = 1.0e-11;  // ~100 GB/s aggregate injection
  p.injection.inv_rate_gpu = 1.0e-11;
  return p;
}

ParamSet delta_params() {
  // Delta-like what-if preset (paper §6): dual 64-core Milan, A100 GPUs on
  // PCIe (more expensive copies), HDR-class network.
  ParamSet p = lassen_params();
  p.name = "delta-like";

  set_row(p.messages, MemSpace::Host, Protocol::Short,
          {3.2e-07, 1.2e-10}, {7.5e-07, 8.0e-10}, {1.7e-06, 4.0e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Eager,
          {4.2e-07, 6.5e-11}, {9.5e-07, 1.8e-10}, {2.2e-06, 2.2e-10});
  set_row(p.messages, MemSpace::Host, Protocol::Rendezvous,
          {2.9e-06, 3.2e-11}, {5.5e-06, 1.2e-10}, {6.8e-06, 5.0e-11});

  set_row(p.messages, MemSpace::Device, Protocol::Eager,
          {2.4e-06, 8.0e-11}, {2.4e-05, 2.6e-10}, {1.0e-05, 2.0e-10});
  set_row(p.messages, MemSpace::Device, Protocol::Rendezvous,
          {2.1e-05, 2.2e-11}, {2.3e-05, 3.2e-11}, {1.3e-05, 2.0e-10});

  p.copies.h2d_1proc = {1.6e-05, 4.0e-11};  // PCIe gen4 ~25 GB/s
  p.copies.d2h_1proc = {1.6e-05, 4.2e-11};
  p.copies.h2d_4proc = {1.9e-05, 7.0e-10};
  p.copies.d2h_4proc = {1.8e-05, 2.4e-10};

  p.injection.inv_rate_cpu = 2.1e-11;  // HDR200-class
  p.injection.inv_rate_gpu = 2.1e-11;
  return p;
}

}  // namespace hetcomm
