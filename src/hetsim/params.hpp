#pragma once
// Communication cost parameters (paper Tables 2-4).
//
// All times are seconds, all rates bytes/second.  The postal model (eq. 2.1)
// prices one message as T = alpha + beta * s; parameters are keyed by
// (memory space of the payload) x (relative placement) x (messaging
// protocol).  Copy parameters price cudaMemcpyAsync between host and device.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "hetsim/taxonomy.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm {

/// Where a message payload lives when the transfer is issued.
enum class MemSpace : std::uint8_t {
  Host,    ///< CPU memory: staged-through-host transfers
  Device,  ///< GPU memory: device-aware (GPUDirect-style) transfers
};

[[nodiscard]] constexpr const char* to_string(MemSpace m) noexcept {
  return m == MemSpace::Host ? "host" : "device";
}

/// MPI point-to-point messaging protocol (selected by message size).
enum class Protocol : std::uint8_t {
  Short,       ///< payload fits in the envelope; sent immediately
  Eager,       ///< receiver buffers assumed pre-allocated
  Rendezvous,  ///< receiver must allocate before data moves (handshake)
};

[[nodiscard]] constexpr const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::Short: return "short";
    case Protocol::Eager: return "eager";
    case Protocol::Rendezvous: return "rendezvous";
  }
  return "?";
}

/// Direction of a host<->device copy.
enum class CopyDir : std::uint8_t { HostToDevice, DeviceToHost };

[[nodiscard]] constexpr const char* to_string(CopyDir d) noexcept {
  return d == CopyDir::HostToDevice ? "H2D" : "D2H";
}

/// Postal-model pair: T(s) = alpha + beta * s.
struct PostalParams {
  double alpha = 0.0;  ///< latency [s]
  double beta = 0.0;   ///< inverse bandwidth [s/byte]

  [[nodiscard]] double time(std::int64_t bytes) const noexcept {
    return alpha + beta * static_cast<double>(bytes);
  }
};

/// Message-size boundaries between protocols (Spectrum-MPI-like defaults).
struct ProtocolThresholds {
  std::int64_t short_max = 512;     ///< sizes <= short_max use Short (CPU only)
  std::int64_t eager_max = 16384;   ///< sizes <= eager_max use Eager

  [[nodiscard]] Protocol select(MemSpace space, std::int64_t bytes) const {
    if (space == MemSpace::Host && bytes <= short_max) return Protocol::Short;
    if (bytes <= eager_max) return Protocol::Eager;
    return Protocol::Rendezvous;
  }
};

/// Full postal-parameter table: space x protocol x path class.
///
/// Path classes are taxonomy class ids (see hetsim/taxonomy.hpp); the
/// classic three-class taxonomy uses ids 0/1/2 which match the PathClass
/// enum, so the enum-taking overloads keep working unchanged.  Storage is
/// fixed-width (kMaxPathClasses slots) so the table stays allocation-free
/// and trivially copyable regardless of how many classes a machine
/// declares.
///
/// The GPU (device) table has no Short row: device-aware communication on
/// Lassen never uses the short protocol (paper §3); lookups for
/// (Device, Short) resolve to the device Eager parameters.
class MessageParamTable {
 public:
  void set(MemSpace space, Protocol proto, int path, PostalParams p) {
    table_[index(space)][proto_index(space, proto)][path_index(path)] = p;
  }
  void set(MemSpace space, Protocol proto, PathClass path, PostalParams p) {
    set(space, proto, static_cast<int>(path), p);
  }

  [[nodiscard]] const PostalParams& get(MemSpace space, Protocol proto,
                                        int path) const {
    return table_[index(space)][proto_index(space, proto)][path_index(path)];
  }
  [[nodiscard]] const PostalParams& get(MemSpace space, Protocol proto,
                                        PathClass path) const {
    return get(space, proto, static_cast<int>(path));
  }

  /// Parameters for a message of `bytes` bytes along `path`, protocol chosen
  /// by `thresholds`.
  [[nodiscard]] const PostalParams& for_message(
      MemSpace space, int path, std::int64_t bytes,
      const ProtocolThresholds& thresholds) const {
    return get(space, thresholds.select(space, bytes), path);
  }
  [[nodiscard]] const PostalParams& for_message(
      MemSpace space, PathClass path, std::int64_t bytes,
      const ProtocolThresholds& thresholds) const {
    return for_message(space, static_cast<int>(path), bytes, thresholds);
  }

 private:
  static std::size_t index(MemSpace space) {
    return static_cast<std::size_t>(space);
  }
  static std::size_t proto_index(MemSpace space, Protocol proto) {
    if (space == MemSpace::Device && proto == Protocol::Short) {
      return static_cast<std::size_t>(Protocol::Eager);
    }
    return static_cast<std::size_t>(proto);
  }
  static std::size_t path_index(int path) {
    return static_cast<std::size_t>(path);
  }

  std::array<std::array<std::array<PostalParams, kMaxPathClasses>, 3>, 2>
      table_{};
};

/// cudaMemcpyAsync parameters (paper Table 3): per-direction postal pairs
/// for one process copying alone and for `shared_procs` (4 on Lassen)
/// processes copying from the same device simultaneously via duplicate
/// device pointers (CUDA MPS).
struct CopyParamTable {
  PostalParams h2d_1proc;
  PostalParams d2h_1proc;
  PostalParams h2d_4proc;
  PostalParams d2h_4proc;
  int shared_procs = 4;  ///< process count the "_4proc" rows were measured at

  [[nodiscard]] const PostalParams& get(CopyDir dir, int nprocs) const {
    if (nprocs <= 1) {
      return dir == CopyDir::HostToDevice ? h2d_1proc : d2h_1proc;
    }
    return dir == CopyDir::HostToDevice ? h2d_4proc : d2h_4proc;
  }
};

/// Network-injection limits (paper Table 4, max-rate model eq. 2.2).
struct InjectionParams {
  /// Inverse NIC injection rate for host-staged traffic, R_N^-1 [s/byte].
  double inv_rate_cpu = 0.0;
  /// Inverse NIC injection rate for device-aware traffic.  The paper notes
  /// the inter-GPU limit is never reached with 4 GPUs/node on Lassen, so the
  /// default preset leaves it equal to the CPU limit.
  double inv_rate_gpu = 0.0;
  /// Independent NIC lanes per node.  Lassen-like machines expose one
  /// logical NIC (lanes = 1, the historical behaviour); dual-rail nodes
  /// set 2 and the simulator assigns each socket to lane (socket % lanes),
  /// giving each lane its own injection server at the per-NIC rate.
  int nics_per_node = 1;

  /// NIC-lane server index for a rank placement: node-major, lane chosen by
  /// the rank's socket.  With one lane per node this is the node index,
  /// matching the historical per-node NIC servers exactly.
  [[nodiscard]] int nic_of(const RankLocation& loc) const noexcept {
    return loc.node * nics_per_node + loc.socket % nics_per_node;
  }

  [[nodiscard]] double rate(MemSpace space) const {
    const double inv = space == MemSpace::Host ? inv_rate_cpu : inv_rate_gpu;
    if (inv <= 0.0) throw std::logic_error("InjectionParams: rate not set");
    return 1.0 / inv;
  }
};

/// Simulation-only overheads not present in the closed-form models: they
/// create the gap between the analytic worst-case bound and "measured" time.
struct RuntimeOverheads {
  /// Cost to scan the unexpected/posted-receive queue per pending entry
  /// (motivated by Bienz et al., EuroMPI'18 [11]: queue search times grow
  /// with the number of posted receives and are significant for irregular
  /// communication).  This is what makes "split across *all* cores" stop
  /// paying off for small volumes (paper Figure 2.6's shifting minimum).
  double queue_search_per_entry = 1.0e-7;
  /// Fixed software overhead to post a nonblocking operation.
  double post_overhead = 5.0e-8;
  /// DMA-engine per-operation setup occupancy: distinct copies on one GPU
  /// serialize at least this much even when tiny, so issuing *many small*
  /// duplicate-device-pointer copies cannot be free (part of why Split+DD
  /// loses to Split+MD in measurement, paper §5.1).
  double dma_op_overhead = 2.0e-6;
  /// NIC per-message processing occupancy (message-rate limit ~10M msg/s):
  /// many small messages serialize at the NIC even when bandwidth is free.
  /// This is why splitting a small volume across all 40 cores stops helping
  /// (Figure 2.6) and why message-reducing strategies win at high counts.
  double nic_message_overhead = 1.0e-7;
  /// CPU-side packing cost per byte when gathering non-contiguous data into
  /// a single buffer (node-aware gather steps).
  double pack_per_byte = 2.5e-11;
};

/// Complete calibrated parameter set for one machine.
struct ParamSet {
  std::string name = "unnamed";
  PathTaxonomy taxonomy = PathTaxonomy::classic();
  MessageParamTable messages;
  CopyParamTable copies;
  InjectionParams injection;
  ProtocolThresholds thresholds;
  RuntimeOverheads overheads;

  /// Sanity-check the calibration: taxonomy valid, every alpha/beta
  /// positive for every declared path class, protocol thresholds ordered,
  /// injection rates set, overheads non-negative.  Throws
  /// std::invalid_argument describing the first violation.
  void validate() const;
};

/// Measured Lassen parameters (paper Tables 2-4, Spectrum MPI).
[[nodiscard]] ParamSet lassen_params();

/// Hypothetical future-machine parameter sets (paper §6 discussion):
/// Frontier-like (Slingshot network: ~2x injection bandwidth, lower off-node
/// latency, single socket) and Delta-like (more cores, PCIe-attached GPUs).
[[nodiscard]] ParamSet frontier_params();
[[nodiscard]] ParamSet delta_params();

}  // namespace hetcomm
