#pragma once
// Contended serial resources for the discrete-event engine.
//
// Every shared piece of hardware that serializes traffic is modeled as a
// single-server queue: a job arriving at time `ready` that needs `occupancy`
// seconds of the server starts at max(ready, free_at) and pushes free_at
// forward.  This is what makes the max-rate model's injection ceiling (and
// the benefit of splitting data across processes) *emerge* from simulation
// rather than being baked in.

#include <algorithm>

namespace hetcomm {

/// A single-server FIFO resource.
class BusyServer {
 public:
  /// Reserve the server for `occupancy` seconds no earlier than `ready`.
  /// Returns the start time of the reservation.
  double acquire(double ready, double occupancy) {
    const double start = std::max(ready, free_at_);
    free_at_ = start + occupancy;
    return start;
  }

  [[nodiscard]] double free_at() const noexcept { return free_at_; }
  void reset() noexcept { free_at_ = 0.0; }

 private:
  double free_at_ = 0.0;
};

}  // namespace hetcomm
