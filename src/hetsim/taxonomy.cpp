#include "hetsim/taxonomy.hpp"

#include <stdexcept>

namespace hetcomm {

PathTaxonomy PathTaxonomy::classic() {
  PathTaxonomy t;
  const int on_socket = t.add_class("on-socket", PathClass::OnSocket);
  const int on_node = t.add_class("on-node", PathClass::OnNode);
  const int off_node = t.add_class("off-node", PathClass::OffNode);
  t.add_rule({/*same_node=*/1, /*same_socket=*/1, /*both_gpu_owners=*/-1,
              on_socket});
  t.add_rule({/*same_node=*/1, /*same_socket=*/0, /*both_gpu_owners=*/-1,
              on_node});
  t.add_rule({/*same_node=*/0, /*same_socket=*/-1, /*both_gpu_owners=*/-1,
              off_node});
  return t;
}

int PathTaxonomy::add_class(std::string name, PathClass locality) {
  if (name.empty()) {
    throw std::invalid_argument("PathTaxonomy: class name must be non-empty");
  }
  if (id_of(name) >= 0) {
    throw std::invalid_argument("PathTaxonomy: duplicate class name '" + name +
                                "'");
  }
  if (num_classes() >= kMaxPathClasses) {
    throw std::invalid_argument("PathTaxonomy: more than " +
                                std::to_string(kMaxPathClasses) +
                                " path classes");
  }
  classes_.push_back({std::move(name), locality});
  return num_classes() - 1;
}

void PathTaxonomy::add_rule(PathRule rule) {
  if (rule.path < 0 || rule.path >= num_classes()) {
    throw std::invalid_argument("PathTaxonomy: rule selects unknown class id " +
                                std::to_string(rule.path));
  }
  for (const std::int8_t p :
       {rule.same_node, rule.same_socket, rule.both_gpu_owners}) {
    if (p < -1 || p > 1) {
      throw std::invalid_argument(
          "PathTaxonomy: rule predicates must be -1, 0 or 1");
    }
  }
  rules_.push_back(rule);
}

int PathTaxonomy::id_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int PathTaxonomy::representative(PathClass locality) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].locality == locality) return static_cast<int>(i);
  }
  throw std::invalid_argument(
      std::string("PathTaxonomy: no class with locality ") +
      to_string(locality));
}

namespace {

bool matches(const PathRule& rule, const PairPlacement& p) {
  const auto ok = [](std::int8_t want, bool have) {
    return want == -1 || (want == 1) == have;
  };
  return ok(rule.same_node, p.same_node) &&
         ok(rule.same_socket, p.same_socket) &&
         ok(rule.both_gpu_owners, p.both_gpu_owners);
}

}  // namespace

int PathTaxonomy::resolve(const PairPlacement& placement) const {
  for (const PathRule& rule : rules_) {
    if (matches(rule, placement)) return rule.path;
  }
  throw std::logic_error("PathTaxonomy: no rule matches placement");
}

bool PathTaxonomy::is_classic() const {
  if (num_classes() != 3) return false;
  static const PathClass localities[3] = {PathClass::OnSocket,
                                          PathClass::OnNode,
                                          PathClass::OffNode};
  for (int i = 0; i < 3; ++i) {
    if (classes_[static_cast<std::size_t>(i)].locality != localities[i]) {
      return false;
    }
  }
  // Behavioural check: every feasible placement must resolve to the class
  // the historical enum would pick.
  for (const bool owners : {false, true}) {
    const PairPlacement sock{true, true, owners};
    const PairPlacement node{true, false, owners};
    const PairPlacement off{false, false, owners};
    try {
      if (resolve(sock) != 0 || resolve(node) != 1 || resolve(off) != 2) {
        return false;
      }
    } catch (const std::logic_error&) {
      return false;
    }
  }
  return true;
}

void PathTaxonomy::validate() const {
  if (classes_.empty()) {
    throw std::invalid_argument("PathTaxonomy: no path classes declared");
  }
  if (num_classes() > kMaxPathClasses) {
    throw std::invalid_argument("PathTaxonomy: too many path classes");
  }
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    for (std::size_t j = i + 1; j < classes_.size(); ++j) {
      if (classes_[i].name == classes_[j].name) {
        throw std::invalid_argument("PathTaxonomy: duplicate class name '" +
                                    classes_[i].name + "'");
      }
    }
  }
  for (const PathClass loc :
       {PathClass::OnSocket, PathClass::OnNode, PathClass::OffNode}) {
    (void)representative(loc);  // throws when the locality is unrepresented
  }
  // Rules must be total over the six feasible feature combinations, and
  // each resolved class's locality must be consistent with the placement:
  // a cross-node placement uses the NIC, so it must land on an OffNode
  // class, and a shared-node placement must not.
  for (const bool owners : {false, true}) {
    const PairPlacement placements[3] = {
        {true, true, owners},    // same socket
        {true, false, owners},   // same node, different socket
        {false, false, owners},  // different nodes
    };
    for (const PairPlacement& p : placements) {
      int id = -1;
      try {
        id = resolve(p);
      } catch (const std::logic_error&) {
        throw std::invalid_argument(
            "PathTaxonomy: rules do not cover every placement (same_node=" +
            std::to_string(p.same_node) +
            ", same_socket=" + std::to_string(p.same_socket) +
            ", both_gpu_owners=" + std::to_string(p.both_gpu_owners) + ")");
      }
      const bool is_off =
          classes_[static_cast<std::size_t>(id)].locality == PathClass::OffNode;
      if (is_off != !p.same_node) {
        throw std::invalid_argument(
            "PathTaxonomy: class '" + classes_[static_cast<std::size_t>(id)].name +
            "' has locality inconsistent with the placements it resolves "
            "(off-node classes must cover exactly the cross-node pairs)");
      }
    }
  }
}

PathTable::PathTable(const Topology& topo, const PathTaxonomy& taxonomy) {
  taxonomy.validate();
  const MachineShape& shape = topo.shape();
  cpn_ = shape.cores_per_node();
  num_classes_ = taxonomy.num_classes();
  for (int c = 0; c < num_classes_; ++c) {
    locality_[c] = taxonomy.cls(c).locality;
  }
  const std::size_t block = static_cast<std::size_t>(cpn_) * cpn_;
  table_.resize(2 * block);
  for (int la = 0; la < cpn_; ++la) {
    const int sock_a = la / shape.cores_per_socket;
    const bool owner_a = la % shape.cores_per_socket < shape.gpus_per_socket;
    for (int lb = 0; lb < cpn_; ++lb) {
      const int sock_b = lb / shape.cores_per_socket;
      const bool owner_b = lb % shape.cores_per_socket < shape.gpus_per_socket;
      const std::size_t cell =
          static_cast<std::size_t>(la) * cpn_ + static_cast<std::size_t>(lb);
      PairPlacement same;
      same.same_node = true;
      same.same_socket = sock_a == sock_b;
      same.both_gpu_owners = owner_a && owner_b;
      table_[cell] = static_cast<std::uint8_t>(taxonomy.resolve(same));
      PairPlacement cross;
      cross.same_node = false;
      cross.same_socket = false;
      cross.both_gpu_owners = owner_a && owner_b;
      table_[block + cell] = static_cast<std::uint8_t>(taxonomy.resolve(cross));
    }
  }
}

}  // namespace hetcomm
