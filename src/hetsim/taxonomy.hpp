#pragma once
// Machine-defined path taxonomies.
//
// The paper calibrates Lassen with exactly three relative placements
// (on-socket / on-node / off-node), but richer machines need more: NVLink
// peer cliques vs PCIe hops vs cross-socket traversals, multi-NIC nodes,
// and so on.  A PathTaxonomy makes the set of path classes *data*: an
// ordered list of named classes, each anchored to one of the three base
// localities (which is what the simulator and the closed-form models key
// their semantics on), plus an ordered rule list that resolves a pair of
// rank placements to a class.
//
// The classic() taxonomy reproduces the fixed historical enum exactly:
// class ids 0/1/2 are on-socket/on-node/off-node, so code that indexes
// parameter tables with the PathClass enum keeps working bit-for-bit.
//
// Rule resolution is only run at machine-construction time: consumers
// resolve a whole Topology into a PathTable once (dense per-placement class
// ids) and the simulation hot path does O(1) allocation-free lookups.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hetsim/topology.hpp"

namespace hetcomm {

/// Upper bound on path classes per machine; keeps the metrics sink's
/// fixed-slot arrays (obs/engine_metrics.hpp) allocation-free.
inline constexpr int kMaxPathClasses = 8;

/// One named path class.  `locality` anchors the class to the base
/// three-way taxonomy: it decides whether messages on this class traverse
/// the NIC (OffNode) and which role the class plays in the Table-6 model
/// composition.
struct PathClassDef {
  std::string name;
  PathClass locality = PathClass::OnSocket;
};

/// One placement->class rule.  Tri-state predicates: -1 = don't care,
/// 0 = must be false, 1 = must be true.  `both_gpu_owners` is true when
/// both ranks are GPU-owner cores (core index < gpus_per_socket), which is
/// how NVLink-peer cliques are expressed structurally.
struct PathRule {
  std::int8_t same_node = -1;
  std::int8_t same_socket = -1;
  std::int8_t both_gpu_owners = -1;
  int path = 0;  ///< class id selected when the rule matches
};

/// Structural placement features of a rank pair, the resolver's input.
struct PairPlacement {
  bool same_node = false;
  bool same_socket = false;     ///< implies same_node
  bool both_gpu_owners = false; ///< both cores own a GPU on their socket
};

class PathTaxonomy {
 public:
  /// The paper's fixed three classes; ids match the PathClass enum.
  [[nodiscard]] static PathTaxonomy classic();

  /// Append a class; returns its id.  Throws when the name is duplicated
  /// or kMaxPathClasses is exceeded.
  int add_class(std::string name, PathClass locality);

  /// Append a resolution rule (evaluated in insertion order, first match
  /// wins).  Throws when the rule names an unknown class id.
  void add_rule(PathRule rule);

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(classes_.size());
  }
  [[nodiscard]] const PathClassDef& cls(int id) const {
    return classes_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<PathClassDef>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const std::vector<PathRule>& rules() const noexcept {
    return rules_;
  }

  /// Class id by name; -1 when absent.
  [[nodiscard]] int id_of(std::string_view name) const noexcept;

  /// First class anchored to `locality`: the representative the analytic
  /// models use when they need "the" on-socket/on-node/off-node
  /// parameters of a machine.  Throws std::invalid_argument when the
  /// taxonomy declares no class with that locality (validate() rejects
  /// such taxonomies up front).
  [[nodiscard]] int representative(PathClass locality) const;

  /// Resolve a placement through the rule list; throws std::logic_error
  /// when no rule matches (validate() guarantees total coverage).
  [[nodiscard]] int resolve(const PairPlacement& placement) const;

  /// True when this taxonomy is structurally the classic three-class one
  /// (same classes, localities, and resolution behaviour).
  [[nodiscard]] bool is_classic() const;

  /// Strict validation: at least one class, unique names, every locality
  /// represented, rules total over the six feasible placement feature
  /// combinations, and every placement resolves to a class whose locality
  /// is consistent with it (off-node placements must resolve to OffNode
  /// classes and vice versa).  Throws std::invalid_argument.
  void validate() const;

 private:
  std::vector<PathClassDef> classes_;
  std::vector<PathRule> rules_;
};

/// Dense resolved path-class ids for every rank pair of a Topology.
///
/// All nodes are identical, so a pair's class depends only on the two
/// local ranks and whether the ranks share a node; the table therefore
/// stores 2 * cores_per_node^2 ids (same-node block, cross-node block)
/// instead of num_ranks^2, stays cache-resident for any machine size, and
/// the per-message lookup is two divisions and one load -- cheaper than
/// the historical rank_location()-based classification.
class PathTable {
 public:
  PathTable() = default;
  PathTable(const Topology& topo, const PathTaxonomy& taxonomy);

  [[nodiscard]] bool empty() const noexcept { return table_.empty(); }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  /// Class id for a rank pair.  No bounds checks: callers validate ranks.
  [[nodiscard]] std::uint8_t path_of(int rank_a, int rank_b) const noexcept {
    const int na = rank_a / cpn_;
    const int nb = rank_b / cpn_;
    const std::size_t block =
        na == nb ? 0 : static_cast<std::size_t>(cpn_) * cpn_;
    return table_[block + static_cast<std::size_t>(rank_a - na * cpn_) * cpn_ +
                  static_cast<std::size_t>(rank_b - nb * cpn_)];
  }

  /// Base locality / NIC semantics of a class id.
  [[nodiscard]] PathClass locality_of(std::uint8_t id) const noexcept {
    return locality_[id];
  }
  [[nodiscard]] bool off_node(std::uint8_t id) const noexcept {
    return locality_[id] == PathClass::OffNode;
  }

 private:
  std::vector<std::uint8_t> table_;  ///< [same-node | cross-node] x local^2
  PathClass locality_[kMaxPathClasses] = {};
  int cpn_ = 1;          ///< cores per node
  int num_classes_ = 0;
};

}  // namespace hetcomm
