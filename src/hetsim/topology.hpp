#pragma once
// Machine topology for heterogeneous (multi-GPU) compute nodes.
//
// Models the node structure of machines like LLNL Lassen: a machine is a set
// of identical nodes; each node has `sockets_per_node` sockets; each socket
// holds one CPU with `cores_per_socket` cores and `gpus_per_socket` GPUs.
// Host processes (ranks) are pinned one per core, filling cores socket by
// socket, node by node.  Each GPU is owned by one host rank on its socket.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hetcomm {

/// Relative placement of two communicating ranks; selects postal parameters.
enum class PathClass : std::uint8_t {
  OnSocket,  ///< both ranks on the same socket of the same node
  OnNode,    ///< same node, different sockets
  OffNode,   ///< different nodes (network traversal)
};

[[nodiscard]] constexpr const char* to_string(PathClass p) noexcept {
  switch (p) {
    case PathClass::OnSocket: return "on-socket";
    case PathClass::OnNode: return "on-node";
    case PathClass::OffNode: return "off-node";
  }
  return "?";
}

/// Structural shape of a machine (all nodes identical).
struct MachineShape {
  int num_nodes = 1;
  int sockets_per_node = 2;
  int gpus_per_socket = 2;
  int cores_per_socket = 20;

  [[nodiscard]] int gpus_per_node() const noexcept {
    return sockets_per_node * gpus_per_socket;
  }
  [[nodiscard]] int cores_per_node() const noexcept {
    return sockets_per_node * cores_per_socket;
  }
  [[nodiscard]] int total_gpus() const noexcept {
    return num_nodes * gpus_per_node();
  }
  [[nodiscard]] int total_ranks() const noexcept {
    return num_nodes * cores_per_node();
  }

  /// Smallest node count that provides `gpus` GPUs on this shape.  Replaces
  /// the historical hardcoded `gpus / 4` (Lassen-only) derivation in the
  /// bench drivers.  Throws when `gpus` is not positive.
  [[nodiscard]] int nodes_for_gpus(int gpus) const {
    if (gpus < 1) {
      throw std::invalid_argument("MachineShape: gpus must be positive");
    }
    if (gpus_per_node() < 1) {
      throw std::invalid_argument("MachineShape: shape has no GPUs");
    }
    return (gpus + gpus_per_node() - 1) / gpus_per_node();
  }

  void validate() const {
    if (num_nodes < 1 || sockets_per_node < 1 || gpus_per_socket < 0 ||
        cores_per_socket < 1) {
      throw std::invalid_argument("MachineShape: all dimensions must be positive");
    }
    if (gpus_per_socket > cores_per_socket) {
      throw std::invalid_argument(
          "MachineShape: each GPU needs at least one host core on its socket");
    }
  }
};

/// Location of a rank within the machine.
struct RankLocation {
  int node = 0;
  int socket = 0;         ///< socket index within the node
  int core = 0;           ///< core index within the socket
  int local_rank = 0;     ///< rank index within the node (0 .. cores_per_node-1)
};

/// Location of a GPU within the machine.
struct GpuLocation {
  int node = 0;
  int socket = 0;
  int index_on_socket = 0;
  int local_index = 0;    ///< GPU index within the node
};

/// Immutable topology: rank/GPU numbering and placement queries.
///
/// Rank numbering is node-major then socket-major then core:
///   rank = node*cores_per_node + socket*cores_per_socket + core.
/// GPU numbering mirrors it:
///   gpu = node*gpus_per_node + socket*gpus_per_socket + index_on_socket.
/// GPU g is owned by the host rank on g's socket with core index
/// `index_on_socket` (one dedicated owner core per GPU).
class Topology {
 public:
  explicit Topology(MachineShape shape) : shape_(shape) { shape_.validate(); }

  [[nodiscard]] const MachineShape& shape() const noexcept { return shape_; }
  [[nodiscard]] int num_ranks() const noexcept { return shape_.total_ranks(); }
  [[nodiscard]] int num_gpus() const noexcept { return shape_.total_gpus(); }
  [[nodiscard]] int num_nodes() const noexcept { return shape_.num_nodes; }
  [[nodiscard]] int ppn() const noexcept { return shape_.cores_per_node(); }
  [[nodiscard]] int pps() const noexcept { return shape_.cores_per_socket; }
  [[nodiscard]] int gps() const noexcept { return shape_.gpus_per_socket; }
  [[nodiscard]] int gpn() const noexcept { return shape_.gpus_per_node(); }

  [[nodiscard]] RankLocation rank_location(int rank) const {
    check_rank(rank);
    const int cpn = shape_.cores_per_node();
    RankLocation loc;
    loc.node = rank / cpn;
    loc.local_rank = rank % cpn;
    loc.socket = loc.local_rank / shape_.cores_per_socket;
    loc.core = loc.local_rank % shape_.cores_per_socket;
    return loc;
  }

  [[nodiscard]] int rank_of(int node, int socket, int core) const {
    if (node < 0 || node >= shape_.num_nodes || socket < 0 ||
        socket >= shape_.sockets_per_node || core < 0 ||
        core >= shape_.cores_per_socket) {
      throw std::out_of_range("Topology::rank_of: location out of range");
    }
    return node * shape_.cores_per_node() + socket * shape_.cores_per_socket +
           core;
  }

  [[nodiscard]] int node_of_rank(int rank) const {
    check_rank(rank);
    return rank / shape_.cores_per_node();
  }

  [[nodiscard]] int socket_of_rank(int rank) const {
    return rank_location(rank).socket;
  }

  [[nodiscard]] GpuLocation gpu_location(int gpu) const {
    check_gpu(gpu);
    const int gpn_ = shape_.gpus_per_node();
    GpuLocation loc;
    loc.node = gpu / gpn_;
    loc.local_index = gpu % gpn_;
    loc.socket = loc.local_index / shape_.gpus_per_socket;
    loc.index_on_socket = loc.local_index % shape_.gpus_per_socket;
    return loc;
  }

  [[nodiscard]] int gpu_of(int node, int socket, int index_on_socket) const {
    if (node < 0 || node >= shape_.num_nodes || socket < 0 ||
        socket >= shape_.sockets_per_node || index_on_socket < 0 ||
        index_on_socket >= shape_.gpus_per_socket) {
      throw std::out_of_range("Topology::gpu_of: location out of range");
    }
    return node * shape_.gpus_per_node() + socket * shape_.gpus_per_socket +
           index_on_socket;
  }

  /// Host rank that owns (drives) a GPU: the core on the GPU's socket whose
  /// core index equals the GPU's index on that socket.
  [[nodiscard]] int owner_rank_of_gpu(int gpu) const {
    const GpuLocation g = gpu_location(gpu);
    return rank_of(g.node, g.socket, g.index_on_socket);
  }

  /// Inverse of owner_rank_of_gpu; -1 when the rank owns no GPU.
  [[nodiscard]] int gpu_owned_by_rank(int rank) const {
    const RankLocation r = rank_location(rank);
    if (r.core >= shape_.gpus_per_socket) return -1;
    return gpu_of(r.node, r.socket, r.core);
  }

  /// All ranks on a node, in local-rank order.
  [[nodiscard]] std::vector<int> ranks_on_node(int node) const {
    if (node < 0 || node >= shape_.num_nodes) {
      throw std::out_of_range("Topology::ranks_on_node: bad node");
    }
    std::vector<int> out(shape_.cores_per_node());
    const int base = node * shape_.cores_per_node();
    for (int i = 0; i < shape_.cores_per_node(); ++i) out[i] = base + i;
    return out;
  }

  /// All GPUs on a node, in local-index order.
  [[nodiscard]] std::vector<int> gpus_on_node(int node) const {
    if (node < 0 || node >= shape_.num_nodes) {
      throw std::out_of_range("Topology::gpus_on_node: bad node");
    }
    std::vector<int> out(shape_.gpus_per_node());
    const int base = node * shape_.gpus_per_node();
    for (int i = 0; i < shape_.gpus_per_node(); ++i) out[i] = base + i;
    return out;
  }

  [[nodiscard]] PathClass classify(int rank_a, int rank_b) const {
    const RankLocation a = rank_location(rank_a);
    const RankLocation b = rank_location(rank_b);
    if (a.node != b.node) return PathClass::OffNode;
    if (a.socket != b.socket) return PathClass::OnNode;
    return PathClass::OnSocket;
  }

  [[nodiscard]] PathClass classify_gpus(int gpu_a, int gpu_b) const {
    const GpuLocation a = gpu_location(gpu_a);
    const GpuLocation b = gpu_location(gpu_b);
    if (a.node != b.node) return PathClass::OffNode;
    if (a.socket != b.socket) return PathClass::OnNode;
    return PathClass::OnSocket;
  }

 private:
  void check_rank(int rank) const {
    if (rank < 0 || rank >= num_ranks()) {
      throw std::out_of_range("Topology: rank " + std::to_string(rank) +
                              " out of range [0," +
                              std::to_string(num_ranks()) + ")");
    }
  }
  void check_gpu(int gpu) const {
    if (gpu < 0 || gpu >= num_gpus()) {
      throw std::out_of_range("Topology: gpu " + std::to_string(gpu) +
                              " out of range [0," + std::to_string(num_gpus()) +
                              ")");
    }
  }

  MachineShape shape_;
};

/// Named machine presets mirroring §2.1 of the paper.
namespace presets {

/// LLNL Lassen: 2 sockets/node, 2 V100 per socket, 20 cores per Power9.
[[nodiscard]] inline MachineShape lassen(int num_nodes) {
  return MachineShape{num_nodes, /*sockets*/ 2, /*gpus_per_socket*/ 2,
                      /*cores_per_socket*/ 20};
}

/// ORNL Summit: 2 sockets/node, 3 V100 per socket, 20 usable cores per CPU.
[[nodiscard]] inline MachineShape summit(int num_nodes) {
  return MachineShape{num_nodes, 2, 3, 20};
}

/// Frontier-like: single-socket EPYC with 4 GPUs (8 GCDs treated as 4 here),
/// 64 cores.
[[nodiscard]] inline MachineShape frontier(int num_nodes) {
  return MachineShape{num_nodes, 1, 4, 64};
}

/// Delta-like: dual 64-core Milan, 4 GPUs per node (2 per socket).
[[nodiscard]] inline MachineShape delta(int num_nodes) {
  return MachineShape{num_nodes, 2, 2, 64};
}

}  // namespace presets

}  // namespace hetcomm
