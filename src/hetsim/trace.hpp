#pragma once
// Optional event tracing for the discrete-event engine.

#include <cstdint>
#include <vector>

#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm {

/// One scheduled message transfer, as resolved by the engine.
struct MessageTrace {
  int src = -1;
  int dst = -1;
  std::int64_t bytes = 0;
  int tag = 0;
  MemSpace space = MemSpace::Host;
  Protocol protocol = Protocol::Eager;
  PathClass path = PathClass::OnSocket;
  double ready = 0.0;       ///< when both sides were able to proceed
  double start = 0.0;       ///< when the transfer acquired its last resource
  double completion = 0.0;  ///< when the payload landed at the receiver
};

/// One scheduled host<->device copy.
struct CopyTrace {
  int rank = -1;
  int gpu = -1;
  CopyDir dir = CopyDir::DeviceToHost;
  std::int64_t bytes = 0;
  int sharing_procs = 1;
  double start = 0.0;
  double completion = 0.0;
};

struct Trace {
  std::vector<MessageTrace> messages;
  std::vector<CopyTrace> copies;

  void clear() {
    messages.clear();
    copies.clear();
  }
};

}  // namespace hetcomm
