#include "hetsim/trace_export.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hetcomm {

namespace {

std::string message_name(const MessageTrace& m) {
  std::ostringstream os;
  os << m.src << "->" << m.dst << " " << m.bytes << "B "
     << to_string(m.protocol) << " " << to_string(m.path) << " ("
     << to_string(m.space) << ")";
  return os.str();
}

std::string copy_name(const CopyTrace& c) {
  std::ostringstream os;
  os << to_string(c.dir) << " gpu" << c.gpu << " " << c.bytes << "B";
  if (c.sharing_procs > 1) os << " x" << c.sharing_procs;
  return os.str();
}

void emit_event(std::ostream& os, bool& first, const std::string& name,
                const char* category, int track, double start_sec,
                double end_sec) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << name << "\", \"cat\": \"" << category
     << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << track
     << ", \"ts\": " << start_sec * 1e6
     << ", \"dur\": " << std::max(0.0, end_sec - start_sec) * 1e6 << "}";
}

void emit_metadata(std::ostream& os, bool& first, const char* name, int track,
                   const std::string& value) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << name << "\", \"ph\": \"M\", \"pid\": 0, "
     << "\"tid\": " << track << ", \"args\": {\"name\": \"" << value
     << "\"}}";
}

void emit_counter(std::ostream& os, bool& first, const std::string& name,
                  double time_sec, const char* series, double value) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\": \"" << name << "\", \"ph\": \"C\", \"pid\": 0, "
     << "\"tid\": 0, \"ts\": " << time_sec * 1e6 << ", \"args\": {\""
     << series << "\": " << value << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Trace& trace,
                        const Topology& topo) {
  os << "{\"traceEvents\": [\n";
  bool first = true;

  // Metadata ("M"): name the process and every rank track so the viewer
  // shows "rank 3 (node 0)" instead of bare thread ids.
  emit_metadata(os, first, "process_name", 0, "hetcomm simulation");
  for (int rank = 0; rank < topo.num_ranks(); ++rank) {
    emit_metadata(os, first, "thread_name", rank,
                  "rank " + std::to_string(rank) + " (node " +
                      std::to_string(topo.node_of_rank(rank)) + ")");
  }

  for (const MessageTrace& m : trace.messages) {
    emit_event(os, first, message_name(m), "message", m.dst, m.start,
               m.completion);
  }
  for (const CopyTrace& c : trace.copies) {
    emit_event(os, first, copy_name(c), "copy", c.rank, c.start, c.completion);
  }

  // Counters ("C"), derived from the trace alone.  Messages in flight:
  // +1 at each start, -1 at each completion, emitted in (time, insertion)
  // order so equal timestamps resolve deterministically.
  struct Step {
    double time;
    int delta;
  };
  std::vector<Step> steps;
  steps.reserve(trace.messages.size() * 2);
  for (const MessageTrace& m : trace.messages) {
    steps.push_back({m.start, +1});
    steps.push_back({m.completion, -1});
  }
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& a, const Step& b) { return a.time < b.time; });
  int in_flight = 0;
  for (const Step& s : steps) {
    in_flight += s.delta;
    emit_counter(os, first, "messages in flight", s.time, "messages",
                 in_flight);
  }

  // Cumulative NIC egress per node, stepped at each off-node message start.
  std::vector<const MessageTrace*> off_node;
  for (const MessageTrace& m : trace.messages) {
    if (m.path == PathClass::OffNode) off_node.push_back(&m);
  }
  std::stable_sort(off_node.begin(), off_node.end(),
                   [](const MessageTrace* a, const MessageTrace* b) {
                     return a->start < b->start;
                   });
  std::vector<double> injected(static_cast<std::size_t>(topo.num_nodes()),
                               0.0);
  for (const MessageTrace* m : off_node) {
    const int node = topo.node_of_rank(m->src);
    injected[static_cast<std::size_t>(node)] +=
        static_cast<double>(m->bytes);
    emit_counter(os, first,
                 "bytes_injected node " + std::to_string(node), m->start,
                 "bytes", injected[static_cast<std::size_t>(node)]);
  }

  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

void write_ascii_gantt(std::ostream& os, const Trace& trace,
                       const GanttOptions& options) {
  struct Row {
    std::string label;
    double start;
    double end;
  };
  std::vector<Row> rows;
  for (const MessageTrace& m : trace.messages) {
    rows.push_back({message_name(m), m.start, m.completion});
  }
  for (const CopyTrace& c : trace.copies) {
    rows.push_back({copy_name(c), c.start, c.completion});
  }
  if (rows.empty()) {
    os << "(empty trace)\n";
    return;
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.start < b.start; });
  double horizon = 0.0;
  std::size_t label_width = 0;
  for (const Row& r : rows) {
    horizon = std::max(horizon, r.end);
    label_width = std::max(label_width, r.label.size());
  }
  if (horizon <= 0.0) horizon = 1.0;
  label_width = std::min<std::size_t>(label_width, 44);

  const int shown = std::min<int>(static_cast<int>(rows.size()),
                                  options.max_rows);
  os << "timeline horizon: " << horizon << " s\n";
  for (int i = 0; i < shown; ++i) {
    const Row& r = rows[static_cast<std::size_t>(i)];
    std::string label = r.label.substr(0, label_width);
    label.resize(label_width, ' ');
    const int begin = static_cast<int>(r.start / horizon * options.width);
    const int end = std::max(
        begin + 1, static_cast<int>(r.end / horizon * options.width));
    os << label << " |";
    for (int c = 0; c < options.width; ++c) {
      os << (c >= begin && c < end ? '#' : ' ');
    }
    os << "|\n";
  }
  if (shown < static_cast<int>(rows.size())) {
    os << "... (" << rows.size() - static_cast<std::size_t>(shown)
       << " more events; showing " << shown << " of " << rows.size()
       << ", raise GanttOptions::max_rows for all)\n";
  }
}

}  // namespace hetcomm
