#pragma once
// Trace export: turn an Engine trace into human- or tool-readable timelines.
//
// Two formats:
//   * Chrome tracing JSON (load in chrome://tracing or Perfetto): one track
//     per rank, one duration event per message/copy.
//   * ASCII Gantt: quick terminal visualization for small traces.

#include <iosfwd>

#include "hetsim/topology.hpp"
#include "hetsim/trace.hpp"

namespace hetcomm {

/// Write the trace as Chrome tracing JSON (trace-event format, "X" events,
/// microsecond timestamps).  Messages appear on the receiving rank's track
/// (span: start -> completion), copies on the copying rank's track.
void write_chrome_trace(std::ostream& os, const Trace& trace,
                        const Topology& topo);

struct GanttOptions {
  int width = 72;        ///< characters for the time axis
  int max_rows = 40;     ///< truncate busy traces
};

/// Render an ASCII Gantt chart of the trace (one row per event).
void write_ascii_gantt(std::ostream& os, const Trace& trace,
                       const GanttOptions& options = {});

}  // namespace hetcomm
