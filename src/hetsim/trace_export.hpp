#pragma once
// Trace export: turn an Engine trace into human- or tool-readable timelines.
//
// Two formats:
//   * Chrome tracing JSON (load in chrome://tracing or Perfetto): one track
//     per rank, one duration event per message/copy.
//   * ASCII Gantt: quick terminal visualization for small traces.

#include <iosfwd>

#include "hetsim/topology.hpp"
#include "hetsim/trace.hpp"

namespace hetcomm {

/// Write the trace as Chrome tracing JSON (trace-event format, microsecond
/// timestamps).  Messages appear as "X" duration events on the receiving
/// rank's track (span: start -> completion), copies on the copying rank's
/// track.  "M" metadata events name the process and label every rank track
/// "rank R (node N)" from the topology, and "C" counter events add derived
/// counter tracks: "messages in flight" (+1 at each message start, -1 at
/// completion) and "bytes_injected node N" (cumulative NIC egress per node,
/// stepped at each off-node message start).  Counters are computed from the
/// trace alone, so the export stays a pure function of (trace, topo).
void write_chrome_trace(std::ostream& os, const Trace& trace,
                        const Topology& topo);

struct GanttOptions {
  int width = 72;        ///< characters for the time axis
  int max_rows = 40;     ///< truncate busy traces
};

/// Render an ASCII Gantt chart of the trace (one row per event).
void write_ascii_gantt(std::ostream& os, const Trace& trace,
                       const GanttOptions& options = {});

}  // namespace hetcomm
