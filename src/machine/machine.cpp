#include "machine/machine.hpp"

#include <set>
#include <stdexcept>

namespace hetcomm::machine {

Topology MachineModel::topology(int num_nodes) const {
  MachineShape shape = node;
  shape.num_nodes = num_nodes;
  return Topology(shape);
}

void MachineModel::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("MachineModel: name must be non-empty");
  }
  node.validate();
  if (node.num_nodes != 1) {
    throw std::invalid_argument("MachineModel '" + name +
                                "': node shape is a single-node template "
                                "(num_nodes must be 1)");
  }
  params.validate();  // includes taxonomy.validate()

  const PathTaxonomy& tax = params.taxonomy;

  // Taxonomy/shape consistency: every declared class must be reachable by
  // some rank pair on this shape.  Resolve every feasible placement of the
  // shape and collect the classes that actually occur.  The classic
  // three-class taxonomy is exempt: it is the shared locality anchor and a
  // single-socket machine (frontier) legitimately carries its vacuous
  // cross-socket class.  A *custom* taxonomy declaring a class no rank
  // pair can hit (an NVLink clique on a GPU-less shape, say) is a
  // description error.
  if (!tax.is_classic()) {
    std::set<int> reachable;
    const bool multi_socket = node.sockets_per_node > 1;
    const bool has_gpus = node.gpus_per_socket > 0;
    for (const bool owners : has_gpus ? std::set<bool>{false, true}
                                      : std::set<bool>{false}) {
      reachable.insert(tax.resolve({true, true, owners}));
      if (multi_socket) reachable.insert(tax.resolve({true, false, owners}));
      reachable.insert(tax.resolve({false, false, owners}));
    }
    for (int c = 0; c < tax.num_classes(); ++c) {
      if (reachable.count(c) == 0) {
        throw std::invalid_argument(
            "MachineModel '" + name + "': path class '" + tax.cls(c).name +
            "' is unreachable on this node shape (no rank pair resolves to "
            "it)");
      }
    }
  }

  // Postal-table sanity per declared class: protocols must be priced
  // consistently.  Host alphas grow with protocol weight (short envelopes
  // are cheapest to initiate, rendezvous pays a handshake) and betas
  // shrink (heavier protocols exist because they stream bytes faster);
  // device tables have no short row and only the beta ordering holds in
  // measurement (see header note).
  for (int c = 0; c < tax.num_classes(); ++c) {
    const std::string& cls = tax.cls(c).name;
    const PostalParams& hs = params.messages.get(MemSpace::Host, Protocol::Short, c);
    const PostalParams& he = params.messages.get(MemSpace::Host, Protocol::Eager, c);
    const PostalParams& hr =
        params.messages.get(MemSpace::Host, Protocol::Rendezvous, c);
    if (!(hs.alpha <= he.alpha && he.alpha <= hr.alpha)) {
      throw std::invalid_argument(
          "MachineModel '" + name + "': host alphas for path '" + cls +
          "' must be nondecreasing short -> eager -> rendezvous");
    }
    if (!(hs.beta >= he.beta && he.beta >= hr.beta)) {
      throw std::invalid_argument(
          "MachineModel '" + name + "': host betas for path '" + cls +
          "' must be nonincreasing short -> eager -> rendezvous");
    }
    const PostalParams& de = params.messages.get(MemSpace::Device, Protocol::Eager, c);
    const PostalParams& dr =
        params.messages.get(MemSpace::Device, Protocol::Rendezvous, c);
    if (!(de.beta >= dr.beta)) {
      throw std::invalid_argument(
          "MachineModel '" + name + "': device betas for path '" + cls +
          "' must be nonincreasing eager -> rendezvous");
    }
  }
}

MachineModel lassen_machine() {
  MachineModel m;
  m.name = "lassen";
  m.description =
      "LLNL Lassen: 2x Power9 (20 cores each) + 4x V100 per node, "
      "InfiniBand EDR; paper Tables 2-4 calibration";
  m.node = presets::lassen(1);
  m.params = lassen_params();
  return m;
}

MachineModel summit_machine() {
  MachineModel m;
  m.name = "summit";
  m.description =
      "ORNL Summit: 2x Power9 + 6x V100 per node; Lassen calibration "
      "(same CPU/GPU/network generation), 3 GPUs per socket";
  m.node = presets::summit(1);
  m.params = lassen_params();
  m.params.name = "summit";
  return m;
}

MachineModel frontier_machine() {
  MachineModel m;
  m.name = "frontier";
  m.description =
      "Frontier-like what-if (paper SS6): single-socket EPYC, 4 GPUs, "
      "Slingshot-class network";
  m.node = presets::frontier(1);
  m.params = frontier_params();
  return m;
}

MachineModel delta_machine() {
  MachineModel m;
  m.name = "delta";
  m.description =
      "Delta-like what-if (paper SS6): dual 64-core Milan, PCIe-attached "
      "A100s, HDR-class network";
  m.node = presets::delta(1);
  m.params = delta_params();
  return m;
}

MachineModel nvisland_machine() {
  MachineModel m;
  m.name = "nvisland";
  m.description =
      "Hypothetical NVLink-island node: 4-GPU all-to-all NVLink clique "
      "spanning both sockets, PCIe/UPI host cross-socket path, dual NIC "
      "rails (one per socket)";
  m.node = presets::lassen(1);  // same 2x2x20 structure, different wiring

  ParamSet p = lassen_params();
  p.name = "nvisland";

  // Four named path classes.  Ids 0-2 keep the classic localities so the
  // analytic models' representatives stay the conservative non-NVLink
  // paths; id 3 is the NVLink peer clique, matched first.
  PathTaxonomy tax;
  const int on_socket = tax.add_class("on-socket", PathClass::OnSocket);
  const int cross_socket = tax.add_class("cross-socket", PathClass::OnNode);
  const int off_node = tax.add_class("off-node", PathClass::OffNode);
  const int nvlink = tax.add_class("nvlink-peer", PathClass::OnSocket);
  // Any two GPU-owner cores on one node sit on the NVLink island,
  // regardless of socket; everything else falls through to the classic
  // placement rules.
  tax.add_rule({/*same_node=*/1, /*same_socket=*/-1, /*both_gpu_owners=*/1,
                nvlink});
  tax.add_rule({1, 1, -1, on_socket});
  tax.add_rule({1, 0, -1, cross_socket});
  tax.add_rule({0, -1, -1, off_node});
  p.taxonomy = tax;

  // The classic classes inherit Lassen's calibration (copied above).  The
  // NVLink-peer class: host traffic between owner cores still moves over
  // shared memory (use the on-socket host rows -- the clique does not
  // help the CPUs), while device traffic bypasses the Lassen
  // through-host penalty entirely: ~10x lower alpha than the measured
  // device cross-socket path and NVLink3-class inverse bandwidth.
  for (const Protocol proto :
       {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
    p.messages.set(MemSpace::Host, proto, nvlink,
                   p.messages.get(MemSpace::Host, proto, on_socket));
  }
  p.messages.set(MemSpace::Device, Protocol::Eager, nvlink,
                 {1.10e-06, 9.0e-12});
  p.messages.set(MemSpace::Device, Protocol::Rendezvous, nvlink,
                 {4.50e-06, 7.5e-12});

  // One NIC rail per socket; each rail keeps the per-NIC Lassen injection
  // rate, so the node's aggregate egress doubles when both sockets send.
  p.injection.nics_per_node = 2;

  m.params = p;
  return m;
}

std::vector<std::string> preset_machine_names() {
  return {"lassen", "summit", "frontier", "delta", "nvisland"};
}

MachineModel preset_machine(const std::string& name) {
  if (name == "lassen") return lassen_machine();
  if (name == "summit") return summit_machine();
  if (name == "frontier") return frontier_machine();
  if (name == "delta") return delta_machine();
  if (name == "nvisland") return nvisland_machine();
  std::string known;
  for (const std::string& n : preset_machine_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown machine '" + name + "' (presets: " +
                              known + "; or pass a .json machine file)");
}

}  // namespace hetcomm::machine
