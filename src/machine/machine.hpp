#pragma once
// Declarative machine descriptions.
//
// A MachineModel bundles everything the simulator and the closed-form
// models need to know about one machine -- node shape, path taxonomy,
// calibrated postal tables, protocol thresholds, copy and NIC parameters --
// as *data*: constructible in code (the presets below), serializable
// through the hetcomm.machine.v1 JSON schema (machine_json.hpp), and
// strictly validated.  Consumers instantiate a Topology for a node count
// and hand the ParamSet to Engine / CompiledPlan / the Table-6 models; the
// paths a machine defines flow through everything via the ParamSet's
// taxonomy, so adding a machine (even one with more than three path
// classes) requires no recompilation of any consumer.

#include <string>
#include <vector>

#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"

namespace hetcomm::machine {

struct MachineModel {
  std::string name;
  std::string description;
  /// Per-node structure; `node.num_nodes` is always 1 (the machine is a
  /// template, instantiated for a node count by topology()).
  MachineShape node{1, 2, 2, 20};
  /// Calibrated parameters, including the path taxonomy.
  ParamSet params;

  /// Topology of `num_nodes` instances of this machine's node.
  [[nodiscard]] Topology topology(int num_nodes) const;

  /// Smallest node count providing `gpus` GPUs (bench sizing helper).
  [[nodiscard]] int nodes_for_gpus(int gpus) const {
    return node.nodes_for_gpus(gpus);
  }

  /// Strict validation, beyond ParamSet::validate():
  ///   * shape valid and single-node (the template contract);
  ///   * taxonomy consistent with the shape: every declared path class of
  ///     a *custom* taxonomy is reachable by some rank pair of this shape
  ///     (a GPU-owner clique on a GPU-less node is a description error).
  ///     The classic taxonomy is exempt -- it is the shared locality
  ///     anchor, and single-socket machines carry its vacuous
  ///     cross-socket class;
  ///   * postal tables complete and sane for every declared class:
  ///     alpha/beta positive, host alphas nondecreasing and betas
  ///     nonincreasing short -> eager -> rendezvous, device betas
  ///     nonincreasing eager -> rendezvous.  (Device *alphas* are not
  ///     required monotone: measured Lassen has a device on-node
  ///     rendezvous alpha below its eager alpha, paper Table 2.)
  /// Throws std::invalid_argument describing the first violation.
  void validate() const;
};

/// In-code presets.  lassen/summit/frontier/delta mirror the historical
/// hardwired machines exactly (same shapes, same ParamSets, classic
/// three-class taxonomy) so simulations through a preset MachineModel are
/// bit-identical to the pre-refactor code paths.
[[nodiscard]] MachineModel lassen_machine();
[[nodiscard]] MachineModel summit_machine();
[[nodiscard]] MachineModel frontier_machine();
[[nodiscard]] MachineModel delta_machine();

/// Hypothetical NVLink-island machine: each node is a 4-GPU NVLink peer
/// clique spanning both sockets (cheap device paths between any two GPU
/// owner cores), PCIe/UPI cross-socket host paths, and two NIC rails (one
/// per socket).  Exercises a four-class taxonomy and dual NIC lanes end to
/// end -- and flips the Figure-5.1 strategy ranking, because device-aware
/// sends between GPUs stop paying the cross-socket penalty that makes
/// staging-through-host win on Lassen.
[[nodiscard]] MachineModel nvisland_machine();

/// Names accepted by preset_machine(), in presentation order.
[[nodiscard]] std::vector<std::string> preset_machine_names();

/// Look up a preset by name; throws std::invalid_argument listing the
/// known names when `name` is not one of them.
[[nodiscard]] MachineModel preset_machine(const std::string& name);

}  // namespace hetcomm::machine
