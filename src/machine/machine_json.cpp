#include "machine/machine_json.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hetcomm::machine {

using obs::JsonValue;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("hetcomm.machine.v1: " + what);
}

const JsonValue& require(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail("missing field \"" + key + "\"");
  return *v;
}

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_number()) fail("field \"" + key + "\" is not a number");
  return v.as_double();
}

int require_int(const JsonValue& obj, const std::string& key) {
  // as_double promotes Int and accepts Double; machine ints are small
  // enough that the round-trip is exact either way.
  return static_cast<int>(require_number(obj, key));
}

std::string require_string(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_string()) fail("field \"" + key + "\" is not a string");
  return v.as_string();
}

JsonValue postal_json(const PostalParams& p) {
  JsonValue out = JsonValue::object();
  out.set("alpha", p.alpha);
  out.set("beta", p.beta);
  return out;
}

PostalParams postal_from(const JsonValue& v, const std::string& where) {
  if (!v.is_object()) fail(where + " is not an object");
  PostalParams p;
  p.alpha = require_number(v, "alpha");
  p.beta = require_number(v, "beta");
  return p;
}

PathClass locality_from(const std::string& s) {
  if (s == "on-socket") return PathClass::OnSocket;
  if (s == "on-node") return PathClass::OnNode;
  if (s == "off-node") return PathClass::OffNode;
  fail("unknown locality \"" + s +
       "\" (expected on-socket, on-node, or off-node)");
}

MemSpace space_from(const std::string& s) {
  if (s == "host") return MemSpace::Host;
  if (s == "device") return MemSpace::Device;
  fail("unknown space \"" + s + "\" (expected host or device)");
}

Protocol proto_from(const std::string& s) {
  if (s == "short") return Protocol::Short;
  if (s == "eager") return Protocol::Eager;
  if (s == "rendezvous") return Protocol::Rendezvous;
  fail("unknown protocol \"" + s +
       "\" (expected short, eager, or rendezvous)");
}

/// Rule predicates serialize as JSON bools when constrained and are simply
/// omitted when don't-care -- the natural reading of a rule object.
void set_predicate(JsonValue& rule, const char* key, std::int8_t p) {
  if (p != -1) rule.set(key, p == 1);
}

std::int8_t get_predicate(const JsonValue& rule, const char* key) {
  const JsonValue* v = rule.find(key);
  if (v == nullptr) return -1;
  if (!v->is_bool()) fail(std::string("rule predicate \"") + key +
                          "\" must be a boolean");
  return v->as_bool() ? 1 : 0;
}

}  // namespace

JsonValue to_json(const MachineModel& model) {
  model.validate();
  const PathTaxonomy& tax = model.params.taxonomy;

  JsonValue doc = JsonValue::object();
  doc.set("schema", kMachineSchema);
  doc.set("name", model.name);
  doc.set("description", model.description);

  JsonValue shape = JsonValue::object();
  shape.set("sockets_per_node", model.node.sockets_per_node);
  shape.set("gpus_per_socket", model.node.gpus_per_socket);
  shape.set("cores_per_socket", model.node.cores_per_socket);
  doc.set("shape", std::move(shape));

  JsonValue taxonomy = JsonValue::object();
  JsonValue classes = JsonValue::array();
  for (const PathClassDef& c : tax.classes()) {
    JsonValue cls = JsonValue::object();
    cls.set("name", c.name);
    cls.set("locality", to_string(c.locality));
    classes.push_back(std::move(cls));
  }
  taxonomy.set("classes", std::move(classes));
  JsonValue rules = JsonValue::array();
  for (const PathRule& r : tax.rules()) {
    JsonValue rule = JsonValue::object();
    set_predicate(rule, "same_node", r.same_node);
    set_predicate(rule, "same_socket", r.same_socket);
    set_predicate(rule, "both_gpu_owners", r.both_gpu_owners);
    rule.set("path", tax.cls(r.path).name);
    rules.push_back(std::move(rule));
  }
  taxonomy.set("rules", std::move(rules));
  doc.set("taxonomy", std::move(taxonomy));

  JsonValue messages = JsonValue::array();
  for (const MemSpace space : {MemSpace::Host, MemSpace::Device}) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      for (int c = 0; c < tax.num_classes(); ++c) {
        const PostalParams& p = model.params.messages.get(space, proto, c);
        JsonValue row = JsonValue::object();
        row.set("space", to_string(space));
        row.set("proto", to_string(proto));
        row.set("path", tax.cls(c).name);
        row.set("alpha", p.alpha);
        row.set("beta", p.beta);
        messages.push_back(std::move(row));
      }
    }
  }
  doc.set("messages", std::move(messages));

  JsonValue copies = JsonValue::object();
  copies.set("h2d_1proc", postal_json(model.params.copies.h2d_1proc));
  copies.set("d2h_1proc", postal_json(model.params.copies.d2h_1proc));
  copies.set("h2d_shared", postal_json(model.params.copies.h2d_4proc));
  copies.set("d2h_shared", postal_json(model.params.copies.d2h_4proc));
  copies.set("shared_procs", model.params.copies.shared_procs);
  doc.set("copies", std::move(copies));

  JsonValue injection = JsonValue::object();
  injection.set("inv_rate_cpu", model.params.injection.inv_rate_cpu);
  injection.set("inv_rate_gpu", model.params.injection.inv_rate_gpu);
  injection.set("nics_per_node", model.params.injection.nics_per_node);
  doc.set("injection", std::move(injection));

  JsonValue thresholds = JsonValue::object();
  thresholds.set("short_max", model.params.thresholds.short_max);
  thresholds.set("eager_max", model.params.thresholds.eager_max);
  doc.set("thresholds", std::move(thresholds));

  JsonValue overheads = JsonValue::object();
  overheads.set("queue_search_per_entry",
                model.params.overheads.queue_search_per_entry);
  overheads.set("post_overhead", model.params.overheads.post_overhead);
  overheads.set("dma_op_overhead", model.params.overheads.dma_op_overhead);
  overheads.set("nic_message_overhead",
                model.params.overheads.nic_message_overhead);
  overheads.set("pack_per_byte", model.params.overheads.pack_per_byte);
  doc.set("overheads", std::move(overheads));

  return doc;
}

MachineModel machine_from_json(const JsonValue& doc) {
  if (!doc.is_object()) fail("document is not an object");
  const std::string schema = require_string(doc, "schema");
  if (schema != kMachineSchema) {
    fail("unexpected schema \"" + schema + "\" (expected " +
         std::string(kMachineSchema) + ")");
  }

  MachineModel m;
  m.name = require_string(doc, "name");
  m.description = require_string(doc, "description");

  const JsonValue& shape = require(doc, "shape");
  if (!shape.is_object()) fail("\"shape\" is not an object");
  m.node.num_nodes = 1;
  m.node.sockets_per_node = require_int(shape, "sockets_per_node");
  m.node.gpus_per_socket = require_int(shape, "gpus_per_socket");
  m.node.cores_per_socket = require_int(shape, "cores_per_socket");

  const JsonValue& taxonomy = require(doc, "taxonomy");
  if (!taxonomy.is_object()) fail("\"taxonomy\" is not an object");
  PathTaxonomy tax;
  const JsonValue& classes = require(taxonomy, "classes");
  if (!classes.is_array() || classes.size() == 0) {
    fail("\"taxonomy.classes\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const JsonValue& cls = classes.at(i);
    if (!cls.is_object()) fail("taxonomy class is not an object");
    tax.add_class(require_string(cls, "name"),
                  locality_from(require_string(cls, "locality")));
  }
  const JsonValue& rules = require(taxonomy, "rules");
  if (!rules.is_array()) fail("\"taxonomy.rules\" must be an array");
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const JsonValue& rule = rules.at(i);
    if (!rule.is_object()) fail("taxonomy rule is not an object");
    PathRule r;
    r.same_node = get_predicate(rule, "same_node");
    r.same_socket = get_predicate(rule, "same_socket");
    r.both_gpu_owners = get_predicate(rule, "both_gpu_owners");
    const std::string path = require_string(rule, "path");
    r.path = tax.id_of(path);
    if (r.path < 0) fail("rule selects undeclared class \"" + path + "\"");
    tax.add_rule(r);
  }
  m.params.taxonomy = tax;
  m.params.name = m.name;

  const JsonValue& messages = require(doc, "messages");
  if (!messages.is_array()) fail("\"messages\" must be an array");
  // Completeness is tracked row by row: every (space, proto, class) the
  // table defines must appear exactly once.
  std::vector<int> seen(
      static_cast<std::size_t>(2 * 3 * tax.num_classes()), 0);
  const auto slot = [&tax](MemSpace space, Protocol proto, int path) {
    return (static_cast<int>(space) * 3 + static_cast<int>(proto)) *
               tax.num_classes() +
           path;
  };
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const JsonValue& row = messages.at(i);
    if (!row.is_object()) fail("message row is not an object");
    const MemSpace space = space_from(require_string(row, "space"));
    const Protocol proto = proto_from(require_string(row, "proto"));
    if (space == MemSpace::Device && proto == Protocol::Short) {
      fail("device/short message rows do not exist (device-aware "
           "communication has no short protocol)");
    }
    const std::string path = require_string(row, "path");
    const int c = tax.id_of(path);
    if (c < 0) fail("message row names undeclared class \"" + path + "\"");
    PostalParams p;
    p.alpha = require_number(row, "alpha");
    p.beta = require_number(row, "beta");
    int& mark = seen[static_cast<std::size_t>(slot(space, proto, c))];
    if (mark != 0) {
      fail("duplicate message row " + std::string(to_string(space)) + "/" +
           to_string(proto) + "/" + path);
    }
    mark = 1;
    m.params.messages.set(space, proto, c, p);
  }
  for (const MemSpace space : {MemSpace::Host, MemSpace::Device}) {
    for (const Protocol proto :
         {Protocol::Short, Protocol::Eager, Protocol::Rendezvous}) {
      if (space == MemSpace::Device && proto == Protocol::Short) continue;
      for (int c = 0; c < tax.num_classes(); ++c) {
        if (seen[static_cast<std::size_t>(slot(space, proto, c))] == 0) {
          fail("missing message row " + std::string(to_string(space)) + "/" +
               to_string(proto) + "/" + tax.cls(c).name);
        }
      }
    }
  }

  const JsonValue& copies = require(doc, "copies");
  if (!copies.is_object()) fail("\"copies\" is not an object");
  m.params.copies.h2d_1proc = postal_from(require(copies, "h2d_1proc"),
                                          "copies.h2d_1proc");
  m.params.copies.d2h_1proc = postal_from(require(copies, "d2h_1proc"),
                                          "copies.d2h_1proc");
  m.params.copies.h2d_4proc = postal_from(require(copies, "h2d_shared"),
                                          "copies.h2d_shared");
  m.params.copies.d2h_4proc = postal_from(require(copies, "d2h_shared"),
                                          "copies.d2h_shared");
  m.params.copies.shared_procs = require_int(copies, "shared_procs");

  const JsonValue& injection = require(doc, "injection");
  if (!injection.is_object()) fail("\"injection\" is not an object");
  m.params.injection.inv_rate_cpu = require_number(injection, "inv_rate_cpu");
  m.params.injection.inv_rate_gpu = require_number(injection, "inv_rate_gpu");
  m.params.injection.nics_per_node = require_int(injection, "nics_per_node");

  const JsonValue& thresholds = require(doc, "thresholds");
  if (!thresholds.is_object()) fail("\"thresholds\" is not an object");
  m.params.thresholds.short_max =
      static_cast<std::int64_t>(require_number(thresholds, "short_max"));
  m.params.thresholds.eager_max =
      static_cast<std::int64_t>(require_number(thresholds, "eager_max"));

  const JsonValue& overheads = require(doc, "overheads");
  if (!overheads.is_object()) fail("\"overheads\" is not an object");
  m.params.overheads.queue_search_per_entry =
      require_number(overheads, "queue_search_per_entry");
  m.params.overheads.post_overhead =
      require_number(overheads, "post_overhead");
  m.params.overheads.dma_op_overhead =
      require_number(overheads, "dma_op_overhead");
  m.params.overheads.nic_message_overhead =
      require_number(overheads, "nic_message_overhead");
  m.params.overheads.pack_per_byte =
      require_number(overheads, "pack_per_byte");

  m.validate();
  return m;
}

MachineModel load_machine_file(const std::string& path) {
  std::ifstream in(path);
  // invalid_argument, not runtime_error: an unreadable path is an input
  // error and must map to CLI exit code 2 (see cli::main_guarded).
  if (!in) throw std::invalid_argument("cannot open machine file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return machine_from_json(JsonValue::parse(buf.str()));
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

MachineModel resolve_machine(const std::string& arg) {
  const bool is_file = arg.size() > 5 &&
                       arg.compare(arg.size() - 5, 5, ".json") == 0;
  if (is_file) return load_machine_file(arg);
  return preset_machine(arg);
}

}  // namespace hetcomm::machine
