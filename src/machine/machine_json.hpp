#pragma once
// hetcomm.machine.v1: JSON serialization of MachineModel.
//
// The schema is documented in docs/machines.md.  Serialization is exact:
// doubles are dumped with max_digits10 (obs/json), so export -> load
// reproduces every alpha/beta bit-for-bit and simulations through a
// round-tripped machine are bit-identical to the in-code original
// (tests/test_machine.cpp holds that contract).  Parsing is strict: a
// wrong schema tag, a missing field, a malformed taxonomy, or an invalid
// model (MachineModel::validate) all throw with a one-line diagnostic.

#include <string>

#include "machine/machine.hpp"
#include "obs/json.hpp"

namespace hetcomm::machine {

inline constexpr const char* kMachineSchema = "hetcomm.machine.v1";

/// Serialize a validated model (validates first; throws on violation).
[[nodiscard]] obs::JsonValue to_json(const MachineModel& model);

/// Parse and validate a hetcomm.machine.v1 document.
[[nodiscard]] MachineModel machine_from_json(const obs::JsonValue& doc);

/// Read, parse, and validate a machine file.  Throws std::runtime_error
/// when the file cannot be read; parse/validate errors as above.
[[nodiscard]] MachineModel load_machine_file(const std::string& path);

/// Resolve a machine argument: a preset name (preset_machine) or, when
/// `arg` ends in ".json", a machine file path (load_machine_file).  The
/// single lookup the CLI and bench drivers share; unknown names throw
/// std::invalid_argument listing the presets.
[[nodiscard]] MachineModel resolve_machine(const std::string& arg);

}  // namespace hetcomm::machine
