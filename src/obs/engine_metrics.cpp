#include "obs/engine_metrics.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace hetcomm::obs {

void EngineMetrics::reset() noexcept {
  std::memset(msgs, 0, sizeof(msgs));
  std::memset(msg_bytes, 0, sizeof(msg_bytes));
  for (Histogram& h : queue_wait) h.reset();
  std::memset(zero_waits, 0, sizeof(zero_waits));
  std::memset(occupancy_seconds, 0, sizeof(occupancy_seconds));
  std::fill(nic_bytes.begin(), nic_bytes.end(), 0);
  std::fill(nic_striped_bytes.begin(), nic_striped_bytes.end(), 0);
  std::fill(fault_rail_retries.begin(), fault_rail_retries.end(), 0);
  std::memset(copy_count, 0, sizeof(copy_count));
  std::memset(copy_bytes, 0, sizeof(copy_bytes));
  std::memset(copy_seconds, 0, sizeof(copy_seconds));
  packs = 0;
  pack_bytes = 0;
  pack_seconds = 0.0;
  phase_makespan.clear();
  fault_retries = 0;
  fault_failovers = 0;
  fault_degraded = 0;
  fault_retry_seconds = 0.0;
  std::memset(fault_degraded_seconds, 0, sizeof(fault_degraded_seconds));
}

void EngineMetrics::merge(const EngineMetrics& other) {
  if (path_names.empty()) path_names = other.path_names;
  for (int p = 0; p < kPaths; ++p) {
    for (int r = 0; r < kProtos; ++r) {
      msgs[p][r] += other.msgs[p][r];
      msg_bytes[p][r] += other.msg_bytes[p][r];
    }
  }
  for (int i = 0; i < kNumSimResources; ++i) {
    queue_wait[i].merge(other.queue_wait[i]);
    zero_waits[i] += other.zero_waits[i];
    occupancy_seconds[i] += other.occupancy_seconds[i];
  }
  if (nic_bytes.size() < other.nic_bytes.size()) {
    nic_bytes.resize(other.nic_bytes.size(), 0);
  }
  for (std::size_t n = 0; n < other.nic_bytes.size(); ++n) {
    nic_bytes[n] += other.nic_bytes[n];
  }
  if (nic_striped_bytes.size() < other.nic_striped_bytes.size()) {
    nic_striped_bytes.resize(other.nic_striped_bytes.size(), 0);
  }
  for (std::size_t n = 0; n < other.nic_striped_bytes.size(); ++n) {
    nic_striped_bytes[n] += other.nic_striped_bytes[n];
  }
  if (fault_rail_retries.size() < other.fault_rail_retries.size()) {
    fault_rail_retries.resize(other.fault_rail_retries.size(), 0);
  }
  for (std::size_t r = 0; r < other.fault_rail_retries.size(); ++r) {
    fault_rail_retries[r] += other.fault_rail_retries[r];
  }
  nic_lanes = std::max(nic_lanes, other.nic_lanes);
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 2; ++s) {
      copy_count[d][s] += other.copy_count[d][s];
      copy_bytes[d][s] += other.copy_bytes[d][s];
      copy_seconds[d][s] += other.copy_seconds[d][s];
    }
  }
  packs += other.packs;
  pack_bytes += other.pack_bytes;
  pack_seconds += other.pack_seconds;
  fault_retries += other.fault_retries;
  fault_failovers += other.fault_failovers;
  fault_degraded += other.fault_degraded;
  fault_retry_seconds += other.fault_retry_seconds;
  for (int p = 0; p < kPaths; ++p) {
    fault_degraded_seconds[p] += other.fault_degraded_seconds[p];
  }
  if (phase_makespan.empty()) {
    phase_makespan = other.phase_makespan;
  } else if (!other.phase_makespan.empty()) {
    if (phase_makespan.size() != other.phase_makespan.size()) {
      throw std::invalid_argument(
          "EngineMetrics::merge: phase count mismatch");
    }
    for (std::size_t i = 0; i < phase_makespan.size(); ++i) {
      phase_makespan[i] += other.phase_makespan[i];
    }
  }
}

std::int64_t EngineMetrics::total_messages() const noexcept {
  std::int64_t n = 0;
  for (const auto& row : msgs) {
    for (const std::int64_t v : row) n += v;
  }
  return n;
}

std::int64_t EngineMetrics::total_bytes() const noexcept {
  std::int64_t n = 0;
  for (const auto& row : msg_bytes) {
    for (const std::int64_t v : row) n += v;
  }
  return n;
}

Histogram EngineMetrics::wait_histogram(int resource) const noexcept {
  Histogram h = queue_wait[resource];
  h.add_zeros(zero_waits[resource]);
  return h;
}

void EngineMetrics::publish(Registry& registry) const {
  for (int p = 0; p < kPaths; ++p) {
    for (int r = 0; r < kProtos; ++r) {
      if (msgs[p][r] == 0 && msg_bytes[p][r] == 0) continue;
      const std::string path = path_name(p);
      const char* proto = to_string(static_cast<Protocol>(r));
      registry.add(
          registry.counter(label("msgs", {{"path", path}, {"proto", proto}})),
          msgs[p][r]);
      registry.add(
          registry.counter(label("bytes", {{"path", path}, {"proto", proto}})),
          msg_bytes[p][r]);
    }
  }
  for (int i = 0; i < kNumSimResources; ++i) {
    const char* res = to_string(static_cast<SimResource>(i));
    const Histogram waits = wait_histogram(i);
    if (waits.count() > 0) {
      // Publishing merges so multi-run registries aggregate naturally.
      registry.merge_histogram(
          registry.histogram(label("queue_wait", {{"resource", res}})),
          waits);
    }
    if (occupancy_seconds[i] != 0.0) {
      const MetricId g =
          registry.gauge(label("occupancy_seconds", {{"resource", res}}));
      registry.set(g, registry.gauge_value(g) + occupancy_seconds[i]);
    }
  }
  for (std::size_t n = 0; n < nic_bytes.size(); ++n) {
    if (nic_bytes[n] == 0) continue;
    registry.add(registry.counter(label(
                     "bytes_injected", {{"nic", std::to_string(n)}})),
                 nic_bytes[n]);
    if (n < nic_striped_bytes.size() && nic_striped_bytes[n] != 0) {
      registry.add(
          registry.counter(label("bytes_injected",
                                 {{"nic", std::to_string(n)},
                                  {"stripe", "striped"}})),
          nic_striped_bytes[n]);
    }
  }
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 2; ++s) {
      if (copy_count[d][s] == 0) continue;
      const char* dir = to_string(static_cast<CopyDir>(d));
      const char* sharing = s == 0 ? "solo" : "shared";
      registry.add(registry.counter(label(
                       "copies", {{"dir", dir}, {"sharing", sharing}})),
                   copy_count[d][s]);
      registry.add(registry.counter(label(
                       "copy_bytes", {{"dir", dir}, {"sharing", sharing}})),
                   copy_bytes[d][s]);
      const MetricId g = registry.gauge(
          label("copy_seconds", {{"dir", dir}, {"sharing", sharing}}));
      registry.set(g, registry.gauge_value(g) + copy_seconds[d][s]);
    }
  }
  if (packs > 0) {
    registry.add(registry.counter("packs"), packs);
    registry.add(registry.counter("pack_bytes"), pack_bytes);
    const MetricId g = registry.gauge("pack_seconds");
    registry.set(g, registry.gauge_value(g) + pack_seconds);
  }
  if (any_faults()) {
    registry.add(registry.counter("fault_retries"), fault_retries);
    registry.add(registry.counter("fault_failovers"), fault_failovers);
    registry.add(registry.counter("fault_degraded_msgs"), fault_degraded);
    const MetricId g = registry.gauge("fault_retry_seconds");
    registry.set(g, registry.gauge_value(g) + fault_retry_seconds);
    for (std::size_t r = 0; r < fault_rail_retries.size(); ++r) {
      if (fault_rail_retries[r] == 0) continue;
      registry.add(registry.counter(label(
                       "fault_retries", {{"rail", std::to_string(r)}})),
                   fault_rail_retries[r]);
    }
    for (int p = 0; p < kPaths; ++p) {
      if (fault_degraded_seconds[p] == 0.0) continue;
      const MetricId d = registry.gauge(
          label("fault_degraded_seconds", {{"path", path_name(p)}}));
      registry.set(d, registry.gauge_value(d) + fault_degraded_seconds[p]);
    }
  }
}

bool EngineMetrics::same_counts(const EngineMetrics& other) const noexcept {
  for (int p = 0; p < kPaths; ++p) {
    for (int r = 0; r < kProtos; ++r) {
      if (msgs[p][r] != other.msgs[p][r]) return false;
      if (msg_bytes[p][r] != other.msg_bytes[p][r]) return false;
    }
  }
  for (int i = 0; i < kNumSimResources; ++i) {
    if (queue_wait[i].count() + zero_waits[i] !=
        other.queue_wait[i].count() + other.zero_waits[i]) {
      return false;
    }
  }
  if (nic_bytes.size() != other.nic_bytes.size()) return false;
  for (std::size_t n = 0; n < nic_bytes.size(); ++n) {
    if (nic_bytes[n] != other.nic_bytes[n]) return false;
  }
  if (nic_striped_bytes != other.nic_striped_bytes) return false;
  if (fault_rail_retries != other.fault_rail_retries) return false;
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 2; ++s) {
      if (copy_count[d][s] != other.copy_count[d][s]) return false;
      if (copy_bytes[d][s] != other.copy_bytes[d][s]) return false;
    }
  }
  return packs == other.packs && pack_bytes == other.pack_bytes &&
         phase_makespan.size() == other.phase_makespan.size() &&
         fault_retries == other.fault_retries &&
         fault_failovers == other.fault_failovers &&
         fault_degraded == other.fault_degraded;
}

}  // namespace hetcomm::obs
