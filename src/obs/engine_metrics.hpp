#pragma once
// Fixed-slot metrics sink for one Engine run (one repetition).
//
// The engine's hot path cannot afford name lookups or allocation, so the
// per-run collector is a plain struct of arrays indexed by the simulator's
// small enums: message/byte counters by (path class x protocol), contention
// histograms and occupancy totals per contended resource kind, per-node NIC
// egress bytes, copy totals by (direction x solo/shared), pack totals, and
// the makespan at the end of every plan phase.  Attach with
// Engine::set_metrics(&sink); a null sink (the default) keeps the engine's
// hot path identical to a build without observability -- one predictable
// branch per operation.
//
// The slots split into three recording tiers (see Engine::set_metrics):
//
//   * plan-invariant -- message/byte counters, deterministic occupancies
//     and NIC egress bytes are the same every repetition (they depend only
//     on the plan and parameters, never on the noise stream).  The engine
//     records them only when record_invariants is set; core::measure()
//     enables that for repetition 0 alone.
//   * sampled -- queue waits and noised copy/pack durations vary with the
//     noise stream but are statistics, not identities: they are recorded
//     when record_samples is set, which core::measure() enables on a
//     deterministic subset of repetitions (keyed by repetition index, so
//     results are jobs-invariant).  Uncontended acquisitions (wait exactly
//     zero, the common case) bump a single per-resource counter and are
//     folded into the histogram at export time (wait_histogram()).
//   * every repetition -- phase-end clocks, which feed the per-phase
//     makespan mean/p50/p99 across all repetitions.
//
// The tiering is what keeps enabled-overhead under the <2% budget on
// fig5_1-scale replay: steady-state repetitions record a handful of
// phase-end clocks instead of thousands of counter updates.
//
// Recording never touches clocks, resources, or the noise stream, so
// simulation results are bit-identical with metrics on or off; the
// compiled and interpreted execution paths populate the sink identically
// (tests/test_metrics.cpp holds both contracts).
//
// publish() converts the collected slots into stable registry names
// ("msgs{path=on-node,proto=rendezvous}", "bytes_injected{nic=3}",
// "queue_wait{resource=nic-out}", ...) for export.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "hetsim/params.hpp"
#include "hetsim/topology.hpp"
#include "obs/metrics.hpp"

namespace hetcomm::obs {

/// Contended resource kinds of the engine, in pipeline order.
enum class SimResource : std::uint8_t {
  SendPort,    ///< per-rank outbound transport
  NicOut,      ///< per-node NIC egress
  FabricLink,  ///< tapered fat-tree pod links (when attached)
  NicIn,       ///< per-node NIC ingress
  RecvPort,    ///< per-rank inbound transport
  DmaH2D,      ///< per-GPU DMA engine, host-to-device
  DmaD2H,      ///< per-GPU DMA engine, device-to-host
};
inline constexpr int kNumSimResources = 7;

[[nodiscard]] constexpr const char* to_string(SimResource r) noexcept {
  switch (r) {
    case SimResource::SendPort: return "send-port";
    case SimResource::NicOut: return "nic-out";
    case SimResource::FabricLink: return "fabric-link";
    case SimResource::NicIn: return "nic-in";
    case SimResource::RecvPort: return "recv-port";
    case SimResource::DmaH2D: return "dma-h2d";
    case SimResource::DmaD2H: return "dma-d2h";
  }
  return "?";
}

struct EngineMetrics {
  /// Fixed path-class slots: machines declare up to kMaxPathClasses named
  /// classes (hetsim/taxonomy.hpp); unused slots stay zero and are skipped
  /// at export.  The classic taxonomy occupies slots 0/1/2 = the PathClass
  /// enum, so historical callers are unchanged.
  static constexpr int kPaths = kMaxPathClasses;
  static constexpr int kProtos = 3;  ///< Protocol values

  // -- Messages, by (path class, protocol) -------------------------------
  std::int64_t msgs[kPaths][kProtos] = {};
  std::int64_t msg_bytes[kPaths][kProtos] = {};

  /// Declared path-class names, indexed by class id; set by
  /// Engine::set_metrics from the machine's taxonomy.  Slots beyond the
  /// vector (or an empty vector, e.g. a default-constructed sink) fall
  /// back to the classic PathClass names at export, keeping
  /// hetcomm.metrics.v1 output schema-compatible.
  std::vector<std::string> path_names;

  // -- Contention, per resource kind -------------------------------------
  /// Time each acquisition waited behind earlier traffic (start - ready),
  /// excluding the zero-wait acquisitions counted in `zero_waits`; read
  /// through wait_histogram() to get the folded distribution.
  Histogram queue_wait[kNumSimResources];
  /// Acquisitions that did not wait at all (start == ready).
  std::int64_t zero_waits[kNumSimResources] = {};
  /// Busy time pushed onto each resource kind (sum of occupancies).
  double occupancy_seconds[kNumSimResources] = {};

  // -- NIC egress, per NIC-lane server ------------------------------------
  // Indexed by node * lanes + lane (the engine's nic_out_ server index), so
  // multi-rail machines report per-rail balance; on single-lane machines the
  // index degenerates to the node id, keeping the historical export names.
  std::vector<std::int64_t> nic_bytes;  ///< bytes injected through each NIC
  /// The subset of nic_bytes carried by explicitly railed (striped)
  /// messages; exported with a `stripe=striped` label.
  std::vector<std::int64_t> nic_striped_bytes;
  /// Declared NIC lanes per node (for rail math at export); >= 1.
  int nic_lanes = 1;

  // -- Copies, by (direction, solo=0 / shared=1) -------------------------
  std::int64_t copy_count[2][2] = {};
  std::int64_t copy_bytes[2][2] = {};
  double copy_seconds[2][2] = {};  ///< noised durations, as charged to clocks

  // -- Packs --------------------------------------------------------------
  std::int64_t packs = 0;
  std::int64_t pack_bytes = 0;
  double pack_seconds = 0.0;

  // -- Phases --------------------------------------------------------------
  /// Max clock over all ranks at the end of each executed plan phase, in
  /// phase order.  Deltas between entries are the per-phase makespan
  /// contributions (they sum to the final makespan exactly).
  std::vector<double> phase_makespan;

  // -- Faults (sampled tier; all zero when no fault model is attached) ----
  std::int64_t fault_retries = 0;     ///< lost send attempts that retried
  std::int64_t fault_failovers = 0;   ///< NIC-lane reroutes around outages
  std::int64_t fault_degraded = 0;    ///< messages with degraded occupancies
  double fault_retry_seconds = 0.0;   ///< backoff delay injected by retries
  /// Extra occupancy seconds added by degradation, per path class.
  double fault_degraded_seconds[kPaths] = {};
  /// Retried attempts whose failed egress went through rail k (the lane
  /// index within its node), indexed by rail; on-node retries (no rail)
  /// count only in fault_retries.
  std::vector<std::int64_t> fault_rail_retries;

  /// Size the per-NIC slots for `nic_servers` lane servers (num_nodes x
  /// lanes) with `lanes` rails per node; called by Engine::set_metrics.
  void ensure_lanes(int nic_servers, int lanes) {
    if (static_cast<int>(nic_bytes.size()) < nic_servers) {
      nic_bytes.resize(static_cast<std::size_t>(nic_servers), 0);
      nic_striped_bytes.resize(static_cast<std::size_t>(nic_servers), 0);
    }
    if (static_cast<int>(fault_rail_retries.size()) < lanes) {
      fault_rail_retries.resize(static_cast<std::size_t>(lanes), 0);
    }
    nic_lanes = std::max(nic_lanes, std::max(1, lanes));
  }

  /// Zero every slot, keeping allocations (per-repetition reuse).
  void reset() noexcept;

  /// Export name of a path-class slot: the declared taxonomy name when
  /// known, else the classic enum name (slots 0-2) or "path-N".
  [[nodiscard]] std::string path_name(int p) const {
    if (p >= 0 && p < static_cast<int>(path_names.size())) {
      return path_names[static_cast<std::size_t>(p)];
    }
    if (p >= 0 && p < 3) return to_string(static_cast<PathClass>(p));
    return "path-" + std::to_string(p);
  }

  // ---- Hot-path recording helpers (allocation-free) ---------------------
  void on_message(int path, Protocol proto, std::int64_t bytes) noexcept {
    const auto r = static_cast<int>(proto);
    ++msgs[path][r];
    msg_bytes[path][r] += bytes;
  }
  void on_message(PathClass path, Protocol proto,
                  std::int64_t bytes) noexcept {
    on_message(static_cast<int>(path), proto, bytes);
  }
  void on_wait(SimResource res, double ready, double start) noexcept {
    if (start > ready) {
      queue_wait[static_cast<int>(res)].observe(start - ready);
    } else {
      // Uncontended acquire returns `ready` bitwise -- one add instead of
      // a full histogram observe for the common case.
      ++zero_waits[static_cast<int>(res)];
    }
  }
  void on_occupancy(SimResource res, double seconds) noexcept {
    occupancy_seconds[static_cast<int>(res)] += seconds;
  }
  /// `nic` is the lane-server index the message's first attempt injected
  /// through (node * lanes + lane); `striped` marks explicitly railed
  /// messages (split plans) for the rail-balance breakdown.
  void on_nic_egress(int nic, std::int64_t bytes,
                     bool striped = false) noexcept {
    nic_bytes[static_cast<std::size_t>(nic)] += bytes;
    if (striped) nic_striped_bytes[static_cast<std::size_t>(nic)] += bytes;
  }
  void on_copy(CopyDir dir, int sharing_procs, std::int64_t bytes,
               double seconds) noexcept {
    const int d = static_cast<int>(dir);
    const int s = sharing_procs > 1 ? 1 : 0;
    ++copy_count[d][s];
    copy_bytes[d][s] += bytes;
    copy_seconds[d][s] += seconds;
  }
  void on_pack(std::int64_t bytes, double seconds) noexcept {
    ++packs;
    pack_bytes += bytes;
    pack_seconds += seconds;
  }
  void on_phase_end(double makespan) { phase_makespan.push_back(makespan); }
  /// `rail` is the lane index (within its node) the failed attempt's
  /// egress used, or -1 for on-node messages (no rail attribution).
  void on_fault_retry(double delay_seconds, int rail = -1) noexcept {
    ++fault_retries;
    fault_retry_seconds += delay_seconds;
    if (rail >= 0 && rail < static_cast<int>(fault_rail_retries.size())) {
      ++fault_rail_retries[static_cast<std::size_t>(rail)];
    }
  }
  void on_fault_failover() noexcept { ++fault_failovers; }
  void on_fault_degraded(int path, double extra_seconds) noexcept {
    ++fault_degraded;
    fault_degraded_seconds[path] += extra_seconds;
  }

  /// True when any fault slot is nonzero (gates the report's faults
  /// section, so fault-free output is byte-identical to the pre-fault
  /// schema).
  [[nodiscard]] bool any_faults() const noexcept {
    if (fault_retries != 0 || fault_failovers != 0 || fault_degraded != 0) {
      return true;
    }
    for (double s : fault_degraded_seconds) {
      if (s != 0.0) return true;
    }
    return false;
  }

  // ---- Aggregation and export -------------------------------------------
  /// Merge another run's slots into this one (plain adds; phase makespans
  /// must agree in count or either side may be empty).
  void merge(const EngineMetrics& other);

  /// Total messages / bytes over all paths and protocols.
  [[nodiscard]] std::int64_t total_messages() const noexcept;
  [[nodiscard]] std::int64_t total_bytes() const noexcept;

  /// Queue-wait distribution for one resource (by SimResource index) with
  /// the zero-wait acquisitions folded into bin 0.
  [[nodiscard]] Histogram wait_histogram(int resource) const noexcept;

  /// Publish every slot into `registry` under its stable name.  Counters
  /// accumulate (publishing N runs sums them); histograms merge.
  void publish(Registry& registry) const;

  /// True when the two sinks hold identical counters and histograms
  /// (used by the compiled-vs-interpreted equality tests).
  [[nodiscard]] bool same_counts(const EngineMetrics& other) const noexcept;
};

}  // namespace hetcomm::obs
