#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hetcomm::obs {

namespace {

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw std::runtime_error(std::string("JsonValue: expected ") + want +
                           ", got kind " +
                           std::to_string(static_cast<int>(got)));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ == Kind::Int) return int_;
  kind_error("int", kind_);
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  kind_error("number", kind_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return string_;
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  if (index >= array_.size()) {
    throw std::runtime_error("JsonValue: array index " +
                             std::to_string(index) + " out of range");
  }
  return array_[index];
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: missing key '" + std::string(key) +
                             "'");
  }
  return *v;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  array_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int level) {
    if (indent <= 0) return;
    os << '\n';
    for (int i = 0; i < indent * level; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Int: os << int_; break;
    case Kind::Double: {
      if (!std::isfinite(double_)) {
        // JSON has no Infinity/NaN; emit null rather than invalid tokens.
        os << "null";
        break;
      }
      std::ostringstream tmp;
      tmp.precision(std::numeric_limits<double>::max_digits10);
      tmp << double_;
      os << tmp.str();
      break;
    }
    case Kind::String: os << '"' << json_escape(string_) << '"'; break;
    case Kind::Array: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        newline_pad(depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline_pad(depth + 1);
        os << '"' << json_escape(object_[i].first) << "\": ";
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

void JsonValue::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
  os << '\n';
}

std::string JsonValue::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Line/column context (1-based) so errors in hand-edited machine or
    // fault files point at the offending spot, not just a byte offset.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::runtime_error("JSON parse error at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(column) + " (byte " +
                             std::to_string(pos_) + "): " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // Reports only ever emit ASCII; decode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    if (!std::isfinite(d)) {
      // 1e999 etc.: reject instead of silently storing inf, which every
      // downstream validator would then have to defend against.
      fail("number '" + token + "' out of double range");
    }
    return JsonValue(d);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      // set() would silently overwrite, hiding typos in hand-edited files;
      // emitted documents never carry duplicates (set() dedups), so strict
      // parsing cannot break a round trip.
      if (out.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hetcomm::obs
