#pragma once
// Minimal JSON document model for the observability subsystem.
//
// The metrics run-report, the CI schema validator, and the trace-export
// tests all need to read and write small JSON documents without an external
// dependency.  JsonValue is an ordered DOM (object keys keep insertion
// order, so emitted reports are stable and diffable) with a strict
// recursive-descent parser: malformed input throws std::runtime_error with
// a byte offset instead of yielding a half-parsed document.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hetcomm::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    Null,
    Bool,
    Int,     ///< exact 64-bit integer (counters, byte totals)
    Double,  ///< everything else numeric
    String,
    Array,
    Object,
  };

  JsonValue() noexcept : kind_(Kind::Null) {}
  JsonValue(std::nullptr_t) noexcept : kind_(Kind::Null) {}  // NOLINT
  JsonValue(bool b) noexcept : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  JsonValue(int v) noexcept : kind_(Kind::Int), int_(v) {}  // NOLINT
  JsonValue(std::int64_t v) noexcept : kind_(Kind::Int), int_(v) {}  // NOLINT
  JsonValue(double v) noexcept : kind_(Kind::Double), double_(v) {}  // NOLINT
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}  // NOLINT

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< Int promotes to double
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Array indexing; throws std::runtime_error when out of range.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const { return array_; }

  /// Object lookup: find() returns nullptr when absent, at() throws.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return object_;
  }

  /// Object mutation: sets (or overwrites) `key`, preserving first-insertion
  /// order.  Only valid on objects.
  JsonValue& set(std::string key, JsonValue value);
  /// Array mutation; only valid on arrays.
  JsonValue& push_back(JsonValue value);

  /// Serialize.  indent > 0 pretty-prints with that many spaces per level;
  /// 0 emits a single line.  Doubles round-trip (max_digits10).
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error).  Throws std::runtime_error with a byte offset on bad input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// JSON-escape `text` (quotes, backslashes, control characters) without the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace hetcomm::obs
