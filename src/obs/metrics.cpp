#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hetcomm::obs {

namespace {

/// Representative value (seconds) for a bin: 0 for bin 0, else the
/// geometric midpoint of (2^(k-1), 2^k] nanoseconds.
double bin_mid(int bin) noexcept {
  if (bin <= 0) return 0.0;
  const double lo = std::ldexp(1.0, bin - 1);  // 2^(bin-1) ns
  return lo * std::sqrt(2.0) * 1e-9;
}

}  // namespace

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBins; ++i) bins_[i] += other.bins_[i];
  // The +/-infinity empty sentinels make min/max correct unconditionally.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept {
  for (std::int64_t& b : bins_) b = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank definition).
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::int64_t target = std::max<std::int64_t>(rank, 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kBins; ++i) {
    seen += bins_[i];
    if (seen >= target) return bin_mid(i);
  }
  return bin_mid(kBins - 1);
}

std::string label(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

std::uint32_t Registry::lookup_or_register(std::string name, Kind kind) {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != kind) {
        throw std::invalid_argument("Registry: metric '" + name +
                                    "' already registered with another kind");
      }
      return e.slot;
    }
  }
  std::uint32_t slot = 0;
  switch (kind) {
    case Kind::Counter:
      slot = static_cast<std::uint32_t>(counters_.size());
      counters_.push_back({name, 0});
      break;
    case Kind::Gauge:
      slot = static_cast<std::uint32_t>(gauges_.size());
      gauges_.push_back({name, 0.0});
      break;
    case Kind::Histogram:
      slot = static_cast<std::uint32_t>(histograms_.size());
      histograms_.push_back({name, Histogram{}});
      break;
  }
  entries_.push_back({std::move(name), kind, slot});
  return slot;
}

MetricId Registry::counter(std::string name) {
  return {lookup_or_register(std::move(name), Kind::Counter)};
}

MetricId Registry::gauge(std::string name) {
  return {lookup_or_register(std::move(name), Kind::Gauge)};
}

MetricId Registry::histogram(std::string name) {
  return {lookup_or_register(std::move(name), Kind::Histogram)};
}

void Registry::reset_values() noexcept {
  for (NamedCounter& c : counters_) c.value = 0;
  for (NamedGauge& g : gauges_) g.value = 0.0;
  for (NamedHistogram& h : histograms_) h.value.reset();
}

}  // namespace hetcomm::obs
