#pragma once
// Fixed-slot metric primitives for the simulator's observability layer.
//
// Two pieces:
//
//   * Histogram -- a fixed 64-bin log2 histogram of non-negative durations
//     (seconds).  observe() is allocation-free and branch-light, bins merge
//     across repetitions with plain integer adds (so aggregation is
//     independent of worker scheduling), and quantile() answers p50/p99
//     queries at bin resolution.  Everything is deterministic: same samples
//     in, same summary out, on any thread count.
//
//   * Registry -- a name -> slot table for counters, gauges and histograms.
//     Registration (cold) allocates the slot and owns the stable name
//     ("msgs{path=on-node,proto=rendezvous}"); the hot-path mutators are
//     array indexing.  The registry is the *export* surface: structured
//     collectors (obs::EngineMetrics) stay as plain structs on the hot path
//     and publish into a registry when a report is built.
//
// Nothing in this header depends on the simulator; hetsim depends on obs,
// not the other way around.

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hetcomm::obs {

/// Fixed-bin log2 histogram of non-negative values (seconds).  Bin 0 holds
/// values <= 1 ns (including exact zeros -- an uncontended acquire); bin k
/// holds (2^(k-1), 2^k] nanoseconds.  64 bins cover up to ~2.9e10 s.
class Histogram {
 public:
  static constexpr int kBins = 64;

  /// Record one sample.  Inline and branch-light (one predictable branch
  /// for the <= 1 ns fast path, branchless min/max) -- this sits on the
  /// engine's per-operation hot path.
  void observe(double seconds) noexcept {
    ++bins_[bin_of(seconds)];
    ++count_;
    sum_ += seconds;
    min_ = seconds < min_ ? seconds : min_;
    max_ = seconds > max_ ? seconds : max_;
  }

  /// Fold `n` exact-zero samples into bin 0 in one shot.  Collectors that
  /// count uncontended (zero-wait) acquisitions separately fold them in at
  /// export time instead of paying the full observe() per event.
  void add_zeros(std::int64_t n) noexcept {
    if (n <= 0) return;
    bins_[0] += n;
    count_ += n;
    min_ = min_ < 0.0 ? min_ : 0.0;
    max_ = max_ > 0.0 ? max_ : 0.0;
  }

  /// Merge another histogram's bins into this one (plain integer adds, so
  /// merge order cannot change the result).
  void merge(const Histogram& other) noexcept;

  void reset() noexcept;

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  /// Quantile estimate at bin resolution: the geometric midpoint of the bin
  /// holding the q-th sample (exact for bin 0, which reports 0).  q is
  /// clamped to [0, 1]; returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::int64_t* bins() const noexcept { return bins_; }

 private:
  /// Bin index for a duration in seconds: 0 for <= 1 ns (or non-positive /
  /// NaN), otherwise 1 + floor(log2(ns)) clamped to the bin range.  The
  /// exponent is read straight from the IEEE-754 representation (exact, no
  /// libm call): for ns > 1 the value is a normal double whose biased
  /// exponent field is floor(log2(ns)) + 1023.
  [[nodiscard]] static int bin_of(double seconds) noexcept {
    const double ns = seconds * 1e9;
    if (!(ns > 1.0)) return 0;
    const int exp = static_cast<int>(
                        (std::bit_cast<std::uint64_t>(ns) >> 52) & 0x7ffU) -
                    1023;
    return exp + 1 < kBins ? exp + 1 : kBins - 1;
  }

  std::int64_t bins_[kBins] = {};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  /// +/-infinity sentinels keep observe() branchless; the public accessors
  /// report 0 while empty.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Opaque handle into a Registry; cheap to copy, valid for the registry's
/// lifetime.
struct MetricId {
  std::uint32_t index = 0;
};

/// Format a stable metric name: `label("msgs", {{"path", "on-node"},
/// {"proto", "rendezvous"}})` -> "msgs{path=on-node,proto=rendezvous}".
/// Labels are emitted in the order given (callers pass a canonical order so
/// names are stable across runs and versions).
[[nodiscard]] std::string label(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Name -> slot metric table.  Register every metric up front (allocates),
/// then mutate through handles (allocation-free).  Duplicate registration
/// of the same name and kind returns the existing slot; a kind clash
/// throws std::invalid_argument.
class Registry {
 public:
  [[nodiscard]] MetricId counter(std::string name);
  [[nodiscard]] MetricId gauge(std::string name);
  [[nodiscard]] MetricId histogram(std::string name);

  void add(MetricId id, std::int64_t delta) noexcept {
    counters_[id.index].value += delta;
  }
  void set(MetricId id, double value) noexcept {
    gauges_[id.index].value = value;
  }
  void observe(MetricId id, double seconds) noexcept {
    histograms_[id.index].value.observe(seconds);
  }
  void merge_histogram(MetricId id, const Histogram& other) noexcept {
    histograms_[id.index].value.merge(other);
  }

  [[nodiscard]] std::int64_t counter_value(MetricId id) const noexcept {
    return counters_[id.index].value;
  }
  [[nodiscard]] double gauge_value(MetricId id) const noexcept {
    return gauges_[id.index].value;
  }
  [[nodiscard]] const Histogram& histogram_value(MetricId id) const noexcept {
    return histograms_[id.index].value;
  }

  /// Export views, in registration order.
  struct NamedCounter {
    std::string name;
    std::int64_t value = 0;
  };
  struct NamedGauge {
    std::string name;
    double value = 0.0;
  };
  struct NamedHistogram {
    std::string name;
    Histogram value;
  };
  [[nodiscard]] const std::vector<NamedCounter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<NamedGauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::vector<NamedHistogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Zero every slot, keeping names and handles valid.
  void reset_values() noexcept;

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  std::uint32_t lookup_or_register(std::string name, Kind kind);

  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint32_t slot = 0;
  };
  std::vector<Entry> entries_;
  std::vector<NamedCounter> counters_;
  std::vector<NamedGauge> gauges_;
  std::vector<NamedHistogram> histograms_;
};

}  // namespace hetcomm::obs
