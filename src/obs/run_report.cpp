#include "obs/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hetcomm::obs {

namespace {

/// Nearest-rank quantile of an already-sorted sample vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.p50 = sorted_quantile(sorted, 0.50);
  s.p99 = sorted_quantile(sorted, 0.99);
  s.min = sorted.front();
  s.max = sorted.back();
  return s;
}

JsonValue Summary::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("count", count);
  out.set("mean", mean);
  out.set("p50", p50);
  out.set("p99", p99);
  out.set("min", min);
  out.set("max", max);
  return out;
}

void fill_from_engine_metrics(RunReport& report, const EngineMetrics& metrics,
                              int reps, int invariant_reps,
                              int sampled_reps) {
  if (reps <= 0) throw std::invalid_argument("fill_from_engine_metrics: reps");
  if (invariant_reps <= 0 || invariant_reps > reps) {
    throw std::invalid_argument("fill_from_engine_metrics: invariant_reps");
  }
  if (sampled_reps <= 0 || sampled_reps > reps) {
    throw std::invalid_argument("fill_from_engine_metrics: sampled_reps");
  }
  // Tiered counter slots: every recording of a tier saw identical counts,
  // so dividing by that tier's recording count is exact.
  const auto per_rep = [invariant_reps](std::int64_t total) {
    return total / invariant_reps;
  };
  const auto per_sampled = [sampled_reps](std::int64_t total) {
    return total / sampled_reps;
  };
  const double inv_invariant = 1.0 / static_cast<double>(invariant_reps);
  const double inv_sampled = 1.0 / static_cast<double>(sampled_reps);

  report.traffic.clear();
  for (int p = 0; p < EngineMetrics::kPaths; ++p) {
    for (int r = 0; r < EngineMetrics::kProtos; ++r) {
      if (metrics.msgs[p][r] == 0 && metrics.msg_bytes[p][r] == 0) continue;
      TrafficStat t;
      t.path = metrics.path_name(p);
      t.proto = to_string(static_cast<Protocol>(r));
      t.messages = per_rep(metrics.msgs[p][r]);
      t.bytes = per_rep(metrics.msg_bytes[p][r]);
      report.traffic.push_back(std::move(t));
    }
  }
  report.total_messages = per_rep(metrics.total_messages());
  report.total_bytes = per_rep(metrics.total_bytes());

  report.resources.clear();
  for (int i = 0; i < kNumSimResources; ++i) {
    const Histogram h = metrics.wait_histogram(i);
    if (h.count() == 0 && metrics.occupancy_seconds[i] == 0.0) continue;
    ResourceStat r;
    r.resource = to_string(static_cast<SimResource>(i));
    r.waits = h.count();
    r.wait_mean = h.mean();
    r.wait_p50 = h.quantile(0.50);
    r.wait_p99 = h.quantile(0.99);
    r.wait_max = h.max();
    r.occupancy_seconds = metrics.occupancy_seconds[i] * inv_invariant;
    report.resources.push_back(std::move(r));
  }

  report.nic.clear();
  const int lanes = std::max(1, metrics.nic_lanes);
  for (std::size_t n = 0; n < metrics.nic_bytes.size(); ++n) {
    if (metrics.nic_bytes[n] == 0) continue;
    NicStat stat;
    stat.nic = static_cast<int>(n);
    stat.node = static_cast<int>(n) / lanes;
    stat.lane = static_cast<int>(n) % lanes;
    stat.bytes_injected = per_rep(metrics.nic_bytes[n]);
    if (n < metrics.nic_striped_bytes.size()) {
      stat.striped_bytes = per_rep(metrics.nic_striped_bytes[n]);
    }
    report.nic.push_back(stat);
  }

  report.copies.clear();
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 2; ++s) {
      if (metrics.copy_count[d][s] == 0) continue;
      CopyStat c;
      c.dir = to_string(static_cast<CopyDir>(d));
      c.sharing = s == 0 ? "solo" : "shared";
      c.count = per_sampled(metrics.copy_count[d][s]);
      c.bytes = per_sampled(metrics.copy_bytes[d][s]);
      c.seconds = metrics.copy_seconds[d][s] * inv_sampled;
      report.copies.push_back(std::move(c));
    }
  }

  report.packs = per_sampled(metrics.packs);
  report.pack_bytes = per_sampled(metrics.pack_bytes);
  report.pack_seconds = metrics.pack_seconds * inv_sampled;

  // Fault slots ride the sampled tier.  Unlike the plan-invariant counters,
  // loss/failover counts vary per repetition (the fault stream is keyed by
  // the per-rep run seed), so the integer divisions are floor averages --
  // fine for diagnostics, which is all this section is for.
  report.faults = FaultStat{};
  if (metrics.any_faults()) {
    report.faults.retries = per_sampled(metrics.fault_retries);
    report.faults.failovers = per_sampled(metrics.fault_failovers);
    report.faults.degraded_msgs = per_sampled(metrics.fault_degraded);
    report.faults.retry_seconds = metrics.fault_retry_seconds * inv_sampled;
    for (int p = 0; p < EngineMetrics::kPaths; ++p) {
      if (metrics.fault_degraded_seconds[p] == 0.0) continue;
      report.faults.degraded.push_back(
          {metrics.path_name(p),
           metrics.fault_degraded_seconds[p] * inv_sampled});
    }
    bool any_rail = false;
    for (const std::int64_t r : metrics.fault_rail_retries) {
      if (r != 0) any_rail = true;
    }
    if (any_rail) {
      report.faults.rail_retries.reserve(metrics.fault_rail_retries.size());
      for (const std::int64_t r : metrics.fault_rail_retries) {
        report.faults.rail_retries.push_back(per_sampled(r));
      }
    }
  }
}

JsonValue RunReport::metrics_json() const {
  JsonValue out = JsonValue::object();
  for (const TrafficStat& t : traffic) {
    out.set(label("msgs", {{"path", t.path}, {"proto", t.proto}}), t.messages);
    out.set(label("bytes", {{"path", t.path}, {"proto", t.proto}}), t.bytes);
  }
  for (const ResourceStat& r : resources) {
    JsonValue wait = JsonValue::object();
    wait.set("count", r.waits);
    wait.set("mean", r.wait_mean);
    wait.set("p50", r.wait_p50);
    wait.set("p99", r.wait_p99);
    wait.set("max", r.wait_max);
    out.set(label("queue_wait", {{"resource", r.resource}}), std::move(wait));
    out.set(label("occupancy_seconds", {{"resource", r.resource}}),
            r.occupancy_seconds);
  }
  for (const NicStat& n : nic) {
    out.set(label("bytes_injected", {{"nic", std::to_string(n.nic)}}),
            n.bytes_injected);
    if (n.striped_bytes != 0) {
      out.set(label("bytes_injected", {{"nic", std::to_string(n.nic)},
                                       {"stripe", "striped"}}),
              n.striped_bytes);
    }
  }
  for (const CopyStat& c : copies) {
    out.set(label("copies", {{"dir", c.dir}, {"sharing", c.sharing}}),
            c.count);
    out.set(label("copy_bytes", {{"dir", c.dir}, {"sharing", c.sharing}}),
            c.bytes);
    out.set(label("copy_seconds", {{"dir", c.dir}, {"sharing", c.sharing}}),
            c.seconds);
  }
  if (packs > 0) {
    out.set("packs", packs);
    out.set("pack_bytes", pack_bytes);
    out.set("pack_seconds", pack_seconds);
  }
  return out;
}

JsonValue RunReport::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("name", name);
  out.set("engine", engine);
  out.set("reps", reps);
  out.set("sampled_reps", sampled_reps);
  out.set("jobs", jobs);
  out.set("batch", batch);
  out.set("seed", static_cast<std::int64_t>(seed));
  out.set("noise_sigma", noise_sigma);
  out.set("ranks", ranks);
  out.set("nodes", nodes);

  out.set("makespan", makespan.to_json());
  out.set("max_avg", max_avg);

  JsonValue phase_array = JsonValue::array();
  for (const PhaseStat& p : phases) {
    JsonValue entry = JsonValue::object();
    entry.set("phase", p.phase);
    entry.set("makespan", p.makespan.to_json());
    entry.set("share", p.share);
    phase_array.push_back(std::move(entry));
  }
  out.set("phases", std::move(phase_array));

  JsonValue traffic_array = JsonValue::array();
  for (const TrafficStat& t : traffic) {
    JsonValue entry = JsonValue::object();
    entry.set("path", t.path);
    entry.set("proto", t.proto);
    entry.set("messages", t.messages);
    entry.set("bytes", t.bytes);
    traffic_array.push_back(std::move(entry));
  }
  out.set("traffic", std::move(traffic_array));

  JsonValue totals = JsonValue::object();
  totals.set("messages", total_messages);
  totals.set("bytes", total_bytes);
  out.set("totals", std::move(totals));

  JsonValue resource_array = JsonValue::array();
  for (const ResourceStat& r : resources) {
    JsonValue entry = JsonValue::object();
    entry.set("resource", r.resource);
    entry.set("waits", r.waits);
    entry.set("wait_mean", r.wait_mean);
    entry.set("wait_p50", r.wait_p50);
    entry.set("wait_p99", r.wait_p99);
    entry.set("wait_max", r.wait_max);
    entry.set("occupancy_seconds", r.occupancy_seconds);
    resource_array.push_back(std::move(entry));
  }
  out.set("contention", std::move(resource_array));

  JsonValue nic_array = JsonValue::array();
  for (const NicStat& n : nic) {
    JsonValue entry = JsonValue::object();
    entry.set("nic", n.nic);
    entry.set("node", n.node);
    entry.set("lane", n.lane);
    entry.set("bytes_injected", n.bytes_injected);
    if (n.striped_bytes != 0) entry.set("striped_bytes", n.striped_bytes);
    nic_array.push_back(std::move(entry));
  }
  out.set("nic", std::move(nic_array));

  JsonValue copy_array = JsonValue::array();
  for (const CopyStat& c : copies) {
    JsonValue entry = JsonValue::object();
    entry.set("dir", c.dir);
    entry.set("sharing", c.sharing);
    entry.set("count", c.count);
    entry.set("bytes", c.bytes);
    entry.set("seconds", c.seconds);
    copy_array.push_back(std::move(entry));
  }
  out.set("copies", std::move(copy_array));

  JsonValue pack_obj = JsonValue::object();
  pack_obj.set("count", packs);
  pack_obj.set("bytes", pack_bytes);
  pack_obj.set("seconds", pack_seconds);
  out.set("packs", std::move(pack_obj));

  // Emitted only for degraded runs: fault-free reports keep the exact
  // pre-fault document shape.
  if (has_faults()) {
    JsonValue fault_obj = JsonValue::object();
    fault_obj.set("retries", faults.retries);
    fault_obj.set("failovers", faults.failovers);
    fault_obj.set("degraded_msgs", faults.degraded_msgs);
    fault_obj.set("retry_seconds", faults.retry_seconds);
    JsonValue degraded_array = JsonValue::array();
    for (const FaultPathStat& d : faults.degraded) {
      JsonValue entry = JsonValue::object();
      entry.set("path", d.path);
      entry.set("degraded_seconds", d.degraded_seconds);
      degraded_array.push_back(std::move(entry));
    }
    fault_obj.set("degraded", std::move(degraded_array));
    if (!faults.rail_retries.empty()) {
      JsonValue rail_array = JsonValue::array();
      for (std::size_t r = 0; r < faults.rail_retries.size(); ++r) {
        JsonValue entry = JsonValue::object();
        entry.set("rail", static_cast<int>(r));
        entry.set("retries", faults.rail_retries[r]);
        rail_array.push_back(std::move(entry));
      }
      fault_obj.set("rail_retries", std::move(rail_array));
    }
    out.set("faults", std::move(fault_obj));
  }

  out.set("wall_seconds", wall_seconds);
  out.set("reps_per_second", reps_per_second);

  JsonValue worker_array = JsonValue::array();
  for (const WorkerStat& w : workers) {
    JsonValue entry = JsonValue::object();
    entry.set("worker", w.worker);
    entry.set("reps", w.reps);
    entry.set("busy_seconds", w.busy_seconds);
    worker_array.push_back(std::move(entry));
  }
  out.set("workers", std::move(worker_array));

  out.set("metrics", metrics_json());
  return out;
}

JsonValue make_metrics_document(std::span<const RunReport> reports) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kMetricsSchema);
  JsonValue array = JsonValue::array();
  for (const RunReport& r : reports) array.push_back(r.to_json());
  doc.set("reports", std::move(array));
  return doc;
}

}  // namespace hetcomm::obs
