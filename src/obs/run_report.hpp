#pragma once
// Machine-readable run reports ("hetcomm.metrics.v1").
//
// A RunReport is the aggregate of one measured configuration: repetition
// statistics (mean/p50/p99 over per-rep samples, computed exactly from the
// sample vector, not from histogram bins), the per-phase makespan breakdown,
// message/byte traffic by (path class, protocol), contention per simulated
// resource, per-NIC injected bytes, copy/pack totals, and per-worker
// utilization of the thread pool that ran the repetitions.
//
// The report is built by core::measure() (see core/executor.cpp) from an
// obs::EngineMetrics aggregate plus per-repetition sample buffers; this
// module only holds the plain data model and its JSON projection, so it has
// no dependency on the simulator's execution layer.
//
// File layout (one file may carry several reports, e.g. a bench sweep):
//
//   { "schema": "hetcomm.metrics.v1", "reports": [ { ... }, ... ] }
//
// tools/validate_metrics checks this shape in CI; docs/simulator.md
// documents every field.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/engine_metrics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hetcomm::obs {

inline constexpr const char* kMetricsSchema = "hetcomm.metrics.v1";

/// Exact order statistics of a sample vector (seconds).  Unlike
/// Histogram::quantile, these are computed from the sorted samples, so p50
/// and p99 are exact (nearest-rank definition).
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] JsonValue to_json() const;
};

/// Summarize `samples`; sorts a copy, leaves the input untouched.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// One plan phase's contribution to the makespan, across the sampled
/// repetitions (phase-end clocks ride the sampled recording tier; see
/// RunReport::sampled_reps).
struct PhaseStat {
  int phase = 0;
  Summary makespan;    ///< per-rep (end clock - previous phase end clock)
  double share = 0.0;  ///< makespan.mean / sum of phase means
};

/// Message traffic for one (path class, protocol) cell, per repetition.
struct TrafficStat {
  std::string path;
  std::string proto;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};

/// Contention on one simulated resource kind.  The wait histogram pools the
/// samples of every repetition (queue waits vary under noise); occupancy is
/// the per-repetition busy time pushed onto the resource.
struct ResourceStat {
  std::string resource;
  std::int64_t waits = 0;   ///< acquisitions recorded (sampled reps)
  double wait_mean = 0.0;   ///< seconds; exact mean over all samples
  double wait_p50 = 0.0;    ///< seconds; histogram-resolution quantile
  double wait_p99 = 0.0;
  double wait_max = 0.0;
  double occupancy_seconds = 0.0;  ///< per repetition
};

struct NicStat {
  int nic = 0;   ///< NIC-lane server index (node * lanes + lane)
  int node = 0;
  int lane = 0;  ///< rail id within the node
  std::int64_t bytes_injected = 0;  ///< per repetition
  /// Subset of bytes_injected pinned to this rail by striping
  /// (PlanOp::rail >= 0), per repetition; rail balance for striped runs.
  std::int64_t striped_bytes = 0;
};

struct CopyStat {
  std::string dir;      ///< "H2D" / "D2H"
  std::string sharing;  ///< "solo" / "shared"
  std::int64_t count = 0;
  std::int64_t bytes = 0;
  double seconds = 0.0;  ///< per repetition, as charged to rank clocks
};

/// Extra occupancy injected by fault degradation on one path class.
struct FaultPathStat {
  std::string path;
  double degraded_seconds = 0.0;  ///< per sampled repetition
};

/// Fault-layer activity (zero / empty when no fault model was attached;
/// the JSON section is omitted entirely then, keeping fault-free reports
/// byte-identical to the pre-fault schema).
struct FaultStat {
  std::int64_t retries = 0;        ///< per sampled repetition
  std::int64_t failovers = 0;      ///< per sampled repetition
  std::int64_t degraded_msgs = 0;  ///< per sampled repetition
  double retry_seconds = 0.0;      ///< backoff delay injected, per sampled rep
  std::vector<FaultPathStat> degraded;
  /// Retries attributed to each NIC rail (lane id), per sampled repetition;
  /// empty when no retry hit an off-node egress lane.
  std::vector<std::int64_t> rail_retries;

  [[nodiscard]] bool any() const noexcept {
    return retries != 0 || failovers != 0 || degraded_msgs != 0 ||
           retry_seconds != 0.0 || !degraded.empty();
  }
};

/// Utilization of one repetition-runner worker thread.
struct WorkerStat {
  int worker = 0;
  std::int64_t reps = 0;       ///< repetitions this worker executed
  double busy_seconds = 0.0;   ///< wall time spent inside repetitions
};

struct RunReport {
  // -- Identity ------------------------------------------------------------
  std::string name;    ///< caller-supplied run label (bench fixture, cell)
  std::string engine;  ///< "compiled" / "interpreted"
  int reps = 0;
  /// Repetitions that recorded the sampled statistics tier (queue waits,
  /// copy/pack durations, phase-end clocks); 0 when the producer recorded
  /// every repetition before sampling existed.
  int sampled_reps = 0;
  int jobs = 0;
  /// Effective lane width of batched execution (Engine::execute_batch);
  /// 1 = serial one-rep-at-a-time replay.
  int batch = 1;
  std::uint64_t seed = 0;
  double noise_sigma = 0.0;
  int ranks = 0;
  int nodes = 0;

  // -- Repetition statistics (simulated seconds) ---------------------------
  Summary makespan;          ///< max rank clock per rep
  double max_avg = 0.0;      ///< the paper's headline metric (§4.5)
  std::vector<PhaseStat> phases;

  // -- Traffic and contention (per repetition unless noted) ----------------
  std::vector<TrafficStat> traffic;
  std::int64_t total_messages = 0;
  std::int64_t total_bytes = 0;
  std::vector<ResourceStat> resources;
  std::vector<NicStat> nic;
  std::vector<CopyStat> copies;
  std::int64_t packs = 0;
  std::int64_t pack_bytes = 0;
  double pack_seconds = 0.0;
  FaultStat faults;

  [[nodiscard]] bool has_faults() const noexcept { return faults.any(); }

  // -- Host-side execution -------------------------------------------------
  double wall_seconds = 0.0;
  double reps_per_second = 0.0;
  std::vector<WorkerStat> workers;

  /// Flat name -> value map mirroring the structured sections under the
  /// registry's stable names ("msgs{path=on-node,proto=rendezvous}", ...).
  /// Counters/gauges are per repetition; histogram entries pool all reps.
  [[nodiscard]] JsonValue metrics_json() const;

  [[nodiscard]] JsonValue to_json() const;
};

/// Populate a report's traffic/contention/nic/copy/pack sections from an
/// EngineMetrics aggregate accumulated over `reps` repetitions, of which
/// `invariant_reps` recorded the plan-invariant tier (message/byte
/// counters, occupancies, NIC egress) and `sampled_reps` the sampled tier
/// (queue waits, copy/pack slots) -- see Engine::set_metrics.  Counter
/// slots divide by their tier's recording count (exact: every recording
/// sees identical counts); noised copy/pack seconds average over the
/// sampled recordings, and wait histograms pool every sampled
/// acquisition.  Callers that record every slot on every repetition pass
/// reps for both tier counts.
void fill_from_engine_metrics(RunReport& report, const EngineMetrics& metrics,
                              int reps, int invariant_reps, int sampled_reps);

/// Wrap reports in the versioned document envelope.
[[nodiscard]] JsonValue make_metrics_document(
    std::span<const RunReport> reports);

}  // namespace hetcomm::obs
