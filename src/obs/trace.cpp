#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace hetcomm::obs {

namespace {

/// Intern table bound: a tracer is for span *kinds*, not payloads; a site
/// that interns unbounded strings (error messages) saturates into one
/// overflow slot instead of growing the table forever.
constexpr std::size_t kMaxInterned = 4096;

/// One drop-oldest span ring.  `head` is the oldest element once the ring
/// has wrapped; records land at (head + size) % capacity.
struct Ring {
  mutable std::mutex mu;
  std::vector<SpanRecord> slots;
  std::size_t head = 0;
  std::size_t size = 0;
  std::int64_t dropped = 0;
  std::int64_t recorded = 0;
};

}  // namespace

struct Tracer::Impl {
  Options options;
  std::chrono::steady_clock::time_point epoch;
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<std::uint64_t> next_trace{1};
  std::atomic<std::uint32_t> next_span{1};

  mutable std::mutex names_mu;
  std::vector<std::string> names;  ///< slot -> name
  std::unordered_map<std::string, std::uint16_t> name_slots;
  std::unordered_map<std::uint16_t, std::string> track_names;
};

Tracer::Tracer(Options options) : impl_(std::make_unique<Impl>()) {
  if (options.rings < 1) {
    throw std::invalid_argument("Tracer: rings must be >= 1");
  }
  if (options.ring_capacity < 1) {
    throw std::invalid_argument("Tracer: ring_capacity must be >= 1");
  }
  if (options.sample_period < 1) {
    throw std::invalid_argument("Tracer: sample_period must be >= 1");
  }
  impl_->options = options;
  impl_->epoch = std::chrono::steady_clock::now();
  impl_->rings.reserve(static_cast<std::size_t>(options.rings));
  for (int r = 0; r < options.rings; ++r) {
    auto ring = std::make_unique<Ring>();
    ring->slots.resize(options.ring_capacity);
    impl_->rings.push_back(std::move(ring));
  }
  // Slot 0 is reserved (= "no name"); the overflow slot comes right after
  // so exports never index past the table.
  impl_->names.reserve(64);
  impl_->names.emplace_back("<unnamed>");
  impl_->names.emplace_back("<interned-names-exhausted>");
}

Tracer::~Tracer() = default;

int Tracer::num_rings() const noexcept {
  return static_cast<int>(impl_->rings.size());
}

std::size_t Tracer::ring_capacity() const noexcept {
  return impl_->options.ring_capacity;
}

std::uint64_t Tracer::sample_period() const noexcept {
  return impl_->options.sample_period;
}

std::uint64_t Tracer::begin_trace() noexcept {
  return impl_->next_trace.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::sampled(std::uint64_t trace_id) const noexcept {
  if (trace_id == 0) return false;
  return (trace_id - 1) % impl_->options.sample_period == 0;
}

std::uint32_t Tracer::new_span_id() noexcept {
  return impl_->next_span.fetch_add(1, std::memory_order_relaxed);
}

std::uint16_t Tracer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->names_mu);
  const std::string key(name);
  auto it = impl_->name_slots.find(key);
  if (it != impl_->name_slots.end()) return it->second;
  if (impl_->names.size() >= kMaxInterned) return 1;  // overflow slot
  const std::uint16_t slot = static_cast<std::uint16_t>(impl_->names.size());
  impl_->names.push_back(key);
  impl_->name_slots.emplace(key, slot);
  return slot;
}

void Tracer::name_track(std::uint16_t track, std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->names_mu);
  impl_->track_names[track] = std::string(name);
}

double Tracer::now() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       impl_->epoch)
      .count();
}

double Tracer::seconds_since_epoch(
    std::chrono::steady_clock::time_point t) const noexcept {
  return std::chrono::duration<double>(t - impl_->epoch).count();
}

void Tracer::record(int ring, const SpanRecord& span) noexcept {
  const std::size_t n = impl_->rings.size();
  Ring& r = *impl_->rings[static_cast<std::size_t>(ring) % n];
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.recorded;
  if (r.size == r.slots.size()) {
    // Drop the oldest span: overwrite the head slot and advance.
    r.slots[r.head] = span;
    r.head = (r.head + 1) % r.slots.size();
    ++r.dropped;
    return;
  }
  r.slots[(r.head + r.size) % r.slots.size()] = span;
  ++r.size;
}

std::int64_t Tracer::dropped() const noexcept {
  std::int64_t total = 0;
  for (const auto& r : impl_->rings) {
    std::lock_guard<std::mutex> lock(r->mu);
    total += r->dropped;
  }
  return total;
}

std::int64_t Tracer::recorded() const noexcept {
  std::int64_t total = 0;
  for (const auto& r : impl_->rings) {
    std::lock_guard<std::mutex> lock(r->mu);
    total += r->recorded;
  }
  return total;
}

JsonValue Tracer::to_json() const {
  // Snapshot rings one at a time (writers on other rings keep going), then
  // resolve names under the intern lock.
  std::vector<SpanRecord> spans;
  std::int64_t total_dropped = 0;
  for (const auto& r : impl_->rings) {
    std::lock_guard<std::mutex> lock(r->mu);
    for (std::size_t i = 0; i < r->size; ++i) {
      spans.push_back(r->slots[(r->head + i) % r->slots.size()]);
    }
    total_dropped += r->dropped;
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.span_id < b.span_id;
            });

  std::vector<std::string> names;
  std::vector<std::pair<std::uint16_t, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(impl_->names_mu);
    names = impl_->names;
    tracks.assign(impl_->track_names.begin(), impl_->track_names.end());
  }
  std::sort(tracks.begin(), tracks.end());
  const auto name_of = [&](std::uint16_t slot) -> const std::string& {
    return names[slot < names.size() ? slot : 1];
  };

  JsonValue doc = JsonValue::object();
  doc.set("schema", kTraceSchema);
  JsonValue meta = JsonValue::object();
  meta.set("rings", static_cast<std::int64_t>(impl_->rings.size()));
  meta.set("ring_capacity",
           static_cast<std::int64_t>(impl_->options.ring_capacity));
  meta.set("sample_period",
           static_cast<std::int64_t>(impl_->options.sample_period));
  meta.set("spans", static_cast<std::int64_t>(spans.size()));
  meta.set("dropped", total_dropped);
  doc.set("meta", std::move(meta));

  JsonValue track_doc = JsonValue::object();
  for (const auto& [track, label] : tracks) {
    track_doc.set(std::to_string(track), label);
  }
  doc.set("tracks", std::move(track_doc));

  JsonValue out = JsonValue::array();
  for (const SpanRecord& s : spans) {
    JsonValue row = JsonValue::object();
    row.set("trace", static_cast<std::int64_t>(s.trace_id));
    row.set("span", static_cast<std::int64_t>(s.span_id));
    row.set("parent", static_cast<std::int64_t>(s.parent));
    row.set("name", name_of(s.name));
    row.set("track", static_cast<std::int64_t>(s.track));
    row.set("t_start", s.t_start);
    row.set("t_end", s.t_end);
    if (s.num_attrs > 0) {
      JsonValue attrs = JsonValue::object();
      for (int a = 0; a < s.num_attrs; ++a) {
        const TraceAttr& attr = s.attrs[a];
        if (attr.is_string) {
          attrs.set(name_of(attr.key),
                    name_of(static_cast<std::uint16_t>(attr.value)));
        } else {
          attrs.set(name_of(attr.key), attr.value);
        }
      }
      row.set("attrs", std::move(attrs));
    }
    out.push_back(std::move(row));
  }
  doc.set("spans", std::move(out));
  return doc;
}

void Tracer::write_json(std::ostream& os) const {
  to_json().dump(os);
  os << "\n";
}

ScopedSpan::ScopedSpan(const TraceContext& ctx, std::uint16_t name) noexcept {
  if (ctx.tracer == nullptr) return;
  ctx_ = ctx;
  span_.trace_id = ctx.trace_id;
  span_.span_id = ctx.tracer->new_span_id();
  span_.parent = ctx.parent;
  span_.name = name;
  span_.track = ctx.track;
  span_.t_start = ctx.tracer->now();
}

ScopedSpan::~ScopedSpan() {
  if (ctx_.tracer == nullptr) return;
  span_.t_end = ctx_.tracer->now();
  ctx_.tracer->record(ctx_.ring, span_);
}

void write_chrome_trace_artifact(std::ostream& os, const JsonValue& artifact) {
  const JsonValue* schema = artifact.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kTraceSchema) {
    throw std::runtime_error(std::string("expected a ") + kTraceSchema +
                             " document");
  }
  const JsonValue& spans = artifact.at("spans");
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": 0, \"args\": {\"name\": \"hetcomm\"}}";
  if (const JsonValue* tracks = artifact.find("tracks")) {
    for (const auto& [track, label] : tracks->members()) {
      sep();
      os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
         << "\"tid\": " << track << ", \"args\": {\"name\": \""
         << json_escape(label.as_string()) << "\"}}";
    }
  }
  for (const JsonValue& s : spans.items()) {
    const double t0 = s.at("t_start").as_double();
    const double t1 = s.at("t_end").as_double();
    sep();
    os << "  {\"name\": \"" << json_escape(s.at("name").as_string())
       << "\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
       << s.at("track").as_int() << ", \"ts\": " << t0 * 1e6
       << ", \"dur\": " << std::max(0.0, t1 - t0) * 1e6 << ", \"args\": {"
       << "\"trace\": " << s.at("trace").as_int()
       << ", \"span\": " << s.at("span").as_int()
       << ", \"parent\": " << s.at("parent").as_int();
    if (const JsonValue* attrs = s.find("attrs")) {
      for (const auto& [key, value] : attrs->members()) {
        os << ", \"" << json_escape(key) << "\": ";
        if (value.is_string()) {
          os << "\"" << json_escape(value.as_string()) << "\"";
        } else {
          os << value.dump_string(0);
        }
      }
    }
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace hetcomm::obs
