#pragma once
// Request-scoped span tracing for the serving/measurement path.
//
// The metrics layer (obs/metrics.hpp) answers "how much, in aggregate";
// the tracer answers "where did *this* request's time go".  A Tracer owns
// a fixed set of fixed-capacity span rings -- one per writer (thread-pool
// worker index; the window-driving thread is worker 0) -- recording
// completed spans `{trace_id, span_id, parent, name, track, t_start,
// t_end, attrs}`.  Design constraints, in the spirit of the Registry:
//
//   * allocation-free on the hot path: rings and attr storage are
//     preallocated; record() copies one POD record under the ring's own
//     (uncontended) mutex and never allocates.  Span/attr names are
//     interned up front into stable slots (intern() is the cold path).
//   * bounded: a full ring drops its *oldest* span and bumps an exact
//     dropped-span counter, so a long-running server keeps the recent
//     window of spans and tells you precisely what it lost.
//   * sampled: trace ids are dense (begin_trace()), and sampled() keeps
//     every `sample_period`-th trace -- unsampled requests skip every
//     record() call, so the steady-state cost scales with the sample rate.
//   * zero cost when disabled: callers hold a Tracer* that is null when
//     tracing is off; every instrumentation site is a single pointer test.
//
// Exports: the `hetcomm.trace.v1` JSON artifact (to_json / write_json;
// tools/validate_trace checks the shape in CI) and a Chrome/Perfetto
// trace-event conversion (write_chrome_trace_artifact) that puts service
// spans and engine rank tracks on one timeline.  See docs/tracing.md.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace hetcomm::obs {

inline constexpr const char* kTraceSchema = "hetcomm.trace.v1";

/// One span attribute: an interned key with either an integer value or an
/// interned-string value.  Fixed-size so SpanRecord stays POD.
struct TraceAttr {
  std::uint16_t key = 0;     ///< intern slot of the attribute name
  bool is_string = false;    ///< value is an intern slot, not an integer
  std::int64_t value = 0;
};

/// A completed span.  Times are seconds since the owning Tracer's epoch
/// (steady clock).  `parent` is another span id in the same trace, or 0
/// for a root span.  `track` is a display lane: worker threads use their
/// worker index, engine ranks use kEngineTrackBase + rank.
struct SpanRecord {
  static constexpr int kMaxAttrs = 6;

  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent = 0;
  std::uint16_t name = 0;  ///< intern slot
  std::uint16_t track = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::uint8_t num_attrs = 0;
  TraceAttr attrs[kMaxAttrs];

  /// Append an integer attribute (silently ignored beyond kMaxAttrs --
  /// a span never fails to record because a caller was chatty).
  void add_attr(std::uint16_t key, std::int64_t value) noexcept {
    if (num_attrs >= kMaxAttrs) return;
    attrs[num_attrs++] = {key, false, value};
  }
  /// Append an interned-string attribute.
  void add_attr_slot(std::uint16_t key, std::uint16_t value_slot) noexcept {
    if (num_attrs >= kMaxAttrs) return;
    attrs[num_attrs++] = {key, true, static_cast<std::int64_t>(value_slot)};
  }
};

/// Display tracks >= this are engine ranks (track - base == rank).
inline constexpr std::uint16_t kEngineTrackBase = 4096;

class Tracer {
 public:
  struct Options {
    /// Writer slots; callers record under their thread-pool worker index.
    int rings = 1;
    /// Spans retained per ring before drop-oldest kicks in.
    std::size_t ring_capacity = 8192;
    /// Keep every Nth trace (1 = everything).  Must be >= 1.
    std::uint64_t sample_period = 1;
  };

  explicit Tracer(Options options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] int num_rings() const noexcept;
  [[nodiscard]] std::size_t ring_capacity() const noexcept;
  [[nodiscard]] std::uint64_t sample_period() const noexcept;

  /// Allocate the next dense trace id (1, 2, 3, ...).  Thread-safe.
  [[nodiscard]] std::uint64_t begin_trace() noexcept;
  /// True when `trace_id`'s spans should be recorded (every
  /// sample_period-th id; id 0 is never sampled).
  [[nodiscard]] bool sampled(std::uint64_t trace_id) const noexcept;
  /// Allocate a span id, unique across the tracer's lifetime (never 0).
  [[nodiscard]] std::uint32_t new_span_id() noexcept;

  /// Intern a span/attr name into a stable slot (cold path; takes a lock).
  /// The table is bounded: past 4096 distinct names everything maps to the
  /// "<interned-names-exhausted>" slot instead of growing without bound.
  [[nodiscard]] std::uint16_t intern(std::string_view name);

  /// Name a display track for exports ("worker 0", "engine rank 3", ...).
  void name_track(std::uint16_t track, std::string_view name);

  /// Seconds since the tracer's construction (steady clock).
  [[nodiscard]] double now() const noexcept;
  [[nodiscard]] double seconds_since_epoch(
      std::chrono::steady_clock::time_point t) const noexcept;

  /// Record one completed span into ring `ring` (clamped into range).
  /// Allocation-free; drops the ring's oldest span when full.
  void record(int ring, const SpanRecord& span) noexcept;

  [[nodiscard]] std::int64_t dropped() const noexcept;
  [[nodiscard]] std::int64_t recorded() const noexcept;

  /// Snapshot every ring as the hetcomm.trace.v1 artifact.  Spans come out
  /// sorted by (trace_id, span_id) with names and attributes resolved.
  /// Safe to call while writers are active (each ring is locked in turn).
  [[nodiscard]] JsonValue to_json() const;
  void write_json(std::ostream& os) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A tracer position: everything an instrumentation site needs to attach
/// spans to an in-flight trace.  A default-constructed (null-tracer)
/// context disables every helper, so call sites stay branch-only when
/// tracing is off.
struct TraceContext {
  Tracer* tracer = nullptr;
  int ring = 0;             ///< writer slot (worker index)
  std::uint64_t trace_id = 0;
  std::uint32_t parent = 0;
  std::uint16_t track = 0;  ///< display track for spans recorded here

  [[nodiscard]] explicit operator bool() const noexcept {
    return tracer != nullptr;
  }
  /// A child context parented under `span`.
  [[nodiscard]] TraceContext child(std::uint32_t span) const noexcept {
    TraceContext c = *this;
    c.parent = span;
    return c;
  }
};

/// RAII span: starts timing at construction, records at destruction.
/// Inactive (and free) when constructed from a null-tracer context.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const TraceContext& ctx, std::uint16_t name) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  [[nodiscard]] bool active() const noexcept { return ctx_.tracer != nullptr; }
  /// This span's id (0 when inactive); use with TraceContext::child.
  [[nodiscard]] std::uint32_t id() const noexcept { return span_.span_id; }
  void add_attr(std::uint16_t key, std::int64_t value) noexcept {
    if (active()) span_.add_attr(key, value);
  }
  void add_attr_slot(std::uint16_t key, std::uint16_t slot) noexcept {
    if (active()) span_.add_attr_slot(key, slot);
  }

 private:
  TraceContext ctx_;
  SpanRecord span_;
};

/// Convert a parsed hetcomm.trace.v1 artifact into Chrome trace-event JSON
/// (load in Perfetto / chrome://tracing).  Tracks become threads of one
/// process; span attrs become event args.  Throws std::runtime_error on a
/// document that does not look like the trace artifact.
void write_chrome_trace_artifact(std::ostream& os, const JsonValue& artifact);

}  // namespace hetcomm::obs
