#pragma once
// Sharded LRU cache for compiled artifacts, keyed by a stable 64-bit
// fingerprint.
//
// The serve path answers a stream of advisor queries whose expensive part
// -- build_plan + CompiledPlan construction -- depends only on (pattern,
// machine, strategy).  ShardedLruCache amortizes that work across queries:
// the key space is split across independently locked shards (so concurrent
// workers rarely contend), each shard keeps an exact LRU order, and the
// value builder runs *outside* the shard lock so one slow compile never
// serializes unrelated lookups.  Two threads racing on the same missing key
// may both build; the first insert wins and the loser adopts it, so every
// caller for a key observes the same shared value.
//
// Values are held by shared_ptr<const V>: a cached plan stays alive for
// callers that fetched it even if the LRU evicts it mid-flight.  The cache
// is generic over the value type (runtime/ sits below core/, so it cannot
// name core::CompiledPlan); serve instantiates it as the PlanCache.
//
// Hit/miss/eviction counters are exact and cheap (bumped under the shard
// lock already being held) and feed the serve metrics artifact's
// cache-effectiveness section.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace hetcomm::runtime {

/// Aggregate cache effectiveness counters (summed over shards).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;  ///< lookups that had to build the value
  std::int64_t evictions = 0;
  /// Build races lost: this caller built a value but found another
  /// thread's insert already resident and adopted it (its build was
  /// wasted work -- a persistently nonzero rate means shards are too
  /// few or builds too slow for the offered concurrency).
  std::int64_t adoptions = 0;
  std::int64_t entries = 0;  ///< currently resident values

  [[nodiscard]] std::int64_t lookups() const noexcept { return hits + misses; }
  [[nodiscard]] double hit_rate() const noexcept {
    const std::int64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

template <typename V>
class ShardedLruCache {
 public:
  /// `shards` independently locked partitions of `capacity` total entries
  /// (split evenly; every shard holds at least one entry).  capacity = 0
  /// disables caching entirely: every lookup builds and counts as a miss
  /// -- the cold-path baseline the serve bench A/Bs against.
  ShardedLruCache(int shards, std::size_t capacity) {
    if (shards < 1) {
      throw std::invalid_argument("ShardedLruCache: shards must be >= 1");
    }
    const std::size_t per_shard =
        capacity == 0 ? 0
                      : std::max<std::size_t>(
                            1, (capacity + static_cast<std::size_t>(shards) - 1) /
                                   static_cast<std::size_t>(shards));
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->capacity = per_shard;
    }
  }

  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->capacity;
    return total;
  }

  /// Return the cached value for `key`, building it via `make()` on a miss.
  /// `make` must return a non-null shared_ptr; it runs without any cache
  /// lock held.  When two threads miss the same key concurrently, both
  /// builds run but a single value is kept and returned to everyone.
  ///
  /// With a non-null trace context the lookup records a `cache.lookup`
  /// span whose `outcome` attribute is "hit", "build" or "adopt", plus a
  /// child `cache.build` span around the builder -- so a traced request
  /// shows exactly whether it paid for a compile or rode someone else's.
  template <typename Make>
  [[nodiscard]] std::shared_ptr<const V> get_or_create(
      std::uint64_t key, Make&& make,
      const obs::TraceContext* trace = nullptr) {
    const obs::TraceContext ctx =
        trace != nullptr ? *trace : obs::TraceContext{};
    std::uint16_t outcome_key = 0;
    obs::ScopedSpan lookup(ctx,
                           ctx ? ctx.tracer->intern("cache.lookup") : 0);
    if (ctx) {
      outcome_key = ctx.tracer->intern("outcome");
      lookup.add_attr(ctx.tracer->intern("key"),
                      static_cast<std::int64_t>(key));
    }
    Shard& shard = shard_of(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        ++shard.stats.hits;
        if (ctx) {
          lookup.add_attr_slot(outcome_key, ctx.tracer->intern("hit"));
        }
        // Refresh LRU position: most recently used at the front.
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        return it->second->second;
      }
      ++shard.stats.misses;
    }
    std::shared_ptr<const V> built;
    {
      const obs::ScopedSpan build(
          ctx.child(lookup.id()),
          ctx ? ctx.tracer->intern("cache.build") : 0);
      built = std::forward<Make>(make)();
    }
    if (built == nullptr) {
      throw std::logic_error("ShardedLruCache: builder returned null");
    }
    if (shard.capacity == 0) {  // caching disabled
      if (ctx) {
        lookup.add_attr_slot(outcome_key, ctx.tracer->intern("build"));
      }
      return built;
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Lost the build race; adopt the resident value so all callers share.
      ++shard.stats.adoptions;
      if (ctx) {
        lookup.add_attr_slot(outcome_key, ctx.tracer->intern("adopt"));
      }
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }
    if (ctx) {
      lookup.add_attr_slot(outcome_key, ctx.tracer->intern("build"));
    }
    shard.order.emplace_front(key, std::move(built));
    shard.index.emplace(key, shard.order.begin());
    if (shard.order.size() > shard.capacity) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.stats.evictions;
    }
    return shard.order.front().second;
  }

  /// Peek without building; nullptr on a miss (counted as one).
  [[nodiscard]] std::shared_ptr<const V> find(std::uint64_t key) {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Exact counters summed over shards.
  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total.hits += s->stats.hits;
      total.misses += s->stats.misses;
      total.evictions += s->stats.evictions;
      total.adoptions += s->stats.adoptions;
      total.entries += static_cast<std::int64_t>(s->order.size());
    }
    return total;
  }

  /// Drop every entry (counters are kept; evictions are not bumped).
  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->order.clear();
      s->index.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;
    /// Front = most recently used; pairs of (key, value).
    std::list<std::pair<std::uint64_t, std::shared_ptr<const V>>> order;
    std::unordered_map<
        std::uint64_t,
        typename std::list<
            std::pair<std::uint64_t, std::shared_ptr<const V>>>::iterator>
        index;
    CacheStats stats;
  };

  Shard& shard_of(std::uint64_t key) noexcept {
    // Fingerprints are already well mixed (FNV-1a / mix_seed outputs), so a
    // plain modulus spreads keys evenly across shards.
    return *shards_[static_cast<std::size_t>(key % shards_.size())];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hetcomm::runtime
