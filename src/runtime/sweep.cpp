#include "runtime/sweep.hpp"

#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace hetcomm::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::vector<LaneBlock> lane_blocks(std::int64_t total, int width) {
  if (total < 0) {
    throw std::invalid_argument("lane_blocks: total must be >= 0");
  }
  if (width < 1) {
    throw std::invalid_argument("lane_blocks: width must be >= 1");
  }
  std::vector<LaneBlock> blocks;
  blocks.reserve(static_cast<std::size_t>((total + width - 1) / width));
  for (std::int64_t start = 0; start < total; start += width) {
    const std::int64_t remaining = total - start;
    blocks.push_back(
        {start, remaining < width ? static_cast<int>(remaining) : width});
  }
  return blocks;
}

double SweepReport::total_cell_seconds() const noexcept {
  double total = 0.0;
  for (const CellStats& c : cells) total += c.seconds;
  return total;
}

double SweepReport::utilization() const noexcept {
  if (workers.empty() || wall_seconds <= 0.0) return 0.0;
  return total_cell_seconds() /
         (wall_seconds * static_cast<double>(workers.size()));
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

std::size_t SweepRunner::add(std::string label, std::function<void()> fn) {
  cells_.push_back({std::move(label), std::move(fn)});
  return cells_.size() - 1;
}

SweepReport SweepRunner::run() {
  SweepReport report;
  report.cells.resize(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    report.cells[i].label = cells_[i].label;
  }
  if (cells_.empty()) return report;

  std::ostream* progress =
      options_.progress
          ? (options_.progress_stream ? options_.progress_stream : &std::cerr)
          : nullptr;
  std::mutex progress_mu;
  std::atomic<std::size_t> completed{0};

  const auto sweep_start = Clock::now();
  int jobs = options_.jobs == 0 ? hardware_jobs() : options_.jobs;
  if (static_cast<std::size_t>(jobs) > cells_.size()) {
    jobs = static_cast<int>(cells_.size());
  }
  ThreadPool pool(jobs);
  pool.parallel_for(
      static_cast<std::int64_t>(cells_.size()),
      [&](std::int64_t index, int worker) {
        const auto i = static_cast<std::size_t>(index);
        const auto cell_start = Clock::now();
        cells_[i].fn();
        report.cells[i].seconds = seconds_since(cell_start);
        report.cells[i].worker = worker;
        const std::size_t done = completed.fetch_add(1) + 1;
        if (progress != nullptr) {
          std::lock_guard<std::mutex> lock(progress_mu);
          *progress << "[" << done << "/" << cells_.size() << "] "
                    << cells_[i].label << " ("
                    << report.cells[i].seconds << " s)\n";
        }
      });
  report.wall_seconds = seconds_since(sweep_start);

  // Fold per-cell accounting into per-worker utilization (cells record the
  // worker that ran them, so this is a deterministic post-pass).
  report.workers.assign(static_cast<std::size_t>(jobs), WorkerStats{});
  for (std::size_t w = 0; w < report.workers.size(); ++w) {
    report.workers[w].worker = static_cast<int>(w);
  }
  for (const CellStats& c : report.cells) {
    if (c.worker < 0 || c.worker >= jobs) continue;
    WorkerStats& ws = report.workers[static_cast<std::size_t>(c.worker)];
    ++ws.cells;
    ws.busy_seconds += c.seconds;
  }
  return report;
}

}  // namespace hetcomm::runtime
