#pragma once
// Declarative sweep runtime.
//
// Every experiment in the paper is a grid sweep -- preset x pattern x
// strategy x size -- of independent, CPU-bound cells.  SweepRunner lets a
// bench/CLI binary register the grid once, fans the cells across a
// ThreadPool, and accounts per-cell wall time, while results land in
// registration (grid) order regardless of which worker finishes first:
// each cell writes into its own preallocated slot, so output is
// bit-identical at any --jobs value.
//
//   SweepRunner runner({.jobs = opts.jobs});
//   std::vector<double> time(grid.size());
//   for (std::size_t i = 0; i < grid.size(); ++i)
//     runner.add(grid[i].label(), [&, i] { time[i] = simulate(grid[i]); });
//   runner.run();                    // time[] is now filled, grid order
//
// The typed convenience wrapper `sweep(items, fn)` does the slot
// bookkeeping for the common map-over-grid case.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hetcomm::runtime {

/// One contiguous block of repetitions executed in lockstep by the
/// lane-batched engine (Engine::execute_batch): repetitions
/// [start, start + width).
struct LaneBlock {
  std::int64_t start = 0;
  int width = 0;
  bool operator==(const LaneBlock&) const = default;
};

/// Partition `total` repetitions into lane blocks of `width`:
/// floor(total / width) full blocks plus one trailing partial block when
/// total % width != 0.  The trailing block is a *narrower batch*, not a
/// serial fallback -- every repetition runs through the same lane-batched
/// code path, so results cannot diverge by block shape.  Blocks are
/// returned in repetition order and cover [0, total) exactly.  Throws
/// std::invalid_argument when total < 0 or width < 1.
[[nodiscard]] std::vector<LaneBlock> lane_blocks(std::int64_t total,
                                                int width);

struct SweepOptions {
  int jobs = 0;       ///< worker threads; 0 = hardware concurrency
  bool progress = false;  ///< report each finished cell
  std::ostream* progress_stream = nullptr;  ///< nullptr = std::cerr
};

/// Wall-time accounting for one finished cell.
struct CellStats {
  std::string label;
  double seconds = 0.0;
  int worker = -1;  ///< pool worker that ran the cell (-1 = never ran)
};

/// Utilization of one pool worker over the whole sweep.
struct WorkerStats {
  int worker = 0;
  std::int64_t cells = 0;      ///< cells this worker executed
  double busy_seconds = 0.0;   ///< sum of its cells' wall times
};

struct SweepReport {
  double wall_seconds = 0.0;      ///< elapsed time for the whole sweep
  std::vector<CellStats> cells;   ///< per cell, in registration order
  std::vector<WorkerStats> workers;  ///< per pool worker, ascending index

  /// Sum of per-cell times; wall_seconds times the effective parallelism.
  [[nodiscard]] double total_cell_seconds() const noexcept;

  /// total_cell_seconds / (wall_seconds * workers): 1.0 = perfectly packed
  /// workers, lower = idle tails or load imbalance.  0 when unknowable.
  [[nodiscard]] double utilization() const noexcept;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Register a cell; returns its grid index.  `fn` runs exactly once, on
  /// some worker thread; it must write its result into caller-owned storage
  /// keyed by this index (distinct slots need no locking).
  std::size_t add(std::string label, std::function<void()> fn);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// Run every registered cell across the pool; blocks until all finish.
  /// Progress lines ("[done/total] label (time)") go to the progress stream
  /// as cells complete.  Rethrows the first cell exception after draining.
  SweepReport run();

 private:
  struct Cell {
    std::string label;
    std::function<void()> fn;
  };

  SweepOptions options_;
  std::vector<Cell> cells_;
};

/// Map `fn` over `items` across threads; results come back in item order,
/// bit-identical for any jobs count.  The result type must be default-
/// constructible (slots are preallocated).
template <typename Item, typename Fn>
auto sweep(const std::vector<Item>& items, Fn&& fn,
           const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, const Item&>> {
  using Result = std::invoke_result_t<Fn&, const Item&>;
  static_assert(!std::is_void_v<Result>,
                "sweep: fn must return a value; use SweepRunner for void");
  std::vector<Result> out(items.size());
  SweepRunner runner(options);
  for (std::size_t i = 0; i < items.size(); ++i) {
    runner.add("cell " + std::to_string(i),
               [&out, &items, &fn, i] { out[i] = fn(items[i]); });
  }
  runner.run();
  return out;
}

/// sweep() with workload dedup: `keys[i]` is a stable fingerprint of item
/// i's work (e.g. core::pattern_hash of the pattern a cell simulates).
/// `fn` runs once per *distinct* key -- on the first item carrying it --
/// and every later duplicate copies that representative's result instead
/// of recomputing.  Results still land in item order and are bit-identical
/// to plain sweep() for any jobs count, because equal keys promise equal
/// work.  Throws std::invalid_argument when keys and items disagree in
/// length.
template <typename Item, typename Fn>
auto sweep_keyed(const std::vector<Item>& items,
                 const std::vector<std::uint64_t>& keys, Fn&& fn,
                 const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, const Item&>> {
  using Result = std::invoke_result_t<Fn&, const Item&>;
  static_assert(!std::is_void_v<Result>,
                "sweep_keyed: fn must return a value");
  if (keys.size() != items.size()) {
    throw std::invalid_argument("sweep_keyed: one key per item required");
  }
  // representative[i]: index of the first item with items[i]'s key.
  std::vector<std::size_t> representative(items.size());
  std::vector<std::size_t> unique;  // first-occurrence indices, item order
  {
    std::unordered_map<std::uint64_t, std::size_t> first;
    first.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto [it, inserted] = first.emplace(keys[i], i);
      representative[i] = it->second;
      if (inserted) unique.push_back(i);
    }
  }
  std::vector<Result> out(items.size());
  SweepRunner runner(options);
  for (const std::size_t i : unique) {
    runner.add("cell " + std::to_string(i),
               [&out, &items, &fn, i] { out[i] = fn(items[i]); });
  }
  runner.run();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (representative[i] != i) out[i] = out[representative[i]];
  }
  return out;
}

}  // namespace hetcomm::runtime
