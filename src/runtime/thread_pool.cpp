#include "runtime/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>

namespace hetcomm::runtime {

int hardware_jobs() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable start_cv;
  std::condition_variable done_cv;

  // Current job, published under `mu` and bumped via `epoch`.
  const Task* task = nullptr;
  const CancelFn* cancel = nullptr;
  std::int64_t count = 0;
  std::uint64_t epoch = 0;
  std::size_t workers_done = 0;
  bool stop = false;

  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;

  // Tracing for the current job (set by parallel_for before the epoch
  // bump, so workers read it after their start_cv wake).  Name slots are
  // interned once per traced call, not per task.
  ThreadPool::TraceHook trace;
  double submit_time = 0.0;  ///< tracer-epoch seconds at submission
  std::uint16_t wait_name = 0;
  std::uint16_t run_name = 0;
  std::uint16_t task_key = 0;

  /// Claim and run tasks until none remain or a task has failed.
  void drain(int worker) {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      // Cooperative cancellation: ask the caller's predicate whether this
      // claimed index should still run.  A throwing predicate counts as a
      // task failure (first exception wins, remaining claims stop).
      if (cancel != nullptr && *cancel) {
        bool skip = false;
        try {
          skip = (*cancel)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (skip) continue;
      }
      obs::SpanRecord run_span;
      if (trace.tracer != nullptr) {
        const double claimed = trace.tracer->now();
        obs::SpanRecord wait;
        wait.trace_id = trace.trace_id;
        wait.span_id = trace.tracer->new_span_id();
        wait.parent = trace.parent;
        wait.name = wait_name;
        wait.track = static_cast<std::uint16_t>(worker);
        wait.t_start = submit_time;
        wait.t_end = claimed;
        wait.add_attr(task_key, i);
        trace.tracer->record(worker, wait);
        run_span.trace_id = trace.trace_id;
        run_span.span_id = trace.tracer->new_span_id();
        run_span.parent = trace.parent;
        run_span.name = run_name;
        run_span.track = static_cast<std::uint16_t>(worker);
        run_span.t_start = claimed;
        run_span.add_attr(task_key, i);
      }
      try {
        (*task)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (trace.tracer != nullptr) {
        run_span.t_end = trace.tracer->now();
        trace.tracer->record(worker, run_span);
      }
    }
  }

  void worker_loop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mu);
      start_cv.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      lock.unlock();
      drain(worker);
      lock.lock();
      ++workers_done;
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl) {
  if (threads < 0) {
    delete impl_;
    throw std::invalid_argument("ThreadPool: thread count must be >= 0");
  }
  if (threads == 0) threads = hardware_jobs();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { impl_->worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->start_cv.notify_all();
  for (std::thread& t : workers_) t.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::int64_t count, const Task& fn,
                              const TraceHook& trace, const CancelFn& cancel) {
  if (count <= 0) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->task = &fn;
    impl_->cancel = &cancel;
    impl_->count = count;
    impl_->trace = trace;
    if (trace.tracer != nullptr) {
      impl_->submit_time = trace.tracer->now();
      impl_->wait_name = trace.tracer->intern("pool.wait");
      impl_->run_name = trace.tracer->intern("pool.run");
      impl_->task_key = trace.tracer->intern("task");
    }
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->workers_done = 0;
    ++impl_->epoch;
  }
  impl_->start_cv.notify_all();

  impl_->drain(/*worker=*/0);  // the calling thread participates

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock,
                      [&] { return impl_->workers_done == workers_.size(); });
  impl_->task = nullptr;
  impl_->cancel = nullptr;
  impl_->trace = TraceHook();
  if (impl_->error) {
    std::exception_ptr error = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace hetcomm::runtime
