#pragma once
// Fixed-size worker pool for fanning independent simulation work across
// threads (repetitions inside core::measure(), sweep cells inside
// runtime::SweepRunner).
//
// Determinism contract: the pool hands out task indices dynamically, so
// *which* worker runs a task is scheduling-dependent -- callers must make
// results independent of that by writing each task's output to a
// preallocated slot keyed by task index and deriving any randomness from
// the task index, never from the worker.  Workers are identified by a dense
// index in [0, num_threads()) so callers can keep per-worker scratch state
// (e.g. one reusable hetsim::Engine per worker).

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace hetcomm::runtime {

/// Usable hardware concurrency: std::thread::hardware_concurrency(), but
/// never less than 1 (the standard allows it to report 0).
[[nodiscard]] int hardware_jobs() noexcept;

class ThreadPool {
 public:
  /// A pool of `threads` workers (0 = hardware_jobs()).  The calling thread
  /// of parallel_for() acts as worker 0, so only `threads - 1` OS threads
  /// are spawned and a 1-thread pool runs everything inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Task signature: fn(task_index, worker_index).
  using Task = std::function<void(std::int64_t, int)>;

  /// Cooperative cancellation for one parallel_for call: evaluated on the
  /// claiming worker *after* a task index is claimed and *before* fn runs.
  /// Returning true skips that task (fn never sees the index) and the
  /// worker moves on to the next claim -- later indices still get their
  /// own check, so a predicate can cancel some tasks and keep others.
  /// Callers that need to know which tasks were skipped record that inside
  /// the predicate (each index is claimed exactly once).  An empty
  /// function (the default) costs one branch per task.
  using CancelFn = std::function<bool(std::int64_t)>;

  /// Span tracing for one parallel_for call: each task records a
  /// `pool.wait` span (submission to claim -- how long the task sat in
  /// the queue) and a `pool.run` span, both on the claiming worker's ring
  /// and track, parented under `parent` in `trace_id`.  Null tracer (the
  /// default) records nothing and costs one branch per task.
  struct TraceHook {
    obs::Tracer* tracer;
    std::uint64_t trace_id;
    std::uint32_t parent;
    // Spelled-out constructor (not default member initializers) so the
    // `= TraceHook()` default argument below is usable while ThreadPool
    // is still incomplete.
    constexpr explicit TraceHook(obs::Tracer* t = nullptr,
                                 std::uint64_t id = 0,
                                 std::uint32_t p = 0) noexcept
        : tracer(t), trace_id(id), parent(p) {}
  };

  /// Run tasks 0..count-1 across the pool and block until all complete.
  /// If any task throws, remaining unclaimed tasks are skipped and the
  /// first exception is rethrown here (after every worker has drained).
  /// Not reentrant: one parallel_for at a time per pool.
  void parallel_for(std::int64_t count, const Task& fn,
                    const TraceHook& trace = TraceHook(),
                    const CancelFn& cancel = CancelFn());

 private:
  struct Impl;
  Impl* impl_;  ///< owned; out-of-line so <mutex> stays out of the header
  std::vector<std::thread> workers_;
};

}  // namespace hetcomm::runtime
