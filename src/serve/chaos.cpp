#include "serve/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <thread>
#endif

namespace hetcomm::serve::chaos {
namespace {

using obs::JsonValue;

// ---------------------------------------------------------------------
// Request builders (the serve_load hot-set idiom: a few random patterns
// cycled across the stream so the plan cache matters).
// ---------------------------------------------------------------------

constexpr int kHotPatterns = 4;
constexpr const char* kStrategies[] = {"split+MD", "split+DD"};

std::string pattern_spec(int pattern) {
  return "{\"random\": {\"msgs_per_gpu\": 4, \"bytes\": 4096, \"seed\": " +
         std::to_string(pattern + 1) + "}}";
}

struct RequestSpec {
  std::string id;
  int pattern = 0;
  const char* strategy = nullptr;  ///< null = let the advisor pick
  int reps = 2;
  std::uint64_t seed = 1;
  std::int64_t deadline_ms = -1;  ///< -1 = no deadline field
  std::string faults;             ///< "" = unfaulted
};

std::string render_request(const RequestSpec& spec) {
  std::string line = "{\"id\": \"" + spec.id +
                     "\", \"machine\": \"lassen\", \"nodes\": 2"
                     ", \"pattern\": " +
                     pattern_spec(spec.pattern);
  if (spec.strategy != nullptr) {
    line += std::string(", \"strategy\": \"") + spec.strategy +
            "\", \"rank\": false";
  }
  line += ", \"reps\": " + std::to_string(spec.reps) +
          ", \"seed\": " + std::to_string(spec.seed);
  if (spec.deadline_ms >= 0) {
    line += ", \"deadline_ms\": " + std::to_string(spec.deadline_ms);
  }
  if (!spec.faults.empty()) {
    line += ", \"faults\": \"" + spec.faults + "\"";
  }
  line += "}";
  return line;
}

// ---------------------------------------------------------------------
// Reply bookkeeping.
// ---------------------------------------------------------------------

/// Volatile reply fields: anything that depends on wall time, queue
/// state, or cache warmth rather than on the query itself.  Everything
/// else must be bit-identical to a one-shot service.
bool volatile_key(const std::string& key) {
  return key == "latency_seconds" || key == "timing" || key == "cache" ||
         key == "compile_seconds" || key == "retry_after_ms";
}

std::string stable_dump(const JsonValue& reply) {
  JsonValue strip = JsonValue::object();
  for (const auto& member : reply.members()) {
    if (!volatile_key(member.first)) strip.set(member.first, member.second);
  }
  return strip.dump_string(0);
}

struct Tally {
  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  std::int64_t control = 0;
  std::int64_t degraded = 0;
  std::int64_t predict_only = 0;
  std::map<std::string, std::int64_t> codes;

  void observe(const JsonValue& reply, bool was_control) {
    answered += 1;
    if (was_control) {
      control += 1;
    }
    if (reply.at("ok").as_bool()) {
      ok += 1;
      if (!was_control) {
        if (const JsonValue* d = reply.find("degraded");
            d != nullptr && d->as_bool()) {
          degraded += 1;
        } else if (reply.find("measured") == nullptr) {
          predict_only += 1;
        }
      }
    } else {
      errors += 1;
      codes[reply.at("error_code").as_string()] += 1;
    }
  }
};

// ---------------------------------------------------------------------
// The harness proper.
// ---------------------------------------------------------------------

struct Harness {
  const ChaosOptions& opts;
  ChaosReport report;
  std::mt19937_64 rng;
  Tally tally;  ///< everything sent to the stormed service

  explicit Harness(const ChaosOptions& o) : opts(o), rng(o.seed) {
    report.seed = o.seed;
  }

  void fail(std::string what) { report.violations.push_back(std::move(what)); }

  PhaseStats& phase(const std::string& name) {
    report.phases.push_back({name, 0, 0, 0, 0});
    return report.phases.back();
  }

  // Baseline / post-storm: well-formed stream in non-shedding chunks,
  // every reply checked against the one-shot reference.
  double steady_stream(Service& svc, Service& oneshot, const char* name,
                       std::uint64_t id_base) {
    PhaseStats& ph = phase(name);
    std::vector<std::string> lines;
    for (int q = 0; q < opts.requests; ++q) {
      RequestSpec spec;
      spec.id = std::string(name) + "-" + std::to_string(q);
      spec.pattern = q % kHotPatterns;
      if (q % 2 == 0) spec.strategy = kStrategies[(q / 2) % 2];
      spec.reps = opts.reps;
      spec.seed = id_base + static_cast<std::uint64_t>(q);
      lines.push_back(render_request(spec));
    }
    std::size_t chunk = static_cast<std::size_t>(opts.window);
    if (opts.max_queue > 0) chunk = std::min(chunk, opts.max_queue);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t at = 0; at < lines.size(); at += chunk) {
      const std::size_t end = std::min(lines.size(), at + chunk);
      const std::vector<std::string> window(
          lines.begin() + static_cast<std::ptrdiff_t>(at),
          lines.begin() + static_cast<std::ptrdiff_t>(end));
      ph.sent += static_cast<std::int64_t>(window.size());
      tally.sent += static_cast<std::int64_t>(window.size());
      for (const std::string& raw : svc.handle_window(window)) {
        const JsonValue reply = JsonValue::parse(raw);
        tally.observe(reply, false);
        ph.answered += 1;
        if (!reply.at("ok").as_bool()) {
          ph.errors += 1;
          fail(std::string(name) + ": unexpected error reply: " +
               reply.at("error").as_string());
          continue;
        }
        ph.ok += 1;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    // Bit-identity against the one-shot reference, outside the timed
    // region so the reference's work does not pollute qps.
    for (const std::string& line : lines) {
      const JsonValue mine_doc = JsonValue::parse(svc.handle_line(line));
      tally.sent += 1;
      tally.observe(mine_doc, false);
      const std::string mine = stable_dump(mine_doc);
      const std::string ref =
          stable_dump(JsonValue::parse(oneshot.handle_line(line)));
      if (mine != ref) {
        report.mismatched_replies += 1;
        if (report.mismatched_replies == 1) {
          fail(std::string(name) + ": reply diverged from one-shot: " + mine +
               " vs " + ref);
        }
      }
    }
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    return seconds > 0.0 ? static_cast<double>(opts.requests) / seconds : 0.0;
  }

  // Storm: one window at storm_factor x max_queue with malformed lines,
  // FaultAbort patterns, and a randomized deadline mix folded in, plus a
  // control line to prove stats stay reachable under overload.
  void storm(Service& svc) {
    PhaseStats& ph = phase("storm");
    const std::size_t bound = std::max<std::size_t>(opts.max_queue, 1);
    const std::size_t n =
        bound * static_cast<std::size_t>(std::max(opts.storm_factor, 1));
    std::vector<std::string> malformed = builtin_malformed_lines();
    malformed.insert(malformed.end(), opts.malformed_extra.begin(),
                     opts.malformed_extra.end());
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::vector<std::string> lines;
    std::vector<std::string> storm_ids;
    std::map<std::string, std::int64_t> deadline_zero;  // id -> expected
    std::size_t bad = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (coin(rng) < opts.malformed_fraction) {
        lines.push_back(malformed[bad++ % malformed.size()]);
        continue;
      }
      RequestSpec spec;
      spec.id = "storm-" + std::to_string(k);
      spec.pattern = static_cast<int>(k) % kHotPatterns;
      if (k % 3 == 0) spec.strategy = kStrategies[k % 2];
      spec.reps = opts.reps;
      spec.seed = 1000 + k;
      if (!opts.faults_path.empty() && coin(rng) < 0.2) {
        spec.faults = opts.faults_path;
        spec.strategy = kStrategies[k % 2];  // faulted lanes never coalesce
      }
      if (coin(rng) < opts.deadline_fraction) {
        spec.deadline_ms = coin(rng) < 0.5 ? 0 : 10000;
        if (spec.deadline_ms == 0) deadline_zero[spec.id] = 1;
      }
      storm_ids.push_back(spec.id);
      lines.push_back(render_request(spec));
    }
    lines.push_back("{\"id\": \"storm-stats\", \"cmd\": \"stats\"}");
    ph.sent = static_cast<std::int64_t>(lines.size());
    tally.sent += ph.sent;

    std::map<std::string, int> seen;
    bool stats_answered = false;
    const std::vector<std::string> replies = svc.handle_window(lines);
    for (const std::string& raw : replies) {
      const JsonValue reply = JsonValue::parse(raw);
      const JsonValue* id = reply.find("id");
      const bool is_stats = id != nullptr && !id->is_null() &&
                            id->as_string() == "storm-stats";
      tally.observe(reply, is_stats);
      ph.answered += 1;
      if (reply.at("ok").as_bool()) {
        ph.ok += 1;
      } else {
        ph.errors += 1;
      }
      if (id == nullptr || id->is_null()) continue;
      const std::string key = id->as_string();
      seen[key] += 1;
      if (is_stats) {
        stats_answered = reply.at("ok").as_bool();
        continue;
      }
      if (!reply.at("ok").as_bool()) {
        const std::string code = reply.at("error_code").as_string();
        if (code == "overloaded" || code == "deadline_exceeded" ||
            code == "shutting_down") {
          if (reply.find("retry_after_ms") == nullptr ||
              reply.at("retry_after_ms").as_int() < 1) {
            fail("storm: " + key + " (" + code +
                 ") reply lacks a retry_after_ms hint");
          }
        }
        if (deadline_zero.count(key) != 0 && code != "deadline_exceeded" &&
            code != "overloaded") {
          fail("storm: deadline 0 request " + key +
               " answered with unexpected code " + code);
        }
      } else if (deadline_zero.count(key) != 0) {
        // deadline_ms 0 expires deterministically before execution --
        // even a degrade-shed answer hits that checkpoint.
        fail("storm: deadline 0 request " + key + " answered ok");
      }
    }
    if (ph.answered != ph.sent) {
      fail("storm: sent " + std::to_string(ph.sent) + " lines, got " +
           std::to_string(ph.answered) + " replies");
    }
    for (const std::string& id : storm_ids) {
      const auto it = seen.find(id);
      if (it == seen.end()) {
        fail("storm: no reply for " + id);
      } else if (it->second != 1) {
        fail("storm: " + std::to_string(it->second) + " replies for " + id);
      }
    }
    if (!stats_answered) {
      fail("storm: the stats control line was not answered ok under load");
    }
  }

  // Counter balance: the stats artifact must agree with itself and with
  // the harness's own reply tallies.
  void counters(Service& svc) {
    tally.sent += 1;  // the stats line below counts itself
    const JsonValue reply =
        JsonValue::parse(svc.handle_line("{\"cmd\": \"stats\"}"));
    tally.observe(reply, true);
    report.stats = reply.at("stats");
    const JsonValue& serve = report.stats.at("serve");
    const JsonValue& req = serve.at("requests");
    const std::int64_t total = req.at("total").as_int();
    const std::int64_t sum =
        req.at("control").as_int() + req.at("errors").as_int() +
        req.at("predict_only").as_int() + req.at("degraded").as_int() +
        req.at("measured").as_int();
    report.counters_balanced = true;
    if (total != sum) {
      report.counters_balanced = false;
      fail("stats: control+errors+predict_only+degraded+measured = " +
           std::to_string(sum) + " != total " + std::to_string(total));
    }
    std::int64_t by_code = 0;
    for (const auto& member : req.at("errors_by_code").members()) {
      by_code += member.second.as_int();
      const auto it = tally.codes.find(member.first);
      const std::int64_t observed = it == tally.codes.end() ? 0 : it->second;
      if (member.second.as_int() != observed) {
        report.counters_balanced = false;
        fail("stats: errors_by_code." + member.first + " = " +
             std::to_string(member.second.as_int()) + " but the harness saw " +
             std::to_string(observed) + " such replies");
      }
    }
    if (by_code != req.at("errors").as_int()) {
      report.counters_balanced = false;
      fail("stats: errors_by_code sums to " + std::to_string(by_code) +
           " != errors " + std::to_string(req.at("errors").as_int()));
    }
    if (total != tally.sent) {
      report.counters_balanced = false;
      fail("stats: total " + std::to_string(total) + " != " +
           std::to_string(tally.sent) + " lines sent");
    }
    if (req.at("errors").as_int() != tally.errors) {
      report.counters_balanced = false;
      fail("stats: errors " + std::to_string(req.at("errors").as_int()) +
           " != " + std::to_string(tally.errors) + " error replies observed");
    }
    if (req.at("degraded").as_int() != tally.degraded) {
      report.counters_balanced = false;
      fail("stats: degraded " + std::to_string(req.at("degraded").as_int()) +
           " != " + std::to_string(tally.degraded) +
           " degraded replies observed");
    }
  }

  // Degraded agreement: an engine-free (degraded) answer must recommend
  // the same strategy, in the same ranking order, as the full service
  // that actually executed the request on the engine.  Degradation may
  // cost measurement detail, never a different recommendation.
  void degraded_agreement() {
    if (opts.hot_patterns <= 0) return;
    PhaseStats& ph = phase("degraded");
    ServiceOptions dopts;
    dopts.max_queue = 1;
    dopts.shed_policy = ShedPolicy::Degrade;
    dopts.window = 8;
    Service degraded(dopts);
    Service full;  // default geometry, no shedding: the engine runs
    int agree = 0;
    for (int p = 0; p < opts.hot_patterns; ++p) {
      RequestSpec filler;
      filler.id = "fill-" + std::to_string(p);
      filler.pattern = p;
      filler.reps = 1;
      filler.seed = 77;
      RequestSpec hot = filler;
      hot.id = "hot-" + std::to_string(p);
      hot.reps = opts.reps;
      ph.sent += 2;
      const std::vector<std::string> replies = degraded.handle_window(
          {render_request(filler), render_request(hot)});
      ph.answered += static_cast<std::int64_t>(replies.size());
      const JsonValue* shed = nullptr;
      JsonValue parsed;
      for (const std::string& raw : replies) {
        parsed = JsonValue::parse(raw);
        if (parsed.at("id").as_string() == hot.id) {
          shed = &parsed;
          break;
        }
      }
      if (shed == nullptr || !shed->at("ok").as_bool()) {
        fail("degraded: no ok reply for " + hot.id);
        continue;
      }
      ph.ok += 1;
      const JsonValue* flag = shed->find("degraded");
      if (flag == nullptr || !flag->as_bool()) {
        fail("degraded: " + hot.id + " was not answered degraded");
        continue;
      }
      if (const JsonValue* conf = shed->find("confidence");
          conf == nullptr || conf->as_double() < 0.0 ||
          conf->as_double() > 1.0) {
        fail("degraded: " + hot.id + " confidence missing or out of [0,1]");
      }
      const JsonValue engine =
          JsonValue::parse(full.handle_line(render_request(hot)));
      if (!engine.at("ok").as_bool() ||
          engine.find("measured") == nullptr) {
        fail("degraded: full-engine reference run failed for " + hot.id);
        continue;
      }
      bool same = shed->at("recommended").as_string() ==
                  engine.at("recommended").as_string();
      const auto& mine = shed->at("ranking").items();
      const auto& ref = engine.at("ranking").items();
      if (mine.size() != ref.size()) same = false;
      for (std::size_t k = 0; same && k < mine.size(); ++k) {
        same = mine[k].at("strategy").as_string() ==
               ref[k].at("strategy").as_string();
      }
      if (same) agree += 1;
    }
    report.degraded_agreement =
        static_cast<double>(agree) / static_cast<double>(opts.hot_patterns);
    if (report.degraded_agreement < 0.8) {
      fail("degraded: the model-only answer matched the full-engine "
           "service's recommendation on " +
           std::to_string(agree) + "/" + std::to_string(opts.hot_patterns) +
           " hot patterns (< 0.8)");
    }
  }

#ifdef __unix__
  struct LineReader {
    int fd;
    std::string buffer;

    /// Read one reply line (blocking); empty on EOF.
    std::string next() {
      for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
          std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          return line;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) return std::string();
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
    }
  };

  static int connect_retry(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::copy(path.begin(), path.end(), addr.sun_path);
    for (int attempt = 0; attempt < 200; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return fd;
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;
  }

  static bool send_all(int fd, const std::string& data) {
    std::size_t written = 0;
    while (written < data.size()) {
      const ssize_t w =
          ::write(fd, data.data() + written, data.size() - written);
      if (w <= 0) return false;
      written += static_cast<std::size_t>(w);
    }
    return true;
  }

  // Socket chaos: slow writer, mid-stream disconnect, oversized line,
  // burst-beyond-window (the deadlock regression), and a shutdown with
  // queued lines (the bounded-drain contract).
  void socket_chaos() {
    if (!opts.socket_phase) return;
    PhaseStats& ph = phase("socket");
    ServiceOptions sopts;
    sopts.window = 2;
    sopts.max_line_bytes = 4096;
    Service svc(sopts);
    const std::string path =
        !opts.socket_path.empty()
            ? opts.socket_path
            : "/tmp/hetcomm_chaos_" + std::to_string(::getpid()) + "_" +
                  std::to_string(opts.seed) + ".sock";
    std::thread server([&] { svc.run_socket(path); });
    const auto expect = [&](LineReader& reader, const char* what,
                            bool want_ok) -> JsonValue {
      ph.answered += 1;
      const std::string raw = reader.next();
      if (raw.empty()) {
        ph.answered -= 1;
        fail(std::string("socket: connection closed before the ") + what +
             " reply");
        return JsonValue();
      }
      const JsonValue reply = JsonValue::parse(raw);
      if (reply.at("ok").as_bool() != want_ok) {
        fail(std::string("socket: unexpected verdict for ") + what + ": " +
             raw.substr(0, 120));
      }
      (reply.at("ok").as_bool() ? ph.ok : ph.errors) += 1;
      return reply;
    };

    RequestSpec spec;
    spec.reps = 1;
    spec.seed = 7;

    {  // Slow client: one byte every few, still answered.
      const int fd = connect_retry(path);
      if (fd < 0) {
        fail("socket: cannot connect (slow client)");
      } else {
        spec.id = "slow-1";
        const std::string line = render_request(spec) + "\n";
        for (std::size_t i = 0; i < line.size(); i += 16) {
          if (!send_all(fd, line.substr(i, 16))) break;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        ph.sent += 1;
        LineReader reader{fd, {}};
        expect(reader, "slow client", true);
        ::close(fd);
      }
    }
    {  // Mid-stream disconnect: half a line, then gone.  The server must
       // simply move on to the next client.
      const int fd = connect_retry(path);
      if (fd < 0) {
        fail("socket: cannot connect (disconnect client)");
      } else {
        spec.id = "gone-1";
        const std::string line = render_request(spec);
        send_all(fd, line.substr(0, line.size() / 2));
        ::close(fd);
      }
    }
    {  // Oversized line: answered with one bad_request, then the
       // connection keeps working for well-formed requests.
      const int fd = connect_retry(path);
      if (fd < 0) {
        fail("socket: cannot connect (oversized client)");
      } else {
        LineReader reader{fd, {}};
        ph.sent += 1;
        send_all(fd, std::string(8192, 'x'));
        const JsonValue reply = expect(reader, "oversized line", false);
        if (reply.find("error_code") != nullptr &&
            reply.at("error_code").as_string() != "bad_request") {
          fail("socket: oversized line answered with " +
               reply.at("error_code").as_string());
        }
        send_all(fd, "\n");  // terminate the oversized line
        spec.id = "after-oversize";
        ph.sent += 1;
        send_all(fd, render_request(spec) + "\n");
        expect(reader, "post-oversize request", true);
        ::close(fd);
      }
    }
    {  // Burst past the batch window, then wait: the deadlock regression
       // (leftover buffered lines must be processed without more input).
      const int fd = connect_retry(path);
      if (fd < 0) {
        fail("socket: cannot connect (burst client)");
      } else {
        std::string burst;
        const int n = 7;  // > 3 windows of 2
        for (int k = 0; k < n; ++k) {
          spec.id = "burst-" + std::to_string(k);
          burst += render_request(spec) + "\n";
        }
        ph.sent += n;
        send_all(fd, burst);
        LineReader reader{fd, {}};
        for (int k = 0; k < n; ++k) expect(reader, "burst reply", true);
        ::close(fd);
      }
    }
    {  // Shutdown with queued lines: the window containing the shutdown
       // answers normally, everything behind it drains with structured
       // shutting_down errors -- nothing goes unanswered.
      const int fd = connect_retry(path);
      if (fd < 0) {
        fail("socket: cannot connect (shutdown client)");
      } else {
        std::string burst;
        spec.id = "final-1";
        burst += render_request(spec) + "\n";
        burst += "{\"id\": \"stop\", \"cmd\": \"shutdown\"}\n";
        spec.id = "final-2";
        burst += render_request(spec) + "\n";
        spec.id = "final-3";
        burst += render_request(spec) + "\n";
        ph.sent += 4;
        send_all(fd, burst);
        LineReader reader{fd, {}};
        expect(reader, "pre-shutdown request", true);
        expect(reader, "shutdown ack", true);
        for (int k = 0; k < 2; ++k) {
          const JsonValue reply = expect(reader, "shutdown drain", false);
          if (reply.find("error_code") != nullptr &&
              reply.at("error_code").as_string() != "shutting_down") {
            fail("socket: drained line answered with " +
                 reply.at("error_code").as_string());
          }
        }
        if (!reader.next().empty()) {
          fail("socket: extra bytes after the shutdown drain");
        }
        ::close(fd);
      }
    }
    server.join();
  }
#else
  void socket_chaos() {}
#endif

  ChaosReport run() {
    ServiceOptions sopts;
    sopts.window = opts.window;
    sopts.max_queue = opts.max_queue;
    sopts.shed_policy = opts.shed_policy;
    Service svc(sopts);
    ServiceOptions ropts;
    ropts.window = 1;
    Service oneshot(ropts);

    report.qps_baseline = steady_stream(svc, oneshot, "baseline", 1);
    storm(svc);
    report.qps_post_storm =
        steady_stream(svc, oneshot, "post-storm", 50000);
    report.recovery_ratio =
        report.qps_baseline > 0.0
            ? report.qps_post_storm / report.qps_baseline
            : 0.0;
    if (report.recovery_ratio < 0.25) {
      fail("recovery: post-storm throughput collapsed to " +
           std::to_string(report.recovery_ratio) + "x baseline");
    }
    counters(svc);
    degraded_agreement();
    socket_chaos();

    for (const PhaseStats& ph : report.phases) {
      report.sent_total += ph.sent;
      report.answered_total += ph.answered;
      if (ph.answered != ph.sent) {
        fail(ph.name + ": answered " + std::to_string(ph.answered) + " of " +
             std::to_string(ph.sent) + " lines");
      }
    }
    for (const auto& code : tally.codes) {
      report.reply_codes.emplace_back(code.first, code.second);
    }
    return std::move(report);
  }
};

}  // namespace

std::vector<std::string> builtin_malformed_lines() {
  return {
      "{",                                             // truncated JSON
      "not json at all",                               // not JSON
      "[1, 2, 3]",                                     // not an object
      "\"just a string\"",                             // not an object
      "{\"cmd\": \"bogus\"}",                          // unknown cmd
      "{\"cmd\": \"stats\", \"extra\": 1}",            // cmd with extras
      "{\"id\": \"bad-key\", \"wat\": 1}",             // unknown key
      "{\"id\": \"bad-nodes\", \"nodes\": 0}",         // out of range
      "{\"id\": \"bad-deadline\", \"deadline_ms\": -5}",  // bad deadline
      "{\"id\": \"bad-pattern\", \"pattern\": 12}",    // wrong type
  };
}

obs::JsonValue ChaosReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hetcomm.serve_chaos.v1");
  doc.set("seed", static_cast<std::int64_t>(seed));
  doc.set("passed", passed());
  JsonValue phase_list = JsonValue::array();
  for (const PhaseStats& ph : phases) {
    JsonValue p = JsonValue::object();
    p.set("name", ph.name);
    p.set("sent", ph.sent);
    p.set("answered", ph.answered);
    p.set("ok", ph.ok);
    p.set("errors", ph.errors);
    phase_list.push_back(std::move(p));
  }
  doc.set("phases", std::move(phase_list));
  doc.set("sent_total", sent_total);
  doc.set("answered_total", answered_total);
  doc.set("mismatched_replies", mismatched_replies);
  JsonValue codes = JsonValue::object();
  for (const auto& code : reply_codes) codes.set(code.first, code.second);
  doc.set("reply_codes", std::move(codes));
  doc.set("counters_balanced", counters_balanced);
  doc.set("qps_baseline", qps_baseline);
  doc.set("qps_post_storm", qps_post_storm);
  doc.set("recovery_ratio", recovery_ratio);
  doc.set("degraded_agreement", degraded_agreement);
  if (!stats.is_null()) doc.set("stats", stats);
  JsonValue viol = JsonValue::array();
  for (const std::string& v : violations) viol.push_back(v);
  doc.set("violations", std::move(viol));
  return doc;
}

ChaosReport run_chaos(const ChaosOptions& options) {
  Harness harness(options);
  return harness.run();
}

}  // namespace hetcomm::serve::chaos
