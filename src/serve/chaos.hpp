#pragma once
// Chaos/soak harness for `hetcomm serve` (docs/serve.md "Resilience").
//
// run_chaos() drives a live serve::Service through seeded adversarial
// schedules -- malformed-line bursts (the tests/data/bad corpus plus
// built-in variants), request storms at a multiple of the admission
// bound, deterministic FaultAbort patterns, randomized deadline mixes,
// and (on unix) slow / stalling / mid-stream-disconnecting socket
// clients -- and checks the service's resilience invariants the whole
// way:
//
//   * every request line gets exactly one reply (none lost, none
//     duplicated; correlated by id),
//   * the stats counters balance exactly (control + errors + degraded +
//     predict_only + measured == total, errors_by_code sums to errors)
//     and match the harness's own per-reply tallies,
//   * well-formed in-deadline requests answer bit-identically to a
//     one-shot service (volatile timing/cache fields aside),
//   * throughput recovers after the storm (recovery_ratio), and
//   * degraded (model-only) answers recommend exactly what the full
//     engine-executing service recommends on the hot plan set
//     (degraded_agreement) -- degradation may cost measurement detail,
//     never a different answer.
//
// Everything is derived from ChaosOptions::seed, so a failing schedule
// replays exactly.  The bench driver is bench/serve_chaos.cpp; the
// tier-1 contract test is tests/test_serve_chaos.cpp.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "serve/service.hpp"

namespace hetcomm::serve::chaos {

struct ChaosOptions {
  /// Master seed for every randomized choice (schedules, deadline mix,
  /// malformed-line placement).  Same seed, same schedule, same verdict.
  std::uint64_t seed = 1;
  /// Well-formed data requests in each steady-state (baseline and
  /// post-storm) phase.
  int requests = 96;
  /// Storm size as a multiple of max_queue (the ISSUE-10 acceptance run
  /// uses 4x with ~10% malformed lines mixed in).
  int storm_factor = 4;
  /// Fraction of storm lines replaced by malformed ones.
  double malformed_fraction = 0.10;
  /// Fraction of storm lines carrying a randomized deadline_ms (drawn
  /// from {0, 10000}: deterministic expiry vs never-expires).
  double deadline_fraction = 0.20;
  /// Admission bound and policy of the service under test.
  std::size_t max_queue = 16;
  ShedPolicy shed_policy = ShedPolicy::Reject;
  /// Repetitions per measured request.
  int reps = 2;
  /// Batch window of the service under test.
  int window = 32;
  /// hetcomm.fault.v1 plan injected into a slice of storm requests ("" =
  /// no FaultAbort phase).  faults/flaky_abort.json aborts
  /// deterministically (loss probability 1, two attempts).
  std::string faults_path;
  /// Extra malformed request lines (the bench loads tests/data/bad/*);
  /// built-in variants are always in the rotation.
  std::vector<std::string> malformed_extra;
  /// Patterns in the degraded-agreement hot set (0 = skip the phase).
  int hot_patterns = 8;
  /// Run the unix-socket client phase (slow writer, mid-stream
  /// disconnect, oversized line, burst-then-wait, shutdown drain).
  bool socket_phase = true;
  /// Socket path for the socket phase ("" = derive one under /tmp).
  std::string socket_path;
};

struct PhaseStats {
  std::string name;
  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::vector<PhaseStats> phases;
  std::int64_t sent_total = 0;
  std::int64_t answered_total = 0;
  /// Baseline replies that differed from the one-shot reference after
  /// stripping volatile fields (must be 0).
  std::int64_t mismatched_replies = 0;
  /// Observed error_code -> count across every reply the harness read.
  std::vector<std::pair<std::string, std::int64_t>> reply_codes;
  bool counters_balanced = false;
  double qps_baseline = 0.0;
  double qps_post_storm = 0.0;
  double recovery_ratio = 0.0;
  /// Fraction of hot patterns whose degraded answer matches the full
  /// engine-executing service's recommendation and ranking order.
  double degraded_agreement = 1.0;
  /// Final stats document of the stormed service (hetcomm.metrics.v1).
  obs::JsonValue stats;
  /// Human-readable invariant failures; empty means the run passed.
  std::vector<std::string> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
  [[nodiscard]] obs::JsonValue to_json() const;
};

/// Built-in malformed request lines (a superset of the failure shapes in
/// tests/data/bad): bad JSON, non-objects, unknown keys/cmds, bad types.
[[nodiscard]] std::vector<std::string> builtin_malformed_lines();

/// Run the full chaos schedule against fresh Service instances.
[[nodiscard]] ChaosReport run_chaos(const ChaosOptions& options);

}  // namespace hetcomm::serve::chaos
