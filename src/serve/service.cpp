#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/advisor.hpp"
#include "core/compiled_plan.hpp"
#include "core/comm_pattern.hpp"
#include "core/executor.hpp"
#include "core/pattern_io.hpp"
#include "core/plan.hpp"
#include "core/strategy.hpp"
#include "fault/fault_json.hpp"
#include "fault/plan.hpp"
#include "hetsim/engine.hpp"
#include "hetsim/faults.hpp"
#include "hetsim/noise.hpp"
#include "machine/machine_json.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace hetcomm::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Machine-readable error taxonomy: every error reply carries exactly one
/// of these as "error_code" (docs/serve.md "Resilience").  None is the
/// internal "no error yet" state and renders as bad_request if a message
/// ever reaches a reply without a classified code.
enum class ErrorCode : std::uint8_t {
  None = 0,
  BadRequest,        ///< malformed line / invalid field / unbuildable plan
  Overloaded,        ///< shed by admission control (ShedPolicy::Reject)
  DeadlineExceeded,  ///< request ran out of deadline budget
  ShuttingDown,      ///< shed by the shutdown drain
  FaultAborted,      ///< engine FaultAbort (see the "fault" reply object)
  Internal,          ///< unexpected execution failure
};
constexpr std::size_t kNumErrorCodes = 7;

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Overloaded:
      return "overloaded";
    case ErrorCode::DeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::ShuttingDown:
      return "shutting_down";
    case ErrorCode::FaultAborted:
      return "fault_abort";
    case ErrorCode::Internal:
      return "internal";
    case ErrorCode::None:
    case ErrorCode::BadRequest:
      break;
  }
  return "bad_request";
}

/// Whether a reply with this code should tell the client when to retry.
bool carries_retry_hint(ErrorCode code) noexcept {
  return code == ErrorCode::Overloaded ||
         code == ErrorCode::DeadlineExceeded ||
         code == ErrorCode::ShuttingDown;
}

/// Parse-phase failure that already knows its error code (shed lines,
/// shutdown drain).  Plain std::exception failures classify as BadRequest.
struct ServeError : std::runtime_error {
  ServeError(ErrorCode code_in, const std::string& what)
      : std::runtime_error(what), code(code_in) {}
  ErrorCode code;
};

/// Admission verdict stamped on a line when it enters the service, before
/// anything is parsed.  Control lines ignore it (stats/shutdown are never
/// shed); data lines shed per the service's ShedPolicy.
enum class Admission : std::uint8_t {
  Normal,        ///< inside the pending-queue bound
  ShedOverload,  ///< arrived with the pending queue at max_queue
  ShedShutdown,  ///< arrived after a shutdown request (bounded drain)
};

/// Structured payload of a fault_abort reply, copied off the engine's
/// FaultAbort exception on the worker that caught it.
struct FaultDetail {
  std::string reason;
  std::string strategy;
  int src = -1;
  int dst = -1;
  int path_id = -1;
  std::string path;
  int attempts = 0;
};

const char* abort_reason_name(FaultAbort::Reason reason) noexcept {
  switch (reason) {
    case FaultAbort::Reason::RetriesExhausted:
      return "retries_exhausted";
    case FaultAbort::Reason::NicUnavailable:
      return "nic_unavailable";
  }
  return "unknown";
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::string_view text,
                          std::uint64_t h = kFnvOffset) noexcept {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// Render a document as one NDJSON line (dump() appends a newline; the
/// protocol frames lines itself).
std::string to_line(const obs::JsonValue& doc) {
  std::string text = doc.dump_string(0);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

/// Strict hex fingerprint parse ("0x" prefix optional); rejects partial
/// consumption, so a typoed ref errors instead of aliasing another hash.
std::uint64_t parse_hash(const std::string& text) {
  std::size_t pos = 0;
  std::uint64_t h = 0;
  try {
    h = std::stoull(text, &pos, 16);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad pattern ref '" + text + "'");
  }
  if (pos != text.size()) {
    throw std::invalid_argument("bad pattern ref '" + text + "'");
  }
  return h;
}

/// One resolved --machine argument, reused across requests.  The
/// fingerprint hashes the exact serialized model (hetcomm.machine.v1 dumps
/// doubles with max_digits10), so two machine files describing the same
/// calibration share cache entries and two differing in any parameter
/// never collide on purpose.
struct MachineEntry {
  machine::MachineModel model;
  std::uint64_t fingerprint = 0;
};

/// Cached value of the compiled-plan cache: everything a repeated query
/// needs that does not depend on reps/seed.
struct CachedPlan {
  CachedPlan(const core::CommPattern& pattern, const Topology& topo,
             const ParamSet& params, const core::StrategyConfig& config)
      : plan(core::build_plan(pattern, topo, params, config)),
        compiled(plan, topo, params),
        summary(plan.summarize(topo)) {}

  core::CommPlan plan;
  core::CompiledPlan compiled;
  core::PlanSummary summary;
  double compile_seconds = 0.0;  ///< wall time build_plan + compile took
};

/// A parsed request plus everything computed for its response.
struct Request {
  // -- inputs ------------------------------------------------------------
  obs::JsonValue id;  ///< echoed verbatim (null when absent)
  bool control = false;
  std::string cmd;  ///< "stats" or "shutdown" when control
  const MachineEntry* machine = nullptr;
  int nodes = 8;
  std::shared_ptr<const core::CommPattern> pattern;
  std::uint64_t pattern_fp = 0;
  bool pattern_was_ref = false;
  bool has_strategy = false;
  core::StrategyConfig strategy;
  std::shared_ptr<const FaultModel> faults;
  std::uint64_t faults_fp = 0;
  int reps = 0;  ///< 0 = predict-only
  std::uint64_t seed = 0x5eedULL;
  bool staged_only = false;
  /// "rank": false skips the Advisor sweep and omits recommended/ranking
  /// from the response -- the hot-path shape for clients that already know
  /// their strategy and only want measurements.  Needs an explicit
  /// strategy (the default strategy *is* the ranking winner).
  bool want_ranking = true;

  // -- resilience --------------------------------------------------------
  Admission admission = Admission::Normal;
  bool degraded = false;    ///< answered from the model layer, no engine
  double confidence = 0.0;  ///< degraded replies: model top-2 separation
  bool plan_cached = false; ///< degraded replies: plan was cache-resident
  bool has_deadline = false;
  Clock::time_point deadline;  ///< meaningful only when has_deadline
  bool partial = false;  ///< deadline_exceeded reply can attach the ranking

  // -- outcome -----------------------------------------------------------
  std::string error;  ///< nonempty = error response
  ErrorCode code = ErrorCode::None;
  std::shared_ptr<FaultDetail> fault;  ///< fault_abort replies only
  std::vector<core::Recommendation> ranking;
  std::shared_ptr<const CachedPlan> plan;
  std::uint64_t plan_key = 0;
  std::uint64_t engine_key = 0;
  bool cache_hit = false;       ///< measured request served without a compile
  bool compiled_here = false;   ///< this request ran the builder
  // per-request measured reduction
  double max_avg = 0.0;
  obs::Summary makespan;
  int batch = 1;

  // -- timing ------------------------------------------------------------
  Clock::time_point enqueued;
  double queue_wait_seconds = 0.0;
  double execute_seconds = 0.0;  ///< its group's total block wall time

  // -- tracing (0 = this request is not sampled) -------------------------
  std::uint64_t trace_id = 0;
  std::uint32_t trace_root = 0;  ///< preallocated root `request` span id
};

struct TimedLine {
  std::string text;
  Clock::time_point enqueued;
  Admission admission = Admission::Normal;
};

/// One (plan, machine, faults) coalescing group: lanes from every member
/// request concatenated in input order.
struct Group {
  std::shared_ptr<const CachedPlan> plan;
  std::shared_ptr<const FaultModel> faults;
  const MachineEntry* machine = nullptr;
  std::uint64_t engine_key = 0;
  int num_ranks = 0;
  std::vector<std::size_t> requests;   ///< window indices, input order
  std::vector<std::int64_t> lane_base; ///< first lane of each member
  std::vector<std::uint64_t> lane_seeds;
  std::vector<double> clocks;          ///< lanes x num_ranks
  double execute_seconds = 0.0;        ///< summed block wall time
  // Tracer-epoch wall interval covering the group's blocks (tracing only).
  double trace_t0 = 0.0;
  double trace_t1 = 0.0;
};

/// One Engine::execute_batch call: lanes [start, start+width) of a group.
/// `request` is the owning window index for fault-attributable blocks, or
/// SIZE_MAX when the block spans requests (only possible unfaulted, where
/// FaultAbort cannot occur).
struct Block {
  std::size_t group = 0;
  std::int64_t start = 0;
  int width = 0;
  std::size_t request = SIZE_MAX;
  double seconds = 0.0;
  std::string error;
  ErrorCode code = ErrorCode::None;
  std::shared_ptr<FaultDetail> fault;
  /// Skipped by the deadline CancelFn: every owning request had expired
  /// when this block came up for execution.
  bool cancelled = false;
  // Tracing only: tracer-epoch wall interval and the block span's id.
  double trace_t0 = 0.0;
  double trace_t1 = 0.0;
  std::uint32_t trace_span = 0;
};

}  // namespace

struct Service::Impl {
  explicit Impl(ServiceOptions opts)
      : options(std::move(opts)),
        pool(options.jobs),
        plans(options.cache_shards, options.cache_capacity),
        patterns(std::max(1, options.cache_shards / 2),
                 options.pattern_capacity),
        engines(static_cast<std::size_t>(pool.num_threads())) {
    if (options.window < 1) {
      throw std::invalid_argument("serve: window must be >= 1");
    }
    if (options.batch < 0) {
      throw std::invalid_argument("serve: batch must be >= 0 (0 = auto)");
    }
    if (options.trace) {
      obs::Tracer::Options topts;
      topts.rings = pool.num_threads();
      topts.ring_capacity = std::max<std::size_t>(1, options.trace_ring_capacity);
      topts.sample_period = std::max<std::uint64_t>(1, options.trace_sample);
      tracer = std::make_unique<obs::Tracer>(topts);
      for (int w = 0; w < pool.num_threads(); ++w) {
        tracer->name_track(static_cast<std::uint16_t>(w),
                           "serve worker " + std::to_string(w));
      }
      tn.request = tracer->intern("request");
      tn.parse = tracer->intern("parse");
      tn.queue_wait = tracer->intern("queue_wait");
      tn.execute = tracer->intern("execute");
      tn.error = tracer->intern("request.error");
      tn.shed = tracer->intern("request.shed");
      tn.degraded = tracer->intern("request.degraded");
      tn.deadline = tracer->intern("request.deadline");
      tn.window = tracer->intern("window");
      tn.render = tracer->intern("window.render");
      tn.block = tracer->intern("serve.block");
      tn.engine_msg = tracer->intern("engine.msg");
      tn.engine_copy = tracer->intern("engine.copy");
      tn.k_pattern = tracer->intern("pattern");
      tn.k_machine = tracer->intern("machine");
      tn.k_strategy = tracer->intern("strategy");
      tn.k_cache = tracer->intern("cache");
      tn.k_hit = tracer->intern("hit");
      tn.k_miss = tracer->intern("miss");
      tn.k_reps = tracer->intern("reps");
      tn.k_nodes = tracer->intern("nodes");
      tn.k_error = tracer->intern("error");
      tn.k_requests = tracer->intern("requests");
      tn.k_groups = tracer->intern("groups");
      tn.k_blocks = tracer->intern("blocks");
      tn.k_lanes = tracer->intern("lanes");
      tn.k_group = tracer->intern("group");
      tn.k_first_lane = tracer->intern("first_lane");
      tn.k_src = tracer->intern("src");
      tn.k_dst = tracer->intern("dst");
      tn.k_bytes = tracer->intern("bytes");
      tn.k_path = tracer->intern("path");
      tn.k_rank = tracer->intern("rank");
      tn.k_gpu = tracer->intern("gpu");
      tn.k_dir = tracer->intern("dir");
    }
  }

  ServiceOptions options;
  runtime::ThreadPool pool;
  runtime::ShardedLruCache<CachedPlan> plans;
  runtime::ShardedLruCache<core::CommPattern> patterns;

  // Serial-phase caches (touched only by the window-driving thread).
  std::unordered_map<std::string, MachineEntry> machines;
  std::unordered_map<std::uint64_t, Topology> topos;  ///< by engine_key
  std::unordered_map<std::string, std::shared_ptr<const FaultModel>> faults;

  /// engines[worker][engine_key]: one reusable Engine per worker per
  /// (machine, nodes); workers only ever touch their own map.
  std::vector<std::unordered_map<std::uint64_t, std::unique_ptr<Engine>>>
      engines;

  bool shutdown = false;

  // -- tracing -----------------------------------------------------------
  /// Null = tracing off; every site below is a single pointer test.
  std::unique_ptr<obs::Tracer> tracer;
  /// Name/attr-key slots interned once at construction, so the hot path
  /// never touches the intern table.
  struct TraceNames {
    std::uint16_t request = 0, parse = 0, queue_wait = 0, execute = 0,
                  error = 0, shed = 0, degraded = 0, deadline = 0, window = 0,
                  render = 0, block = 0, engine_msg = 0, engine_copy = 0;
    std::uint16_t k_pattern = 0, k_machine = 0, k_strategy = 0, k_cache = 0,
                  k_hit = 0, k_miss = 0, k_reps = 0, k_nodes = 0, k_error = 0,
                  k_requests = 0, k_groups = 0, k_blocks = 0, k_lanes = 0,
                  k_group = 0, k_first_lane = 0, k_src = 0, k_dst = 0,
                  k_bytes = 0, k_path = 0, k_rank = 0, k_gpu = 0, k_dir = 0;
  } tn;

  // -- accounting (window-driving thread only) ---------------------------
  std::int64_t requests_total = 0;
  std::int64_t control_requests = 0;
  std::int64_t errors = 0;
  std::int64_t errors_by_code[kNumErrorCodes] = {};
  std::int64_t predict_only = 0;
  std::int64_t degraded_requests = 0;
  std::int64_t shed_overloaded = 0;  ///< lines admitted over the queue bound
  std::int64_t shed_shutdown = 0;    ///< lines shed by the shutdown drain
  std::int64_t deadline_partials = 0;
  std::int64_t cancelled_blocks = 0;
  std::int64_t queue_depth = 0;       ///< pending depth behind this window
  std::int64_t queue_depth_peak = 0;
  /// EWMA of requests retired per busy second, the denominator behind
  /// every retry_after_ms hint.  0 until the first window completes.
  double drain_rate_rps = 0.0;
  std::int64_t measured_requests = 0;
  std::int64_t measured_cache_hits = 0;
  std::int64_t compiles = 0;
  std::int64_t windows = 0;
  std::int64_t window_max = 0;
  std::int64_t groups_total = 0;
  std::int64_t blocks_total = 0;
  std::int64_t lanes_total = 0;
  std::int64_t max_group_lanes = 0;
  double compile_seconds_total = 0.0;
  double execute_seconds_total = 0.0;
  double busy_seconds = 0.0;
  static constexpr std::size_t kMaxSamples = 1u << 20;
  std::vector<double> latency_samples;
  std::vector<double> queue_samples;
  std::vector<double> compile_samples;
  std::vector<double> block_samples;

  void add_sample(std::vector<double>& v, double s) {
    if (v.size() < kMaxSamples) v.push_back(s);
  }

  void note_queue_depth(std::size_t depth) {
    queue_depth = static_cast<std::int64_t>(depth);
    queue_depth_peak = std::max(queue_depth_peak, queue_depth);
  }

  /// Backoff hint for overloaded / deadline_exceeded / shutting_down
  /// replies: the time the observed drain rate needs to clear the queue
  /// standing behind this window, clamped to [1ms, 60s].  Before the first
  /// window completes there is no rate yet; assume a fast server (1ms/req)
  /// rather than telling the first-ever shed client to stay away a minute.
  [[nodiscard]] std::int64_t retry_after_ms() const {
    const double rate = drain_rate_rps > 0.0 ? drain_rate_rps : 1000.0;
    const double ms =
        (static_cast<double>(queue_depth) + 1.0) / rate * 1000.0;
    return std::clamp<std::int64_t>(static_cast<std::int64_t>(ms) + 1,
                                    1, 60000);
  }

  const MachineEntry& resolve_machine(const std::string& arg) {
    auto it = machines.find(arg);
    if (it != machines.end()) return it->second;
    MachineEntry entry;
    entry.model = machine::resolve_machine(arg);
    entry.fingerprint =
        fnv1a_bytes(machine::to_json(entry.model).dump_string(0));
    return machines.emplace(arg, std::move(entry)).first->second;
  }

  const Topology& topology_for(const Request& req) {
    auto it = topos.find(req.engine_key);
    if (it != topos.end()) return it->second;
    return topos
        .emplace(req.engine_key, req.machine->model.topology(req.nodes))
        .first->second;
  }

  /// Effective execute_batch lane width for a machine size.  Mirrors
  /// core::measure's auto policy (minus its reps/jobs occupancy cap, which
  /// does not apply when lanes from many requests coalesce).
  [[nodiscard]] int lane_width(int num_ranks) const {
    int width = options.batch;
    if (width == 0) {
      width = 16;
      while (width > 1 && num_ranks * width > 8192) width /= 2;
    }
    return std::max(1, width);
  }

  // ---------------------------------------------------------------------
  // Phase A: parse one line into a Request (serial).
  // ---------------------------------------------------------------------

  void parse_request(const std::string& line, Request& req) {
    // Length guard before the JSON parse: run_socket feeds an oversized
    // partial buffer through here so the abusive client gets one bounded
    // `bad_request` reply instead of growing the server's memory.
    if (options.max_line_bytes > 0 && line.size() > options.max_line_bytes) {
      throw ServeError(ErrorCode::BadRequest,
                       "request line is " + std::to_string(line.size()) +
                           " bytes (max_line_bytes is " +
                           std::to_string(options.max_line_bytes) + ")");
    }
    const obs::JsonValue doc = obs::JsonValue::parse(line);
    if (!doc.is_object()) {
      throw std::invalid_argument("request must be a JSON object");
    }
    if (const obs::JsonValue* id = doc.find("id")) req.id = *id;

    if (const obs::JsonValue* cmd = doc.find("cmd")) {
      req.control = true;
      req.cmd = cmd->as_string();
      if (req.cmd != "stats" && req.cmd != "trace" && req.cmd != "shutdown") {
        throw std::invalid_argument("unknown cmd '" + req.cmd +
                                    "' (stats|trace|shutdown)");
      }
      for (const auto& member : doc.members()) {
        if (member.first != "cmd" && member.first != "id") {
          throw std::invalid_argument("cmd lines accept only 'cmd' and 'id'");
        }
      }
      return;
    }

    for (const auto& member : doc.members()) {
      const std::string& key = member.first;
      if (key != "id" && key != "machine" && key != "nodes" &&
          key != "pattern" && key != "strategy" && key != "faults" &&
          key != "reps" && key != "seed" && key != "staged_only" &&
          key != "rank" && key != "deadline_ms") {
        throw std::invalid_argument("unknown request key '" + key + "'");
      }
    }

    // Admission verdicts bite here, after the control check above (control
    // lines are never shed) but before any expensive work.
    if (req.admission == Admission::ShedShutdown) {
      throw ServeError(ErrorCode::ShuttingDown,
                       "server is shutting down; request was shed from the "
                       "queue unprocessed");
    }
    if (req.admission == Admission::ShedOverload &&
        options.shed_policy == ShedPolicy::Reject) {
      throw ServeError(ErrorCode::Overloaded,
                       "server overloaded: pending queue is at max_queue (" +
                           std::to_string(options.max_queue) + ")");
    }

    std::string machine_arg = options.default_machine;
    if (const obs::JsonValue* m = doc.find("machine")) {
      machine_arg = m->as_string();
    }
    req.machine = &resolve_machine(machine_arg);

    if (const obs::JsonValue* n = doc.find("nodes")) {
      req.nodes = static_cast<int>(n->as_int());
      if (req.nodes < 1 || req.nodes > 65536) {
        throw std::invalid_argument("nodes must be in [1, 65536]");
      }
    }
    req.engine_key =
        mix_seed(req.machine->fingerprint,
                 static_cast<std::uint64_t>(req.nodes));
    const Topology& topo = topology_for(req);

    if (const obs::JsonValue* r = doc.find("reps")) {
      req.reps = static_cast<int>(r->as_int());
      if (req.reps < 0 || req.reps > 100000) {
        throw std::invalid_argument("reps must be in [0, 100000]");
      }
    }
    if (const obs::JsonValue* s = doc.find("seed")) {
      req.seed = static_cast<std::uint64_t>(s->as_int());
    }
    if (const obs::JsonValue* so = doc.find("staged_only")) {
      req.staged_only = so->as_bool();
    }
    if (const obs::JsonValue* rk = doc.find("rank")) {
      req.want_ranking = rk->as_bool();
    }

    // Deadline budget: an explicit "deadline_ms" wins (0 = expire as soon
    // as the window reaches execution -- the deterministic shape the
    // deadline tests use); otherwise the service default applies.
    std::int64_t deadline_ms = -1;
    if (const obs::JsonValue* d = doc.find("deadline_ms")) {
      deadline_ms = d->as_int();
      if (deadline_ms < 0 || deadline_ms > 86400000) {
        throw std::invalid_argument("deadline_ms must be in [0, 86400000]");
      }
    } else if (options.default_deadline_ms > 0) {
      deadline_ms = options.default_deadline_ms;
    }
    if (deadline_ms >= 0) {
      req.has_deadline = true;
      req.deadline = req.enqueued + std::chrono::milliseconds(deadline_ms);
    }

    // Overloaded + Degrade: measured requests fall back to the model-only
    // answer.  The ranking *is* that answer, so it is always computed for
    // degraded requests, even for "rank": false clients.  Predict-only
    // requests are already engine-free and answer normally.
    if (req.admission == Admission::ShedOverload && req.reps > 0) {
      req.degraded = true;
      req.want_ranking = true;
    }

    parse_pattern(doc.find("pattern"), topo, req);

    if (const obs::JsonValue* strat = doc.find("strategy")) {
      req.has_strategy = true;
      req.strategy = core::parse_strategy(strat->as_string());
    }

    if (const obs::JsonValue* f = doc.find("faults")) {
      const std::string path = f->as_string();
      // Fault models compile against a concrete machine; key the cache by
      // (path, machine, nodes).  The file is read once per key -- edits to
      // a fault file are not observed by a running server.
      const std::string key = path + "\x1f" + hash_hex(req.engine_key);
      auto it = faults.find(key);
      if (it == faults.end()) {
        const fault::FaultPlan plan = fault::load_fault_file(path);
        auto model = std::make_shared<FaultModel>(
            plan.compile(topo, req.machine->model.params));
        it = faults.emplace(key, std::move(model)).first;
      }
      req.faults = it->second;
      req.faults_fp = fnv1a_bytes(key);
    }

    // Model ranking: same Advisor call the `advise` subcommand makes, so a
    // serve response ranks bit-identically to one-shot `hetcomm advise`.
    // A request with an explicit strategy and "rank": false skips the sweep
    // -- the advisor's O(strategies) predictions are pure response garnish
    // once the client has picked its strategy.
    if (req.want_ranking || !req.has_strategy) {
      const core::Advisor advisor(topo, req.machine->model.params);
      core::AdvisorOptions aopts;
      aopts.staged_only = req.staged_only;
      req.ranking = advisor.rank(*req.pattern, aopts);
      if (!req.has_strategy) req.strategy = req.ranking.front().config;
    }

    req.plan_key = mix_seed(
        mix_seed(req.pattern_fp, req.engine_key),
        fnv1a_bytes(req.strategy.name()));

    if (req.degraded) {
      // The degraded answer is the model ranking; its confidence is the
      // model's top-2 separation -- 0 when the two best strategies predict
      // identically (a coin toss), approaching 1 when the winner is far
      // ahead.  Deterministic, so clients (and the chaos harness) can
      // gate on it.
      if (req.ranking.size() >= 2) {
        const double p1 = req.ranking[0].predicted_seconds;
        const double p2 = req.ranking[1].predicted_seconds;
        req.confidence =
            p2 > 0.0 ? std::clamp((p2 - p1) / p2, 0.0, 1.0) : 0.0;
      } else {
        req.confidence = 1.0;  // only one candidate: nothing to confuse
      }
      // Cache peek (no compile, no engine): tells the client whether the
      // full answer would have been hot had the server not been shedding.
      req.plan_cached = plans.find(req.plan_key) != nullptr;
    }
  }

  void parse_pattern(const obs::JsonValue* spec, const Topology& topo,
                     Request& req) {
    if (spec == nullptr) {
      throw std::invalid_argument(
          "request needs a pattern (inline object, file path, {\"random\": "
          "...} or {\"ref\": hash})");
    }
    if (spec->is_string()) {
      register_pattern(core::read_pattern_file(spec->as_string()), topo, req);
      return;
    }
    if (!spec->is_object()) {
      throw std::invalid_argument("pattern must be a string or an object");
    }
    if (const obs::JsonValue* ref = spec->find("ref")) {
      if (spec->size() != 1) {
        throw std::invalid_argument("a pattern ref carries no other keys");
      }
      std::uint64_t h = 0;
      if (ref->is_string()) {
        h = parse_hash(ref->as_string());
      } else {
        h = static_cast<std::uint64_t>(ref->as_int());
      }
      std::shared_ptr<const core::CommPattern> found = patterns.find(h);
      if (found == nullptr) {
        throw std::invalid_argument("unknown pattern ref " + hash_hex(h) +
                                    " (the server has not seen it)");
      }
      if (found->num_gpus() != topo.num_gpus()) {
        throw std::invalid_argument("pattern ref GPU count (" +
                                    std::to_string(found->num_gpus()) +
                                    ") does not match the machine (" +
                                    std::to_string(topo.num_gpus()) + ")");
      }
      req.pattern = std::move(found);
      req.pattern_fp = h;
      req.pattern_was_ref = true;
      return;
    }
    if (const obs::JsonValue* rnd = spec->find("random")) {
      if (spec->size() != 1 || !rnd->is_object()) {
        throw std::invalid_argument(
            "random pattern spec: {\"random\": {\"msgs_per_gpu\": M, "
            "\"bytes\": B, \"seed\": S}}");
      }
      int msgs = 16;
      std::int64_t bytes = 4096;
      std::uint64_t seed = 1;
      for (const auto& [key, value] : rnd->members()) {
        if (key == "msgs_per_gpu") {
          msgs = static_cast<int>(value.as_int());
        } else if (key == "bytes") {
          bytes = value.as_int();
        } else if (key == "seed") {
          seed = static_cast<std::uint64_t>(value.as_int());
        } else {
          throw std::invalid_argument("unknown random-pattern key '" + key +
                                      "'");
        }
      }
      if (msgs < 1 || bytes < 1) {
        throw std::invalid_argument(
            "random pattern needs msgs_per_gpu >= 1 and bytes >= 1");
      }
      register_pattern(core::random_pattern(topo, msgs, bytes, seed), topo,
                       req);
      return;
    }
    // Inline pattern: {"gpus": N, "msgs": [[src, dst, bytes], ...],
    // "dedup": [[src_gpu, dst_node, bytes], ...]}.
    const obs::JsonValue* gpus = spec->find("gpus");
    const obs::JsonValue* msgs = spec->find("msgs");
    if (gpus == nullptr || msgs == nullptr) {
      throw std::invalid_argument(
          "inline pattern needs 'gpus' and 'msgs' ([[src, dst, bytes], ...])");
    }
    for (const auto& member : spec->members()) {
      if (member.first != "gpus" && member.first != "msgs" &&
          member.first != "dedup") {
        throw std::invalid_argument("unknown pattern key '" + member.first +
                                    "'");
      }
    }
    core::CommPattern pattern(static_cast<int>(gpus->as_int()));
    for (const obs::JsonValue& triple : msgs->items()) {
      if (!triple.is_array() || triple.size() != 3) {
        throw std::invalid_argument("msgs entries are [src, dst, bytes]");
      }
      pattern.add(static_cast<int>(triple.at(0).as_int()),
                  static_cast<int>(triple.at(1).as_int()),
                  triple.at(2).as_int());
    }
    if (const obs::JsonValue* dedup = spec->find("dedup")) {
      for (const obs::JsonValue& triple : dedup->items()) {
        if (!triple.is_array() || triple.size() != 3) {
          throw std::invalid_argument(
              "dedup entries are [src_gpu, dst_node, bytes]");
        }
        pattern.set_node_dedup(static_cast<int>(triple.at(0).as_int()),
                               static_cast<int>(triple.at(1).as_int()),
                               triple.at(2).as_int());
      }
    }
    register_pattern(std::move(pattern), topo, req);
  }

  void register_pattern(core::CommPattern pattern, const Topology& topo,
                        Request& req) {
    if (pattern.num_gpus() != topo.num_gpus()) {
      throw std::invalid_argument("pattern GPU count (" +
                                  std::to_string(pattern.num_gpus()) +
                                  ") does not match the machine (" +
                                  std::to_string(topo.num_gpus()) + ")");
    }
    req.pattern_fp = core::pattern_hash(pattern);
    // Park the pattern in the registry so later requests can say
    // {"ref": "<hash>"} and skip re-sending (and re-parsing) the body.
    req.pattern = patterns.get_or_create(req.pattern_fp, [&] {
      return std::make_shared<const core::CommPattern>(std::move(pattern));
    });
  }

  // ---------------------------------------------------------------------
  // Phases B+C: compile unique plans, then execute coalesced lane groups.
  // ---------------------------------------------------------------------

  void execute_window(std::vector<Request>& reqs, std::uint64_t wtrace,
                      std::uint32_t wspan) {
    // Unique plan keys of this window's measured requests: one cache
    // lookup per distinct key, so N identical queries arriving together
    // cost one compile even on a cold cache.
    std::vector<std::size_t> unique;  // representative request indices
    {
      std::unordered_map<std::uint64_t, std::size_t> first;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        Request& req = reqs[i];
        if (req.control || !req.error.empty() || req.reps == 0 ||
            req.degraded) {
          continue;
        }
        if (first.emplace(req.plan_key, i).second) unique.push_back(i);
      }
    }

    // Queue/run spans for both fan-outs land in the *window* trace; the
    // compile (cache.lookup / cache.build) spans land in the requesting
    // request's trace, on the worker that ran the lookup.
    const runtime::ThreadPool::TraceHook whook(
        wtrace != 0 ? tracer.get() : nullptr, wtrace, wspan);

    pool.parallel_for(
        static_cast<std::int64_t>(unique.size()),
        [&](std::int64_t u, int worker) {
          Request& req = reqs[unique[static_cast<std::size_t>(u)]];
          const obs::TraceContext ctx{
              req.trace_id != 0 ? tracer.get() : nullptr, worker,
              req.trace_id, req.trace_root,
              static_cast<std::uint16_t>(worker)};
          try {
            req.plan = plans.get_or_create(
                req.plan_key,
                [&] {
                  const auto t0 = Clock::now();
                  auto built = std::make_shared<CachedPlan>(
                      *req.pattern, topos.at(req.engine_key),
                      req.machine->model.params, req.strategy);
                  built->compile_seconds = seconds_between(t0, Clock::now());
                  req.compiled_here = true;
                  return built;
                },
                &ctx);
            req.cache_hit = !req.compiled_here;
          } catch (const std::exception& e) {
            // Plan construction rejects the *input* (strategy/pattern
            // combination the builder cannot lower), so it classifies as
            // the client's error, not the server's.
            req.error = e.what();
            req.code = ErrorCode::BadRequest;
          }
        },
        whook);
    // Duplicates adopt the representative's plan: within-window reuse is a
    // cache hit from the requester's point of view.
    {
      std::unordered_map<std::uint64_t, std::size_t> rep;
      for (const std::size_t i : unique) rep.emplace(reqs[i].plan_key, i);
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        Request& req = reqs[i];
        if (req.control || !req.error.empty() || req.reps == 0 ||
            req.degraded) {
          continue;
        }
        const std::size_t r = rep.at(req.plan_key);
        if (r == i) continue;
        if (!reqs[r].error.empty()) {
          req.error = reqs[r].error;
          req.code = reqs[r].code;
          continue;
        }
        req.plan = reqs[r].plan;
        req.cache_hit = true;
      }
    }

    // Group measured requests by (plan, faults); lanes concatenate in
    // input order, each request contributing reps lanes seeded
    // mix_seed(req.seed, rep) -- the exact per-repetition seeds
    // core::measure derives, which is what keeps coalesced replies
    // bit-identical to one-shot measurement.
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& req = reqs[i];
      if (req.control || !req.error.empty() || req.reps == 0 ||
          req.degraded) {
        continue;
      }
      const std::uint64_t gkey = mix_seed(req.plan_key, req.faults_fp);
      auto [it, inserted] = group_of.emplace(gkey, groups.size());
      if (inserted) {
        Group g;
        g.plan = req.plan;
        g.faults = req.faults;
        g.machine = req.machine;
        g.engine_key = req.engine_key;
        g.num_ranks = topos.at(req.engine_key).num_ranks();
        groups.push_back(std::move(g));
      }
      Group& g = groups[it->second];
      g.lane_base.push_back(static_cast<std::int64_t>(g.lane_seeds.size()));
      g.requests.push_back(i);
      for (int rep = 0; rep < req.reps; ++rep) {
        g.lane_seeds.push_back(
            mix_seed(req.seed, static_cast<std::uint64_t>(rep)));
      }
    }

    // Carve each group into execute_batch blocks.  Unfaulted groups
    // coalesce lanes across requests (an unfaulted lane cannot abort, so
    // no error ever needs attributing across a block); faulted groups keep
    // blocks within one request so a FaultAbort maps to exactly one reply.
    std::vector<Block> blocks;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      Group& g = groups[gi];
      g.clocks.assign(g.lane_seeds.size() *
                          static_cast<std::size_t>(g.num_ranks),
                      0.0);
      const int width = lane_width(g.num_ranks);
      if (g.faults == nullptr) {
        for (const runtime::LaneBlock& b : runtime::lane_blocks(
                 static_cast<std::int64_t>(g.lane_seeds.size()), width)) {
          Block blk;
          blk.group = gi;
          blk.start = b.start;
          blk.width = b.width;
          blocks.push_back(std::move(blk));
        }
      } else {
        for (std::size_t m = 0; m < g.requests.size(); ++m) {
          const Request& req = reqs[g.requests[m]];
          for (const runtime::LaneBlock& b :
               runtime::lane_blocks(req.reps, std::min(width, req.reps))) {
            Block blk;
            blk.group = gi;
            blk.start = g.lane_base[m] + b.start;
            blk.width = b.width;
            blk.request = g.requests[m];
            blocks.push_back(std::move(blk));
          }
        }
      }
    }

    // Engine-event merge: lane 0 of the window's first block records the
    // engine's message/copy events, converted below onto engine-rank
    // tracks of the window trace.  One lane per window bounds the cost;
    // set_tracing never perturbs clocks, so replies stay bit-identical.
    Trace engine_trace;
    const bool merge_engine = wtrace != 0 && !blocks.empty();

    // Deadline cancellation between blocks: a claimed block is skipped when
    // every request owning its lanes has expired.  Coalesced (unfaulted)
    // blocks mix lanes from several requests, so they cancel only when ALL
    // owners expired -- a live request's lanes always run, which is what
    // keeps its reply bit-identical to an unloaded server's.  The predicate
    // runs on the claiming worker; each block index is claimed exactly
    // once, so writing block.cancelled here is race-free.
    runtime::ThreadPool::CancelFn cancel;
    bool any_deadline = false;
    for (const Request& req : reqs) {
      if (req.has_deadline && req.error.empty() && !req.control) {
        any_deadline = true;
        break;
      }
    }
    if (any_deadline) {
      cancel = [&](std::int64_t bi) {
        Block& block = blocks[static_cast<std::size_t>(bi)];
        const Group& g = groups[block.group];
        const auto now = Clock::now();
        const auto expired = [&](const Request& r) {
          return r.has_deadline && now >= r.deadline;
        };
        bool skip = false;
        if (block.request != SIZE_MAX) {
          skip = expired(reqs[block.request]);
        } else {
          skip = !g.requests.empty();
          for (const std::size_t r : g.requests) {
            if (!expired(reqs[r])) {
              skip = false;
              break;
            }
          }
        }
        if (skip) block.cancelled = true;
        return skip;
      };
    }

    pool.parallel_for(
        static_cast<std::int64_t>(blocks.size()),
        [&](std::int64_t bi, int worker) {
          Block& block = blocks[static_cast<std::size_t>(bi)];
          Group& g = groups[block.group];
          const auto t0 = Clock::now();
          const double bt0 = tracer != nullptr ? tracer->now() : 0.0;
          try {
            std::unique_ptr<Engine>& slot =
                engines[static_cast<std::size_t>(worker)][g.engine_key];
            if (!slot) {
              slot = std::make_unique<Engine>(
                  topos.at(g.engine_key), g.machine->model.params,
                  NoiseModel(0, options.noise_sigma));
            }
            slot->set_faults(g.faults.get());
            const std::span<const std::uint64_t> seeds(
                g.lane_seeds.data() + block.start,
                static_cast<std::size_t>(block.width));
            const std::span<double> clocks(
                g.clocks.data() + static_cast<std::size_t>(block.start) *
                                      static_cast<std::size_t>(g.num_ranks),
                static_cast<std::size_t>(block.width) *
                    static_cast<std::size_t>(g.num_ranks));
            const bool etrace = merge_engine && bi == 0;
            if (etrace) slot->set_tracing(true);
            slot->execute_batch(g.plan->compiled, seeds, clocks,
                                etrace ? 0 : -1);
            if (etrace) {
              engine_trace = slot->trace();
              slot->set_tracing(false);
            }
          } catch (const FaultAbort& e) {
            // Structured abort: the reply carries the fault's coordinates
            // (strategy filled in at attribution -- the engine throws with
            // it empty).  Faulted groups never coalesce blocks across
            // requests, so this maps to exactly one reply.
            block.error = e.what();
            block.code = ErrorCode::FaultAborted;
            auto detail = std::make_shared<FaultDetail>();
            detail->reason = abort_reason_name(e.reason);
            detail->src = e.src;
            detail->dst = e.dst;
            detail->path_id = e.path_id;
            detail->path = e.path;
            detail->attempts = e.attempts;
            block.fault = std::move(detail);
          } catch (const std::exception& e) {
            block.error = e.what();
            if (block.error.empty()) block.error = "execution failed";
            block.code = ErrorCode::Internal;
          }
          block.seconds = seconds_between(t0, Clock::now());
          if (tracer != nullptr) {
            block.trace_t0 = bt0;
            block.trace_t1 = tracer->now();
          }
          if (wtrace != 0) {
            obs::SpanRecord s;
            s.trace_id = wtrace;
            s.span_id = tracer->new_span_id();
            s.parent = wspan;
            s.name = tn.block;
            s.track = static_cast<std::uint16_t>(worker);
            s.t_start = block.trace_t0;
            s.t_end = block.trace_t1;
            s.add_attr(tn.k_group, static_cast<std::int64_t>(block.group));
            s.add_attr(tn.k_first_lane, block.start);
            s.add_attr(tn.k_lanes, block.width);
            block.trace_span = s.span_id;
            tracer->record(worker, s);
          }
        },
        whook, cancel);

    for (const Block& block : blocks) {
      Group& g = groups[block.group];
      if (block.cancelled) {
        // The deadline predicate only skips a block when every owner had
        // expired, so marking them all deadline_exceeded is exact.  The
        // ranking (when the request asked for one) rides along as the
        // partial result -- it was computed at parse time.
        cancelled_blocks += 1;
        const auto expire = [&](Request& r) {
          if (!r.error.empty()) return;
          r.error = "deadline exceeded during execution (lanes cancelled "
                    "between blocks)";
          r.code = ErrorCode::DeadlineExceeded;
          r.partial = !r.ranking.empty();
        };
        if (block.request != SIZE_MAX) {
          expire(reqs[block.request]);
        } else {
          for (const std::size_t r : g.requests) expire(reqs[r]);
        }
        continue;
      }
      g.execute_seconds += block.seconds;
      add_sample(block_samples, block.seconds);
      if (tracer != nullptr) {
        // Group wall interval = union of its blocks' intervals; it backs
        // each member request's `execute` span.
        if (g.trace_t1 == 0.0) {
          g.trace_t0 = block.trace_t0;
          g.trace_t1 = block.trace_t1;
        } else {
          g.trace_t0 = std::min(g.trace_t0, block.trace_t0);
          g.trace_t1 = std::max(g.trace_t1, block.trace_t1);
        }
      }
      if (!block.error.empty()) {
        const auto apply = [&](Request& r) {
          if (!r.error.empty()) return;
          r.error = block.error;
          r.code = block.code;
          if (block.fault != nullptr) {
            r.fault = std::make_shared<FaultDetail>(*block.fault);
            r.fault->strategy = r.strategy.name();
          }
        };
        if (block.request != SIZE_MAX) {
          apply(reqs[block.request]);
        } else {
          for (const std::size_t r : g.requests) apply(reqs[r]);
        }
      }
    }
    blocks_total += static_cast<std::int64_t>(blocks.size());

    // Convert the captured engine events onto engine-rank tracks, nested
    // inside the first block's span and scaled proportionally from
    // simulated time into that block's wall interval (the engine reports
    // simulated clocks; the timeline shows their *shares* of the block).
    if (merge_engine && blocks[0].trace_span != 0 &&
        (!engine_trace.messages.empty() || !engine_trace.copies.empty())) {
      const Block& b0 = blocks[0];
      double sim_total = 0.0;
      for (const MessageTrace& m : engine_trace.messages) {
        sim_total = std::max(sim_total, m.completion);
      }
      for (const CopyTrace& c : engine_trace.copies) {
        sim_total = std::max(sim_total, c.completion);
      }
      if (sim_total > 0.0 && b0.trace_t1 > b0.trace_t0) {
        const double scale = (b0.trace_t1 - b0.trace_t0) / sim_total;
        const auto rank_track = [&](int rank) -> std::uint16_t {
          const int t = static_cast<int>(obs::kEngineTrackBase) + rank;
          if (rank < 0 || t > 0xffff) return 0;  // off the display range
          tracer->name_track(static_cast<std::uint16_t>(t),
                             "engine rank " + std::to_string(rank));
          return static_cast<std::uint16_t>(t);
        };
        std::size_t budget = 256;  // bound the per-window conversion cost
        for (const MessageTrace& m : engine_trace.messages) {
          if (budget == 0) break;
          const std::uint16_t track = rank_track(m.src);
          if (track == 0) continue;
          --budget;
          obs::SpanRecord s;
          s.trace_id = wtrace;
          s.span_id = tracer->new_span_id();
          s.parent = b0.trace_span;
          s.name = tn.engine_msg;
          s.track = track;
          s.t_start = b0.trace_t0 + m.start * scale;
          s.t_end = b0.trace_t0 + m.completion * scale;
          s.add_attr(tn.k_src, m.src);
          s.add_attr(tn.k_dst, m.dst);
          s.add_attr(tn.k_bytes, m.bytes);
          s.add_attr(tn.k_path, static_cast<std::int64_t>(m.path));
          tracer->record(0, s);
        }
        for (const CopyTrace& c : engine_trace.copies) {
          if (budget == 0) break;
          const std::uint16_t track = rank_track(c.rank);
          if (track == 0) continue;
          --budget;
          obs::SpanRecord s;
          s.trace_id = wtrace;
          s.span_id = tracer->new_span_id();
          s.parent = b0.trace_span;
          s.name = tn.engine_copy;
          s.track = track;
          s.t_start = b0.trace_t0 + c.start * scale;
          s.t_end = b0.trace_t0 + c.completion * scale;
          s.add_attr(tn.k_rank, c.rank);
          s.add_attr(tn.k_gpu, c.gpu);
          s.add_attr(tn.k_bytes, c.bytes);
          s.add_attr(tn.k_dir, static_cast<std::int64_t>(c.dir));
          tracer->record(0, s);
        }
      }
    }

    // Serial per-request reduction in repetition order: the same fold
    // core::measure runs, so max_avg / makespan stats are bit-identical to
    // a one-shot measurement of the same (plan, reps, seed).
    for (Group& g : groups) {
      groups_total += 1;
      lanes_total += static_cast<std::int64_t>(g.lane_seeds.size());
      max_group_lanes = std::max(
          max_group_lanes, static_cast<std::int64_t>(g.lane_seeds.size()));
      const std::size_t num_ranks = static_cast<std::size_t>(g.num_ranks);
      std::vector<double> per_rank_mean(num_ranks);
      std::vector<double> makespans;
      for (std::size_t m = 0; m < g.requests.size(); ++m) {
        Request& req = reqs[g.requests[m]];
        if (!req.error.empty()) continue;
        per_rank_mean.assign(num_ranks, 0.0);
        makespans.clear();
        makespans.reserve(static_cast<std::size_t>(req.reps));
        for (int rep = 0; rep < req.reps; ++rep) {
          const double* clocks =
              g.clocks.data() +
              (static_cast<std::size_t>(g.lane_base[m]) +
               static_cast<std::size_t>(rep)) *
                  num_ranks;
          double makespan = 0.0;
          for (std::size_t r = 0; r < num_ranks; ++r) {
            per_rank_mean[r] += clocks[r];
            makespan = std::max(makespan, clocks[r]);
          }
          makespans.push_back(makespan);
        }
        const double inv = 1.0 / req.reps;
        for (double& t : per_rank_mean) t *= inv;
        req.max_avg =
            *std::max_element(per_rank_mean.begin(), per_rank_mean.end());
        req.makespan = obs::summarize(makespans);
        req.batch = std::min(lane_width(g.num_ranks),
                             static_cast<int>(g.lane_seeds.size()));
        req.execute_seconds = 0.0;  // filled below, once per group
      }
      for (const std::size_t r : g.requests) {
        reqs[r].execute_seconds = g.execute_seconds;
        if (reqs[r].trace_id != 0) {
          // The request's measured lanes ran somewhere inside its group's
          // wall interval (lanes coalesce, so a per-request cut does not
          // exist); record the group interval as this request's execute
          // span.
          obs::SpanRecord s;
          s.trace_id = reqs[r].trace_id;
          s.span_id = tracer->new_span_id();
          s.parent = reqs[r].trace_root;
          s.name = tn.execute;
          s.t_start = g.trace_t0;
          s.t_end = g.trace_t1;
          s.add_attr(tn.k_lanes, reqs[r].reps);
          tracer->record(0, s);
        }
      }
      execute_seconds_total += g.execute_seconds;
    }
  }

  // ---------------------------------------------------------------------
  // Response rendering + accounting.
  // ---------------------------------------------------------------------

  static obs::JsonValue ranking_json(const Request& req) {
    obs::JsonValue ranking = obs::JsonValue::array();
    for (const core::Recommendation& r : req.ranking) {
      obs::JsonValue row = obs::JsonValue::object();
      row.set("strategy", r.config.name());
      row.set("predicted_seconds", r.predicted_seconds);
      row.set("relative", r.relative);
      ranking.push_back(std::move(row));
    }
    return ranking;
  }

  std::string render(const Request& req, Clock::time_point done) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("id", req.id);
    // Every reply -- data, control or error -- reports its own latency so
    // clients never need to time the wire themselves.
    doc.set("latency_seconds", seconds_between(req.enqueued, done));
    if (!req.error.empty()) {
      const ErrorCode code =
          req.code == ErrorCode::None ? ErrorCode::BadRequest : req.code;
      doc.set("ok", false);
      doc.set("error", req.error);
      doc.set("error_code", error_code_name(code));
      if (carries_retry_hint(code)) {
        doc.set("retry_after_ms", retry_after_ms());
      }
      if (req.fault != nullptr) {
        obs::JsonValue fault = obs::JsonValue::object();
        fault.set("reason", req.fault->reason);
        fault.set("strategy", req.fault->strategy);
        fault.set("src", req.fault->src);
        fault.set("dst", req.fault->dst);
        fault.set("path_id", req.fault->path_id);
        fault.set("path", req.fault->path);
        fault.set("attempts", req.fault->attempts);
        doc.set("fault", std::move(fault));
      }
      if (code == ErrorCode::DeadlineExceeded && req.partial &&
          !req.ranking.empty()) {
        // The model ranking was already computed when the deadline fired;
        // hand it over rather than discarding mid-flight work.
        obs::JsonValue partial = obs::JsonValue::object();
        partial.set("recommended", req.ranking.front().config.name());
        partial.set("ranking", ranking_json(req));
        doc.set("partial", std::move(partial));
      }
      return to_line(doc);
    }
    doc.set("ok", true);
    if (req.control) {
      if (req.cmd == "stats") {
        doc.set("stats", metrics());
      } else if (req.cmd == "trace") {
        if (tracer == nullptr) {
          doc.set("ok", false);
          doc.set("error",
                  "tracing is disabled (start the server with --trace)");
        } else {
          doc.set("trace", tracer->to_json());
        }
      } else {
        doc.set("shutdown", true);
      }
      return to_line(doc);
    }

    doc.set("machine", req.machine->model.name);
    doc.set("nodes", req.nodes);
    doc.set("gpus", req.pattern->num_gpus());
    doc.set("pattern_hash", hash_hex(req.pattern_fp));
    if (!req.ranking.empty()) {
      doc.set("recommended", req.ranking.front().config.name());
      doc.set("ranking", ranking_json(req));
    }

    if (req.degraded) {
      // Model-only answer under load shedding: no engine lanes ran, so
      // there is no "measured" section; the ranking above *is* the reply.
      doc.set("degraded", true);
      doc.set("confidence", req.confidence);
      doc.set("cache", req.plan_cached ? "hit" : "miss");
    } else if (req.reps > 0) {
      obs::JsonValue measured = obs::JsonValue::object();
      measured.set("strategy", req.strategy.name());
      measured.set("reps", req.reps);
      measured.set("seed", static_cast<std::int64_t>(req.seed));
      measured.set("batch", req.batch);
      measured.set("max_avg", req.max_avg);
      measured.set("makespan", req.makespan.to_json());
      doc.set("measured", std::move(measured));
      doc.set("cache", req.cache_hit ? "hit" : "miss");
      if (req.compiled_here) {
        doc.set("compile_seconds", req.plan->compile_seconds);
      }
    }

    obs::JsonValue timing = obs::JsonValue::object();
    timing.set("queue_wait_seconds", req.queue_wait_seconds);
    timing.set("compile_seconds",
               req.compiled_here ? req.plan->compile_seconds : 0.0);
    timing.set("execute_seconds", req.execute_seconds);
    timing.set("latency_seconds", seconds_between(req.enqueued, done));
    doc.set("timing", std::move(timing));
    return to_line(doc);
  }

  void account(const Request& req, Clock::time_point done) {
    requests_total += 1;
    // Admission tallies are outcome-independent for data requests: a shed
    // line counts here whether it ended up rejected or degraded.  Control
    // lines are exempt -- they answer normally regardless of admission, so
    // counting them would make shed_overloaded exceed the shed outcomes.
    if (!req.control) {
      if (req.admission == Admission::ShedOverload) shed_overloaded += 1;
      if (req.admission == Admission::ShedShutdown) shed_shutdown += 1;
    }
    // Exactly one bucket per request: error beats control (a malformed
    // cmd line is an error, full stop -- counting it in both buckets
    // broke the control+errors+...== total invariant the stats contract
    // promises), then control / degraded / predict-only / measured.
    if (!req.error.empty()) {
      errors += 1;
      const ErrorCode code =
          req.code == ErrorCode::None ? ErrorCode::BadRequest : req.code;
      errors_by_code[static_cast<std::size_t>(code)] += 1;
      if (code == ErrorCode::DeadlineExceeded && req.partial) {
        deadline_partials += 1;
      }
      if (!req.control) {
        add_sample(latency_samples, seconds_between(req.enqueued, done));
        add_sample(queue_samples, req.queue_wait_seconds);
      }
      return;
    }
    if (req.control) {
      control_requests += 1;
      return;
    }
    add_sample(latency_samples, seconds_between(req.enqueued, done));
    add_sample(queue_samples, req.queue_wait_seconds);
    if (req.degraded) {
      degraded_requests += 1;
      return;
    }
    if (req.reps == 0) {
      predict_only += 1;
      return;
    }
    measured_requests += 1;
    if (req.cache_hit) measured_cache_hits += 1;
    if (req.compiled_here) {
      compiles += 1;
      compile_seconds_total += req.plan->compile_seconds;
      add_sample(compile_samples, req.plan->compile_seconds);
    }
  }

  std::vector<std::string> process(std::vector<TimedLine> lines) {
    const auto window_start = Clock::now();
    // Window trace (pool queue/run spans, execute blocks, engine events)
    // and per-request traces draw ids from the same dense sequence, so one
    // --trace-sample period governs both.
    std::uint64_t wtrace = 0;
    std::uint32_t wspan = 0;
    if (tracer != nullptr) {
      wtrace = tracer->begin_trace();
      if (tracer->sampled(wtrace)) {
        wspan = tracer->new_span_id();
      } else {
        wtrace = 0;
      }
    }
    std::vector<Request> reqs(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      reqs[i].enqueued = lines[i].enqueued;
      reqs[i].admission = lines[i].admission;
      if (tracer != nullptr) {
        const std::uint64_t id = tracer->begin_trace();
        if (tracer->sampled(id)) {
          reqs[i].trace_id = id;
          reqs[i].trace_root = tracer->new_span_id();
        }
      }
      const double parse_t0 = tracer != nullptr ? tracer->now() : 0.0;
      try {
        parse_request(lines[i].text, reqs[i]);
      } catch (const ServeError& e) {
        reqs[i].error = e.what();
        reqs[i].code = e.code;
      } catch (const std::exception& e) {
        reqs[i].error = e.what();
        if (reqs[i].error.empty()) reqs[i].error = "bad request";
        reqs[i].code = ErrorCode::BadRequest;
      }
      if (reqs[i].trace_id != 0) {
        obs::SpanRecord s;
        s.trace_id = reqs[i].trace_id;
        s.span_id = tracer->new_span_id();
        s.parent = reqs[i].trace_root;
        s.name = tn.parse;
        s.t_start = parse_t0;
        s.t_end = tracer->now();
        tracer->record(0, s);
      }
      if (reqs[i].control && reqs[i].error.empty() &&
          reqs[i].cmd == "shutdown") {
        shutdown = true;
      }
    }

    const auto exec_start = Clock::now();
    for (Request& req : reqs) {
      // Deadline checkpoint 1 of 2 (checkpoint 2 is the between-blocks
      // CancelFn): a request whose budget ran out while queued or parsing
      // never reaches the engine.  Parsing already computed the model
      // ranking, so the reply still carries it as "partial".
      if (!req.control && req.error.empty() && req.has_deadline &&
          exec_start >= req.deadline) {
        req.error = "deadline exceeded before execution";
        req.code = ErrorCode::DeadlineExceeded;
        req.partial = !req.ranking.empty();
      }
      req.queue_wait_seconds = seconds_between(
          req.enqueued,
          req.reps > 0 && !req.degraded ? exec_start : window_start);
      if (req.trace_id != 0 && !req.control) {
        // Exactly the interval the response's timing.queue_wait_seconds
        // reports.
        obs::SpanRecord s;
        s.trace_id = req.trace_id;
        s.span_id = tracer->new_span_id();
        s.parent = req.trace_root;
        s.name = tn.queue_wait;
        s.t_start = tracer->seconds_since_epoch(req.enqueued);
        s.t_end = s.t_start + req.queue_wait_seconds;
        tracer->record(0, s);
      }
    }
    execute_window(reqs, wtrace, wspan);

    std::vector<std::string> out;
    out.reserve(reqs.size());
    const auto done = Clock::now();
    const double render_t0 = wtrace != 0 ? tracer->now() : 0.0;
    for (Request& req : reqs) {
      account(req, done);
      out.push_back(render(req, done));
    }
    if (wtrace != 0) {
      obs::SpanRecord s;
      s.trace_id = wtrace;
      s.span_id = tracer->new_span_id();
      s.parent = wspan;
      s.name = tn.render;
      s.t_start = render_t0;
      s.t_end = tracer->now();
      tracer->record(0, s);
    }
    if (tracer != nullptr) {
      const double done_s = tracer->seconds_since_epoch(done);
      for (Request& req : reqs) {
        if (req.trace_id == 0) continue;
        // Zero-width markers under the request root: error (with the
        // message interned), plus the resilience outcomes -- shed by
        // admission, answered degraded, expired on deadline.
        const auto marker = [&](std::uint16_t name) {
          obs::SpanRecord m;
          m.trace_id = req.trace_id;
          m.span_id = tracer->new_span_id();
          m.parent = req.trace_root;
          m.name = name;
          m.t_start = done_s;
          m.t_end = done_s;
          return m;
        };
        if (!req.error.empty()) {
          obs::SpanRecord e = marker(tn.error);
          e.add_attr_slot(tn.k_error,
                          tracer->intern(req.error.substr(0, 64)));
          tracer->record(0, e);
        }
        if (req.admission != Admission::Normal && !req.control) {
          obs::SpanRecord s = marker(tn.shed);
          s.add_attr_slot(tn.k_error,
                          tracer->intern(error_code_name(
                              req.admission == Admission::ShedShutdown
                                  ? ErrorCode::ShuttingDown
                                  : ErrorCode::Overloaded)));
          tracer->record(0, s);
        }
        if (req.degraded && req.error.empty()) {
          tracer->record(0, marker(tn.degraded));
        }
        if (req.code == ErrorCode::DeadlineExceeded) {
          tracer->record(0, marker(tn.deadline));
        }
        // Root span [enqueued, done]: its duration IS the reply's
        // latency_seconds, by construction.
        obs::SpanRecord s;
        s.trace_id = req.trace_id;
        s.span_id = req.trace_root;
        s.parent = 0;
        s.name = tn.request;
        s.t_start = tracer->seconds_since_epoch(req.enqueued);
        s.t_end = done_s;
        if (req.pattern) {
          s.add_attr(tn.k_pattern, static_cast<std::int64_t>(req.pattern_fp));
        }
        if (req.machine != nullptr) {
          s.add_attr_slot(tn.k_machine,
                          tracer->intern(req.machine->model.name));
        }
        if (!req.control && req.error.empty() && req.reps > 0) {
          s.add_attr_slot(tn.k_strategy, tracer->intern(req.strategy.name()));
          s.add_attr_slot(tn.k_cache, req.cache_hit ? tn.k_hit : tn.k_miss);
        }
        s.add_attr(tn.k_reps, req.reps);
        s.add_attr(tn.k_nodes, req.nodes);
        tracer->record(0, s);
      }
      if (wtrace != 0) {
        obs::SpanRecord s;
        s.trace_id = wtrace;
        s.span_id = wspan;
        s.parent = 0;
        s.name = tn.window;
        s.t_start = tracer->seconds_since_epoch(window_start);
        s.t_end = tracer->now();
        s.add_attr(tn.k_requests, static_cast<std::int64_t>(lines.size()));
        tracer->record(0, s);
      }
    }
    windows += 1;
    // Only normally-admitted lines count against the window bound: shed
    // lines ride along for their (cheap) structured replies and may push
    // a window's raw line count past options.window.
    std::int64_t normal_lines = 0;
    for (const Request& req : reqs) {
      if (req.admission == Admission::Normal) normal_lines += 1;
    }
    window_max = std::max(window_max, normal_lines);
    const double wall = seconds_between(window_start, done);
    busy_seconds += wall;
    // Drain-rate EWMA feeding retry_after_ms: how many requests (of any
    // kind) this window retired per busy second.  Smoothing factor 0.3 --
    // reactive enough to track a storm, steady enough not to thrash the
    // hint between windows.
    if (wall > 0.0 && !reqs.empty()) {
      const double rate = static_cast<double>(reqs.size()) / wall;
      drain_rate_rps =
          drain_rate_rps == 0.0 ? rate : 0.7 * drain_rate_rps + 0.3 * rate;
    }
    return out;
  }

  [[nodiscard]] obs::JsonValue metrics() const {
    obs::JsonValue serve = obs::JsonValue::object();
    serve.set("jobs", pool.num_threads());
    serve.set("window", options.window);

    obs::JsonValue counts = obs::JsonValue::object();
    counts.set("total", requests_total);
    counts.set("control", control_requests);
    counts.set("errors", errors);
    counts.set("predict_only", predict_only);
    counts.set("degraded", degraded_requests);
    counts.set("measured", measured_requests);
    obs::JsonValue by_code = obs::JsonValue::object();
    for (std::size_t c = 1; c < kNumErrorCodes; ++c) {
      by_code.set(error_code_name(static_cast<ErrorCode>(c)),
                  errors_by_code[c]);
    }
    counts.set("errors_by_code", std::move(by_code));
    serve.set("requests", std::move(counts));

    const auto cache_json = [](const runtime::CacheStats& s,
                               int shards, std::int64_t capacity) {
      obs::JsonValue c = obs::JsonValue::object();
      c.set("shards", shards);
      c.set("capacity", capacity);
      c.set("entries", s.entries);
      c.set("hits", s.hits);
      c.set("misses", s.misses);
      c.set("evictions", s.evictions);
      c.set("hit_rate", s.hit_rate());
      return c;
    };
    obs::JsonValue cache = obs::JsonValue::object();
    obs::JsonValue plan_cache = cache_json(
        plans.stats(), plans.num_shards(),
        static_cast<std::int64_t>(plans.capacity()));
    // Request-level hit rate: the fraction of measured requests that never
    // waited on a compile (shared-cache hits plus within-window reuse).
    // This is the number the serve_load bench gates on.
    plan_cache.set("request_hits", measured_cache_hits);
    plan_cache.set("request_hit_rate",
                   measured_requests == 0
                       ? 0.0
                       : static_cast<double>(measured_cache_hits) /
                             static_cast<double>(measured_requests));
    cache.set("plan", std::move(plan_cache));
    cache.set("pattern",
              cache_json(patterns.stats(), patterns.num_shards(),
                         static_cast<std::int64_t>(patterns.capacity())));
    serve.set("cache", std::move(cache));

    obs::JsonValue batching = obs::JsonValue::object();
    batching.set("windows", windows);
    batching.set("max_window_requests", window_max);
    batching.set("groups", groups_total);
    batching.set("blocks", blocks_total);
    batching.set("lanes", lanes_total);
    batching.set("max_group_lanes", max_group_lanes);
    serve.set("batching", std::move(batching));

    obs::JsonValue timing = obs::JsonValue::object();
    obs::JsonValue compile = obs::JsonValue::object();
    compile.set("total_seconds", compile_seconds_total);
    compile.set("per_compile", obs::summarize(compile_samples).to_json());
    timing.set("compile", std::move(compile));
    obs::JsonValue execute = obs::JsonValue::object();
    execute.set("total_seconds", execute_seconds_total);
    execute.set("per_block", obs::summarize(block_samples).to_json());
    timing.set("execute", std::move(execute));
    timing.set("latency", obs::summarize(latency_samples).to_json());
    timing.set("queue_wait", obs::summarize(queue_samples).to_json());
    serve.set("timing", std::move(timing));

    obs::JsonValue resilience = obs::JsonValue::object();
    resilience.set("max_queue", static_cast<std::int64_t>(options.max_queue));
    resilience.set("shed_policy",
                   options.shed_policy == ShedPolicy::Reject ? "reject"
                                                             : "degrade");
    resilience.set("default_deadline_ms", options.default_deadline_ms);
    resilience.set("shed_overloaded", shed_overloaded);
    resilience.set("shed_shutdown", shed_shutdown);
    resilience.set("degraded", degraded_requests);
    resilience.set("deadline_exceeded",
                   errors_by_code[static_cast<std::size_t>(
                       ErrorCode::DeadlineExceeded)]);
    resilience.set("deadline_partials", deadline_partials);
    resilience.set(
        "fault_aborts",
        errors_by_code[static_cast<std::size_t>(ErrorCode::FaultAborted)]);
    resilience.set("cancelled_blocks", cancelled_blocks);
    resilience.set("queue_depth_peak", queue_depth_peak);
    resilience.set("drain_rate_rps", drain_rate_rps);
    resilience.set("retry_after_ms_hint", retry_after_ms());
    serve.set("resilience", std::move(resilience));

    serve.set("busy_seconds", busy_seconds);
    serve.set("requests_per_second",
              busy_seconds > 0.0
                  ? static_cast<double>(requests_total) / busy_seconds
                  : 0.0);

    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", obs::kMetricsSchema);
    doc.set("serve", std::move(serve));
    return doc;
  }
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Service::~Service() = default;

std::string Service::handle_line(const std::string& line) {
  return handle_window({line}).front();
}

std::vector<std::string> Service::handle_window(
    const std::vector<std::string>& lines) {
  std::vector<TimedLine> timed;
  timed.reserve(lines.size());
  const auto now = Clock::now();
  // Synchronous callers get the same admission contract as run(): lines
  // beyond max_queue are shed (per shed_policy), and after a shutdown
  // request only control lines still answer normally.
  const std::size_t limit = impl_->options.max_queue;
  std::size_t admitted = 0;
  for (const std::string& line : lines) {
    Admission a = Admission::Normal;
    if (impl_->shutdown) {
      a = Admission::ShedShutdown;
    } else if (limit > 0 && admitted >= limit) {
      a = Admission::ShedOverload;
    } else {
      ++admitted;
    }
    timed.push_back({line, now, a});
  }
  impl_->note_queue_depth(admitted);
  return impl_->process(std::move(timed));
}

bool Service::shutdown_requested() const noexcept { return impl_->shutdown; }

obs::JsonValue Service::metrics_json() const { return impl_->metrics(); }

bool Service::tracing_enabled() const noexcept {
  return impl_->tracer != nullptr;
}

obs::JsonValue Service::trace_json() const {
  if (impl_->tracer == nullptr) {
    throw std::logic_error(
        "serve: tracing is disabled (enable ServiceOptions::trace)");
  }
  return impl_->tracer->to_json();
}

namespace {

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

void Service::run(std::istream& in, std::ostream& out) {
  std::int64_t served = 0;
  // Admission control lives at this boundary: lines past `max_queue` are
  // stamped ShedOverload and answered in the same flush as the window they
  // overflowed (they never wait in the queue -- that is the point), so a
  // reply may precede the reply of an earlier admitted line.  Clients
  // correlate by id (docs/serve.md "Resilience").
  std::deque<TimedLine> pending;
  std::vector<TimedLine> shed;
  const std::size_t limit = impl_->options.max_queue;
  const auto admit = [&](std::string text) {
    if (blank(text)) return;
    TimedLine tl{std::move(text), Clock::now()};
    if (limit > 0 && pending.size() >= limit) {
      tl.admission = Admission::ShedOverload;
      shed.push_back(std::move(tl));
    } else {
      pending.push_back(std::move(tl));
    }
  };
  std::string line;
  while (!impl_->shutdown &&
         (impl_->options.max_requests == 0 ||
          served < impl_->options.max_requests)) {
    if (pending.empty() && shed.empty()) {
      if (!std::getline(in, line)) break;
      admit(std::move(line));
    }
    // Drain whatever is already buffered (never blocking on more input):
    // a bursty producer forms a batch, an interactive one stays per-line.
    while (in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      admit(std::move(line));
    }
    impl_->note_queue_depth(pending.size());
    std::vector<TimedLine> window;
    window.reserve(std::min<std::size_t>(
        pending.size() + shed.size(),
        static_cast<std::size_t>(impl_->options.window) + shed.size()));
    while (static_cast<int>(window.size()) < impl_->options.window &&
           !pending.empty()) {
      window.push_back(std::move(pending.front()));
      pending.pop_front();
    }
    for (TimedLine& tl : shed) window.push_back(std::move(tl));
    shed.clear();
    if (window.empty()) continue;
    served += static_cast<std::int64_t>(window.size());
    for (const std::string& response : impl_->process(std::move(window))) {
      out << response << "\n";
    }
    out.flush();
  }
  // Bounded shutdown drain: everything still queued or readable without
  // blocking gets a structured `shutting_down` reply -- no request ends
  // the session unanswered (the chaos harness asserts exactly this).
  if (impl_->shutdown) {
    while (in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      if (!blank(line)) pending.push_back({std::move(line), Clock::now()});
    }
    for (TimedLine& tl : shed) pending.push_back(std::move(tl));
    shed.clear();
    if (!pending.empty()) {
      std::vector<TimedLine> leftovers;
      leftovers.reserve(pending.size());
      for (TimedLine& tl : pending) {
        tl.admission = Admission::ShedShutdown;
        leftovers.push_back(std::move(tl));
      }
      pending.clear();
      for (const std::string& response :
           impl_->process(std::move(leftovers))) {
        out << response << "\n";
      }
      out.flush();
    }
  }
}

#ifdef __unix__

void Service::run_socket(const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error("serve: cannot create unix socket");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listener);
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::copy(path.begin(), path.end(), addr.sun_path);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    ::close(listener);
    throw std::runtime_error("serve: cannot bind/listen on " + path);
  }

  std::int64_t served = 0;
  while (!impl_->shutdown && (impl_->options.max_requests == 0 ||
                              served < impl_->options.max_requests)) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::string buffer;
    char chunk[4096];
    std::deque<TimedLine> pending;
    std::vector<TimedLine> shed;
    const std::size_t limit = impl_->options.max_queue;
    // After an oversized partial line is answered, the remainder of that
    // line (bytes up to the next newline) is discarded, not re-parsed.
    bool skipping_oversize = false;
    const auto admit = [&](std::string text) {
      if (blank(text)) return;
      TimedLine tl{std::move(text), Clock::now()};
      if (limit > 0 && pending.size() >= limit) {
        tl.admission = Admission::ShedOverload;
        shed.push_back(std::move(tl));
      } else {
        pending.push_back(std::move(tl));
      }
    };
    const auto write_all = [&](const std::string& reply) {
      std::size_t written = 0;
      while (written < reply.size()) {
        const ssize_t w =
            ::write(fd, reply.data() + written, reply.size() - written);
        if (w <= 0) return false;
        written += static_cast<std::size_t>(w);
      }
      return true;
    };
    const auto respond = [&](std::vector<TimedLine> window) {
      std::string reply;
      for (const std::string& response : impl_->process(std::move(window))) {
        reply += response;
        reply += '\n';
      }
      return write_all(reply);
    };
    bool alive = true;
    while (alive && !impl_->shutdown) {
      // Block on read() only when nothing actionable is buffered: a client
      // that bursts more than one window of lines and then waits for its
      // replies must not deadlock on the server also waiting.
      if (pending.empty() && shed.empty()) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos = 0;
        for (std::size_t nl = buffer.find('\n'); nl != std::string::npos;
             nl = buffer.find('\n', pos)) {
          std::string one = buffer.substr(pos, nl - pos);
          pos = nl + 1;
          if (skipping_oversize) {
            skipping_oversize = false;  // tail of the answered line; drop it
          } else {
            admit(std::move(one));
          }
        }
        buffer.erase(0, pos);
        if (skipping_oversize) {
          buffer.clear();  // still inside the oversized line
        } else if (buffer.size() > impl_->options.max_line_bytes &&
                   impl_->options.max_line_bytes > 0) {
          // Feed the oversized partial through the normal pipeline: the
          // parse-side length guard turns it into one accounted
          // `bad_request` reply, and we skip until its newline arrives.
          admit(std::move(buffer));
          buffer.clear();
          skipping_oversize = true;
        }
        if (pending.empty() && shed.empty()) continue;
      }
      impl_->note_queue_depth(pending.size());
      std::vector<TimedLine> window;
      while (static_cast<int>(window.size()) < impl_->options.window &&
             !pending.empty()) {
        window.push_back(std::move(pending.front()));
        pending.pop_front();
      }
      for (TimedLine& tl : shed) window.push_back(std::move(tl));
      shed.clear();
      served += static_cast<std::int64_t>(window.size());
      alive = respond(std::move(window));
    }
    // Bounded shutdown drain: answer everything this client already sent
    // (queued lines plus any complete buffered ones) with structured
    // `shutting_down` errors before closing.
    if (impl_->shutdown && alive) {
      std::size_t pos = 0;
      for (std::size_t nl = buffer.find('\n'); nl != std::string::npos;
           nl = buffer.find('\n', pos)) {
        std::string one = buffer.substr(pos, nl - pos);
        pos = nl + 1;
        if (skipping_oversize) {
          skipping_oversize = false;
        } else if (!blank(one)) {
          pending.push_back({std::move(one), Clock::now()});
        }
      }
      for (TimedLine& tl : shed) pending.push_back(std::move(tl));
      shed.clear();
      if (!pending.empty()) {
        std::vector<TimedLine> leftovers;
        leftovers.reserve(pending.size());
        for (TimedLine& tl : pending) {
          tl.admission = Admission::ShedShutdown;
          leftovers.push_back(std::move(tl));
        }
        pending.clear();
        (void)respond(std::move(leftovers));
      }
    }
    ::close(fd);
  }
  ::close(listener);
  ::unlink(path.c_str());
}

#else

void Service::run_socket(const std::string&) {
  throw std::runtime_error("serve: --socket requires a unix platform");
}

#endif

}  // namespace hetcomm::serve
