#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/advisor.hpp"
#include "core/compiled_plan.hpp"
#include "core/comm_pattern.hpp"
#include "core/executor.hpp"
#include "core/pattern_io.hpp"
#include "core/plan.hpp"
#include "core/strategy.hpp"
#include "fault/fault_json.hpp"
#include "fault/plan.hpp"
#include "hetsim/engine.hpp"
#include "hetsim/faults.hpp"
#include "hetsim/noise.hpp"
#include "machine/machine_json.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace hetcomm::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::string_view text,
                          std::uint64_t h = kFnvOffset) noexcept {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// Render a document as one NDJSON line (dump() appends a newline; the
/// protocol frames lines itself).
std::string to_line(const obs::JsonValue& doc) {
  std::string text = doc.dump_string(0);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

/// Strict hex fingerprint parse ("0x" prefix optional); rejects partial
/// consumption, so a typoed ref errors instead of aliasing another hash.
std::uint64_t parse_hash(const std::string& text) {
  std::size_t pos = 0;
  std::uint64_t h = 0;
  try {
    h = std::stoull(text, &pos, 16);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad pattern ref '" + text + "'");
  }
  if (pos != text.size()) {
    throw std::invalid_argument("bad pattern ref '" + text + "'");
  }
  return h;
}

/// One resolved --machine argument, reused across requests.  The
/// fingerprint hashes the exact serialized model (hetcomm.machine.v1 dumps
/// doubles with max_digits10), so two machine files describing the same
/// calibration share cache entries and two differing in any parameter
/// never collide on purpose.
struct MachineEntry {
  machine::MachineModel model;
  std::uint64_t fingerprint = 0;
};

/// Cached value of the compiled-plan cache: everything a repeated query
/// needs that does not depend on reps/seed.
struct CachedPlan {
  CachedPlan(const core::CommPattern& pattern, const Topology& topo,
             const ParamSet& params, const core::StrategyConfig& config)
      : plan(core::build_plan(pattern, topo, params, config)),
        compiled(plan, topo, params),
        summary(plan.summarize(topo)) {}

  core::CommPlan plan;
  core::CompiledPlan compiled;
  core::PlanSummary summary;
  double compile_seconds = 0.0;  ///< wall time build_plan + compile took
};

/// A parsed request plus everything computed for its response.
struct Request {
  // -- inputs ------------------------------------------------------------
  obs::JsonValue id;  ///< echoed verbatim (null when absent)
  bool control = false;
  std::string cmd;  ///< "stats" or "shutdown" when control
  const MachineEntry* machine = nullptr;
  int nodes = 8;
  std::shared_ptr<const core::CommPattern> pattern;
  std::uint64_t pattern_fp = 0;
  bool pattern_was_ref = false;
  bool has_strategy = false;
  core::StrategyConfig strategy;
  std::shared_ptr<const FaultModel> faults;
  std::uint64_t faults_fp = 0;
  int reps = 0;  ///< 0 = predict-only
  std::uint64_t seed = 0x5eedULL;
  bool staged_only = false;
  /// "rank": false skips the Advisor sweep and omits recommended/ranking
  /// from the response -- the hot-path shape for clients that already know
  /// their strategy and only want measurements.  Needs an explicit
  /// strategy (the default strategy *is* the ranking winner).
  bool want_ranking = true;

  // -- outcome -----------------------------------------------------------
  std::string error;  ///< nonempty = error response
  std::vector<core::Recommendation> ranking;
  std::shared_ptr<const CachedPlan> plan;
  std::uint64_t plan_key = 0;
  std::uint64_t engine_key = 0;
  bool cache_hit = false;       ///< measured request served without a compile
  bool compiled_here = false;   ///< this request ran the builder
  // per-request measured reduction
  double max_avg = 0.0;
  obs::Summary makespan;
  int batch = 1;

  // -- timing ------------------------------------------------------------
  Clock::time_point enqueued;
  double queue_wait_seconds = 0.0;
  double execute_seconds = 0.0;  ///< its group's total block wall time

  // -- tracing (0 = this request is not sampled) -------------------------
  std::uint64_t trace_id = 0;
  std::uint32_t trace_root = 0;  ///< preallocated root `request` span id
};

struct TimedLine {
  std::string text;
  Clock::time_point enqueued;
};

/// One (plan, machine, faults) coalescing group: lanes from every member
/// request concatenated in input order.
struct Group {
  std::shared_ptr<const CachedPlan> plan;
  std::shared_ptr<const FaultModel> faults;
  const MachineEntry* machine = nullptr;
  std::uint64_t engine_key = 0;
  int num_ranks = 0;
  std::vector<std::size_t> requests;   ///< window indices, input order
  std::vector<std::int64_t> lane_base; ///< first lane of each member
  std::vector<std::uint64_t> lane_seeds;
  std::vector<double> clocks;          ///< lanes x num_ranks
  double execute_seconds = 0.0;        ///< summed block wall time
  // Tracer-epoch wall interval covering the group's blocks (tracing only).
  double trace_t0 = 0.0;
  double trace_t1 = 0.0;
};

/// One Engine::execute_batch call: lanes [start, start+width) of a group.
/// `request` is the owning window index for fault-attributable blocks, or
/// SIZE_MAX when the block spans requests (only possible unfaulted, where
/// FaultAbort cannot occur).
struct Block {
  std::size_t group = 0;
  std::int64_t start = 0;
  int width = 0;
  std::size_t request = SIZE_MAX;
  double seconds = 0.0;
  std::string error;
  // Tracing only: tracer-epoch wall interval and the block span's id.
  double trace_t0 = 0.0;
  double trace_t1 = 0.0;
  std::uint32_t trace_span = 0;
};

}  // namespace

struct Service::Impl {
  explicit Impl(ServiceOptions opts)
      : options(std::move(opts)),
        pool(options.jobs),
        plans(options.cache_shards, options.cache_capacity),
        patterns(std::max(1, options.cache_shards / 2),
                 options.pattern_capacity),
        engines(static_cast<std::size_t>(pool.num_threads())) {
    if (options.window < 1) {
      throw std::invalid_argument("serve: window must be >= 1");
    }
    if (options.batch < 0) {
      throw std::invalid_argument("serve: batch must be >= 0 (0 = auto)");
    }
    if (options.trace) {
      obs::Tracer::Options topts;
      topts.rings = pool.num_threads();
      topts.ring_capacity = std::max<std::size_t>(1, options.trace_ring_capacity);
      topts.sample_period = std::max<std::uint64_t>(1, options.trace_sample);
      tracer = std::make_unique<obs::Tracer>(topts);
      for (int w = 0; w < pool.num_threads(); ++w) {
        tracer->name_track(static_cast<std::uint16_t>(w),
                           "serve worker " + std::to_string(w));
      }
      tn.request = tracer->intern("request");
      tn.parse = tracer->intern("parse");
      tn.queue_wait = tracer->intern("queue_wait");
      tn.execute = tracer->intern("execute");
      tn.error = tracer->intern("request.error");
      tn.window = tracer->intern("window");
      tn.render = tracer->intern("window.render");
      tn.block = tracer->intern("serve.block");
      tn.engine_msg = tracer->intern("engine.msg");
      tn.engine_copy = tracer->intern("engine.copy");
      tn.k_pattern = tracer->intern("pattern");
      tn.k_machine = tracer->intern("machine");
      tn.k_strategy = tracer->intern("strategy");
      tn.k_cache = tracer->intern("cache");
      tn.k_hit = tracer->intern("hit");
      tn.k_miss = tracer->intern("miss");
      tn.k_reps = tracer->intern("reps");
      tn.k_nodes = tracer->intern("nodes");
      tn.k_error = tracer->intern("error");
      tn.k_requests = tracer->intern("requests");
      tn.k_groups = tracer->intern("groups");
      tn.k_blocks = tracer->intern("blocks");
      tn.k_lanes = tracer->intern("lanes");
      tn.k_group = tracer->intern("group");
      tn.k_first_lane = tracer->intern("first_lane");
      tn.k_src = tracer->intern("src");
      tn.k_dst = tracer->intern("dst");
      tn.k_bytes = tracer->intern("bytes");
      tn.k_path = tracer->intern("path");
      tn.k_rank = tracer->intern("rank");
      tn.k_gpu = tracer->intern("gpu");
      tn.k_dir = tracer->intern("dir");
    }
  }

  ServiceOptions options;
  runtime::ThreadPool pool;
  runtime::ShardedLruCache<CachedPlan> plans;
  runtime::ShardedLruCache<core::CommPattern> patterns;

  // Serial-phase caches (touched only by the window-driving thread).
  std::unordered_map<std::string, MachineEntry> machines;
  std::unordered_map<std::uint64_t, Topology> topos;  ///< by engine_key
  std::unordered_map<std::string, std::shared_ptr<const FaultModel>> faults;

  /// engines[worker][engine_key]: one reusable Engine per worker per
  /// (machine, nodes); workers only ever touch their own map.
  std::vector<std::unordered_map<std::uint64_t, std::unique_ptr<Engine>>>
      engines;

  bool shutdown = false;

  // -- tracing -----------------------------------------------------------
  /// Null = tracing off; every site below is a single pointer test.
  std::unique_ptr<obs::Tracer> tracer;
  /// Name/attr-key slots interned once at construction, so the hot path
  /// never touches the intern table.
  struct TraceNames {
    std::uint16_t request = 0, parse = 0, queue_wait = 0, execute = 0,
                  error = 0, window = 0, render = 0, block = 0,
                  engine_msg = 0, engine_copy = 0;
    std::uint16_t k_pattern = 0, k_machine = 0, k_strategy = 0, k_cache = 0,
                  k_hit = 0, k_miss = 0, k_reps = 0, k_nodes = 0, k_error = 0,
                  k_requests = 0, k_groups = 0, k_blocks = 0, k_lanes = 0,
                  k_group = 0, k_first_lane = 0, k_src = 0, k_dst = 0,
                  k_bytes = 0, k_path = 0, k_rank = 0, k_gpu = 0, k_dir = 0;
  } tn;

  // -- accounting (window-driving thread only) ---------------------------
  std::int64_t requests_total = 0;
  std::int64_t control_requests = 0;
  std::int64_t errors = 0;
  std::int64_t predict_only = 0;
  std::int64_t measured_requests = 0;
  std::int64_t measured_cache_hits = 0;
  std::int64_t compiles = 0;
  std::int64_t windows = 0;
  std::int64_t window_max = 0;
  std::int64_t groups_total = 0;
  std::int64_t blocks_total = 0;
  std::int64_t lanes_total = 0;
  std::int64_t max_group_lanes = 0;
  double compile_seconds_total = 0.0;
  double execute_seconds_total = 0.0;
  double busy_seconds = 0.0;
  static constexpr std::size_t kMaxSamples = 1u << 20;
  std::vector<double> latency_samples;
  std::vector<double> queue_samples;
  std::vector<double> compile_samples;
  std::vector<double> block_samples;

  void add_sample(std::vector<double>& v, double s) {
    if (v.size() < kMaxSamples) v.push_back(s);
  }

  const MachineEntry& resolve_machine(const std::string& arg) {
    auto it = machines.find(arg);
    if (it != machines.end()) return it->second;
    MachineEntry entry;
    entry.model = machine::resolve_machine(arg);
    entry.fingerprint =
        fnv1a_bytes(machine::to_json(entry.model).dump_string(0));
    return machines.emplace(arg, std::move(entry)).first->second;
  }

  const Topology& topology_for(const Request& req) {
    auto it = topos.find(req.engine_key);
    if (it != topos.end()) return it->second;
    return topos
        .emplace(req.engine_key, req.machine->model.topology(req.nodes))
        .first->second;
  }

  /// Effective execute_batch lane width for a machine size.  Mirrors
  /// core::measure's auto policy (minus its reps/jobs occupancy cap, which
  /// does not apply when lanes from many requests coalesce).
  [[nodiscard]] int lane_width(int num_ranks) const {
    int width = options.batch;
    if (width == 0) {
      width = 16;
      while (width > 1 && num_ranks * width > 8192) width /= 2;
    }
    return std::max(1, width);
  }

  // ---------------------------------------------------------------------
  // Phase A: parse one line into a Request (serial).
  // ---------------------------------------------------------------------

  void parse_request(const std::string& line, Request& req) {
    const obs::JsonValue doc = obs::JsonValue::parse(line);
    if (!doc.is_object()) {
      throw std::invalid_argument("request must be a JSON object");
    }
    if (const obs::JsonValue* id = doc.find("id")) req.id = *id;

    if (const obs::JsonValue* cmd = doc.find("cmd")) {
      req.control = true;
      req.cmd = cmd->as_string();
      if (req.cmd != "stats" && req.cmd != "trace" && req.cmd != "shutdown") {
        throw std::invalid_argument("unknown cmd '" + req.cmd +
                                    "' (stats|trace|shutdown)");
      }
      for (const auto& member : doc.members()) {
        if (member.first != "cmd" && member.first != "id") {
          throw std::invalid_argument("cmd lines accept only 'cmd' and 'id'");
        }
      }
      return;
    }

    for (const auto& member : doc.members()) {
      const std::string& key = member.first;
      if (key != "id" && key != "machine" && key != "nodes" &&
          key != "pattern" && key != "strategy" && key != "faults" &&
          key != "reps" && key != "seed" && key != "staged_only" &&
          key != "rank") {
        throw std::invalid_argument("unknown request key '" + key + "'");
      }
    }

    std::string machine_arg = options.default_machine;
    if (const obs::JsonValue* m = doc.find("machine")) {
      machine_arg = m->as_string();
    }
    req.machine = &resolve_machine(machine_arg);

    if (const obs::JsonValue* n = doc.find("nodes")) {
      req.nodes = static_cast<int>(n->as_int());
      if (req.nodes < 1 || req.nodes > 65536) {
        throw std::invalid_argument("nodes must be in [1, 65536]");
      }
    }
    req.engine_key =
        mix_seed(req.machine->fingerprint,
                 static_cast<std::uint64_t>(req.nodes));
    const Topology& topo = topology_for(req);

    if (const obs::JsonValue* r = doc.find("reps")) {
      req.reps = static_cast<int>(r->as_int());
      if (req.reps < 0 || req.reps > 100000) {
        throw std::invalid_argument("reps must be in [0, 100000]");
      }
    }
    if (const obs::JsonValue* s = doc.find("seed")) {
      req.seed = static_cast<std::uint64_t>(s->as_int());
    }
    if (const obs::JsonValue* so = doc.find("staged_only")) {
      req.staged_only = so->as_bool();
    }
    if (const obs::JsonValue* rk = doc.find("rank")) {
      req.want_ranking = rk->as_bool();
    }

    parse_pattern(doc.find("pattern"), topo, req);

    if (const obs::JsonValue* strat = doc.find("strategy")) {
      req.has_strategy = true;
      req.strategy = core::parse_strategy(strat->as_string());
    }

    if (const obs::JsonValue* f = doc.find("faults")) {
      const std::string path = f->as_string();
      // Fault models compile against a concrete machine; key the cache by
      // (path, machine, nodes).  The file is read once per key -- edits to
      // a fault file are not observed by a running server.
      const std::string key = path + "\x1f" + hash_hex(req.engine_key);
      auto it = faults.find(key);
      if (it == faults.end()) {
        const fault::FaultPlan plan = fault::load_fault_file(path);
        auto model = std::make_shared<FaultModel>(
            plan.compile(topo, req.machine->model.params));
        it = faults.emplace(key, std::move(model)).first;
      }
      req.faults = it->second;
      req.faults_fp = fnv1a_bytes(key);
    }

    // Model ranking: same Advisor call the `advise` subcommand makes, so a
    // serve response ranks bit-identically to one-shot `hetcomm advise`.
    // A request with an explicit strategy and "rank": false skips the sweep
    // -- the advisor's O(strategies) predictions are pure response garnish
    // once the client has picked its strategy.
    if (req.want_ranking || !req.has_strategy) {
      const core::Advisor advisor(topo, req.machine->model.params);
      core::AdvisorOptions aopts;
      aopts.staged_only = req.staged_only;
      req.ranking = advisor.rank(*req.pattern, aopts);
      if (!req.has_strategy) req.strategy = req.ranking.front().config;
    }

    req.plan_key = mix_seed(
        mix_seed(req.pattern_fp, req.engine_key),
        fnv1a_bytes(req.strategy.name()));
  }

  void parse_pattern(const obs::JsonValue* spec, const Topology& topo,
                     Request& req) {
    if (spec == nullptr) {
      throw std::invalid_argument(
          "request needs a pattern (inline object, file path, {\"random\": "
          "...} or {\"ref\": hash})");
    }
    if (spec->is_string()) {
      register_pattern(core::read_pattern_file(spec->as_string()), topo, req);
      return;
    }
    if (!spec->is_object()) {
      throw std::invalid_argument("pattern must be a string or an object");
    }
    if (const obs::JsonValue* ref = spec->find("ref")) {
      if (spec->size() != 1) {
        throw std::invalid_argument("a pattern ref carries no other keys");
      }
      std::uint64_t h = 0;
      if (ref->is_string()) {
        h = parse_hash(ref->as_string());
      } else {
        h = static_cast<std::uint64_t>(ref->as_int());
      }
      std::shared_ptr<const core::CommPattern> found = patterns.find(h);
      if (found == nullptr) {
        throw std::invalid_argument("unknown pattern ref " + hash_hex(h) +
                                    " (the server has not seen it)");
      }
      if (found->num_gpus() != topo.num_gpus()) {
        throw std::invalid_argument("pattern ref GPU count (" +
                                    std::to_string(found->num_gpus()) +
                                    ") does not match the machine (" +
                                    std::to_string(topo.num_gpus()) + ")");
      }
      req.pattern = std::move(found);
      req.pattern_fp = h;
      req.pattern_was_ref = true;
      return;
    }
    if (const obs::JsonValue* rnd = spec->find("random")) {
      if (spec->size() != 1 || !rnd->is_object()) {
        throw std::invalid_argument(
            "random pattern spec: {\"random\": {\"msgs_per_gpu\": M, "
            "\"bytes\": B, \"seed\": S}}");
      }
      int msgs = 16;
      std::int64_t bytes = 4096;
      std::uint64_t seed = 1;
      for (const auto& [key, value] : rnd->members()) {
        if (key == "msgs_per_gpu") {
          msgs = static_cast<int>(value.as_int());
        } else if (key == "bytes") {
          bytes = value.as_int();
        } else if (key == "seed") {
          seed = static_cast<std::uint64_t>(value.as_int());
        } else {
          throw std::invalid_argument("unknown random-pattern key '" + key +
                                      "'");
        }
      }
      if (msgs < 1 || bytes < 1) {
        throw std::invalid_argument(
            "random pattern needs msgs_per_gpu >= 1 and bytes >= 1");
      }
      register_pattern(core::random_pattern(topo, msgs, bytes, seed), topo,
                       req);
      return;
    }
    // Inline pattern: {"gpus": N, "msgs": [[src, dst, bytes], ...],
    // "dedup": [[src_gpu, dst_node, bytes], ...]}.
    const obs::JsonValue* gpus = spec->find("gpus");
    const obs::JsonValue* msgs = spec->find("msgs");
    if (gpus == nullptr || msgs == nullptr) {
      throw std::invalid_argument(
          "inline pattern needs 'gpus' and 'msgs' ([[src, dst, bytes], ...])");
    }
    for (const auto& member : spec->members()) {
      if (member.first != "gpus" && member.first != "msgs" &&
          member.first != "dedup") {
        throw std::invalid_argument("unknown pattern key '" + member.first +
                                    "'");
      }
    }
    core::CommPattern pattern(static_cast<int>(gpus->as_int()));
    for (const obs::JsonValue& triple : msgs->items()) {
      if (!triple.is_array() || triple.size() != 3) {
        throw std::invalid_argument("msgs entries are [src, dst, bytes]");
      }
      pattern.add(static_cast<int>(triple.at(0).as_int()),
                  static_cast<int>(triple.at(1).as_int()),
                  triple.at(2).as_int());
    }
    if (const obs::JsonValue* dedup = spec->find("dedup")) {
      for (const obs::JsonValue& triple : dedup->items()) {
        if (!triple.is_array() || triple.size() != 3) {
          throw std::invalid_argument(
              "dedup entries are [src_gpu, dst_node, bytes]");
        }
        pattern.set_node_dedup(static_cast<int>(triple.at(0).as_int()),
                               static_cast<int>(triple.at(1).as_int()),
                               triple.at(2).as_int());
      }
    }
    register_pattern(std::move(pattern), topo, req);
  }

  void register_pattern(core::CommPattern pattern, const Topology& topo,
                        Request& req) {
    if (pattern.num_gpus() != topo.num_gpus()) {
      throw std::invalid_argument("pattern GPU count (" +
                                  std::to_string(pattern.num_gpus()) +
                                  ") does not match the machine (" +
                                  std::to_string(topo.num_gpus()) + ")");
    }
    req.pattern_fp = core::pattern_hash(pattern);
    // Park the pattern in the registry so later requests can say
    // {"ref": "<hash>"} and skip re-sending (and re-parsing) the body.
    req.pattern = patterns.get_or_create(req.pattern_fp, [&] {
      return std::make_shared<const core::CommPattern>(std::move(pattern));
    });
  }

  // ---------------------------------------------------------------------
  // Phases B+C: compile unique plans, then execute coalesced lane groups.
  // ---------------------------------------------------------------------

  void execute_window(std::vector<Request>& reqs, std::uint64_t wtrace,
                      std::uint32_t wspan) {
    // Unique plan keys of this window's measured requests: one cache
    // lookup per distinct key, so N identical queries arriving together
    // cost one compile even on a cold cache.
    std::vector<std::size_t> unique;  // representative request indices
    {
      std::unordered_map<std::uint64_t, std::size_t> first;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        Request& req = reqs[i];
        if (req.control || !req.error.empty() || req.reps == 0) continue;
        if (first.emplace(req.plan_key, i).second) unique.push_back(i);
      }
    }

    // Queue/run spans for both fan-outs land in the *window* trace; the
    // compile (cache.lookup / cache.build) spans land in the requesting
    // request's trace, on the worker that ran the lookup.
    const runtime::ThreadPool::TraceHook whook(
        wtrace != 0 ? tracer.get() : nullptr, wtrace, wspan);

    pool.parallel_for(
        static_cast<std::int64_t>(unique.size()),
        [&](std::int64_t u, int worker) {
          Request& req = reqs[unique[static_cast<std::size_t>(u)]];
          const obs::TraceContext ctx{
              req.trace_id != 0 ? tracer.get() : nullptr, worker,
              req.trace_id, req.trace_root,
              static_cast<std::uint16_t>(worker)};
          try {
            req.plan = plans.get_or_create(
                req.plan_key,
                [&] {
                  const auto t0 = Clock::now();
                  auto built = std::make_shared<CachedPlan>(
                      *req.pattern, topos.at(req.engine_key),
                      req.machine->model.params, req.strategy);
                  built->compile_seconds = seconds_between(t0, Clock::now());
                  req.compiled_here = true;
                  return built;
                },
                &ctx);
            req.cache_hit = !req.compiled_here;
          } catch (const std::exception& e) {
            req.error = e.what();
          }
        },
        whook);
    // Duplicates adopt the representative's plan: within-window reuse is a
    // cache hit from the requester's point of view.
    {
      std::unordered_map<std::uint64_t, std::size_t> rep;
      for (const std::size_t i : unique) rep.emplace(reqs[i].plan_key, i);
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        Request& req = reqs[i];
        if (req.control || !req.error.empty() || req.reps == 0) continue;
        const std::size_t r = rep.at(req.plan_key);
        if (r == i) continue;
        if (!reqs[r].error.empty()) {
          req.error = reqs[r].error;
          continue;
        }
        req.plan = reqs[r].plan;
        req.cache_hit = true;
      }
    }

    // Group measured requests by (plan, faults); lanes concatenate in
    // input order, each request contributing reps lanes seeded
    // mix_seed(req.seed, rep) -- the exact per-repetition seeds
    // core::measure derives, which is what keeps coalesced replies
    // bit-identical to one-shot measurement.
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& req = reqs[i];
      if (req.control || !req.error.empty() || req.reps == 0) continue;
      const std::uint64_t gkey = mix_seed(req.plan_key, req.faults_fp);
      auto [it, inserted] = group_of.emplace(gkey, groups.size());
      if (inserted) {
        Group g;
        g.plan = req.plan;
        g.faults = req.faults;
        g.machine = req.machine;
        g.engine_key = req.engine_key;
        g.num_ranks = topos.at(req.engine_key).num_ranks();
        groups.push_back(std::move(g));
      }
      Group& g = groups[it->second];
      g.lane_base.push_back(static_cast<std::int64_t>(g.lane_seeds.size()));
      g.requests.push_back(i);
      for (int rep = 0; rep < req.reps; ++rep) {
        g.lane_seeds.push_back(
            mix_seed(req.seed, static_cast<std::uint64_t>(rep)));
      }
    }

    // Carve each group into execute_batch blocks.  Unfaulted groups
    // coalesce lanes across requests (an unfaulted lane cannot abort, so
    // no error ever needs attributing across a block); faulted groups keep
    // blocks within one request so a FaultAbort maps to exactly one reply.
    std::vector<Block> blocks;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      Group& g = groups[gi];
      g.clocks.assign(g.lane_seeds.size() *
                          static_cast<std::size_t>(g.num_ranks),
                      0.0);
      const int width = lane_width(g.num_ranks);
      if (g.faults == nullptr) {
        for (const runtime::LaneBlock& b : runtime::lane_blocks(
                 static_cast<std::int64_t>(g.lane_seeds.size()), width)) {
          blocks.push_back({gi, b.start, b.width, SIZE_MAX, 0.0, {}});
        }
      } else {
        for (std::size_t m = 0; m < g.requests.size(); ++m) {
          const Request& req = reqs[g.requests[m]];
          for (const runtime::LaneBlock& b :
               runtime::lane_blocks(req.reps, std::min(width, req.reps))) {
            blocks.push_back({gi, g.lane_base[m] + b.start, b.width,
                              g.requests[m], 0.0, {}});
          }
        }
      }
    }

    // Engine-event merge: lane 0 of the window's first block records the
    // engine's message/copy events, converted below onto engine-rank
    // tracks of the window trace.  One lane per window bounds the cost;
    // set_tracing never perturbs clocks, so replies stay bit-identical.
    Trace engine_trace;
    const bool merge_engine = wtrace != 0 && !blocks.empty();

    pool.parallel_for(
        static_cast<std::int64_t>(blocks.size()),
        [&](std::int64_t bi, int worker) {
          Block& block = blocks[static_cast<std::size_t>(bi)];
          Group& g = groups[block.group];
          const auto t0 = Clock::now();
          const double bt0 = tracer != nullptr ? tracer->now() : 0.0;
          try {
            std::unique_ptr<Engine>& slot =
                engines[static_cast<std::size_t>(worker)][g.engine_key];
            if (!slot) {
              slot = std::make_unique<Engine>(
                  topos.at(g.engine_key), g.machine->model.params,
                  NoiseModel(0, options.noise_sigma));
            }
            slot->set_faults(g.faults.get());
            const std::span<const std::uint64_t> seeds(
                g.lane_seeds.data() + block.start,
                static_cast<std::size_t>(block.width));
            const std::span<double> clocks(
                g.clocks.data() + static_cast<std::size_t>(block.start) *
                                      static_cast<std::size_t>(g.num_ranks),
                static_cast<std::size_t>(block.width) *
                    static_cast<std::size_t>(g.num_ranks));
            const bool etrace = merge_engine && bi == 0;
            if (etrace) slot->set_tracing(true);
            slot->execute_batch(g.plan->compiled, seeds, clocks,
                                etrace ? 0 : -1);
            if (etrace) {
              engine_trace = slot->trace();
              slot->set_tracing(false);
            }
          } catch (const std::exception& e) {
            block.error = e.what();
            if (block.error.empty()) block.error = "execution failed";
          }
          block.seconds = seconds_between(t0, Clock::now());
          if (tracer != nullptr) {
            block.trace_t0 = bt0;
            block.trace_t1 = tracer->now();
          }
          if (wtrace != 0) {
            obs::SpanRecord s;
            s.trace_id = wtrace;
            s.span_id = tracer->new_span_id();
            s.parent = wspan;
            s.name = tn.block;
            s.track = static_cast<std::uint16_t>(worker);
            s.t_start = block.trace_t0;
            s.t_end = block.trace_t1;
            s.add_attr(tn.k_group, static_cast<std::int64_t>(block.group));
            s.add_attr(tn.k_first_lane, block.start);
            s.add_attr(tn.k_lanes, block.width);
            block.trace_span = s.span_id;
            tracer->record(worker, s);
          }
        },
        whook);

    for (const Block& block : blocks) {
      Group& g = groups[block.group];
      g.execute_seconds += block.seconds;
      add_sample(block_samples, block.seconds);
      if (tracer != nullptr) {
        // Group wall interval = union of its blocks' intervals; it backs
        // each member request's `execute` span.
        if (g.trace_t1 == 0.0) {
          g.trace_t0 = block.trace_t0;
          g.trace_t1 = block.trace_t1;
        } else {
          g.trace_t0 = std::min(g.trace_t0, block.trace_t0);
          g.trace_t1 = std::max(g.trace_t1, block.trace_t1);
        }
      }
      if (!block.error.empty()) {
        if (block.request != SIZE_MAX) {
          reqs[block.request].error = block.error;
        } else {
          for (const std::size_t r : g.requests) {
            if (reqs[r].error.empty()) reqs[r].error = block.error;
          }
        }
      }
    }
    blocks_total += static_cast<std::int64_t>(blocks.size());

    // Convert the captured engine events onto engine-rank tracks, nested
    // inside the first block's span and scaled proportionally from
    // simulated time into that block's wall interval (the engine reports
    // simulated clocks; the timeline shows their *shares* of the block).
    if (merge_engine && blocks[0].trace_span != 0 &&
        (!engine_trace.messages.empty() || !engine_trace.copies.empty())) {
      const Block& b0 = blocks[0];
      double sim_total = 0.0;
      for (const MessageTrace& m : engine_trace.messages) {
        sim_total = std::max(sim_total, m.completion);
      }
      for (const CopyTrace& c : engine_trace.copies) {
        sim_total = std::max(sim_total, c.completion);
      }
      if (sim_total > 0.0 && b0.trace_t1 > b0.trace_t0) {
        const double scale = (b0.trace_t1 - b0.trace_t0) / sim_total;
        const auto rank_track = [&](int rank) -> std::uint16_t {
          const int t = static_cast<int>(obs::kEngineTrackBase) + rank;
          if (rank < 0 || t > 0xffff) return 0;  // off the display range
          tracer->name_track(static_cast<std::uint16_t>(t),
                             "engine rank " + std::to_string(rank));
          return static_cast<std::uint16_t>(t);
        };
        std::size_t budget = 256;  // bound the per-window conversion cost
        for (const MessageTrace& m : engine_trace.messages) {
          if (budget == 0) break;
          const std::uint16_t track = rank_track(m.src);
          if (track == 0) continue;
          --budget;
          obs::SpanRecord s;
          s.trace_id = wtrace;
          s.span_id = tracer->new_span_id();
          s.parent = b0.trace_span;
          s.name = tn.engine_msg;
          s.track = track;
          s.t_start = b0.trace_t0 + m.start * scale;
          s.t_end = b0.trace_t0 + m.completion * scale;
          s.add_attr(tn.k_src, m.src);
          s.add_attr(tn.k_dst, m.dst);
          s.add_attr(tn.k_bytes, m.bytes);
          s.add_attr(tn.k_path, static_cast<std::int64_t>(m.path));
          tracer->record(0, s);
        }
        for (const CopyTrace& c : engine_trace.copies) {
          if (budget == 0) break;
          const std::uint16_t track = rank_track(c.rank);
          if (track == 0) continue;
          --budget;
          obs::SpanRecord s;
          s.trace_id = wtrace;
          s.span_id = tracer->new_span_id();
          s.parent = b0.trace_span;
          s.name = tn.engine_copy;
          s.track = track;
          s.t_start = b0.trace_t0 + c.start * scale;
          s.t_end = b0.trace_t0 + c.completion * scale;
          s.add_attr(tn.k_rank, c.rank);
          s.add_attr(tn.k_gpu, c.gpu);
          s.add_attr(tn.k_bytes, c.bytes);
          s.add_attr(tn.k_dir, static_cast<std::int64_t>(c.dir));
          tracer->record(0, s);
        }
      }
    }

    // Serial per-request reduction in repetition order: the same fold
    // core::measure runs, so max_avg / makespan stats are bit-identical to
    // a one-shot measurement of the same (plan, reps, seed).
    for (Group& g : groups) {
      groups_total += 1;
      lanes_total += static_cast<std::int64_t>(g.lane_seeds.size());
      max_group_lanes = std::max(
          max_group_lanes, static_cast<std::int64_t>(g.lane_seeds.size()));
      const std::size_t num_ranks = static_cast<std::size_t>(g.num_ranks);
      std::vector<double> per_rank_mean(num_ranks);
      std::vector<double> makespans;
      for (std::size_t m = 0; m < g.requests.size(); ++m) {
        Request& req = reqs[g.requests[m]];
        if (!req.error.empty()) continue;
        per_rank_mean.assign(num_ranks, 0.0);
        makespans.clear();
        makespans.reserve(static_cast<std::size_t>(req.reps));
        for (int rep = 0; rep < req.reps; ++rep) {
          const double* clocks =
              g.clocks.data() +
              (static_cast<std::size_t>(g.lane_base[m]) +
               static_cast<std::size_t>(rep)) *
                  num_ranks;
          double makespan = 0.0;
          for (std::size_t r = 0; r < num_ranks; ++r) {
            per_rank_mean[r] += clocks[r];
            makespan = std::max(makespan, clocks[r]);
          }
          makespans.push_back(makespan);
        }
        const double inv = 1.0 / req.reps;
        for (double& t : per_rank_mean) t *= inv;
        req.max_avg =
            *std::max_element(per_rank_mean.begin(), per_rank_mean.end());
        req.makespan = obs::summarize(makespans);
        req.batch = std::min(lane_width(g.num_ranks),
                             static_cast<int>(g.lane_seeds.size()));
        req.execute_seconds = 0.0;  // filled below, once per group
      }
      for (const std::size_t r : g.requests) {
        reqs[r].execute_seconds = g.execute_seconds;
        if (reqs[r].trace_id != 0) {
          // The request's measured lanes ran somewhere inside its group's
          // wall interval (lanes coalesce, so a per-request cut does not
          // exist); record the group interval as this request's execute
          // span.
          obs::SpanRecord s;
          s.trace_id = reqs[r].trace_id;
          s.span_id = tracer->new_span_id();
          s.parent = reqs[r].trace_root;
          s.name = tn.execute;
          s.t_start = g.trace_t0;
          s.t_end = g.trace_t1;
          s.add_attr(tn.k_lanes, reqs[r].reps);
          tracer->record(0, s);
        }
      }
      execute_seconds_total += g.execute_seconds;
    }
  }

  // ---------------------------------------------------------------------
  // Response rendering + accounting.
  // ---------------------------------------------------------------------

  std::string render(const Request& req, Clock::time_point done) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("id", req.id);
    // Every reply -- data, control or error -- reports its own latency so
    // clients never need to time the wire themselves.
    doc.set("latency_seconds", seconds_between(req.enqueued, done));
    if (!req.error.empty()) {
      doc.set("ok", false);
      doc.set("error", req.error);
      return to_line(doc);
    }
    doc.set("ok", true);
    if (req.control) {
      if (req.cmd == "stats") {
        doc.set("stats", metrics());
      } else if (req.cmd == "trace") {
        if (tracer == nullptr) {
          doc.set("ok", false);
          doc.set("error",
                  "tracing is disabled (start the server with --trace)");
        } else {
          doc.set("trace", tracer->to_json());
        }
      } else {
        doc.set("shutdown", true);
      }
      return to_line(doc);
    }

    doc.set("machine", req.machine->model.name);
    doc.set("nodes", req.nodes);
    doc.set("gpus", req.pattern->num_gpus());
    doc.set("pattern_hash", hash_hex(req.pattern_fp));
    if (!req.ranking.empty()) {
      obs::JsonValue ranking = obs::JsonValue::array();
      for (const core::Recommendation& r : req.ranking) {
        obs::JsonValue row = obs::JsonValue::object();
        row.set("strategy", r.config.name());
        row.set("predicted_seconds", r.predicted_seconds);
        row.set("relative", r.relative);
        ranking.push_back(std::move(row));
      }
      doc.set("recommended", req.ranking.front().config.name());
      doc.set("ranking", std::move(ranking));
    }

    if (req.reps > 0) {
      obs::JsonValue measured = obs::JsonValue::object();
      measured.set("strategy", req.strategy.name());
      measured.set("reps", req.reps);
      measured.set("seed", static_cast<std::int64_t>(req.seed));
      measured.set("batch", req.batch);
      measured.set("max_avg", req.max_avg);
      measured.set("makespan", req.makespan.to_json());
      doc.set("measured", std::move(measured));
      doc.set("cache", req.cache_hit ? "hit" : "miss");
      if (req.compiled_here) {
        doc.set("compile_seconds", req.plan->compile_seconds);
      }
    }

    obs::JsonValue timing = obs::JsonValue::object();
    timing.set("queue_wait_seconds", req.queue_wait_seconds);
    timing.set("compile_seconds",
               req.compiled_here ? req.plan->compile_seconds : 0.0);
    timing.set("execute_seconds", req.execute_seconds);
    timing.set("latency_seconds", seconds_between(req.enqueued, done));
    doc.set("timing", std::move(timing));
    return to_line(doc);
  }

  void account(const Request& req, Clock::time_point done) {
    requests_total += 1;
    if (!req.error.empty()) errors += 1;
    if (req.control) {
      control_requests += 1;
      return;
    }
    add_sample(latency_samples, seconds_between(req.enqueued, done));
    add_sample(queue_samples, req.queue_wait_seconds);
    if (!req.error.empty()) return;
    if (req.reps == 0) {
      predict_only += 1;
      return;
    }
    measured_requests += 1;
    if (req.cache_hit) measured_cache_hits += 1;
    if (req.compiled_here) {
      compiles += 1;
      compile_seconds_total += req.plan->compile_seconds;
      add_sample(compile_samples, req.plan->compile_seconds);
    }
  }

  std::vector<std::string> process(std::vector<TimedLine> lines) {
    const auto window_start = Clock::now();
    // Window trace (pool queue/run spans, execute blocks, engine events)
    // and per-request traces draw ids from the same dense sequence, so one
    // --trace-sample period governs both.
    std::uint64_t wtrace = 0;
    std::uint32_t wspan = 0;
    if (tracer != nullptr) {
      wtrace = tracer->begin_trace();
      if (tracer->sampled(wtrace)) {
        wspan = tracer->new_span_id();
      } else {
        wtrace = 0;
      }
    }
    std::vector<Request> reqs(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      reqs[i].enqueued = lines[i].enqueued;
      if (tracer != nullptr) {
        const std::uint64_t id = tracer->begin_trace();
        if (tracer->sampled(id)) {
          reqs[i].trace_id = id;
          reqs[i].trace_root = tracer->new_span_id();
        }
      }
      const double parse_t0 = tracer != nullptr ? tracer->now() : 0.0;
      try {
        parse_request(lines[i].text, reqs[i]);
      } catch (const std::exception& e) {
        reqs[i].error = e.what();
        if (reqs[i].error.empty()) reqs[i].error = "bad request";
      }
      if (reqs[i].trace_id != 0) {
        obs::SpanRecord s;
        s.trace_id = reqs[i].trace_id;
        s.span_id = tracer->new_span_id();
        s.parent = reqs[i].trace_root;
        s.name = tn.parse;
        s.t_start = parse_t0;
        s.t_end = tracer->now();
        tracer->record(0, s);
      }
      if (reqs[i].control && reqs[i].cmd == "shutdown") shutdown = true;
    }

    const auto exec_start = Clock::now();
    for (Request& req : reqs) {
      req.queue_wait_seconds = seconds_between(
          req.enqueued, req.reps > 0 ? exec_start : window_start);
      if (req.trace_id != 0 && !req.control) {
        // Exactly the interval the response's timing.queue_wait_seconds
        // reports.
        obs::SpanRecord s;
        s.trace_id = req.trace_id;
        s.span_id = tracer->new_span_id();
        s.parent = req.trace_root;
        s.name = tn.queue_wait;
        s.t_start = tracer->seconds_since_epoch(req.enqueued);
        s.t_end = s.t_start + req.queue_wait_seconds;
        tracer->record(0, s);
      }
    }
    execute_window(reqs, wtrace, wspan);

    std::vector<std::string> out;
    out.reserve(reqs.size());
    const auto done = Clock::now();
    const double render_t0 = wtrace != 0 ? tracer->now() : 0.0;
    for (Request& req : reqs) {
      account(req, done);
      out.push_back(render(req, done));
    }
    if (wtrace != 0) {
      obs::SpanRecord s;
      s.trace_id = wtrace;
      s.span_id = tracer->new_span_id();
      s.parent = wspan;
      s.name = tn.render;
      s.t_start = render_t0;
      s.t_end = tracer->now();
      tracer->record(0, s);
    }
    if (tracer != nullptr) {
      const double done_s = tracer->seconds_since_epoch(done);
      for (Request& req : reqs) {
        if (req.trace_id == 0) continue;
        if (!req.error.empty()) {
          // Structured error marker: a zero-width child span carrying the
          // (truncated) message as an interned attribute.
          obs::SpanRecord e;
          e.trace_id = req.trace_id;
          e.span_id = tracer->new_span_id();
          e.parent = req.trace_root;
          e.name = tn.error;
          e.t_start = done_s;
          e.t_end = done_s;
          e.add_attr_slot(tn.k_error,
                          tracer->intern(req.error.substr(0, 64)));
          tracer->record(0, e);
        }
        // Root span [enqueued, done]: its duration IS the reply's
        // latency_seconds, by construction.
        obs::SpanRecord s;
        s.trace_id = req.trace_id;
        s.span_id = req.trace_root;
        s.parent = 0;
        s.name = tn.request;
        s.t_start = tracer->seconds_since_epoch(req.enqueued);
        s.t_end = done_s;
        if (req.pattern) {
          s.add_attr(tn.k_pattern, static_cast<std::int64_t>(req.pattern_fp));
        }
        if (req.machine != nullptr) {
          s.add_attr_slot(tn.k_machine,
                          tracer->intern(req.machine->model.name));
        }
        if (!req.control && req.error.empty() && req.reps > 0) {
          s.add_attr_slot(tn.k_strategy, tracer->intern(req.strategy.name()));
          s.add_attr_slot(tn.k_cache, req.cache_hit ? tn.k_hit : tn.k_miss);
        }
        s.add_attr(tn.k_reps, req.reps);
        s.add_attr(tn.k_nodes, req.nodes);
        tracer->record(0, s);
      }
      if (wtrace != 0) {
        obs::SpanRecord s;
        s.trace_id = wtrace;
        s.span_id = wspan;
        s.parent = 0;
        s.name = tn.window;
        s.t_start = tracer->seconds_since_epoch(window_start);
        s.t_end = tracer->now();
        s.add_attr(tn.k_requests, static_cast<std::int64_t>(lines.size()));
        tracer->record(0, s);
      }
    }
    windows += 1;
    window_max = std::max(window_max,
                          static_cast<std::int64_t>(lines.size()));
    busy_seconds += seconds_between(window_start, done);
    return out;
  }

  [[nodiscard]] obs::JsonValue metrics() const {
    obs::JsonValue serve = obs::JsonValue::object();
    serve.set("jobs", pool.num_threads());
    serve.set("window", options.window);

    obs::JsonValue counts = obs::JsonValue::object();
    counts.set("total", requests_total);
    counts.set("control", control_requests);
    counts.set("errors", errors);
    counts.set("predict_only", predict_only);
    counts.set("measured", measured_requests);
    serve.set("requests", std::move(counts));

    const auto cache_json = [](const runtime::CacheStats& s,
                               int shards, std::int64_t capacity) {
      obs::JsonValue c = obs::JsonValue::object();
      c.set("shards", shards);
      c.set("capacity", capacity);
      c.set("entries", s.entries);
      c.set("hits", s.hits);
      c.set("misses", s.misses);
      c.set("evictions", s.evictions);
      c.set("hit_rate", s.hit_rate());
      return c;
    };
    obs::JsonValue cache = obs::JsonValue::object();
    obs::JsonValue plan_cache = cache_json(
        plans.stats(), plans.num_shards(),
        static_cast<std::int64_t>(plans.capacity()));
    // Request-level hit rate: the fraction of measured requests that never
    // waited on a compile (shared-cache hits plus within-window reuse).
    // This is the number the serve_load bench gates on.
    plan_cache.set("request_hits", measured_cache_hits);
    plan_cache.set("request_hit_rate",
                   measured_requests == 0
                       ? 0.0
                       : static_cast<double>(measured_cache_hits) /
                             static_cast<double>(measured_requests));
    cache.set("plan", std::move(plan_cache));
    cache.set("pattern",
              cache_json(patterns.stats(), patterns.num_shards(),
                         static_cast<std::int64_t>(patterns.capacity())));
    serve.set("cache", std::move(cache));

    obs::JsonValue batching = obs::JsonValue::object();
    batching.set("windows", windows);
    batching.set("max_window_requests", window_max);
    batching.set("groups", groups_total);
    batching.set("blocks", blocks_total);
    batching.set("lanes", lanes_total);
    batching.set("max_group_lanes", max_group_lanes);
    serve.set("batching", std::move(batching));

    obs::JsonValue timing = obs::JsonValue::object();
    obs::JsonValue compile = obs::JsonValue::object();
    compile.set("total_seconds", compile_seconds_total);
    compile.set("per_compile", obs::summarize(compile_samples).to_json());
    timing.set("compile", std::move(compile));
    obs::JsonValue execute = obs::JsonValue::object();
    execute.set("total_seconds", execute_seconds_total);
    execute.set("per_block", obs::summarize(block_samples).to_json());
    timing.set("execute", std::move(execute));
    timing.set("latency", obs::summarize(latency_samples).to_json());
    timing.set("queue_wait", obs::summarize(queue_samples).to_json());
    serve.set("timing", std::move(timing));

    serve.set("busy_seconds", busy_seconds);
    serve.set("requests_per_second",
              busy_seconds > 0.0
                  ? static_cast<double>(requests_total) / busy_seconds
                  : 0.0);

    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", obs::kMetricsSchema);
    doc.set("serve", std::move(serve));
    return doc;
  }
};

Service::Service(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Service::~Service() = default;

std::string Service::handle_line(const std::string& line) {
  return handle_window({line}).front();
}

std::vector<std::string> Service::handle_window(
    const std::vector<std::string>& lines) {
  std::vector<TimedLine> timed;
  timed.reserve(lines.size());
  const auto now = Clock::now();
  for (const std::string& line : lines) timed.push_back({line, now});
  return impl_->process(std::move(timed));
}

bool Service::shutdown_requested() const noexcept { return impl_->shutdown; }

obs::JsonValue Service::metrics_json() const { return impl_->metrics(); }

bool Service::tracing_enabled() const noexcept {
  return impl_->tracer != nullptr;
}

obs::JsonValue Service::trace_json() const {
  if (impl_->tracer == nullptr) {
    throw std::logic_error(
        "serve: tracing is disabled (enable ServiceOptions::trace)");
  }
  return impl_->tracer->to_json();
}

namespace {

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

void Service::run(std::istream& in, std::ostream& out) {
  std::int64_t served = 0;
  std::string line;
  while (!impl_->shutdown &&
         (impl_->options.max_requests == 0 ||
          served < impl_->options.max_requests)) {
    if (!std::getline(in, line)) break;
    std::vector<TimedLine> window;
    if (!blank(line)) window.push_back({line, Clock::now()});
    // Drain whatever is already buffered (never blocking on more input):
    // a bursty producer forms a batch, an interactive one stays per-line.
    while (static_cast<int>(window.size()) < impl_->options.window &&
           in.rdbuf()->in_avail() > 0) {
      if (!std::getline(in, line)) break;
      if (!blank(line)) window.push_back({line, Clock::now()});
    }
    if (window.empty()) continue;
    served += static_cast<std::int64_t>(window.size());
    for (const std::string& response : impl_->process(std::move(window))) {
      out << response << "\n";
    }
    out.flush();
  }
}

#ifdef __unix__

void Service::run_socket(const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error("serve: cannot create unix socket");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listener);
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::copy(path.begin(), path.end(), addr.sun_path);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    ::close(listener);
    throw std::runtime_error("serve: cannot bind/listen on " + path);
  }

  std::int64_t served = 0;
  while (!impl_->shutdown && (impl_->options.max_requests == 0 ||
                              served < impl_->options.max_requests)) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::string buffer;
    char chunk[4096];
    while (!impl_->shutdown) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      // Batch every complete line currently buffered into one window.
      std::vector<TimedLine> window;
      std::size_t pos = 0;
      for (std::size_t nl = buffer.find('\n'); nl != std::string::npos;
           nl = buffer.find('\n', pos)) {
        std::string one = buffer.substr(pos, nl - pos);
        pos = nl + 1;
        if (!blank(one)) window.push_back({std::move(one), Clock::now()});
        if (static_cast<int>(window.size()) >= impl_->options.window) break;
      }
      buffer.erase(0, pos);
      if (window.empty()) continue;
      served += static_cast<std::int64_t>(window.size());
      std::string reply;
      for (const std::string& response : impl_->process(std::move(window))) {
        reply += response;
        reply += '\n';
      }
      std::size_t written = 0;
      while (written < reply.size()) {
        const ssize_t w =
            ::write(fd, reply.data() + written, reply.size() - written);
        if (w <= 0) break;
        written += static_cast<std::size_t>(w);
      }
    }
    ::close(fd);
  }
  ::close(listener);
  ::unlink(path.c_str());
}

#else

void Service::run_socket(const std::string&) {
  throw std::runtime_error("serve: --socket requires a unix platform");
}

#endif

}  // namespace hetcomm::serve
